//! Optional access-trace recording.
//!
//! When enabled, the engine records one event per memory-system access —
//! where it hit, what it cost — so tests and tools can assert on *access
//! patterns* (coalescing, locality, sweep order) rather than only on
//! aggregate counters. Tracing is off by default and costs one branch per
//! access when disabled.
//!
//! ## Bounded recording
//!
//! Long runs would otherwise grow an unbounded `Vec<TraceEvent>`, so every
//! trace is capped at a capacity and a [`TraceMode`] decides what happens
//! beyond it: [`TraceMode::Truncate`] keeps the oldest events,
//! [`TraceMode::Ring`] keeps the newest, and [`TraceMode::SampleEveryNth`]
//! thins the offered stream before the cap applies. Whatever the mode, the
//! recorder keeps two exact [`TraceTotals`] — everything *offered* and
//! everything still *recorded* — so downstream consumers (heatmaps,
//! exporters) can reconcile a thinned trace against the engine's
//! [`Counters`](crate::counters::Counters) without rescanning events that
//! no longer exist.

use crate::fault::FaultKind;
use crate::mem::MemLocation;
use serde::Serialize;

/// Where a data-dependent line access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the L2 data cache.
    L2,
    /// Fetched from GPU device memory.
    GpuMem,
    /// Fetched from CPU memory across the interconnect.
    Remote {
        /// Whether the page translation was already cached in the TLB.
        tlb_hit: bool,
    },
}

/// One recorded memory-system event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceEvent {
    /// A data-dependent cacheline access.
    ReadLine {
        /// Placement of the accessed buffer.
        loc: MemLocation,
        /// Line-aligned virtual address.
        line_addr: u64,
        /// Where the access was satisfied.
        hit: HitLevel,
    },
    /// A sequential streaming read.
    StreamRead {
        /// Placement of the accessed buffer.
        loc: MemLocation,
        /// Start address.
        addr: u64,
        /// Bytes streamed.
        bytes: u64,
    },
    /// A write (streaming store).
    Write {
        /// Placement of the written buffer.
        loc: MemLocation,
        /// Start address.
        addr: u64,
        /// Bytes written.
        bytes: u64,
    },
    /// A kernel launch boundary.
    KernelLaunch,
    /// One page translation performed for a streaming or write access
    /// (the random-read path records its translation inside
    /// [`TraceEvent::ReadLine`] via [`HitLevel::Remote`]).
    Translate {
        /// Page-aligned virtual address that was translated.
        page_addr: u64,
        /// Whether the translation was cached in the TLB.
        hit: bool,
    },
    /// The TLB was flushed (cold start between queries). Explains miss-rate
    /// discontinuities in exported timelines.
    TlbFlush,
    /// An injected fault fired.
    Fault {
        /// Which fault sequence fired.
        kind: FaultKind,
    },
    /// An operator retried after a transient fault.
    Retry {
        /// 0-based retry attempt number.
        attempt: u32,
        /// Deterministic backoff charged for this retry, in nanoseconds.
        backoff_ns: u64,
    },
    /// The set of active chaos effects changed at a virtual-time update
    /// (windows opened or closed). Explains fault bursts and stall
    /// discontinuities in exported timelines.
    ChaosTransition {
        /// Whether a brownout window is now active.
        brownout: bool,
        /// Whether a link-flap window is now active.
        link_flap: bool,
        /// Whether an ECC-storm window is now active.
        ecc_storm: bool,
        /// Whether a device-loss window is now active.
        device_lost: bool,
    },
    /// A device cacheline was re-fetched over the interconnect because its
    /// page is quarantined by a chaos ECC storm.
    EccRefetch {
        /// Line-aligned virtual address of the quarantined line.
        line_addr: u64,
    },
    /// An operation was refused because a chaos device-loss window is
    /// active.
    DeviceLost,
}

/// What the recorder does once the event stream exceeds its capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceMode {
    /// Keep the first `capacity` events, drop the rest (legacy behavior —
    /// preserves the run's prefix).
    Truncate,
    /// Keep the most recent `capacity` events (preserves the run's suffix);
    /// the steady-state choice for long-running servers.
    Ring,
    /// Record every `n`-th offered event (1 = all), then truncate at
    /// capacity. Thins uniformly across the whole run, which is what
    /// time-bucketed heatmaps want at paper scale.
    SampleEveryNth(u64),
}

/// Invoke a macro once with every [`TraceTotals`] field, so element-wise
/// operations cannot silently miss one (same pattern as `Counters`).
macro_rules! for_each_total {
    ($m:ident) => {
        $m!(
            events,
            read_lines,
            stream_reads,
            writes,
            kernel_launches,
            translates,
            tlb_flushes,
            faults,
            retries,
            chaos_transitions,
            ecc_refetches,
            device_losses,
            tlb_accesses,
            tlb_misses,
            l2_accesses,
            l2_misses
        )
    };
}

/// Exact per-category event totals, maintained for both the *offered*
/// stream (every event the engine emitted) and the *recorded* subset (what
/// the bounded buffer still holds). `offered - recorded` is the exact
/// accounting of everything dropped by truncation, ring eviction, or
/// sampling — the reconciliation contract heatmaps and exporters rely on.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceTotals {
    /// All events.
    pub events: u64,
    /// [`TraceEvent::ReadLine`] events.
    pub read_lines: u64,
    /// [`TraceEvent::StreamRead`] events.
    pub stream_reads: u64,
    /// [`TraceEvent::Write`] events.
    pub writes: u64,
    /// [`TraceEvent::KernelLaunch`] events.
    pub kernel_launches: u64,
    /// [`TraceEvent::Translate`] events.
    pub translates: u64,
    /// [`TraceEvent::TlbFlush`] events.
    pub tlb_flushes: u64,
    /// [`TraceEvent::Fault`] events.
    pub faults: u64,
    /// [`TraceEvent::Retry`] events.
    pub retries: u64,
    /// [`TraceEvent::ChaosTransition`] events.
    pub chaos_transitions: u64,
    /// [`TraceEvent::EccRefetch`] events.
    pub ecc_refetches: u64,
    /// [`TraceEvent::DeviceLost`] events.
    pub device_losses: u64,
    /// TLB lookups carried by events ([`HitLevel::Remote`] read lines plus
    /// [`TraceEvent::Translate`]); matches `tlb_hits + tlb_misses` in
    /// [`Counters`](crate::counters::Counters) when nothing was dropped.
    pub tlb_accesses: u64,
    /// The missing subset of `tlb_accesses`.
    pub tlb_misses: u64,
    /// L2 lookups carried by events (read lines that missed L1).
    pub l2_accesses: u64,
    /// The missing subset of `l2_accesses`.
    pub l2_misses: u64,
}

impl TraceTotals {
    /// The totals contributed by one event.
    pub fn of(ev: &TraceEvent) -> TraceTotals {
        let mut t = TraceTotals {
            events: 1,
            ..TraceTotals::default()
        };
        match ev {
            TraceEvent::ReadLine { hit, .. } => {
                t.read_lines = 1;
                match hit {
                    HitLevel::L1 => {}
                    HitLevel::L2 => t.l2_accesses = 1,
                    HitLevel::GpuMem => {
                        t.l2_accesses = 1;
                        t.l2_misses = 1;
                    }
                    HitLevel::Remote { tlb_hit } => {
                        t.l2_accesses = 1;
                        t.l2_misses = 1;
                        t.tlb_accesses = 1;
                        t.tlb_misses = u64::from(!tlb_hit);
                    }
                }
            }
            TraceEvent::StreamRead { .. } => t.stream_reads = 1,
            TraceEvent::Write { .. } => t.writes = 1,
            TraceEvent::KernelLaunch => t.kernel_launches = 1,
            TraceEvent::Translate { hit, .. } => {
                t.translates = 1;
                t.tlb_accesses = 1;
                t.tlb_misses = u64::from(!hit);
            }
            TraceEvent::TlbFlush => t.tlb_flushes = 1,
            TraceEvent::Fault { .. } => t.faults = 1,
            TraceEvent::Retry { .. } => t.retries = 1,
            TraceEvent::ChaosTransition { .. } => t.chaos_transitions = 1,
            TraceEvent::EccRefetch { .. } => t.ecc_refetches = 1,
            TraceEvent::DeviceLost => t.device_losses = 1,
        }
        t
    }

    fn add(&mut self, ev: &TraceEvent) {
        let d = TraceTotals::of(ev);
        macro_rules! add_fields {
            ($($f:ident),+) => { $(self.$f += d.$f;)+ };
        }
        for_each_total!(add_fields);
    }

    fn sub(&mut self, ev: &TraceEvent) {
        let d = TraceTotals::of(ev);
        macro_rules! sub_fields {
            ($($f:ident),+) => { $(self.$f -= d.$f;)+ };
        }
        for_each_total!(sub_fields);
    }
}

/// Bounded event recorder. The [`TraceMode`] decides which events survive
/// beyond `capacity`; [`Trace::offered`] / [`Trace::recorded`] always
/// account for the full stream exactly.
#[derive(Debug)]
pub struct Trace {
    mode: TraceMode,
    capacity: usize,
    buf: Vec<TraceEvent>,
    /// Ring write cursor (next slot to overwrite once wrapped).
    next: usize,
    /// Whether the ring has wrapped; cleared by [`Trace::normalize`].
    wrapped: bool,
    offered: TraceTotals,
    recorded: TraceTotals,
    /// Offered-event ordinal, drives `SampleEveryNth` selection.
    seq: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::with_capacity(0)
    }
}

impl Trace {
    /// Create a recorder bounded at `capacity` events in
    /// [`TraceMode::Truncate`] (the legacy default).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace::new(capacity, TraceMode::Truncate)
    }

    /// Create a recorder bounded at `capacity` events with the given
    /// overflow mode. A `SampleEveryNth(0)` period is treated as 1.
    pub fn new(capacity: usize, mode: TraceMode) -> Self {
        let mode = match mode {
            TraceMode::SampleEveryNth(0) => TraceMode::SampleEveryNth(1),
            m => m,
        };
        Trace {
            mode,
            capacity,
            buf: Vec::new(),
            next: 0,
            wrapped: false,
            offered: TraceTotals::default(),
            recorded: TraceTotals::default(),
            seq: 0,
        }
    }

    /// Record one event. Always counted in [`Trace::offered`]; whether it
    /// is retained depends on the mode and capacity.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.offered.add(&ev);
        let ordinal = self.seq;
        self.seq += 1;
        match self.mode {
            TraceMode::Truncate => self.push_truncate(ev),
            TraceMode::SampleEveryNth(n) => {
                if ordinal.is_multiple_of(n) {
                    self.push_truncate(ev);
                }
            }
            TraceMode::Ring => {
                if self.buf.len() < self.capacity {
                    self.buf.push(ev);
                    self.recorded.add(&ev);
                } else if self.capacity > 0 {
                    self.recorded.sub(&self.buf[self.next]);
                    self.buf[self.next] = ev;
                    self.recorded.add(&ev);
                    self.next = (self.next + 1) % self.capacity;
                    self.wrapped = true;
                }
            }
        }
    }

    #[inline]
    fn push_truncate(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
            self.recorded.add(&ev);
        }
    }

    /// Rotate a wrapped ring into recording order. O(capacity), idempotent;
    /// [`Gpu::stop_trace`](crate::Gpu::stop_trace) calls this so returned
    /// traces are always in order.
    pub fn normalize(&mut self) {
        if self.wrapped {
            self.buf.rotate_left(self.next);
            self.next = 0;
            self.wrapped = false;
        }
    }

    /// The recorded events, oldest first. A wrapped ring must be
    /// [`normalize`](Trace::normalize)d first (traces returned by
    /// `stop_trace` already are).
    pub fn events(&self) -> &[TraceEvent] {
        assert!(
            !self.wrapped,
            "ring trace must be normalized before reading events"
        );
        &self.buf
    }

    /// The overflow mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exact totals of every event offered to the recorder.
    pub fn offered(&self) -> TraceTotals {
        self.offered
    }

    /// Exact totals of the events currently retained.
    pub fn recorded(&self) -> TraceTotals {
        self.recorded
    }

    /// Events offered but no longer retained (truncated, evicted, or
    /// sampled out).
    pub fn dropped_events(&self) -> u64 {
        self.offered.events - self.recorded.events
    }

    /// Whether any events were dropped at the capacity bound (or thinned
    /// by sampling).
    pub fn truncated(&self) -> bool {
        self.dropped_events() > 0
    }

    /// Consume the recorder and return the events in recording order.
    pub fn into_events(mut self) -> Vec<TraceEvent> {
        self.normalize();
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_remote(line_addr: u64, tlb_hit: bool) -> TraceEvent {
        TraceEvent::ReadLine {
            loc: MemLocation::Cpu,
            line_addr,
            hit: HitLevel::Remote { tlb_hit },
        }
    }

    #[test]
    fn capacity_bound_marks_truncation() {
        let mut t = Trace::with_capacity(2);
        for _ in 0..3 {
            t.record(TraceEvent::KernelLaunch);
        }
        assert_eq!(t.events().len(), 2);
        assert!(t.truncated());
        assert_eq!(t.dropped_events(), 1);
        assert_eq!(t.offered().kernel_launches, 3);
        assert_eq!(t.recorded().kernel_launches, 2);
    }

    #[test]
    fn ring_keeps_the_newest_events_in_order() {
        let mut t = Trace::new(3, TraceMode::Ring);
        for i in 0..5 {
            t.record(read_remote(i * 128, false));
        }
        assert_eq!(t.dropped_events(), 2);
        assert_eq!(t.recorded().events, 3);
        t.normalize();
        let addrs: Vec<u64> = t
            .events()
            .iter()
            .map(|ev| match ev {
                TraceEvent::ReadLine { line_addr, .. } => *line_addr,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(addrs, vec![2 * 128, 3 * 128, 4 * 128]);
        // Evicted events left the recorded totals exactly.
        assert_eq!(t.offered().tlb_misses, 5);
        assert_eq!(t.recorded().tlb_misses, 3);
    }

    #[test]
    fn sampling_thins_uniformly_with_exact_accounting() {
        let mut t = Trace::new(1024, TraceMode::SampleEveryNth(4));
        for i in 0..100 {
            t.record(read_remote(i * 128, i % 2 == 0));
        }
        assert_eq!(t.events().len(), 25);
        assert_eq!(t.offered().tlb_accesses, 100);
        assert_eq!(t.offered().tlb_misses, 50);
        assert_eq!(t.recorded().tlb_accesses, 25);
        assert_eq!(t.dropped_events(), 75);
    }

    #[test]
    fn totals_classify_every_event_kind() {
        let mut t = Trace::with_capacity(64);
        t.record(TraceEvent::ReadLine {
            loc: MemLocation::Gpu,
            line_addr: 0,
            hit: HitLevel::L1,
        });
        t.record(TraceEvent::ReadLine {
            loc: MemLocation::Gpu,
            line_addr: 128,
            hit: HitLevel::L2,
        });
        t.record(TraceEvent::ReadLine {
            loc: MemLocation::Gpu,
            line_addr: 256,
            hit: HitLevel::GpuMem,
        });
        t.record(read_remote(512, true));
        t.record(TraceEvent::StreamRead {
            loc: MemLocation::Cpu,
            addr: 0,
            bytes: 4096,
        });
        t.record(TraceEvent::Write {
            loc: MemLocation::Cpu,
            addr: 0,
            bytes: 64,
        });
        t.record(TraceEvent::KernelLaunch);
        t.record(TraceEvent::Translate {
            page_addr: 0,
            hit: false,
        });
        t.record(TraceEvent::TlbFlush);
        t.record(TraceEvent::Fault {
            kind: FaultKind::Transfer,
        });
        t.record(TraceEvent::Retry {
            attempt: 0,
            backoff_ns: 10_000,
        });
        t.record(TraceEvent::ChaosTransition {
            brownout: true,
            link_flap: false,
            ecc_storm: false,
            device_lost: false,
        });
        t.record(TraceEvent::EccRefetch { line_addr: 640 });
        t.record(TraceEvent::DeviceLost);
        let o = t.offered();
        assert_eq!(o.events, 14);
        assert_eq!(o.read_lines, 4);
        assert_eq!(o.l2_accesses, 3, "L1 hits never reach L2");
        assert_eq!(o.l2_misses, 2);
        assert_eq!(o.tlb_accesses, 2, "remote read + translate");
        assert_eq!(o.tlb_misses, 1, "only the translate missed");
        assert_eq!(o.stream_reads, 1);
        assert_eq!(o.writes, 1);
        assert_eq!(o.kernel_launches, 1);
        assert_eq!(o.translates, 1);
        assert_eq!(o.tlb_flushes, 1);
        assert_eq!(o.faults, 1);
        assert_eq!(o.retries, 1);
        assert_eq!(o.chaos_transitions, 1);
        assert_eq!(o.ecc_refetches, 1);
        assert_eq!(o.device_losses, 1);
        assert_eq!(t.recorded(), o, "nothing dropped below capacity");
    }

    #[test]
    fn zero_capacity_ring_drops_everything_safely() {
        let mut t = Trace::new(0, TraceMode::Ring);
        t.record(TraceEvent::KernelLaunch);
        assert_eq!(t.events().len(), 0);
        assert_eq!(t.dropped_events(), 1);
    }
}
