//! Optional access-trace recording.
//!
//! When enabled, the engine records one event per memory-system access —
//! where it hit, what it cost — so tests and tools can assert on *access
//! patterns* (coalescing, locality, sweep order) rather than only on
//! aggregate counters. Tracing is off by default and costs one branch per
//! access when disabled.

use crate::mem::MemLocation;
use serde::Serialize;

/// Where a data-dependent line access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the L2 data cache.
    L2,
    /// Fetched from GPU device memory.
    GpuMem,
    /// Fetched from CPU memory across the interconnect.
    Remote {
        /// Whether the page translation was already cached in the TLB.
        tlb_hit: bool,
    },
}

/// One recorded memory-system event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceEvent {
    /// A data-dependent cacheline access.
    ReadLine {
        /// Placement of the accessed buffer.
        loc: MemLocation,
        /// Line-aligned virtual address.
        line_addr: u64,
        /// Where the access was satisfied.
        hit: HitLevel,
    },
    /// A sequential streaming read.
    StreamRead {
        /// Placement of the accessed buffer.
        loc: MemLocation,
        /// Start address.
        addr: u64,
        /// Bytes streamed.
        bytes: u64,
    },
    /// A write (streaming store).
    Write {
        /// Placement of the written buffer.
        loc: MemLocation,
        /// Start address.
        addr: u64,
        /// Bytes written.
        bytes: u64,
    },
    /// A kernel launch boundary.
    KernelLaunch,
}

/// Bounded event recorder. Recording stops silently at `capacity` (the
/// `truncated` flag reports whether events were dropped).
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    truncated: bool,
}

impl Trace {
    /// Create a recorder bounded at `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            truncated: false,
        }
    }

    /// Record one event (drops and marks truncation beyond capacity).
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.truncated = true;
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Whether events were dropped at the capacity bound.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Consume the recorder and return the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bound_marks_truncation() {
        let mut t = Trace::with_capacity(2);
        for _ in 0..3 {
            t.record(TraceEvent::KernelLaunch);
        }
        assert_eq!(t.events().len(), 2);
        assert!(t.truncated());
    }
}
