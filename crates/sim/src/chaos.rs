//! Chaos schedules: deterministic, time-correlated fault windows.
//!
//! The Bernoulli fault plan ([`FaultPlan`](crate::fault::FaultPlan)) models
//! *independent* per-draw faults; real deployments fail in *correlated*
//! ways — an interconnect brownout degrades every transfer for seconds, a
//! link flap hard-fails them, an ECC storm quarantines device pages, and a
//! whole device can drop off the bus. A [`ChaosSchedule`] places named fault
//! *windows* `[t0, t1)` on the engine's virtual clock; the engine applies
//! whichever windows contain the current virtual time. Everything is a pure
//! function of `(seed, scenario)` — same schedule and workload mean
//! byte-identical traces and counters.
//!
//! The window kinds and their engine-side effects:
//!
//! - [`ChaosKind::Brownout`] — the interconnect runs at a fraction of its
//!   nominal bandwidth; the lost bandwidth accrues as `chaos_stall_ns`
//!   (priced unscaled by the cost model, like retry backoff);
//! - [`ChaosKind::LinkFlap`] — every transfer operation hard-fails with a
//!   transient fault for the duration of the window;
//! - [`ChaosKind::EccStorm`] — a seeded subset of device pages is
//!   quarantined; lines on those pages cannot be served from HBM and are
//!   re-fetched over the interconnect (`ecc_refetch_lines`);
//! - [`ChaosKind::DeviceLoss`] — the device is gone: allocations, kernel
//!   launches, and transfers fail with the non-transient
//!   [`SimError::DeviceLost`] until the window closes. Recovery (index
//!   rebuild, replay) is the caller's job; [`ChaosSchedule::clearance_s`]
//!   reports when the device returns.

use crate::fault::{splitmix64, SimError};
use serde::Serialize;

/// Salt folded into the page-quarantine hash (distinct from the
/// [`FaultKind`](crate::fault::FaultKind) salts).
const SALT_ECC_PAGE: u64 = 0x6563635f70616765;

/// The kind of correlated failure a [`ChaosWindow`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ChaosKind {
    /// Interconnect brownout: the link runs at `bandwidth_scale` × nominal
    /// bandwidth (`0 < scale ≤ 1`) while the window is active.
    Brownout {
        /// Fraction of nominal bandwidth still available.
        bandwidth_scale: f64,
    },
    /// Link flap: every interconnect transfer operation hard-fails with a
    /// transient fault while the window is active.
    LinkFlap,
    /// ECC storm: each device page is quarantined with probability
    /// `page_rate` (drawn from the schedule seed); quarantined lines are
    /// re-fetched over the interconnect instead of HBM.
    EccStorm {
        /// Probability a device page is quarantined, in `[0, 1]`.
        page_rate: f64,
    },
    /// Whole-device loss: allocations, launches, and transfers fail with
    /// the non-transient [`SimError::DeviceLost`] for the window.
    DeviceLoss,
}

impl ChaosKind {
    /// Short stable name for reports and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosKind::Brownout { .. } => "brownout",
            ChaosKind::LinkFlap => "link_flap",
            ChaosKind::EccStorm { .. } => "ecc_storm",
            ChaosKind::DeviceLoss => "device_loss",
        }
    }
}

/// One fault window `[t0_s, t1_s)` on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChaosWindow {
    /// What fails while the window is active.
    pub kind: ChaosKind,
    /// Window start (inclusive), in virtual seconds.
    pub t0_s: f64,
    /// Window end (exclusive), in virtual seconds.
    pub t1_s: f64,
}

impl ChaosWindow {
    /// Whether the window is active at virtual time `t_s`.
    #[inline]
    pub fn contains(&self, t_s: f64) -> bool {
        t_s >= self.t0_s && t_s < self.t1_s
    }

    fn validate(&self) -> Result<(), SimError> {
        if !self.t0_s.is_finite() || !self.t1_s.is_finite() {
            return Err(SimError::InvalidConfig(format!(
                "chaos window [{}, {}) must have finite bounds",
                self.t0_s, self.t1_s
            )));
        }
        if self.t0_s < 0.0 || self.t1_s <= self.t0_s {
            return Err(SimError::InvalidConfig(format!(
                "chaos window [{}, {}) must satisfy 0 <= t0 < t1",
                self.t0_s, self.t1_s
            )));
        }
        match self.kind {
            ChaosKind::Brownout { bandwidth_scale } => {
                if !(bandwidth_scale > 0.0 && bandwidth_scale <= 1.0) {
                    return Err(SimError::InvalidConfig(format!(
                        "brownout bandwidth_scale must be in (0, 1], got {bandwidth_scale}"
                    )));
                }
            }
            ChaosKind::EccStorm { page_rate } => {
                if !(0.0..=1.0).contains(&page_rate) {
                    return Err(SimError::InvalidConfig(format!(
                        "ecc_storm page_rate must be in [0, 1], got {page_rate}"
                    )));
                }
            }
            ChaosKind::LinkFlap | ChaosKind::DeviceLoss => {}
        }
        Ok(())
    }
}

/// The combined chaos effects active at one virtual instant, folded over
/// every window containing that instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosActivity {
    /// Effective interconnect bandwidth fraction (minimum over active
    /// brownouts; 1.0 when none are active).
    pub bandwidth_scale: f64,
    /// Whether a link-flap window is active.
    pub link_flap: bool,
    /// Page-quarantine probability (maximum over active ECC storms; 0.0
    /// when none are active).
    pub ecc_page_rate: f64,
    /// Whether a device-loss window is active.
    pub device_lost: bool,
}

impl Default for ChaosActivity {
    fn default() -> Self {
        ChaosActivity {
            bandwidth_scale: 1.0,
            link_flap: false,
            ecc_page_rate: 0.0,
            device_lost: false,
        }
    }
}

impl ChaosActivity {
    /// Whether no chaos effect is active.
    pub fn is_calm(&self) -> bool {
        *self == ChaosActivity::default()
    }
}

/// A deterministic set of named fault windows on the virtual clock.
/// The default schedule is empty (calm).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ChaosSchedule {
    /// Seed of the page-quarantine draws (and any future stochastic
    /// window effects).
    pub seed: u64,
    /// The fault windows. Order is irrelevant; overlaps compose (scales
    /// take the minimum, rates the maximum, flags OR).
    pub windows: Vec<ChaosWindow>,
}

impl ChaosSchedule {
    /// An empty (calm) schedule.
    pub fn none() -> Self {
        ChaosSchedule::default()
    }

    /// An empty schedule carrying `seed` (combine with
    /// [`with_window`](ChaosSchedule::with_window)).
    pub fn seeded(seed: u64) -> Self {
        ChaosSchedule {
            seed,
            windows: Vec::new(),
        }
    }

    /// Append a window `[t0_s, t1_s)` of the given kind.
    pub fn with_window(mut self, kind: ChaosKind, t0_s: f64, t1_s: f64) -> Self {
        self.windows.push(ChaosWindow { kind, t0_s, t1_s });
        self
    }

    /// Whether the schedule has no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Validate every window (finite ordered bounds, rates in range).
    pub fn validate(&self) -> Result<(), SimError> {
        for w in &self.windows {
            w.validate()?;
        }
        Ok(())
    }

    /// The combined effects active at virtual time `t_s`.
    pub fn activity_at(&self, t_s: f64) -> ChaosActivity {
        let mut a = ChaosActivity::default();
        for w in &self.windows {
            if !w.contains(t_s) {
                continue;
            }
            match w.kind {
                ChaosKind::Brownout { bandwidth_scale } => {
                    a.bandwidth_scale = a.bandwidth_scale.min(bandwidth_scale);
                }
                ChaosKind::LinkFlap => a.link_flap = true,
                ChaosKind::EccStorm { page_rate } => {
                    a.ecc_page_rate = a.ecc_page_rate.max(page_rate);
                }
                ChaosKind::DeviceLoss => a.device_lost = true,
            }
        }
        a
    }

    /// Earliest virtual time `>= t_s` at which no device-loss window is
    /// active — when a lost device comes back. Windows are finite, so this
    /// always terminates.
    pub fn clearance_s(&self, t_s: f64) -> f64 {
        let mut t = t_s;
        loop {
            let mut moved = false;
            for w in &self.windows {
                if matches!(w.kind, ChaosKind::DeviceLoss) && w.contains(t) && w.t1_s > t {
                    t = w.t1_s;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
    }

    /// The end of the last window (0.0 for an empty schedule) — after this
    /// instant the schedule is permanently calm.
    pub fn end_s(&self) -> f64 {
        self.windows.iter().fold(0.0, |acc, w| acc.max(w.t1_s))
    }

    /// Whether device page `page_id` is quarantined at quarantine
    /// probability `rate`. Pure function of `(seed, page_id)` — the same
    /// page stays quarantined for the whole storm.
    #[inline]
    pub fn page_quarantined(&self, page_id: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = splitmix64(self.seed ^ SALT_ECC_PAGE.wrapping_mul(0x9e3779b97f4a7c15) ^ page_id);
        ((h >> 11) as f64) < rate * (1u64 << 53) as f64
    }
}

/// The named chaos scenarios the bench sweep and resilience tests share.
/// Each resolves to a fixed [`ChaosSchedule`] whose windows sit inside the
/// first ~60 ms of virtual time (the span of the seeded serving traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ChaosScenario {
    /// No chaos at all — the baseline every other scenario is compared to.
    Calm,
    /// A 20 ms link flap: transfers hard-fail mid-run.
    LinkFlap,
    /// A 40 ms brownout at 35% of nominal interconnect bandwidth.
    Brownout,
    /// A 35 ms ECC storm quarantining ~20% of device pages.
    EccStorm,
    /// A 15 ms whole-device outage.
    DeviceLoss,
    /// Brownout, flap, ECC storm, and device loss overlapping.
    Combined,
}

impl ChaosScenario {
    /// Every scenario, in sweep order.
    pub const ALL: [ChaosScenario; 6] = [
        ChaosScenario::Calm,
        ChaosScenario::LinkFlap,
        ChaosScenario::Brownout,
        ChaosScenario::EccStorm,
        ChaosScenario::DeviceLoss,
        ChaosScenario::Combined,
    ];

    /// Short stable name for reports and file columns.
    pub fn name(self) -> &'static str {
        match self {
            ChaosScenario::Calm => "calm",
            ChaosScenario::LinkFlap => "flap",
            ChaosScenario::Brownout => "brownout",
            ChaosScenario::EccStorm => "ecc_storm",
            ChaosScenario::DeviceLoss => "device_loss",
            ChaosScenario::Combined => "combined",
        }
    }

    /// The scenario's schedule under `seed`. Pure: same `(seed, scenario)`
    /// always yields the same windows.
    pub fn schedule(self, seed: u64) -> ChaosSchedule {
        let s = ChaosSchedule::seeded(seed);
        match self {
            ChaosScenario::Calm => s,
            ChaosScenario::LinkFlap => s.with_window(ChaosKind::LinkFlap, 0.020, 0.040),
            ChaosScenario::Brownout => s.with_window(
                ChaosKind::Brownout {
                    bandwidth_scale: 0.35,
                },
                0.010,
                0.050,
            ),
            ChaosScenario::EccStorm => {
                s.with_window(ChaosKind::EccStorm { page_rate: 0.20 }, 0.015, 0.050)
            }
            ChaosScenario::DeviceLoss => s.with_window(ChaosKind::DeviceLoss, 0.020, 0.035),
            ChaosScenario::Combined => s
                .with_window(
                    ChaosKind::Brownout {
                        bandwidth_scale: 0.5,
                    },
                    0.005,
                    0.030,
                )
                .with_window(ChaosKind::LinkFlap, 0.015, 0.025)
                .with_window(ChaosKind::EccStorm { page_rate: 0.10 }, 0.020, 0.050)
                .with_window(ChaosKind::DeviceLoss, 0.035, 0.045),
        }
    }

    /// Per-GPU schedules for a cluster of `n_gpus` devices where only
    /// `target_gpu` experiences this scenario's fault windows; every other
    /// device stays calm. Each device gets a distinct derived seed so
    /// stochastic window effects (ECC page quarantines) never correlate
    /// across devices. With `n_gpus == 1` and `target_gpu == 0` this
    /// degenerates to the single-GPU [`schedule`](ChaosScenario::schedule).
    ///
    /// # Panics
    /// Panics if `target_gpu >= n_gpus`.
    pub fn cluster_schedules(
        self,
        seed: u64,
        n_gpus: usize,
        target_gpu: usize,
    ) -> Vec<ChaosSchedule> {
        assert!(
            target_gpu < n_gpus,
            "target GPU {target_gpu} out of range for a {n_gpus}-GPU cluster"
        );
        (0..n_gpus)
            .map(|gpu| {
                let gpu_seed = seed.wrapping_add(gpu as u64);
                if gpu == target_gpu {
                    self.schedule(gpu_seed)
                } else {
                    ChaosSchedule::seeded(gpu_seed)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_calm_everywhere() {
        let s = ChaosSchedule::none();
        assert!(s.validate().is_ok());
        assert!(s.activity_at(0.0).is_calm());
        assert!(s.activity_at(123.0).is_calm());
        assert_eq!(s.clearance_s(3.0), 3.0);
        assert_eq!(s.end_s(), 0.0);
    }

    #[test]
    fn windows_are_half_open_and_compose() {
        let s = ChaosSchedule::seeded(1)
            .with_window(
                ChaosKind::Brownout {
                    bandwidth_scale: 0.5,
                },
                1.0,
                2.0,
            )
            .with_window(
                ChaosKind::Brownout {
                    bandwidth_scale: 0.25,
                },
                1.5,
                3.0,
            )
            .with_window(ChaosKind::LinkFlap, 1.0, 1.5);
        assert!(s.validate().is_ok());
        assert!(s.activity_at(0.999).is_calm());
        let a = s.activity_at(1.0);
        assert_eq!(a.bandwidth_scale, 0.5);
        assert!(a.link_flap);
        let b = s.activity_at(1.75);
        assert_eq!(b.bandwidth_scale, 0.25, "overlap takes the minimum scale");
        assert!(!b.link_flap, "flap window is half-open at t1");
        assert!(s.activity_at(3.0).is_calm());
    }

    #[test]
    fn clearance_skips_chained_loss_windows() {
        let s = ChaosSchedule::seeded(0)
            .with_window(ChaosKind::DeviceLoss, 1.0, 2.0)
            .with_window(ChaosKind::DeviceLoss, 2.0, 2.5);
        assert_eq!(s.clearance_s(0.5), 0.5);
        assert_eq!(s.clearance_s(1.2), 2.5, "back-to-back windows chain");
        assert_eq!(s.clearance_s(2.5), 2.5);
    }

    #[test]
    fn invalid_windows_are_rejected() {
        let bad_order = ChaosSchedule::seeded(0).with_window(ChaosKind::LinkFlap, 2.0, 1.0);
        assert!(matches!(
            bad_order.validate(),
            Err(SimError::InvalidConfig(_))
        ));
        let nan = ChaosSchedule::seeded(0).with_window(ChaosKind::LinkFlap, f64::NAN, 1.0);
        assert!(nan.validate().is_err());
        let bad_scale = ChaosSchedule::seeded(0).with_window(
            ChaosKind::Brownout {
                bandwidth_scale: 0.0,
            },
            0.0,
            1.0,
        );
        assert!(bad_scale.validate().is_err());
        let bad_rate =
            ChaosSchedule::seeded(0).with_window(ChaosKind::EccStorm { page_rate: 1.5 }, 0.0, 1.0);
        assert!(bad_rate.validate().is_err());
    }

    #[test]
    fn page_quarantine_is_deterministic_and_rate_shaped() {
        let s = ChaosSchedule::seeded(9);
        let hits = (0..4096u64)
            .filter(|&p| s.page_quarantined(p, 0.25))
            .count();
        assert!((700..=1350).contains(&hits), "got {hits}");
        for p in 0..256u64 {
            assert_eq!(s.page_quarantined(p, 0.25), s.page_quarantined(p, 0.25));
            assert!(!s.page_quarantined(p, 0.0));
            assert!(s.page_quarantined(p, 1.0));
        }
        // A different seed quarantines a different page set.
        let other = ChaosSchedule::seeded(10);
        let a: Vec<bool> = (0..512).map(|p| s.page_quarantined(p, 0.5)).collect();
        let b: Vec<bool> = (0..512).map(|p| other.page_quarantined(p, 0.5)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn cluster_schedules_target_one_gpu() {
        let sched = ChaosScenario::DeviceLoss.cluster_schedules(99, 4, 2);
        assert_eq!(sched.len(), 4);
        for (gpu, s) in sched.iter().enumerate() {
            assert!(s.validate().is_ok());
            if gpu == 2 {
                assert!(!s.is_empty(), "target GPU must get the fault windows");
                assert!(s.activity_at(0.025).device_lost);
            } else {
                assert!(s.is_empty(), "GPU {gpu} must stay calm");
            }
        }
        // Seeds are distinct per device so page quarantines decorrelate.
        assert_ne!(sched[0].seed, sched[1].seed);
        // Single-GPU cluster degenerates to the plain schedule.
        let single = ChaosScenario::DeviceLoss.cluster_schedules(99, 1, 0);
        assert_eq!(single[0], ChaosScenario::DeviceLoss.schedule(99));
    }

    #[test]
    #[should_panic]
    fn cluster_schedules_reject_out_of_range_target() {
        let _ = ChaosScenario::Calm.cluster_schedules(0, 2, 2);
    }

    #[test]
    fn scenarios_are_pure_and_valid() {
        for sc in ChaosScenario::ALL {
            let a = sc.schedule(7);
            let b = sc.schedule(7);
            assert_eq!(a, b, "{} must be pure", sc.name());
            assert!(a.validate().is_ok(), "{} must validate", sc.name());
        }
        assert!(ChaosScenario::Calm.schedule(7).is_empty());
        assert!(!ChaosScenario::Combined.schedule(7).is_empty());
    }
}
