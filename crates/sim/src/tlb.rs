//! GPU last-level TLB model.
//!
//! Modern GPUs have multiple TLB levels; like the paper (§3.3.2) we simplify
//! the discussion to the last level. When a lookup misses, the GPU issues an
//! address-translation request across the interconnect to the CPU's IOMMU —
//! a ~3 µs round trip that dominates out-of-core index lookups once the
//! working set exceeds the covered range (entries × page size; 32 GiB on the
//! paper's V100 with 1 GiB huge pages).

use crate::lru::SetAssocLru;

/// Last-level TLB with LRU replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    store: SetAssocLru,
    page_bytes: u64,
    page_shift: u32,
}

impl Tlb {
    /// Create a TLB with `entries` ways of associativity `assoc` translating
    /// `page_bytes`-sized pages. `page_bytes` must be a power of two.
    pub fn new(entries: usize, assoc: usize, page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            store: SetAssocLru::new(entries, assoc),
            page_bytes,
            page_shift: page_bytes.trailing_zeros(),
        }
    }

    /// Translate the page containing `addr`. Returns `true` on a TLB hit;
    /// `false` means an address-translation request must be sent to the CPU.
    pub fn access(&mut self, addr: u64) -> bool {
        self.store.access(addr >> self.page_shift)
    }

    /// Whether the page containing `addr` is currently resident (no
    /// side effects).
    pub fn is_resident(&self, addr: u64) -> bool {
        self.store.probe(addr >> self.page_shift)
    }

    /// The page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Number of sets in the underlying tag store.
    pub fn sets(&self) -> usize {
        self.store.sets()
    }

    /// The set the page containing `addr` maps to (pure).
    pub fn set_of(&self, addr: u64) -> usize {
        self.store.set_of(addr >> self.page_shift)
    }

    /// The address range covered when all entries are resident.
    pub fn range_bytes(&self) -> u64 {
        self.store.entries() as u64 * self.page_bytes
    }

    /// Drop all cached translations.
    pub fn flush(&mut self) {
        self.store.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut tlb = Tlb::new(4, 4, 1 << 20);
        assert!(!tlb.access(0));
        assert!(tlb.access(100)); // same 1 MiB page
        assert!(tlb.access((1 << 20) - 1));
        assert!(!tlb.access(1 << 20)); // next page
    }

    #[test]
    fn range() {
        let tlb = Tlb::new(32, 32, 1 << 20);
        assert_eq!(tlb.range_bytes(), 32 << 20);
    }

    #[test]
    fn residency_probe_has_no_side_effect() {
        let mut tlb = Tlb::new(2, 2, 4096);
        assert!(!tlb.is_resident(0));
        tlb.access(0);
        assert!(tlb.is_resident(0));
        assert!(!tlb.is_resident(4096));
    }
}
