//! A small set-associative LRU array used by both the TLB and the data-cache
//! models.
//!
//! Entries are keyed by an opaque tag (page number for the TLB, line number
//! for caches). Sets are selected by a Fibonacci hash of the tag; within a
//! set, tags live in a flat struct-of-arrays store in *recency order* (way 0
//! is MRU, the last way the LRU victim), so recency is the array order
//! itself and no separate replacement metadata exists.
//!
//! The hot path is specialized at compile time for the associativities the
//! device specs actually use (8-way L1, 16-way L2, 32-way TLB): lookup and
//! move-to-front refile are fused into a single forward pass that carries
//! the displaced tag in a register, so each way is loaded and stored exactly
//! once whether the access hits or misses. Several alternatives were
//! prototyped and measured *slower* on these tiny geometries — a separated
//! recency store (per-way rank bytes updated with SWAR arithmetic), an
//! early-exit scan followed by `copy_within`, a branchless SWAR match mask,
//! and an AVX2 movemask scan — so the fused carry pass stays; see DESIGN.md
//! §"Simulator performance" for the numbers. Associativity equal to the
//! entry count yields a fully associative structure (used for the small GPU
//! TLB).

/// Set-associative LRU tag store.
#[derive(Debug, Clone)]
pub struct SetAssocLru {
    /// Flat `sets × assoc` array; within a set, index 0 is MRU and
    /// `assoc - 1` is the eviction victim. `u64::MAX` marks an empty way
    /// (empties sit at the tail by construction and are consumed first).
    tags: Vec<u64>,
    sets: usize,
    assoc: usize,
    /// Lemire fastmod constant `⌈2^64 / sets⌉` (0 when `sets == 1`): lets
    /// set selection avoid a hardware divide while computing *exactly*
    /// `hash % sets` (the hashed dividend fits in 32 bits).
    fastmod_m: u64,
}

/// Sentinel tag for an empty way. Real tags are page/line numbers, which
/// never reach `u64::MAX` in practice (that would be an address near 2^64).
const EMPTY: u64 = u64::MAX;

/// The Fibonacci multiplicative hash feeding set selection. Hardware TLBs
/// and caches hash their index bits for the same reason: without it,
/// power-of-two page/line strides alias onto a few sets and fake conflict
/// misses. The result fits in 32 bits, which is what makes the fastmod
/// reduction in [`SetAssocLru::set_of`] exact.
#[inline]
pub(crate) fn hash_of(tag: u64) -> u64 {
    tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32
}

/// Fibonacci-hash the tag before set selection (reference definition; the
/// instance path computes the same value divide-free via fastmod, and the
/// tests assert both paths agree).
#[inline]
#[cfg_attr(not(test), allow(dead_code))]
fn set_of(tag: u64, sets: usize) -> usize {
    if sets == 1 {
        0
    } else {
        hash_of(tag) as usize % sets
    }
}

impl SetAssocLru {
    /// Create a structure with `entries` total ways and the given
    /// associativity. `entries` must be a multiple of `assoc`; the set count
    /// may be any positive number (set selection uses a modulo, which is
    /// fine for a simulator and lets scaled-down cache geometries stay
    /// faithful to their capacity).
    pub fn new(entries: usize, assoc: usize) -> Self {
        assert!(
            entries > 0 && assoc > 0,
            "entries and assoc must be non-zero"
        );
        assert!(
            entries.is_multiple_of(assoc),
            "entries must be a multiple of assoc"
        );
        let sets = entries / assoc;
        SetAssocLru {
            tags: vec![EMPTY; entries],
            sets,
            assoc,
            fastmod_m: if sets > 1 {
                u64::MAX / sets as u64 + 1
            } else {
                0
            },
        }
    }

    /// Total number of ways.
    pub fn entries(&self) -> usize {
        self.tags.len()
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// The set `tag` maps to (pure; exposed so residency heatmaps can bin
    /// traced accesses by the same hash the replacement logic uses).
    pub fn set_of(&self, tag: u64) -> usize {
        self.set_from_hash(hash_of(tag))
    }

    /// Set selection from a precomputed [`hash_of`] value, so one hash can
    /// be shared between L1 and L2 on the engine's per-line hot path (and
    /// computed for a whole drained batch up front).
    #[inline]
    fn set_from_hash(&self, hash: u64) -> usize {
        if self.sets.is_power_of_two() {
            // `hash % 2^k` is a mask (covers `sets == 1` with mask 0) —
            // identical to the fastmod result, minus the widening multiply.
            hash as usize & (self.sets - 1)
        } else {
            // Lemire's fastmod: exact `hash % sets` because `hash < 2^32`.
            let low = self.fastmod_m.wrapping_mul(hash);
            ((low as u128 * self.sets as u128) >> 64) as usize
        }
    }

    /// Look up `tag`, inserting it on a miss (evicting the set's LRU way).
    /// Returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, tag: u64) -> bool {
        self.access_hashed(tag, hash_of(tag))
    }

    /// [`access`](Self::access) with the tag hash precomputed by the caller.
    /// Dispatches to a compile-time-specialized body for the spec
    /// associativities (one perfectly predicted branch per structure).
    #[inline]
    pub fn access_hashed(&mut self, tag: u64, hash: u64) -> bool {
        debug_assert_ne!(tag, EMPTY, "tag collides with the empty sentinel");
        debug_assert_eq!(hash, hash_of(tag), "hash must be hash_of(tag)");
        match self.assoc {
            8 => self.access_const::<8>(tag, hash),
            16 => self.access_const::<16>(tag, hash),
            32 => self.access_const::<32>(tag, hash),
            _ => self.access_any(tag, hash),
        }
    }

    /// The specialized hot body: with `ASSOC` known at compile time the
    /// residency scan unrolls into a branchless match mask and the
    /// move-to-front shift on a miss is a fixed-size block move.
    #[inline]
    fn access_const<const ASSOC: usize>(&mut self, tag: u64, hash: u64) -> bool {
        debug_assert_eq!(self.assoc, ASSOC);
        let base = self.set_from_hash(hash) * ASSOC;
        let ways: &mut [u64; ASSOC] = (&mut self.tags[base..base + ASSOC]).try_into().unwrap();
        // MRU fast path: repeat hits touch one word and move nothing.
        if ways[0] == tag {
            return true;
        }
        // Fused scan + move-to-front: one forward pass with a register
        // carry. Each way is read once and overwritten by its predecessor;
        // on a hit at depth `i` everything before it has already aged one
        // position and the loop stops — exactly the MTF refile. On a miss
        // the pass runs to the end and the old tail (LRU victim or an
        // empty) falls off in the carry register. Measured against an
        // early-exit scan + `copy_within`, a SWAR bitmask scan, and an
        // AVX2 movemask scan on the three spec geometries: the carry loop
        // wins every pattern (the alternatives pay mispredicts at varying
        // hit depths or a non-inlinable `target_feature` call).
        let mut carry = tag;
        for slot in ways.iter_mut() {
            let cur = *slot;
            *slot = carry;
            if cur == tag {
                return true;
            }
            carry = cur;
        }
        false
    }

    /// Generic fallback for associativities outside the spec presets
    /// (arbitrary test geometries); same semantics as the specialized body,
    /// classic early-exit scan.
    fn access_any(&mut self, tag: u64, hash: u64) -> bool {
        let base = self.set_from_hash(hash) * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];
        if ways[0] == tag {
            return true;
        }
        for i in 1..ways.len() {
            if ways[i] == tag {
                ways.copy_within(0..i, 1);
                ways[0] = tag;
                return true;
            }
        }
        let last = ways.len() - 1;
        ways.copy_within(0..last, 1);
        ways[0] = tag;
        false
    }

    /// Check residency without updating recency or inserting.
    pub fn probe(&self, tag: u64) -> bool {
        let base = self.set_of(tag) * self.assoc;
        self.tags[base..base + self.assoc].contains(&tag)
    }

    /// Invalidate everything (e.g. between queries).
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut l = SetAssocLru::new(4, 4);
        assert!(!l.access(7));
        assert!(l.access(7));
        assert!(l.probe(7));
        assert!(!l.probe(8));
    }

    #[test]
    fn lru_eviction_order_fully_assoc() {
        let mut l = SetAssocLru::new(2, 2);
        l.access(1);
        l.access(2);
        l.access(1); // 2 is now LRU
        l.access(3); // evicts 2
        assert!(l.probe(1));
        assert!(!l.probe(2));
        assert!(l.probe(3));
    }

    #[test]
    fn set_isolation() {
        // 4 entries, 2-way: find three tags sharing a set and one that does
        // not; filling the shared set must not disturb the other.
        let mut l = SetAssocLru::new(4, 2);
        let set = |t: u64| super::set_of(t, 2);
        let s0 = set(0);
        let same: Vec<u64> = (0..100).filter(|&t| set(t) == s0).take(3).collect();
        let other = (0..100).find(|&t| set(t) != s0).unwrap();
        l.access(same[0]);
        l.access(same[1]);
        l.access(same[2]); // evicts same[0]
        assert!(!l.probe(same[0]));
        assert!(!l.access(other));
        assert!(l.probe(other));
        assert!(l.probe(same[1]) && l.probe(same[2]));
    }

    #[test]
    fn fastmod_set_selection_matches_reference_modulo() {
        // The instance path uses Lemire's fastmod; it must agree with the
        // plain `hash % sets` definition for every set count, including
        // non-powers of two (scaled L2 geometries produce e.g. 3 sets).
        for sets in [1usize, 2, 3, 5, 7, 8, 12, 31] {
            let l = SetAssocLru::new(sets * 2, 2);
            for tag in (0..10_000u64).chain([u64::MAX - 1, 1 << 40, (1 << 52) + 17]) {
                assert_eq!(
                    l.set_of(tag),
                    super::set_of(tag, sets),
                    "sets={sets} tag={tag}"
                );
            }
        }
    }

    #[test]
    fn flush_clears() {
        let mut l = SetAssocLru::new(4, 4);
        l.access(42);
        l.flush();
        assert!(!l.probe(42));
        assert!(!l.access(42));
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut l = SetAssocLru::new(32, 32);
        for round in 0..3 {
            for tag in 0..32u64 {
                let hit = l.access(tag);
                if round > 0 {
                    assert!(hit, "tag {tag} should stay resident");
                }
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut l = SetAssocLru::new(32, 32);
        // Cyclic access over 33 tags with LRU: every access misses.
        let mut misses = 0;
        for _ in 0..4 {
            for tag in 0..33u64 {
                if !l.access(tag) {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 4 * 33);
    }

    /// The compile-time-specialized bodies must answer exactly like the
    /// generic fallback for every spec associativity (same algorithm,
    /// different codegen), including identical end-state tag order.
    #[test]
    fn specialized_matches_generic() {
        for assoc in [8usize, 16, 32] {
            let mut fast = SetAssocLru::new(assoc * 4, assoc);
            let mut slow = SetAssocLru::new(assoc * 4, assoc);
            let mut x = 0x0123_4567_89AB_CDEFu64;
            for _ in 0..6_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let tag = (x >> 33) % (assoc as u64 * 8);
                let hash = hash_of(tag);
                assert_eq!(
                    fast.access_hashed(tag, hash),
                    slow.access_any(tag, hash),
                    "assoc={assoc} tag={tag}"
                );
                assert_eq!(fast.tags, slow.tags, "assoc={assoc} state diverged");
            }
        }
    }

    /// Differential check: the recency-ordered representation must answer
    /// exactly like a classic stamp-based LRU for arbitrary access
    /// sequences.
    #[test]
    fn matches_stamp_lru_reference() {
        struct StampLru {
            tags: Vec<u64>,
            stamps: Vec<u64>,
            sets: usize,
            assoc: usize,
            clock: u64,
        }
        impl StampLru {
            fn access(&mut self, tag: u64) -> bool {
                self.clock += 1;
                let base = super::set_of(tag, self.sets) * self.assoc;
                for i in base..base + self.assoc {
                    if self.tags[i] == tag {
                        self.stamps[i] = self.clock;
                        return true;
                    }
                }
                let (mut victim, mut oldest) = (base, u64::MAX);
                for i in base..base + self.assoc {
                    if self.stamps[i] < oldest {
                        oldest = self.stamps[i];
                        victim = i;
                    }
                }
                self.tags[victim] = tag;
                self.stamps[victim] = self.clock;
                false
            }
        }
        for (entries, assoc) in [(8usize, 2usize), (8, 4), (16, 16), (6, 2), (96, 32)] {
            let mut fast = SetAssocLru::new(entries, assoc);
            let mut reference = StampLru {
                tags: vec![EMPTY; entries],
                stamps: vec![0; entries],
                sets: entries / assoc,
                assoc,
                clock: 0,
            };
            // Deterministic pseudo-random tag stream with reuse.
            let mut x = 0x243F_6A88_85A3_08D3u64;
            for _ in 0..4_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let tag = (x >> 33) % 24;
                assert_eq!(
                    fast.access(tag),
                    reference.access(tag),
                    "entries={entries} assoc={assoc} tag={tag}"
                );
            }
        }
    }
}
