//! A small set-associative LRU array used by both the TLB and the data-cache
//! models.
//!
//! Entries are keyed by an opaque tag (page number for the TLB, line number
//! for caches). Sets are selected by the tag's low bits; within a set,
//! replacement is exact LRU implemented with a monotonically increasing
//! access stamp. Associativity equal to the entry count yields a fully
//! associative structure (used for the small GPU TLB).

/// Set-associative LRU tag store.
#[derive(Debug, Clone)]
pub struct SetAssocLru {
    /// Flat `sets × assoc` array of tags; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// Last-access stamp per way, parallel to `tags`.
    stamps: Vec<u64>,
    sets: usize,
    assoc: usize,
    clock: u64,
}

/// Sentinel tag for an empty way. Real tags are page/line numbers, which
/// never reach `u64::MAX` in practice (that would be an address near 2^64).
const EMPTY: u64 = u64::MAX;

/// Fibonacci-hash the tag before set selection. Hardware TLBs and caches
/// hash their index bits for the same reason: without it, power-of-two
/// page/line strides alias onto a few sets and fake conflict misses.
#[inline]
fn set_of(tag: u64, sets: usize) -> usize {
    if sets == 1 {
        0
    } else {
        (tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % sets
    }
}

impl SetAssocLru {
    /// Create a structure with `entries` total ways and the given
    /// associativity. `entries` must be a multiple of `assoc`; the set count
    /// may be any positive number (set selection uses a modulo, which is
    /// fine for a simulator and lets scaled-down cache geometries stay
    /// faithful to their capacity).
    pub fn new(entries: usize, assoc: usize) -> Self {
        assert!(
            entries > 0 && assoc > 0,
            "entries and assoc must be non-zero"
        );
        assert!(
            entries.is_multiple_of(assoc),
            "entries must be a multiple of assoc"
        );
        let sets = entries / assoc;
        SetAssocLru {
            tags: vec![EMPTY; entries],
            stamps: vec![0; entries],
            sets,
            assoc,
            clock: 0,
        }
    }

    /// Total number of ways.
    pub fn entries(&self) -> usize {
        self.tags.len()
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// The set `tag` maps to (pure; exposed so residency heatmaps can bin
    /// traced accesses by the same hash the replacement logic uses).
    pub fn set_of(&self, tag: u64) -> usize {
        set_of(tag, self.sets)
    }

    /// Look up `tag`, inserting it on a miss (evicting the set's LRU way).
    /// Returns `true` on a hit.
    pub fn access(&mut self, tag: u64) -> bool {
        debug_assert_ne!(tag, EMPTY, "tag collides with the empty sentinel");
        self.clock += 1;
        let set = set_of(tag, self.sets);
        let base = set * self.assoc;
        let ways = base..base + self.assoc;

        // Hit path: refresh the stamp.
        for i in ways.clone() {
            if self.tags[i] == tag {
                self.stamps[i] = self.clock;
                return true;
            }
        }

        // Miss path: evict the LRU way (empty ways have stamp 0, so they are
        // chosen first).
        let mut victim = base;
        let mut oldest = u64::MAX;
        for i in ways {
            if self.stamps[i] < oldest {
                oldest = self.stamps[i];
                victim = i;
            }
        }
        self.tags[victim] = tag;
        self.stamps[victim] = self.clock;
        false
    }

    /// Check residency without updating recency or inserting.
    pub fn probe(&self, tag: u64) -> bool {
        let set = set_of(tag, self.sets);
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&tag)
    }

    /// Invalidate everything (e.g. between queries).
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
        self.stamps.fill(0);
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut l = SetAssocLru::new(4, 4);
        assert!(!l.access(7));
        assert!(l.access(7));
        assert!(l.probe(7));
        assert!(!l.probe(8));
    }

    #[test]
    fn lru_eviction_order_fully_assoc() {
        let mut l = SetAssocLru::new(2, 2);
        l.access(1);
        l.access(2);
        l.access(1); // 2 is now LRU
        l.access(3); // evicts 2
        assert!(l.probe(1));
        assert!(!l.probe(2));
        assert!(l.probe(3));
    }

    #[test]
    fn set_isolation() {
        // 4 entries, 2-way: find three tags sharing a set and one that does
        // not; filling the shared set must not disturb the other.
        let mut l = SetAssocLru::new(4, 2);
        let set = |t: u64| super::set_of(t, 2);
        let s0 = set(0);
        let same: Vec<u64> = (0..100).filter(|&t| set(t) == s0).take(3).collect();
        let other = (0..100).find(|&t| set(t) != s0).unwrap();
        l.access(same[0]);
        l.access(same[1]);
        l.access(same[2]); // evicts same[0]
        assert!(!l.probe(same[0]));
        assert!(!l.access(other));
        assert!(l.probe(other));
        assert!(l.probe(same[1]) && l.probe(same[2]));
    }

    #[test]
    fn flush_clears() {
        let mut l = SetAssocLru::new(4, 4);
        l.access(42);
        l.flush();
        assert!(!l.probe(42));
        assert!(!l.access(42));
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut l = SetAssocLru::new(32, 32);
        for round in 0..3 {
            for tag in 0..32u64 {
                let hit = l.access(tag);
                if round > 0 {
                    assert!(hit, "tag {tag} should stay resident");
                }
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut l = SetAssocLru::new(32, 32);
        // Cyclic access over 33 tags with LRU: every access misses.
        let mut misses = 0;
        for _ in 0..4 {
            for tag in 0..33u64 {
                if !l.access(tag) {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 4 * 33);
    }
}
