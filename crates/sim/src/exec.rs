//! SIMT execution helpers: warps, sub-warps, and lockstep stepping.
//!
//! A *warp* is the unit of execution on GPUs and consists of 32 threads on
//! NVIDIA hardware (§2.2). Kernels in this library process the probe stream
//! one warp at a time and advance all lanes of a warp in lockstep — exactly
//! like SIMT hardware — so that the memory accesses of concurrently running
//! lanes interleave in the shared TLB and caches. That interleaving is what
//! makes TLB thrashing (§4.1: "memory accesses evict TLB entries loaded by
//! other threads in the shared TLB") an emergent property of the model
//! rather than a hard-coded penalty.

use crate::engine::Gpu;
use crate::fault::SimError;
use std::ops::Range;

/// Threads per warp (NVIDIA).
pub const WARP_SIZE: usize = 32;

/// Maximum lanes supported by the fixed-size lockstep scratch state.
pub const MAX_LANES: usize = 64;

/// Iterate `items` in warp-sized chunks, e.g. one chunk of probe tuples per
/// warp. The final chunk may be smaller than a warp.
pub fn warps_of(items: Range<usize>) -> impl Iterator<Item = Range<usize>> {
    let start = items.start;
    let end = items.end;
    (start..end).step_by(WARP_SIZE).map(move |s| {
        let e = (s + WARP_SIZE).min(end);
        s..e
    })
}

/// Drive up to [`MAX_LANES`] lane states in lockstep: every round calls
/// `step` once per unfinished lane (in lane order, interleaving their memory
/// accesses) until all lanes report completion. One warp-wide compute op is
/// charged per round; an empty warp returns immediately and charges nothing.
///
/// `step` returns `true` when its lane has finished. Divergent lanes simply
/// finish in different rounds, modeling SIMT filter divergence (§3.3.1)
/// without idle-lane bookkeeping — the cost model charges per executed op.
///
/// Unfinished lanes are kept in a compacted active list (stable, so lane
/// order — and therefore the interleaving that produces TLB thrashing — is
/// preserved), instead of rescanning all `MAX_LANES` done-flags each round.
/// After each round the lanes' deferred loads ([`crate::Buffer::read_issued`])
/// are resolved in lane order via [`Gpu::access_lines`], so a warp's round
/// becomes one batched pass over the memory system.
pub fn lockstep<L, F>(gpu: &mut Gpu, lanes: &mut [L], mut step: F)
where
    F: FnMut(&mut Gpu, &mut L) -> bool,
{
    assert!(lanes.len() <= MAX_LANES, "warp wider than MAX_LANES");
    if lanes.is_empty() {
        return;
    }
    let mut active = [0u8; MAX_LANES];
    for (i, slot) in active.iter_mut().enumerate().take(lanes.len()) {
        *slot = i as u8;
    }
    let mut remaining = lanes.len();
    while remaining > 0 {
        gpu.op(1);
        let mut kept = 0;
        for r in 0..remaining {
            let i = active[r] as usize;
            if !step(gpu, &mut lanes[i]) {
                active[kept] = i as u8;
                kept += 1;
            }
        }
        remaining = kept;
        gpu.access_lines();
    }
}

/// A launched kernel: counts the launch and runs the body. The body receives
/// the GPU handle; keep one logical GPU operation (e.g. one pass over a
/// window) per launch so the launch-overhead accounting in the cost model
/// matches CUDA behavior.
pub fn launch_kernel<R>(gpu: &mut Gpu, body: impl FnOnce(&mut Gpu) -> R) -> R {
    gpu.kernel_launch();
    body(gpu)
}

/// Launch a kernel with fault detection: counts the launch, draws an
/// injected launch failure, runs the body, and surfaces the first transfer
/// fault the body's interconnect traffic hit. The body's counter effects are
/// kept on failure — the traffic happened before the fault was detected —
/// so callers retrying must first roll back their own partial outputs.
pub fn try_launch_kernel<R>(
    gpu: &mut Gpu,
    body: impl FnOnce(&mut Gpu) -> R,
) -> Result<R, SimError> {
    gpu.clear_pending_fault();
    gpu.try_begin_launch()?;
    let result = body(gpu);
    match gpu.take_pending_fault() {
        Some(err) => Err(err),
        None => Ok(result),
    }
}

/// Run `attempt` with bounded retries on transient faults, per the engine's
/// [`RetryPolicy`](crate::fault::RetryPolicy). Each retry charges its
/// deterministic backoff to the counters. Non-transient errors (budget,
/// validation) and faults persisting past the retry limit are returned.
pub fn with_retries<R>(
    gpu: &mut Gpu,
    mut attempt: impl FnMut(&mut Gpu) -> Result<R, SimError>,
) -> Result<R, SimError> {
    let max_retries = gpu.retry_policy().max_retries;
    let mut tries: u32 = 0;
    loop {
        match attempt(gpu) {
            Ok(r) => return Ok(r),
            Err(e) if e.is_transient() && tries < max_retries => {
                gpu.record_retry(tries);
                tries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Sub-warp geometry used by Harmonia's cooperative traversal (§2.2): the
/// warp is divided into `warp_size / lanes_per_key` groups, each responsible
/// for one lookup key at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubWarp {
    /// Lanes cooperating on a single key.
    pub lanes_per_key: usize,
}

impl SubWarp {
    /// Create a sub-warp of `lanes_per_key` lanes; must divide the warp size.
    pub fn new(lanes_per_key: usize) -> Self {
        assert!(lanes_per_key > 0 && WARP_SIZE.is_multiple_of(lanes_per_key));
        SubWarp { lanes_per_key }
    }

    /// Number of sub-warps (concurrent keys) per warp.
    pub fn groups_per_warp(&self) -> usize {
        WARP_SIZE / self.lanes_per_key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use crate::spec::GpuSpec;

    #[test]
    fn warps_cover_range_exactly() {
        let chunks: Vec<_> = warps_of(5..100).collect();
        assert_eq!(chunks.first().unwrap().clone(), 5..37);
        assert_eq!(chunks.last().unwrap().clone(), 69..100);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 95);
        assert!(chunks.iter().all(|c| c.len() <= WARP_SIZE));
    }

    #[test]
    fn empty_range_yields_no_warps() {
        assert_eq!(warps_of(3..3).count(), 0);
    }

    #[test]
    fn lockstep_interleaves_and_terminates() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        // Lanes count down from different starting values.
        let mut lanes: Vec<u32> = (0..8).collect();
        let mut trace = Vec::new();
        lockstep(&mut gpu, &mut lanes, |_, lane| {
            trace.push(*lane);
            if *lane == 0 {
                true
            } else {
                *lane -= 1;
                false
            }
        });
        // Lane i takes i+1 rounds; total step calls = sum(i+1 for i in 0..8).
        assert_eq!(trace.len(), (1..=8).sum::<usize>());
        // First round visits all lanes in order (interleaving).
        assert_eq!(&trace[..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(gpu.counters().compute_ops >= 8);
    }

    #[test]
    fn empty_warp_charges_nothing() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let before = gpu.snapshot();
        let mut lanes: Vec<u32> = Vec::new();
        lockstep(&mut gpu, &mut lanes, |_, _| true);
        let d = gpu.snapshot() - before;
        assert_eq!(d.compute_ops, 0, "empty warps must not charge ops");
    }

    #[test]
    fn issued_reads_resolve_in_lane_order_each_round() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let line = gpu.spec().cacheline_bytes as usize / 8;
        let buf = gpu.alloc_host_from_vec(vec![0u64; 64 * line]);
        gpu.start_trace(1 << 12);
        // Each lane reads its own line once; with deferred issue the drain
        // must replay them in lane order.
        let mut lanes: Vec<usize> = (0..8).collect();
        lockstep(&mut gpu, &mut lanes, |gpu, lane| {
            let _ = buf.read_issued(gpu, *lane * line);
            true
        });
        let trace = gpu.stop_trace();
        let addrs: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                crate::trace::TraceEvent::ReadLine { line_addr, .. } => Some(*line_addr),
                _ => None,
            })
            .collect();
        let expected: Vec<u64> = (0..8)
            .map(|l| buf.addr_of(l * line) & !(gpu.spec().cacheline_bytes - 1))
            .collect();
        assert_eq!(addrs, expected);
    }

    #[test]
    fn launch_counts() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let r = launch_kernel(&mut gpu, |_| 7);
        assert_eq!(r, 7);
        assert_eq!(gpu.counters().kernel_launches, 1);
    }

    #[test]
    fn subwarp_geometry() {
        let sw = SubWarp::new(8);
        assert_eq!(sw.groups_per_warp(), 4);
    }

    #[test]
    #[should_panic]
    fn subwarp_must_divide_warp() {
        let _ = SubWarp::new(5);
    }
}
