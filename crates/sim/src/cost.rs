//! Analytic cost model: converts counter deltas into estimated wall time.
//!
//! The trace-driven engine measures *what* crossed each boundary; this module
//! prices it. All linear counters are first scaled back up to paper scale
//! (see [`Scale`](crate::scale::Scale)), so reported times and Q/s are
//! paper-scale estimates.
//!
//! Components:
//!
//! - **streamed transfer** — sequential interconnect reads/writes at the
//!   effective link bandwidth;
//! - **random transfer** — cacheline-granularity data-dependent reads,
//!   derated by the link's fine-grained-read efficiency (§2.1);
//! - **translation** — address-translation requests at ~3 µs each (§3.3.2),
//!   amortized over the platform's in-flight translation limit (misses from
//!   many stalled warps overlap, so translations are throughput-limited);
//! - **GPU memory** — device-memory traffic at HBM bandwidth;
//! - **compute** — warp instructions at the device's issue rate;
//! - **launch** — fixed per-kernel overhead. Kernel-launch counts are *not*
//!   scaled: the experiment drivers launch the same number of kernels the
//!   paper's runs would (window counts are size-ratio-preserved).
//!
//! With *concurrent kernel execution* (§5.1) the interconnect-bound side and
//! the GPU-bound side overlap on two CUDA streams, so the total is their
//! maximum; without it the phases serialize.

use crate::counters::Counters;
use crate::spec::GpuSpec;
use serde::Serialize;

/// Per-component time estimate, in seconds (paper scale).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct TimeBreakdown {
    /// Sequential interconnect transfers (scans, probe streams, spills).
    pub streamed_s: f64,
    /// Data-dependent cacheline fetches over the interconnect.
    pub random_s: f64,
    /// Address-translation service time (GPU TLB misses).
    pub translation_s: f64,
    /// GPU device-memory traffic.
    pub gpu_mem_s: f64,
    /// Compute issue time.
    pub compute_s: f64,
    /// Kernel launch overhead.
    pub launch_s: f64,
    /// Retry backoff stall time after transient faults.
    pub fault_s: f64,
    /// Total estimated time.
    pub total_s: f64,
}

impl TimeBreakdown {
    /// Queries per second implied by the total. A zero (or negative) total
    /// clamps to `0.0` rather than producing `inf`: these values flow into
    /// serialized JSON artifacts and the `experiments regress` tolerance
    /// bands, where a non-finite number would silently break comparisons
    /// (`inf` serializes as `null` and defeats every relative-error check).
    pub fn queries_per_second(&self) -> f64 {
        if self.total_s > 0.0 {
            1.0 / self.total_s
        } else {
            0.0
        }
    }

    /// The interconnect-bound component (what a transfer stream occupies).
    pub fn interconnect_side_s(&self) -> f64 {
        self.streamed_s + self.random_s + self.translation_s
    }

    /// The GPU-bound component (what a compute stream occupies).
    pub fn gpu_side_s(&self) -> f64 {
        self.gpu_mem_s + self.compute_s
    }
}

/// A synthetic per-batch access profile for a *candidate* execution plan —
/// the cost-model evaluation entry point used by the online tuner to price
/// plans it has not run yet.
///
/// The profile is an abstract counter recipe (absolute totals for one batch
/// of `keys` lookups, in simulated units like [`Counters`]); the model turns
/// it into a counter delta and prices it through the exact same
/// [`CostModel::estimate`] path as measured runs, so analytic priors and
/// realized measurements live on one scale.
#[derive(Debug, Clone, Copy, Default)]
pub struct CandidateProfile {
    /// Probe keys the batch carries.
    pub keys: u64,
    /// Bytes streamed sequentially over the interconnect (table scans,
    /// probe-key streams).
    pub streamed_bytes: u64,
    /// Cachelines fetched by data-dependent (random) interconnect reads.
    pub random_lines: u64,
    /// Thrashing TLB re-misses (scaled like lookups).
    pub thrash_tlb_misses: u64,
    /// Page-sweep TLB misses (priced unscaled, like measured sweeps).
    pub sweep_tlb_misses: u64,
    /// Device-memory bytes moved (reads + writes combined).
    pub gpu_bytes: u64,
    /// Abstract compute operations.
    pub compute_ops: u64,
    /// Kernel launches (scale-invariant, like measured launches).
    pub kernel_launches: u64,
}

impl CandidateProfile {
    /// Lower the profile to the counter delta it describes.
    pub fn to_counters(&self, cacheline_bytes: u64) -> Counters {
        Counters {
            ic_bytes_streamed: self.streamed_bytes,
            ic_lines_random: self.random_lines,
            ic_bytes_random: self.random_lines * cacheline_bytes,
            tlb_misses: self.thrash_tlb_misses + self.sweep_tlb_misses,
            tlb_sweep_misses: self.sweep_tlb_misses,
            gpu_bytes_read: self.gpu_bytes,
            compute_ops: self.compute_ops,
            kernel_launches: self.kernel_launches,
            lookups: self.keys,
            ..Counters::default()
        }
    }
}

/// Prices counter deltas for a particular device.
#[derive(Debug, Clone)]
pub struct CostModel {
    spec: GpuSpec,
}

impl CostModel {
    /// Build a cost model for `spec`.
    pub fn new(spec: &GpuSpec) -> Self {
        CostModel { spec: spec.clone() }
    }

    /// Estimate the wall time of the events in `delta`. `overlap` enables
    /// the concurrent-kernel two-stream model of §5.1.
    pub fn estimate(&self, delta: &Counters, overlap: bool) -> TimeBreakdown {
        let s = &self.spec;
        let ic = &s.interconnect;
        let scale = s.scale.factor as f64;

        let eff_bw = ic.effective_bandwidth_gbps * 1e9;
        let rand_bw = eff_bw * ic.fine_grained_efficiency;

        let streamed_s = (delta.ic_bytes_streamed + delta.ic_bytes_written) as f64 * scale / eff_bw;
        // ECC-quarantined device lines are re-fetched over the interconnect
        // at cacheline granularity, so they price like random remote reads.
        let ecc_bytes = delta.ecc_refetch_lines * s.cacheline_bytes;
        let random_s = (delta.ic_bytes_random + ecc_bytes) as f64 * scale / rand_bw;
        // Page-sweep misses count pages × phases (already paper-scale:
        // pages are not shrunk per tuple); thrashing re-misses count
        // lookups (scaled). Saturate: a saturating `Counters` delta can
        // leave `tlb_sweep_misses > tlb_misses`, and an unchecked u64
        // subtraction would panic in debug / wrap to an absurd translation
        // cost in release.
        let thrash_misses = delta.tlb_misses.saturating_sub(delta.tlb_sweep_misses) as f64;
        let sweep_misses = delta.tlb_sweep_misses as f64;
        let per_miss_s = ic.translation_latency_ns * 1e-9 / ic.max_inflight_translations as f64;
        let translation_s = (thrash_misses * scale + sweep_misses) * per_miss_s;
        let gpu_mem_s = (delta.gpu_bytes_read + delta.gpu_bytes_written) as f64 * scale
            / (s.mem_bandwidth_gbps * 1e9);
        // Issue rate: each SM retires roughly two warp-wide instructions per
        // cycle on the modeled architectures.
        let issue_rate = s.sm_count as f64 * s.clock_ghz * 1e9 * 2.0;
        let compute_s = delta.compute_ops as f64 * scale / issue_rate;
        // Launch counts are scale-invariant (see module docs).
        let launch_s = delta.kernel_launches as f64 * s.kernel_launch_ns * 1e-9;
        // Retry backoff and chaos brownout stalls are wall-clock stall
        // time, already in real nanoseconds (like launches: their counts
        // are scale-invariant).
        let fault_s = (delta.retry_backoff_ns as f64 + delta.chaos_stall_ns as f64) * 1e-9;

        let mut bd = TimeBreakdown {
            streamed_s,
            random_s,
            translation_s,
            gpu_mem_s,
            compute_s,
            launch_s,
            fault_s,
            total_s: 0.0,
        };
        let ic_side = bd.interconnect_side_s();
        let gpu_side = bd.gpu_side_s();
        bd.total_s = launch_s
            + fault_s
            + if overlap {
                ic_side.max(gpu_side)
            } else {
                ic_side + gpu_side
            };
        bd
    }

    /// Price a candidate plan's synthetic access profile — identical
    /// pricing path to [`estimate`](Self::estimate), so a prior computed
    /// here is directly comparable to a realized per-batch measurement.
    pub fn estimate_candidate(&self, profile: &CandidateProfile, overlap: bool) -> TimeBreakdown {
        let delta = profile.to_counters(self.spec.cacheline_bytes);
        self.estimate(&delta, overlap)
    }

    /// Paper-scale bytes moved over the interconnect in `delta` — the
    /// transfer volume the paper's Fig. 1 and §6 discuss.
    pub fn transfer_volume_bytes(&self, delta: &Counters) -> u64 {
        self.spec.scale.paper_bytes(delta.ic_bytes_total())
    }

    /// The device spec this model prices for.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn model() -> CostModel {
        CostModel::new(&GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    #[test]
    fn streamed_scan_priced_at_effective_bandwidth() {
        let m = model();
        // 1 simulated MiB = 1 paper GiB streamed.
        let d = Counters {
            ic_bytes_streamed: 1 << 20,
            ..Counters::default()
        };
        let t = m.estimate(&d, false);
        let expect = (1u64 << 30) as f64 / (63.0 * 1e9);
        assert!((t.streamed_s - expect).abs() / expect < 1e-9);
        assert!((t.total_s - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn random_reads_are_derated() {
        let m = model();
        let d = Counters {
            ic_bytes_random: 1 << 20,
            ..Counters::default()
        };
        let streamed = Counters {
            ic_bytes_streamed: 1 << 20,
            ..Counters::default()
        };
        let tr = m.estimate(&d, false).total_s;
        let ts = m.estimate(&streamed, false).total_s;
        assert!(tr > ts, "random bytes must cost more than streamed bytes");
    }

    #[test]
    fn translations_dominate_when_thrashing() {
        let m = model();
        // One translation per lookup for 2^16 simulated lookups ≈ paper's
        // 2^26 lookups: 2^26 × 3 µs / 24 in flight ≈ 8.4 s.
        let d = Counters {
            tlb_misses: 1 << 16,
            ..Counters::default()
        };
        let t = m.estimate(&d, false);
        assert!(t.translation_s > 6.0 && t.translation_s < 12.0);
    }

    #[test]
    fn overlap_takes_max_of_sides() {
        let m = model();
        let d = Counters {
            ic_bytes_streamed: 1 << 20,
            gpu_bytes_read: 1 << 20,
            ..Counters::default()
        };
        let serial = m.estimate(&d, false);
        let overlapped = m.estimate(&d, true);
        assert!(overlapped.total_s < serial.total_s);
        let expected = serial.streamed_s.max(serial.gpu_mem_s);
        assert!((overlapped.total_s - expected).abs() < 1e-12);
    }

    #[test]
    fn inverted_tlb_delta_saturates_instead_of_panicking() {
        // Regression: a saturating `Counters` delta can leave
        // `tlb_sweep_misses > tlb_misses`; the unchecked subtraction used
        // to panic in debug builds (and wrap to ~2^64 thrash misses in
        // release, pricing a single batch at millions of seconds).
        let m = model();
        let d = Counters {
            tlb_misses: 5,
            tlb_sweep_misses: 10,
            ..Counters::default()
        };
        let t = m.estimate(&d, false);
        assert!(t.translation_s.is_finite());
        // Thrash component saturates to zero; only the 10 sweep misses are
        // priced (unscaled).
        let per_miss = 3000e-9 / 24.0;
        assert!((t.translation_s - 10.0 * per_miss).abs() < 1e-12);
    }

    #[test]
    fn zero_time_reports_zero_qps_not_inf() {
        // Regression: `1.0 / 0.0 = inf` used to flow into JSON artifacts
        // (where it serializes as `null`) and the regress tolerance bands.
        let t = TimeBreakdown::default();
        assert_eq!(t.total_s, 0.0);
        let qps = t.queries_per_second();
        assert_eq!(qps, 0.0);
        assert!(qps.is_finite());
        // Non-zero time still reports the reciprocal.
        let t = TimeBreakdown {
            total_s: 0.5,
            ..TimeBreakdown::default()
        };
        assert_eq!(t.queries_per_second(), 2.0);
    }

    #[test]
    fn candidate_profile_prices_like_equivalent_counters() {
        let m = model();
        let p = CandidateProfile {
            keys: 1 << 10,
            streamed_bytes: 1 << 20,
            random_lines: 512,
            thrash_tlb_misses: 64,
            sweep_tlb_misses: 32,
            gpu_bytes: 1 << 16,
            compute_ops: 1 << 12,
            kernel_launches: 8,
        };
        let via_profile = m.estimate_candidate(&p, true);
        let via_counters = m.estimate(&p.to_counters(m.spec().cacheline_bytes), true);
        assert_eq!(via_profile.total_s, via_counters.total_s);
        assert!(via_profile.total_s > 0.0);
        // Streaming more bytes must cost more — the profile really flows
        // through the pricing path.
        let mut bigger = p;
        bigger.streamed_bytes *= 4;
        assert!(m.estimate_candidate(&bigger, true).total_s > via_profile.total_s);
    }

    #[test]
    fn transfer_volume_is_paper_scaled() {
        let m = model();
        let d = Counters {
            ic_bytes_streamed: 100,
            ic_bytes_random: 28,
            ..Counters::default()
        };
        assert_eq!(m.transfer_volume_bytes(&d), 128 * 1024);
    }
}
