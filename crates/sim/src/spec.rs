//! Device specifications: GPUs and CPU↔GPU interconnects.
//!
//! The presets mirror the hardware of the paper's evaluation (Table 1 and
//! §3.2): an NVIDIA V100-SXM2 attached over NVLink 2.0 to a POWER9 host, an
//! NVIDIA A100 attached over PCI-e 4.0, and the forward-looking GH200 with
//! NVLink C2C. Bandwidth figures are receive bandwidths as listed in Table 1;
//! effective (achievable) rates and fine-grained-read efficiencies follow the
//! measurements of Lutz et al. cited in §2.1 of the paper.

use crate::scale::Scale;
use serde::Serialize;

/// A CPU↔GPU interconnect model.
#[derive(Debug, Clone, Serialize)]
pub struct InterconnectSpec {
    /// Human-readable name, e.g. `"NVLink 2.0"`.
    pub name: &'static str,
    /// Peak receive bandwidth in GB/s (Table 1 of the paper).
    pub peak_bandwidth_gbps: f64,
    /// Achievable streaming bandwidth in GB/s for large sequential reads.
    pub effective_bandwidth_gbps: f64,
    /// Fraction of the effective bandwidth reached by cacheline-granularity
    /// data-dependent reads (index traversals). Fast interconnects handle
    /// fine-grained access well; PCI-e does not (§2.1, §5.2.3).
    pub fine_grained_efficiency: f64,
    /// One-way latency of a single small transfer, in nanoseconds.
    pub latency_ns: f64,
    /// Cost of one GPU→CPU address-translation round trip (a GPU TLB miss
    /// serviced by the host IOMMU), in nanoseconds. The paper reports ~3 µs
    /// on the POWER9/NVLink platform (§3.3.2).
    pub translation_latency_ns: f64,
    /// How many address translations the platform keeps in flight
    /// concurrently. Translations are throughput-limited, not serialized:
    /// many stalled warps each wait on their own translation.
    pub max_inflight_translations: u32,
    /// Whether the GPU can dereference CPU memory at cacheline granularity
    /// (true for NVLink/Infinity Fabric/C2C; PCI-e traditionally needs page
    /// migration, but the paper's A100 setup also performs direct access).
    pub cacheline_granularity: bool,
}

impl InterconnectSpec {
    /// PCI-e 4.0 x16: 32 GB/s peak receive (Table 1).
    pub fn pcie4() -> Self {
        InterconnectSpec {
            name: "PCI-e 4.0",
            peak_bandwidth_gbps: 32.0,
            effective_bandwidth_gbps: 25.0,
            fine_grained_efficiency: 0.50,
            latency_ns: 1_400.0,
            translation_latency_ns: 3_000.0,
            max_inflight_translations: 16,
            cacheline_granularity: true,
        }
    }

    /// PCI-e 5.0 x16: 64 GB/s peak receive (Table 1).
    pub fn pcie5() -> Self {
        InterconnectSpec {
            name: "PCI-e 5.0",
            peak_bandwidth_gbps: 64.0,
            effective_bandwidth_gbps: 52.0,
            fine_grained_efficiency: 0.52,
            latency_ns: 1_200.0,
            translation_latency_ns: 3_000.0,
            max_inflight_translations: 16,
            cacheline_granularity: true,
        }
    }

    /// AMD Infinity Fabric 3 (MI250X): 72 GB/s receive (Table 1).
    pub fn infinity_fabric3() -> Self {
        InterconnectSpec {
            name: "Infinity Fabric 3",
            peak_bandwidth_gbps: 72.0,
            effective_bandwidth_gbps: 60.0,
            fine_grained_efficiency: 0.75,
            latency_ns: 900.0,
            translation_latency_ns: 3_000.0,
            max_inflight_translations: 24,
            cacheline_granularity: true,
        }
    }

    /// NVLink 2.0 (V100 on POWER9): 75 GB/s receive (Table 1).
    pub fn nvlink2() -> Self {
        InterconnectSpec {
            name: "NVLink 2.0",
            peak_bandwidth_gbps: 75.0,
            effective_bandwidth_gbps: 63.0,
            fine_grained_efficiency: 0.85,
            latency_ns: 700.0,
            translation_latency_ns: 3_000.0,
            max_inflight_translations: 24,
            cacheline_granularity: true,
        }
    }

    /// NVLink C2C (GH200 Grace Hopper): 450 GB/s receive (Table 1).
    pub fn nvlink_c2c() -> Self {
        InterconnectSpec {
            name: "NVLink C2C",
            peak_bandwidth_gbps: 450.0,
            effective_bandwidth_gbps: 410.0,
            fine_grained_efficiency: 0.88,
            latency_ns: 400.0,
            translation_latency_ns: 1_500.0,
            max_inflight_translations: 64,
            cacheline_granularity: true,
        }
    }

    /// NVLink 4 GPU↔GPU peer link (Hopper-class NVSwitch fabric): direct
    /// device-to-device transfers at ~450 GB/s per direction with sub-µs
    /// latency. This is an *inter-GPU edge* model for clusters, not a
    /// CPU↔GPU attachment; peer transfers skip the host entirely.
    pub fn nvlink4_peer() -> Self {
        InterconnectSpec {
            name: "NVLink 4 peer",
            peak_bandwidth_gbps: 450.0,
            effective_bandwidth_gbps: 400.0,
            fine_grained_efficiency: 0.85,
            latency_ns: 500.0,
            translation_latency_ns: 1_500.0,
            max_inflight_translations: 64,
            cacheline_granularity: true,
        }
    }

    /// Host-staged GPU↔GPU bounce over PCI-e 4.0: without peer links, an
    /// inter-GPU transfer crosses the link twice (device → host buffer →
    /// device), halving the usable bandwidth and more than doubling the
    /// latency (two DMA setups plus a host-side copy). This is the
    /// pessimistic inter-GPU edge the cluster experiment compares against
    /// NVLink peer wiring.
    pub fn pcie4_host_staged() -> Self {
        InterconnectSpec {
            name: "PCI-e 4.0 host-staged",
            peak_bandwidth_gbps: 16.0,
            effective_bandwidth_gbps: 11.0,
            fine_grained_efficiency: 0.35,
            latency_ns: 3_400.0,
            translation_latency_ns: 3_000.0,
            max_inflight_translations: 16,
            cacheline_granularity: false,
        }
    }

    /// All Table 1 rows, in the paper's order.
    pub fn table1() -> Vec<(&'static str, InterconnectSpec)> {
        vec![
            ("various", Self::pcie4()),
            ("various", Self::pcie5()),
            ("AMD MI250X", Self::infinity_fabric3()),
            ("NVIDIA V100", Self::nvlink2()),
            ("NVIDIA GH200", Self::nvlink_c2c()),
        ]
    }

    /// Validate the numeric invariants pricing depends on. Rejects the
    /// degenerate configurations (zero or NaN bandwidths, efficiencies
    /// outside `(0, 1]`, negative latencies, zero translation slots) that
    /// would otherwise silently produce infinite or NaN transfer times.
    pub fn validate(&self) -> Result<(), crate::fault::SimError> {
        use crate::fault::SimError;
        let finite_pos = |v: f64| v.is_finite() && v > 0.0;
        if !finite_pos(self.peak_bandwidth_gbps) || !finite_pos(self.effective_bandwidth_gbps) {
            return Err(SimError::InvalidConfig(format!(
                "{}: bandwidths must be finite and positive \
                 (peak {} GB/s, effective {} GB/s)",
                self.name, self.peak_bandwidth_gbps, self.effective_bandwidth_gbps
            )));
        }
        if self.effective_bandwidth_gbps > self.peak_bandwidth_gbps {
            return Err(SimError::InvalidConfig(format!(
                "{}: effective bandwidth {} GB/s exceeds peak {} GB/s",
                self.name, self.effective_bandwidth_gbps, self.peak_bandwidth_gbps
            )));
        }
        if !(self.fine_grained_efficiency.is_finite()
            && self.fine_grained_efficiency > 0.0
            && self.fine_grained_efficiency <= 1.0)
        {
            return Err(SimError::InvalidConfig(format!(
                "{}: fine_grained_efficiency must be in (0, 1], got {}",
                self.name, self.fine_grained_efficiency
            )));
        }
        let lat_ok = |v: f64| v.is_finite() && v >= 0.0;
        if !lat_ok(self.latency_ns) || !lat_ok(self.translation_latency_ns) {
            return Err(SimError::InvalidConfig(format!(
                "{}: latencies must be finite and non-negative \
                 (latency {} ns, translation {} ns)",
                self.name, self.latency_ns, self.translation_latency_ns
            )));
        }
        if self.max_inflight_translations == 0 {
            return Err(SimError::InvalidConfig(format!(
                "{}: max_inflight_translations must be at least 1",
                self.name
            )));
        }
        Ok(())
    }

    /// Price one transfer of `bytes` across this link: one-way latency plus
    /// streaming time at the effective bandwidth. Used for inter-GPU edges
    /// (shard fan-out and result merges) where transfers are sequential
    /// streams, not cacheline-granularity dependent reads.
    #[inline]
    pub fn transfer_s(&self, bytes: u64) -> f64 {
        self.latency_ns * 1e-9 + bytes as f64 / (self.effective_bandwidth_gbps * 1e9)
    }
}

/// A GPU device model together with its interconnect and address-translation
/// configuration.
#[derive(Debug, Clone, Serialize)]
pub struct GpuSpec {
    /// Device name, e.g. `"NVIDIA Tesla V100-SXM2"`.
    pub name: &'static str,
    /// Threads per warp (32 on NVIDIA GPUs, §2.2).
    pub warp_size: u32,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// On-board (device) memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// On-board (device) memory capacity in *simulated* bytes, scaled with
    /// the data like `l2_bytes`. This is the budget the engine enforces on
    /// device allocations: the paper's workloads exceed GPU memory by
    /// design (out-of-core processing), so operators that stage state in
    /// HBM must fit it or degrade.
    pub hbm_bytes: u64,
    /// Cacheline / memory transaction size in bytes (128 B on NVIDIA).
    /// Kept unscaled: it is the interconnect transfer granularity.
    pub cacheline_bytes: u64,
    /// L1 data cache capacity in bytes, modeled as the per-SM share
    /// serving the simulated warp stream. *Not* scaled: a warp's transient
    /// working set (the cachelines its 32 lanes share during one batch of
    /// lookups) is scale-invariant, and on real hardware it fits comfortably
    /// in the SM's 128-256 KiB L1.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L2 data cache capacity in *simulated* bytes. The shared L2 is scaled
    /// together with the data: how many upper index levels stay cached is a
    /// ratio of cache capacity to data size, and that ratio must be
    /// preserved for the transfer-volume shapes to hold.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Number of last-level GPU TLB entries.
    pub tlb_entries: usize,
    /// TLB associativity (entries per set).
    pub tlb_assoc: usize,
    /// Page size in bytes (simulated scale). With `Scale::PAPER` the paper's
    /// 1 GiB huge pages become 1 MiB simulated pages, preserving the 32 GiB
    /// TLB range as a 32 MiB simulated range.
    pub page_bytes: u64,
    /// Fixed cost of launching one kernel, in nanoseconds.
    pub kernel_launch_ns: f64,
    /// Default capacity bound (in events) for access-trace recording
    /// started via [`Gpu::start_bounded_trace`](crate::Gpu); keeps long
    /// runs from growing an unbounded event vector. Explicit
    /// `start_trace*` calls may still pick their own bound.
    pub trace_capacity: usize,
    /// The interconnect attaching this GPU to CPU memory.
    pub interconnect: InterconnectSpec,
    /// The scale at which this spec was instantiated.
    pub scale: Scale,
}

impl GpuSpec {
    /// The paper's primary platform: Tesla V100-SXM2 over NVLink 2.0 on an
    /// IBM POWER9 host with 1 GiB huge pages (§3.2). The V100's last-level
    /// TLB covers a 32 GiB range (§3.3.2), i.e. 32 huge-page entries.
    pub fn v100_nvlink2(scale: Scale) -> Self {
        GpuSpec {
            name: "NVIDIA Tesla V100-SXM2",
            warp_size: 32,
            sm_count: 80,
            clock_ghz: 1.38,
            mem_bandwidth_gbps: 900.0,
            hbm_bytes: scale.sim_bytes(16 << 30),
            cacheline_bytes: 128,
            l1_bytes: 16 << 10,
            l1_assoc: 8,
            l2_bytes: scale.sim_bytes(6 << 20).max(128),
            l2_assoc: 16,
            tlb_entries: 32,
            tlb_assoc: 32,
            page_bytes: scale.sim_bytes(1 << 30),
            kernel_launch_ns: 5_000.0,
            trace_capacity: 1 << 20,
            interconnect: InterconnectSpec::nvlink2(),
            scale,
        }
    }

    /// The paper's comparison platform (§5.2.3): an NVIDIA A100 attached via
    /// PCI-e 4.0. The A100 is the faster GPU (the paper measures the hash
    /// join to be 1.7× faster on it), while its interconnect handles
    /// fine-grained access worse than NVLink.
    pub fn a100_pcie4(scale: Scale) -> Self {
        GpuSpec {
            name: "NVIDIA A100-PCIe",
            warp_size: 32,
            sm_count: 108,
            clock_ghz: 1.41,
            mem_bandwidth_gbps: 1555.0,
            hbm_bytes: scale.sim_bytes(40 << 30),
            cacheline_bytes: 128,
            l1_bytes: 24 << 10,
            l1_assoc: 8,
            l2_bytes: scale.sim_bytes(40 << 20).max(128),
            l2_assoc: 16,
            tlb_entries: 32,
            tlb_assoc: 32,
            page_bytes: scale.sim_bytes(1 << 30),
            kernel_launch_ns: 4_000.0,
            trace_capacity: 1 << 20,
            interconnect: InterconnectSpec::pcie4(),
            scale,
        }
    }

    /// Forward-looking platform from Table 1: GH200 Grace Hopper with NVLink
    /// C2C. Not part of the paper's measured evaluation; exposed for what-if
    /// studies (see the `hardware_whatif` example).
    pub fn gh200(scale: Scale) -> Self {
        GpuSpec {
            name: "NVIDIA GH200",
            warp_size: 32,
            sm_count: 132,
            clock_ghz: 1.83,
            mem_bandwidth_gbps: 4000.0,
            hbm_bytes: scale.sim_bytes(96 << 30),
            cacheline_bytes: 128,
            l1_bytes: 32 << 10,
            l1_assoc: 8,
            l2_bytes: scale.sim_bytes(50 << 20).max(128),
            l2_assoc: 16,
            tlb_entries: 32,
            tlb_assoc: 32,
            page_bytes: scale.sim_bytes(1 << 30),
            kernel_launch_ns: 3_000.0,
            trace_capacity: 1 << 20,
            interconnect: InterconnectSpec::nvlink_c2c(),
            scale,
        }
    }

    /// Switch this spec to a different page size (paper scale), e.g. the
    /// 2 MiB huge pages the paper compares against 1 GiB pages in §3.2.
    /// The TLB's covered *range* is held constant (Lutz et al. report the
    /// V100's last-level TLB as a 32 GiB range, not an entry count), so
    /// smaller pages get proportionally more entries. Associativity is
    /// clamped so simulation stays fast for large entry counts.
    pub fn with_paper_page_size(mut self, paper_page_bytes: u64) -> Self {
        let sim = self.scale.sim_bytes(paper_page_bytes);
        assert!(
            sim >= self.cacheline_bytes,
            "scaled page size {sim} B must be at least one cacheline; \
             lower the scale factor or use larger pages"
        );
        let coverage = self.tlb_range_bytes();
        self.page_bytes = sim;
        self.tlb_entries = (coverage / sim).max(1) as usize;
        self.tlb_assoc = self.tlb_assoc.min(self.tlb_entries).min(32);
        self
    }

    /// Replace the interconnect (for what-if studies).
    pub fn with_interconnect(mut self, ic: InterconnectSpec) -> Self {
        self.interconnect = ic;
        self
    }

    /// Override the device-memory capacity budget (simulated bytes) — used
    /// by capacity what-if studies and the fault-tolerance stress tests.
    pub fn with_hbm_bytes(mut self, hbm_bytes: u64) -> Self {
        self.hbm_bytes = hbm_bytes;
        self
    }

    /// Override the default access-trace capacity bound (in events).
    pub fn with_trace_capacity(mut self, trace_capacity: usize) -> Self {
        self.trace_capacity = trace_capacity;
        self
    }

    /// The address range covered by the TLB, in simulated bytes
    /// (entries × page size). 32 MiB for the scaled V100 preset,
    /// representing the paper's 32 GiB.
    pub fn tlb_range_bytes(&self) -> u64 {
        self.tlb_entries as u64 * self.page_bytes
    }

    /// Validate structural invariants the engine depends on. [`Gpu::try_new`]
    /// (crate::Gpu::try_new) calls this; it is public so configuration code
    /// can check specs before constructing a device.
    pub fn validate(&self) -> Result<(), crate::fault::SimError> {
        use crate::fault::SimError;
        if !self.cacheline_bytes.is_power_of_two() {
            return Err(SimError::InvalidSpec(format!(
                "cacheline size {} B is not a power of two",
                self.cacheline_bytes
            )));
        }
        if !self.page_bytes.is_power_of_two() {
            return Err(SimError::InvalidSpec(format!(
                "page size {} B is not a power of two",
                self.page_bytes
            )));
        }
        if self.page_bytes < self.cacheline_bytes {
            return Err(SimError::InvalidSpec(format!(
                "page size {} B is smaller than one cacheline ({} B)",
                self.page_bytes, self.cacheline_bytes
            )));
        }
        if self.hbm_bytes < self.page_bytes {
            return Err(SimError::InvalidSpec(format!(
                "device memory budget {} B holds less than one page ({} B)",
                self.hbm_bytes, self.page_bytes
            )));
        }
        self.interconnect.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_tlb_range_scales() {
        let spec = GpuSpec::v100_nvlink2(Scale::PAPER);
        assert_eq!(spec.tlb_range_bytes(), 32 << 20); // 32 MiB simulated
        assert_eq!(spec.scale.paper_bytes(spec.tlb_range_bytes()), 32 << 30);
    }

    #[test]
    fn table1_order_and_bandwidth() {
        let rows = InterconnectSpec::table1();
        assert_eq!(rows.len(), 5);
        let bws: Vec<f64> = rows.iter().map(|(_, ic)| ic.peak_bandwidth_gbps).collect();
        assert_eq!(bws, vec![32.0, 64.0, 72.0, 75.0, 450.0]);
    }

    #[test]
    fn page_size_override() {
        let spec = GpuSpec::v100_nvlink2(Scale::PAPER).with_paper_page_size(2 << 20);
        assert_eq!(spec.page_bytes, 2 << 10); // 2 MiB -> 2 KiB simulated
                                              // Coverage is preserved: more, smaller pages.
        assert_eq!(spec.tlb_range_bytes(), 32 << 20);
        assert_eq!(spec.tlb_entries, 16384);
    }

    #[test]
    fn interconnect_presets_validate() {
        for (_, ic) in InterconnectSpec::table1() {
            assert!(ic.validate().is_ok(), "{} must validate", ic.name);
        }
        assert!(InterconnectSpec::nvlink4_peer().validate().is_ok());
        assert!(InterconnectSpec::pcie4_host_staged().validate().is_ok());
        // The peer link is strictly the faster inter-GPU edge.
        let peer = InterconnectSpec::nvlink4_peer();
        let staged = InterconnectSpec::pcie4_host_staged();
        assert!(peer.effective_bandwidth_gbps > staged.effective_bandwidth_gbps);
        assert!(peer.latency_ns < staged.latency_ns);
        assert!(peer.transfer_s(1 << 20) < staged.transfer_s(1 << 20));
    }

    #[test]
    fn interconnect_validate_rejects_degenerate_configs() {
        use crate::fault::SimError;
        let ok = InterconnectSpec::nvlink4_peer();
        let cases: Vec<InterconnectSpec> = vec![
            InterconnectSpec {
                effective_bandwidth_gbps: 0.0,
                ..ok.clone()
            },
            InterconnectSpec {
                peak_bandwidth_gbps: f64::NAN,
                ..ok.clone()
            },
            InterconnectSpec {
                effective_bandwidth_gbps: f64::INFINITY,
                ..ok.clone()
            },
            InterconnectSpec {
                effective_bandwidth_gbps: ok.peak_bandwidth_gbps * 2.0,
                ..ok.clone()
            },
            InterconnectSpec {
                fine_grained_efficiency: 0.0,
                ..ok.clone()
            },
            InterconnectSpec {
                fine_grained_efficiency: 1.5,
                ..ok.clone()
            },
            InterconnectSpec {
                latency_ns: -1.0,
                ..ok.clone()
            },
            InterconnectSpec {
                translation_latency_ns: f64::NAN,
                ..ok.clone()
            },
            InterconnectSpec {
                max_inflight_translations: 0,
                ..ok.clone()
            },
        ];
        for bad in cases {
            assert!(
                matches!(bad.validate(), Err(SimError::InvalidConfig(_))),
                "expected InvalidConfig"
            );
        }
        // GpuSpec::validate surfaces interconnect problems too.
        let mut spec = GpuSpec::v100_nvlink2(Scale::PAPER);
        spec.interconnect.effective_bandwidth_gbps = f64::NAN;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn transfer_pricing_is_latency_plus_stream() {
        let ic = InterconnectSpec::nvlink4_peer();
        let zero = ic.transfer_s(0);
        assert!((zero - ic.latency_ns * 1e-9).abs() < 1e-15);
        let one_mib = ic.transfer_s(1 << 20);
        assert!(one_mib > zero);
    }

    #[test]
    #[should_panic]
    fn page_below_cacheline_rejected() {
        // 4 KiB paper pages scaled by 1024 would be 4 B < 128 B cacheline.
        let _ = GpuSpec::v100_nvlink2(Scale::PAPER).with_paper_page_size(4 << 10);
    }
}
