//! Paper-scale ↔ simulation-scale conversion.
//!
//! The paper evaluates relations of 0.5–120 GiB against a GPU TLB that covers
//! 32 GiB (32 × 1 GiB huge pages). The throughput cliff it studies depends
//! only on the *ratio* between the index working set and the TLB coverage,
//! so the simulation shrinks both sides by a common factor (default 1024:
//! 1 paper-GiB ≡ 1 simulated-MiB). Linear counters (bytes moved, translation
//! requests, kernel launches, …) are multiplied back up by the factor when
//! the cost model reports paper-scale times.

/// A linear scale factor between the paper's data sizes and the simulation's.
///
/// `factor = 1024` means every byte simulated stands for 1024 bytes of the
/// paper's testbed. `Scale::identity()` runs everything at full size (useful
/// for small unit tests where no shrinking is needed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct Scale {
    /// How many paper-scale bytes one simulated byte represents.
    pub factor: u64,
}

impl Scale {
    /// The default reproduction scale: 1 paper-GiB ≡ 1 simulated-MiB.
    pub const PAPER: Scale = Scale { factor: 1024 };

    /// No scaling: simulated sizes equal paper sizes.
    pub const fn identity() -> Self {
        Scale { factor: 1 }
    }

    /// Create a custom scale factor. Must be non-zero.
    pub fn new(factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be non-zero");
        Scale { factor }
    }

    /// Convert a paper-scale byte count to the simulated byte count.
    pub fn sim_bytes(&self, paper_bytes: u64) -> u64 {
        paper_bytes / self.factor
    }

    /// Convert a simulated byte count back to paper scale.
    pub fn paper_bytes(&self, sim_bytes: u64) -> u64 {
        sim_bytes * self.factor
    }

    /// Number of simulated 8-byte tuples representing `paper_gib` GiB of
    /// 8-byte tuples at paper scale.
    pub fn sim_tuples_for_paper_gib(&self, paper_gib: f64) -> usize {
        let paper_bytes = paper_gib * (1u64 << 30) as f64;
        (paper_bytes / self.factor as f64 / 8.0).round() as usize
    }

    /// The paper-scale size in GiB that `sim_tuples` 8-byte tuples represent.
    pub fn paper_gib_for_sim_tuples(&self, sim_tuples: usize) -> f64 {
        (sim_tuples as u64 * 8 * self.factor) as f64 / (1u64 << 30) as f64
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_round_trip() {
        let s = Scale::PAPER;
        assert_eq!(s.sim_bytes(1 << 30), 1 << 20); // 1 GiB -> 1 MiB
        assert_eq!(s.paper_bytes(1 << 20), 1 << 30);
    }

    #[test]
    fn tuples_for_gib() {
        let s = Scale::PAPER;
        // 1 paper GiB = 1 sim MiB = 2^17 8-byte tuples.
        assert_eq!(s.sim_tuples_for_paper_gib(1.0), 1 << 17);
        let back = s.paper_gib_for_sim_tuples(1 << 17);
        assert!((back - 1.0).abs() < 1e-9);
    }

    #[test]
    fn identity_scale() {
        let s = Scale::identity();
        assert_eq!(s.sim_bytes(12345), 12345);
        assert_eq!(s.paper_bytes(12345), 12345);
    }

    #[test]
    #[should_panic]
    fn zero_factor_rejected() {
        let _ = Scale::new(0);
    }
}
