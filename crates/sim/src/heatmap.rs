//! Time-resolved, structure-resolved residency heatmaps.
//!
//! Aggregate counters say *how many* TLB misses a run paid; they cannot say
//! *when* or *where*. A [`Heatmap`] folds a recorded access trace into a
//! `buckets × sets` matrix of accesses and misses: the time axis is the
//! recorded event ordinal (the engine is trace-driven, so event order *is*
//! simulated time), and the structure axis is the set index the hardware
//! replacement logic uses. This makes the paper's 32-GiB thrash cliff
//! (PAPER.md §4–5) directly visible — plain INLJ shows a wall of misses
//! across the whole lookup phase, windowed INLJ shows misses concentrated
//! at window boundaries with quiet interiors.
//!
//! Reconciliation contract: the matrix sums equal the trace's *recorded*
//! totals exactly, and the trace's *offered* totals equal the engine's
//! [`Counters`](crate::counters::Counters) for the traced interval. Under
//! ring eviction or sampling the difference `offered - recorded` accounts
//! for every dropped event, so nothing is silently lost.

use crate::cache::Cache;
use crate::spec::GpuSpec;
use crate::tlb::Tlb;
use crate::trace::{HitLevel, Trace, TraceEvent};
use serde::Serialize;
use std::fmt::Write as _;

/// A `buckets × sets` access/miss matrix derived from a recorded trace.
#[derive(Debug, Clone, Serialize)]
pub struct Heatmap {
    /// Which structure this maps (`"tlb"` or `"l2"`).
    pub structure: String,
    /// Number of time buckets (rows).
    pub buckets: usize,
    /// Number of sets in the mapped structure (columns).
    pub sets: usize,
    /// Accesses per cell, bucket-major (`cell = bucket * sets + set`).
    pub accesses: Vec<u64>,
    /// Misses per cell, bucket-major.
    pub misses: Vec<u64>,
    /// Accesses offered to the trace for this structure (exact, survives
    /// ring eviction and sampling).
    pub offered_accesses: u64,
    /// Misses offered to the trace for this structure (exact).
    pub offered_misses: u64,
}

impl Heatmap {
    /// Accesses in the given cell.
    pub fn accesses_at(&self, bucket: usize, set: usize) -> u64 {
        self.accesses[bucket * self.sets + set]
    }

    /// Misses in the given cell.
    pub fn misses_at(&self, bucket: usize, set: usize) -> u64 {
        self.misses[bucket * self.sets + set]
    }

    /// Miss rate in the given cell (0.0 when the cell saw no accesses).
    pub fn miss_rate_at(&self, bucket: usize, set: usize) -> f64 {
        let a = self.accesses_at(bucket, set);
        if a == 0 {
            0.0
        } else {
            self.misses_at(bucket, set) as f64 / a as f64
        }
    }

    /// Sum of all cells' accesses (equals the trace's recorded totals).
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Sum of all cells' misses (equals the trace's recorded totals).
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Accesses per time bucket (row sums).
    pub fn bucket_accesses(&self) -> Vec<u64> {
        (0..self.buckets)
            .map(|b| {
                self.accesses[b * self.sets..(b + 1) * self.sets]
                    .iter()
                    .sum()
            })
            .collect()
    }

    /// Misses per time bucket (row sums).
    pub fn bucket_misses(&self) -> Vec<u64> {
        (0..self.buckets)
            .map(|b| self.misses[b * self.sets..(b + 1) * self.sets].iter().sum())
            .collect()
    }

    /// Overall miss rate across recorded accesses (0.0 when empty).
    pub fn miss_rate(&self) -> f64 {
        let a = self.total_accesses();
        if a == 0 {
            0.0
        } else {
            self.total_misses() as f64 / a as f64
        }
    }

    /// Long-format CSV (`bucket,set,accesses,misses,miss_rate`), one row
    /// per cell, deterministic formatting. Plot with any pivot-capable
    /// tool; empty cells are included so the matrix shape survives.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bucket,set,accesses,misses,miss_rate\n");
        for bucket in 0..self.buckets {
            for set in 0..self.sets {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{:.6}",
                    bucket,
                    set,
                    self.accesses_at(bucket, set),
                    self.misses_at(bucket, set),
                    self.miss_rate_at(bucket, set),
                );
            }
        }
        out
    }
}

/// How one event lands in a heatmap: `(set, missed)`.
type CellHit = (usize, bool);

fn build(
    structure: &str,
    sets: usize,
    buckets: usize,
    trace: &Trace,
    offered: (u64, u64),
    mut classify: impl FnMut(&TraceEvent) -> Option<CellHit>,
) -> Heatmap {
    assert!(buckets > 0, "heatmap needs at least one time bucket");
    let events = trace.events();
    let n = events.len().max(1);
    let mut accesses = vec![0u64; buckets * sets];
    let mut misses = vec![0u64; buckets * sets];
    for (i, ev) in events.iter().enumerate() {
        if let Some((set, missed)) = classify(ev) {
            // Bucket by recorded ordinal: the trace-driven engine has no
            // wall clock, so event order is the simulation's time axis.
            let bucket = i * buckets / n;
            let cell = bucket * sets + set;
            accesses[cell] += 1;
            misses[cell] += u64::from(missed);
        }
    }
    Heatmap {
        structure: structure.to_string(),
        buckets,
        sets,
        accesses,
        misses,
        offered_accesses: offered.0,
        offered_misses: offered.1,
    }
}

/// Fold `trace` into a TLB residency heatmap with `buckets` time rows.
/// `spec` must be the spec of the GPU that recorded the trace (the set
/// mapping reuses the engine's own TLB geometry).
pub fn tlb_heatmap(spec: &GpuSpec, trace: &Trace, buckets: usize) -> Heatmap {
    let tlb = Tlb::new(spec.tlb_entries, spec.tlb_assoc, spec.page_bytes);
    let offered = (trace.offered().tlb_accesses, trace.offered().tlb_misses);
    build("tlb", tlb.sets(), buckets, trace, offered, |ev| match ev {
        TraceEvent::ReadLine {
            line_addr,
            hit: HitLevel::Remote { tlb_hit },
            ..
        } => Some((tlb.set_of(*line_addr), !tlb_hit)),
        TraceEvent::Translate { page_addr, hit } => Some((tlb.set_of(*page_addr), !hit)),
        _ => None,
    })
}

/// Fold `trace` into an L2 residency heatmap with `buckets` time rows.
pub fn l2_heatmap(spec: &GpuSpec, trace: &Trace, buckets: usize) -> Heatmap {
    let l2 = Cache::new(spec.l2_bytes, spec.cacheline_bytes, spec.l2_assoc);
    let offered = (trace.offered().l2_accesses, trace.offered().l2_misses);
    build("l2", l2.sets(), buckets, trace, offered, |ev| match ev {
        TraceEvent::ReadLine { line_addr, hit, .. } => match hit {
            HitLevel::L1 => None,
            HitLevel::L2 => Some((l2.set_of(*line_addr), false)),
            HitLevel::GpuMem | HitLevel::Remote { .. } => Some((l2.set_of(*line_addr), true)),
        },
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemLocation;
    use crate::scale::Scale;
    use crate::trace::TraceMode;

    fn spec() -> GpuSpec {
        GpuSpec::v100_nvlink2(Scale::PAPER)
    }

    fn remote_read(line_addr: u64, tlb_hit: bool) -> TraceEvent {
        TraceEvent::ReadLine {
            loc: MemLocation::Cpu,
            line_addr,
            hit: HitLevel::Remote { tlb_hit },
        }
    }

    #[test]
    fn sums_reconcile_with_trace_totals() {
        let mut t = Trace::with_capacity(1024);
        for i in 0..100u64 {
            t.record(remote_read(i * 128, i % 3 == 0));
            t.record(TraceEvent::Translate {
                page_addr: i << 20,
                hit: i % 2 == 0,
            });
        }
        let hm = tlb_heatmap(&spec(), &t, 8);
        assert_eq!(hm.total_accesses(), t.recorded().tlb_accesses);
        assert_eq!(hm.total_misses(), t.recorded().tlb_misses);
        assert_eq!(hm.offered_accesses, t.offered().tlb_accesses);
        assert_eq!(hm.offered_misses, t.offered().tlb_misses);
        assert_eq!(
            hm.bucket_accesses().iter().sum::<u64>(),
            hm.total_accesses()
        );
    }

    #[test]
    fn sums_reconcile_under_sampling() {
        let mut t = Trace::new(1 << 16, TraceMode::SampleEveryNth(7));
        for i in 0..1000u64 {
            t.record(remote_read(i * 128, i % 5 != 0));
        }
        let hm = tlb_heatmap(&spec(), &t, 4);
        // Recorded side matches the thinned trace exactly…
        assert_eq!(hm.total_accesses(), t.recorded().tlb_accesses);
        assert_eq!(hm.total_misses(), t.recorded().tlb_misses);
        // …while the offered side still carries the full-run truth.
        assert_eq!(hm.offered_accesses, 1000);
        assert_eq!(hm.offered_misses, 200);
        assert!(hm.total_accesses() < hm.offered_accesses);
    }

    #[test]
    fn l2_heatmap_ignores_l1_hits() {
        let mut t = Trace::with_capacity(64);
        t.record(TraceEvent::ReadLine {
            loc: MemLocation::Gpu,
            line_addr: 0,
            hit: HitLevel::L1,
        });
        t.record(TraceEvent::ReadLine {
            loc: MemLocation::Gpu,
            line_addr: 128,
            hit: HitLevel::L2,
        });
        t.record(TraceEvent::ReadLine {
            loc: MemLocation::Gpu,
            line_addr: 256,
            hit: HitLevel::GpuMem,
        });
        let hm = l2_heatmap(&spec(), &t, 2);
        assert_eq!(hm.total_accesses(), 2);
        assert_eq!(hm.total_misses(), 1);
    }

    #[test]
    fn csv_shape_is_complete_and_deterministic() {
        let mut t = Trace::with_capacity(16);
        t.record(remote_read(0, false));
        let hm = tlb_heatmap(&spec(), &t, 2);
        let csv = hm.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "bucket,set,accesses,misses,miss_rate");
        assert_eq!(lines.len(), 1 + hm.buckets * hm.sets);
        assert_eq!(csv, hm.to_csv());
    }

    #[test]
    fn time_buckets_separate_phases() {
        // First half of the run misses everywhere, second half hits.
        let mut t = Trace::with_capacity(1024);
        for i in 0..50u64 {
            t.record(remote_read(i * 128, false));
        }
        for i in 0..50u64 {
            t.record(remote_read(i * 128, true));
        }
        let hm = tlb_heatmap(&spec(), &t, 2);
        let misses = hm.bucket_misses();
        assert_eq!(misses[0], 50);
        assert_eq!(misses[1], 0);
    }
}
