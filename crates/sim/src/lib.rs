//! # windex-sim — a software model of a GPU attached by a fast interconnect
//!
//! This crate is the hardware substrate for the `windex` reproduction of
//! *“Efficiently Indexing Large Data on GPUs with Fast Interconnects”*
//! (EDBT 2025). The paper's experiments need a V100/A100 with NVLink 2.0 /
//! PCI-e 4.0 and POWER9 hardware counters; this crate substitutes a
//! deterministic, trace-driven model of exactly the parts of that platform
//! the paper's effects depend on:
//!
//! - a **GPU TLB** with a bounded covered range (32 GiB on the V100 —
//!   32 × 1 GiB huge pages), whose misses become ~3 µs address-translation
//!   round trips to the host IOMMU;
//! - **L1/L2 data caches** that also cache CPU-memory lines (the coherent
//!   NVLink platform caches remote lines on-chip);
//! - an **interconnect** that fetches CPU memory at cacheline granularity
//!   with device-specific streaming and fine-grained-read bandwidths;
//! - **SIMT execution** in warps of 32 lanes whose memory accesses
//!   interleave in the shared TLB/caches (lockstep stepping);
//! - an analytic **cost model** that prices measured counters into
//!   paper-scale time estimates.
//!
//! Every index, join, and partitioning operator in the workspace issues its
//! *real* memory accesses through [`engine::Gpu`], so cache hit rates, TLB
//! thrashing, and transfer volumes are emergent properties of real access
//! traces — nothing about the paper's findings is hard-coded.
//!
//! ## Scale
//!
//! Data sizes, cache capacities, and page sizes are shrunk by a common
//! factor (default 1024; see [`scale::Scale`]) so the paper's 0.5–120 GiB
//! sweeps fit a laptop. The cost model multiplies linear counters back up,
//! reporting paper-scale queries/second.
//!
//! ## Example
//!
//! ```
//! use windex_sim::{Gpu, GpuSpec, MemLocation, Scale};
//!
//! let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
//! let data = gpu.alloc_host_from_vec((0u64..1024).collect::<Vec<_>>());
//! let before = gpu.snapshot();
//! let v = data.read(&mut gpu, 512); // out-of-core read across the interconnect
//! assert_eq!(v, 512);
//! let delta = gpu.snapshot() - before;
//! assert_eq!(delta.ic_lines_random, 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod cost;
pub mod counters;
pub mod engine;
pub mod exec;
pub mod fault;
pub mod heatmap;
mod lru;
pub mod mem;
mod pagestamps;
pub mod scale;
pub mod span;
pub mod spec;
pub mod tlb;
pub mod trace;

pub use chaos::{ChaosActivity, ChaosKind, ChaosScenario, ChaosSchedule, ChaosWindow};
pub use cost::{CandidateProfile, CostModel, TimeBreakdown};
pub use counters::Counters;
pub use engine::Gpu;
pub use exec::{
    launch_kernel, lockstep, try_launch_kernel, warps_of, with_retries, SubWarp, MAX_LANES,
    WARP_SIZE,
};
pub use fault::{FaultKind, FaultPlan, RetryPolicy, SimError};
pub use heatmap::{l2_heatmap, tlb_heatmap, Heatmap};
pub use mem::{Buffer, MemLocation};
pub use scale::Scale;
pub use span::{phase, PhaseBreakdown, PhaseRecorder, PhaseStats, Span};
pub use spec::{GpuSpec, InterconnectSpec};
pub use trace::{HitLevel, Trace, TraceEvent, TraceMode, TraceTotals};
