//! Fault model: typed simulator errors, deterministic fault injection, and
//! retry accounting.
//!
//! Real deployments of the paper's system lose work to transient GPU faults:
//! allocations fail under memory pressure, cudaMemcpy occasionally returns a
//! transient error on a busy link, and kernel launches fail when the driver
//! is saturated. This module models those events *deterministically*: a
//! [`FaultPlan`] draws each fault from a counter-indexed hash of its seed, so
//! the same seed and workload produce byte-identical fault sequences — and
//! therefore byte-identical counters and reports — across runs.
//!
//! Errors surface as [`SimError`]; operators retry transient faults under a
//! [`RetryPolicy`] whose deterministic exponential backoff is charged to the
//! counters (`retries`, `retry_backoff_ns`) and priced by the cost model.

use serde::Serialize;
use std::fmt;

/// Typed errors raised by the simulated device.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SimError {
    /// A device spec failed validation (e.g. non-power-of-two cacheline).
    InvalidSpec(String),
    /// An operator configuration is invalid (e.g. zero-sized window).
    InvalidConfig(String),
    /// A device-memory allocation exceeded the HBM capacity budget.
    OutOfDeviceMemory {
        /// Bytes the allocation would have reserved (page-rounded).
        requested: u64,
        /// Device bytes live at the time of the request.
        live: u64,
        /// The device's HBM capacity budget in simulated bytes.
        budget: u64,
    },
    /// A counter-interval delta was taken from snapshots captured out of
    /// order (or across a counter reset): the named field decreased.
    /// Raised by [`Counters::checked_delta`](crate::counters::Counters);
    /// a report built from such a delta would attribute garbage per-phase
    /// costs, so the inversion is surfaced instead.
    CounterDeltaInverted {
        /// The first counter field observed to decrease.
        field: &'static str,
    },
    /// An injected (transient) allocation failure.
    AllocFault,
    /// An injected transient fault on an interconnect transfer.
    TransientTransferFault,
    /// An injected kernel-launch failure.
    KernelLaunchFailed,
    /// The device is gone: a chaos device-loss window is active. Unlike the
    /// injected transient faults this is *not* retryable in place — the
    /// caller must wait out the window (see
    /// [`ChaosSchedule::clearance_s`](crate::chaos::ChaosSchedule::clearance_s))
    /// and rebuild any device-resident state.
    DeviceLost,
}

impl SimError {
    /// Whether retrying the failed operation may succeed. Injected faults
    /// are transient; budget and validation errors are deterministic and
    /// must be handled by degradation instead.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::AllocFault | SimError::TransientTransferFault | SimError::KernelLaunchFailed
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidSpec(msg) => write!(f, "invalid device spec: {msg}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::OutOfDeviceMemory {
                requested,
                live,
                budget,
            } => write!(
                f,
                "out of device memory: requested {requested} B with {live} B live \
                 of {budget} B budget"
            ),
            SimError::CounterDeltaInverted { field } => write!(
                f,
                "counter delta inverted: field '{field}' decreased between snapshots"
            ),
            SimError::AllocFault => write!(f, "transient device allocation failure (injected)"),
            SimError::TransientTransferFault => {
                write!(f, "transient interconnect transfer fault (injected)")
            }
            SimError::KernelLaunchFailed => write!(f, "kernel launch failed (injected)"),
            SimError::DeviceLost => write!(f, "device lost (chaos device-loss window active)"),
        }
    }
}

impl std::error::Error for SimError {}

/// The kinds of faults a [`FaultPlan`] can inject. Each kind draws from an
/// independent deterministic sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// Device-memory allocation failures.
    Alloc,
    /// Transient interconnect transfer faults.
    Transfer,
    /// Kernel-launch failures.
    Launch,
}

impl FaultKind {
    #[inline]
    fn salt(self) -> u64 {
        match self {
            FaultKind::Alloc => 0x616c6c6f63_u64,
            FaultKind::Transfer => 0x7866657221_u64,
            FaultKind::Launch => 0x6c61756e63_u64,
        }
    }
}

/// Deterministic fault-injection plan. Rates are probabilities in `[0, 1]`
/// applied per *drawing site* (one draw per allocation, per transfer
/// operation, per fallible kernel launch). The default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed of the deterministic fault sequences.
    pub seed: u64,
    /// Probability a device allocation fails transiently.
    pub alloc_failure_rate: f64,
    /// Probability an interconnect transfer operation faults.
    pub transfer_fault_rate: f64,
    /// Probability a kernel launch fails.
    pub launch_failure_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that injects no faults.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            alloc_failure_rate: 0.0,
            transfer_fault_rate: 0.0,
            launch_failure_rate: 0.0,
        }
    }

    /// A plan with the given seed and no faults (combine with `with_*`).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Set the device-allocation failure rate.
    pub fn with_alloc_failures(mut self, rate: f64) -> Self {
        self.alloc_failure_rate = rate;
        self
    }

    /// Set the transfer fault rate.
    pub fn with_transfer_faults(mut self, rate: f64) -> Self {
        self.transfer_fault_rate = rate;
        self
    }

    /// Set the kernel-launch failure rate.
    pub fn with_launch_failures(mut self, rate: f64) -> Self {
        self.launch_failure_rate = rate;
        self
    }

    /// Whether any fault kind has a non-zero rate.
    pub fn is_active(&self) -> bool {
        self.alloc_failure_rate > 0.0
            || self.transfer_fault_rate > 0.0
            || self.launch_failure_rate > 0.0
    }

    /// Validate every rate: each must be a number in `[0, 1]`. NaN or
    /// out-of-range rates would silently skew the deterministic draws, so
    /// the engine rejects them at plan install.
    pub fn validate(&self) -> Result<(), SimError> {
        for (name, rate) in [
            ("alloc_failure_rate", self.alloc_failure_rate),
            ("transfer_fault_rate", self.transfer_fault_rate),
            ("launch_failure_rate", self.launch_failure_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(SimError::InvalidConfig(format!(
                    "fault plan {name} must be in [0, 1], got {rate}"
                )));
            }
        }
        Ok(())
    }

    /// Whether the `seq`-th draw of `kind` faults. Pure function of
    /// `(seed, kind, seq)` — the engine supplies a monotone per-kind
    /// sequence number so fault positions are reproducible.
    pub fn should_fault(&self, kind: FaultKind, seq: u64) -> bool {
        let rate = match kind {
            FaultKind::Alloc => self.alloc_failure_rate,
            FaultKind::Transfer => self.transfer_fault_rate,
            FaultKind::Launch => self.launch_failure_rate,
        };
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let h = splitmix64(self.seed ^ kind.salt().wrapping_mul(0x9e3779b97f4a7c15) ^ seq);
        // Compare the top 53 bits against the rate as a fraction of 2^53.
        ((h >> 11) as f64) < rate * (1u64 << 53) as f64
    }
}

/// Bounded-retry policy for transient faults. Backoff is deterministic
/// exponential: attempt `k` (0-based) charges `base_backoff_ns << k` to the
/// counters, which the cost model prices as stall time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RetryPolicy {
    /// Maximum retries per operation before the fault becomes an error.
    pub max_retries: u32,
    /// Backoff charged for the first retry, in nanoseconds.
    pub base_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ns: 10_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged before retry number `attempt` (0-based), in ns.
    /// Saturates at `u64::MAX` instead of overflowing for large bases
    /// (`base << 20` already overflows a u64 base above 2^44).
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let shift = attempt.min(20);
        self.base_backoff_ns.saturating_mul(1u64 << shift)
    }
}

#[inline]
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_never_faults() {
        let plan = FaultPlan::none();
        for seq in 0..1000 {
            assert!(!plan.should_fault(FaultKind::Alloc, seq));
            assert!(!plan.should_fault(FaultKind::Transfer, seq));
            assert!(!plan.should_fault(FaultKind::Launch, seq));
        }
    }

    #[test]
    fn fault_draws_are_deterministic_and_rate_shaped() {
        let plan = FaultPlan::seeded(7).with_transfer_faults(0.25);
        let a: Vec<bool> = (0..4096)
            .map(|s| plan.should_fault(FaultKind::Transfer, s))
            .collect();
        let b: Vec<bool> = (0..4096)
            .map(|s| plan.should_fault(FaultKind::Transfer, s))
            .collect();
        assert_eq!(a, b);
        let hits = a.iter().filter(|&&x| x).count();
        // 25% ± generous slack over 4096 draws.
        assert!((700..=1350).contains(&hits), "got {hits}");
        // Other kinds stay silent.
        assert!((0..4096).all(|s| !plan.should_fault(FaultKind::Alloc, s)));
    }

    #[test]
    fn kinds_draw_independent_sequences() {
        let plan = FaultPlan::seeded(3)
            .with_alloc_failures(0.5)
            .with_launch_failures(0.5);
        let alloc: Vec<bool> = (0..256)
            .map(|s| plan.should_fault(FaultKind::Alloc, s))
            .collect();
        let launch: Vec<bool> = (0..256)
            .map(|s| plan.should_fault(FaultKind::Launch, s))
            .collect();
        assert_ne!(alloc, launch);
    }

    #[test]
    fn rate_extremes() {
        let always = FaultPlan::seeded(1).with_launch_failures(1.0);
        assert!((0..64).all(|s| always.should_fault(FaultKind::Launch, s)));
        let never = FaultPlan::seeded(1).with_launch_failures(0.0);
        assert!((0..64).all(|s| !never.should_fault(FaultKind::Launch, s)));
    }

    #[test]
    fn transient_classification() {
        assert!(SimError::AllocFault.is_transient());
        assert!(SimError::TransientTransferFault.is_transient());
        assert!(SimError::KernelLaunchFailed.is_transient());
        assert!(!SimError::InvalidSpec("x".into()).is_transient());
        assert!(
            !SimError::DeviceLost.is_transient(),
            "device loss needs recovery, not an in-place retry"
        );
        assert!(!SimError::CounterDeltaInverted { field: "lookups" }.is_transient());
        assert!(!SimError::OutOfDeviceMemory {
            requested: 1,
            live: 0,
            budget: 0
        }
        .is_transient());
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ns(0), 10_000);
        assert_eq!(p.backoff_ns(1), 20_000);
        assert_eq!(p.backoff_ns(2), 40_000);
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        // Regression: `base << 20` overflowed u64 for bases above 2^44.
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff_ns: u64::MAX / 2,
        };
        assert_eq!(p.backoff_ns(0), u64::MAX / 2);
        assert_eq!(p.backoff_ns(2), u64::MAX, "two doublings saturate");
        assert_eq!(p.backoff_ns(64), u64::MAX, "large attempts stay clamped");
        // Monotonicity survives saturation.
        let q = RetryPolicy {
            max_retries: 3,
            base_backoff_ns: 1 << 50,
        };
        let mut last = 0;
        for attempt in 0..32 {
            let b = q.backoff_ns(attempt);
            assert!(b >= last);
            last = b;
        }
        assert_eq!(last, u64::MAX);
    }

    #[test]
    fn plan_validation_rejects_bad_rates() {
        assert!(FaultPlan::none().validate().is_ok());
        assert!(FaultPlan::seeded(1)
            .with_transfer_faults(1.0)
            .validate()
            .is_ok());
        let nan = FaultPlan::seeded(1).with_alloc_failures(f64::NAN);
        assert!(matches!(nan.validate(), Err(SimError::InvalidConfig(_))));
        let negative = FaultPlan::seeded(1).with_launch_failures(-0.5);
        assert!(negative.validate().is_err());
        let too_big = FaultPlan::seeded(1).with_transfer_faults(1.5);
        let msg = too_big.validate().unwrap_err().to_string();
        assert!(msg.contains("transfer_fault_rate"), "{msg}");
    }
}
