//! Phase-level span recorder on the simulator's virtual clock.
//!
//! The paper's whole argument is counter-driven (translation requests,
//! interconnect bytes, cache hit rates), but end-to-end counter totals
//! cannot say *where* a run spent its budget — how much of a windowed join
//! went to partitioning vs. lookup vs. materialization. This module
//! decomposes a run into **spans**: contiguous counter intervals labeled
//! with a phase name, each capturing the [`Counters`] delta between two
//! snapshots and the serial [`TimeBreakdown`] the cost model assigns it.
//!
//! The design guarantees the **span-sum invariant** by construction: the
//! recorder keeps the last snapshot it saw, and every [`PhaseRecorder::begin`]
//! closes the open span *through the current snapshot*. Counter activity
//! that happens between spans (operator bookkeeping, staging) is attributed
//! to the reserved [`phase::OTHER`] phase rather than dropped, so the sum of
//! per-phase deltas telescopes to exactly `finish_snapshot - start_snapshot`.
//! Tests assert this equality for every executor strategy, including under
//! injected faults and retries.
//!
//! Spans are priced with `overlap = false` (serial time): a span is an
//! attribution unit, not a schedule, and serial pricing keeps per-phase
//! times additive. The run-level report still prices its end-to-end delta
//! with whatever overlap model the executor used.

use crate::cost::{CostModel, TimeBreakdown};
use crate::counters::Counters;
use crate::engine::Gpu;
use serde::Serialize;

/// Canonical phase names used across the workspace. Operators are free to
/// record custom phases, but sticking to this taxonomy keeps reports
/// comparable across executors, servers, and bench runs.
pub mod phase {
    /// Staging data into device memory (builds, uploads).
    pub const STAGE: &str = "stage";
    /// Partitioning probe keys into per-window runs.
    pub const PARTITION: &str = "partition";
    /// Index lookups / join probes.
    pub const LOOKUP: &str = "lookup";
    /// Materializing join results.
    pub const MATERIALIZE: &str = "materialize";
    /// Bulk transfers over the interconnect (spills, result copy-back).
    pub const TRANSFER: &str = "transfer";
    /// Counter activity outside any explicitly-opened span. The recorder
    /// attributes inter-span gaps here so the span-sum invariant holds.
    pub const OTHER: &str = "other";
}

/// One recorded span: a contiguous counter interval labeled with a phase.
#[derive(Debug, Clone, Serialize)]
pub struct Span {
    /// Phase label (usually one of the [`phase`] constants).
    pub phase: &'static str,
    /// Counter events that occurred within the span.
    pub counters: Counters,
    /// Serial (non-overlapped) cost-model pricing of `counters`.
    pub time: TimeBreakdown,
}

/// Aggregated statistics for one phase across all its spans.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PhaseStats {
    /// Phase label.
    pub phase: &'static str,
    /// Number of spans aggregated into this entry.
    pub spans: usize,
    /// Element-wise sum of the spans' counter deltas.
    pub counters: Counters,
    /// Serial cost-model pricing of the aggregated counters. The pricing
    /// is linear in every counter, so this equals the sum of the spans'
    /// individual estimates (up to float rounding).
    pub time: TimeBreakdown,
}

/// Per-phase decomposition of a run, produced by [`PhaseRecorder::finish`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct PhaseBreakdown {
    /// One entry per distinct phase, in first-recorded order.
    pub phases: Vec<PhaseStats>,
    /// End-to-end counter delta of the recorded region
    /// (`finish` snapshot − `start` snapshot).
    pub total: Counters,
    /// Sum of the per-phase serial time estimates, in seconds.
    pub total_est_s: f64,
}

impl PhaseBreakdown {
    /// The aggregated stats for `phase`, if any span recorded it.
    pub fn get(&self, phase: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.phase == phase)
    }

    /// Fraction of `total_est_s` attributed to `phase` (0.0 if the phase
    /// was never recorded or the total estimate is zero).
    pub fn share(&self, phase: &str) -> f64 {
        if self.total_est_s <= 0.0 {
            return 0.0;
        }
        self.get(phase)
            .map(|p| p.time.total_s / self.total_est_s)
            .unwrap_or(0.0)
    }

    /// Element-wise sum of the per-phase counter deltas. The span-sum
    /// invariant states this equals [`PhaseBreakdown::total`]; integration
    /// tests assert it for every executor strategy.
    pub fn counter_sum(&self) -> Counters {
        self.phases
            .iter()
            .fold(Counters::default(), |acc, p| acc + p.counters)
    }
}

/// Records phase-labeled spans against a [`Gpu`]'s counter stream.
///
/// Usage: [`PhaseRecorder::start`] at the beginning of the region to
/// attribute, [`PhaseRecorder::begin`] before each phase (which closes the
/// previous one), and [`PhaseRecorder::finish`] at the end to obtain the
/// [`PhaseBreakdown`]. Activity before the first `begin`, after an
/// [`PhaseRecorder::end`], or between `end` and the next `begin` is
/// attributed to [`phase::OTHER`].
#[derive(Debug, Clone)]
pub struct PhaseRecorder {
    first: Counters,
    last: Counters,
    open: Option<&'static str>,
    spans: Vec<Span>,
    cost: CostModel,
}

impl PhaseRecorder {
    /// Start recording at the GPU's current counter snapshot.
    pub fn start(gpu: &Gpu) -> Self {
        let snap = gpu.snapshot();
        PhaseRecorder {
            first: snap,
            last: snap,
            open: None,
            spans: Vec::new(),
            cost: CostModel::new(gpu.spec()),
        }
    }

    /// Close any open (or gap) span through `now`, labeling it `label`.
    /// Empty intervals are skipped but still advance the watermark, so
    /// the telescoping sum is preserved either way.
    fn close_through(&mut self, now: Counters, label: &'static str) {
        let delta = now - self.last;
        if delta != Counters::default() {
            let time = self.cost.estimate(&delta, false);
            self.spans.push(Span {
                phase: label,
                counters: delta,
                time,
            });
        }
        self.last = now;
    }

    /// Open a span for `phase`, closing the previously open span (or
    /// attributing the gap since the last close to [`phase::OTHER`]).
    pub fn begin(&mut self, gpu: &Gpu, phase: &'static str) {
        let now = gpu.snapshot();
        let prev = self.open.take().unwrap_or(phase::OTHER);
        self.close_through(now, prev);
        self.open = Some(phase);
    }

    /// Close the currently open span at the GPU's current snapshot. A
    /// no-op watermark advance if no span is open and no events occurred.
    pub fn end(&mut self, gpu: &Gpu) {
        let now = gpu.snapshot();
        let prev = self.open.take().unwrap_or(phase::OTHER);
        self.close_through(now, prev);
    }

    /// The raw spans recorded so far, in order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Close any open span and aggregate everything recorded into a
    /// [`PhaseBreakdown`] whose `total` is the exact end-to-end delta of
    /// the recorded region.
    pub fn finish(mut self, gpu: &Gpu) -> PhaseBreakdown {
        self.end(gpu);
        let mut phases: Vec<PhaseStats> = Vec::new();
        for span in &self.spans {
            let entry = match phases.iter_mut().find(|p| p.phase == span.phase) {
                Some(e) => e,
                None => {
                    phases.push(PhaseStats {
                        phase: span.phase,
                        ..PhaseStats::default()
                    });
                    phases.last_mut().expect("just pushed")
                }
            };
            entry.spans += 1;
            entry.counters = entry.counters + span.counters;
        }
        let mut total_est_s = 0.0;
        for entry in &mut phases {
            entry.time = self.cost.estimate(&entry.counters, false);
            total_est_s += entry.time.total_s;
        }
        PhaseBreakdown {
            phases,
            total: self.last - self.first,
            total_est_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use crate::spec::GpuSpec;
    use crate::MemLocation;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    #[test]
    fn spans_partition_the_counter_stream() {
        let mut gpu = gpu();
        let data = gpu.alloc_host_from_vec((0u64..4096).collect::<Vec<_>>());
        let mut rec = PhaseRecorder::start(&gpu);

        rec.begin(&gpu, phase::PARTITION);
        for i in 0..64 {
            data.read(&mut gpu, i * 7 % 4096);
        }
        rec.begin(&gpu, phase::LOOKUP);
        for i in 0..128 {
            data.read(&mut gpu, (i * 131) % 4096);
        }
        gpu.count_lookups(128);
        rec.end(&gpu);
        // Gap activity between end and finish goes to OTHER.
        data.read(&mut gpu, 0);

        let before_finish = gpu.snapshot();
        let bd = rec.finish(&gpu);
        assert_eq!(bd.total, before_finish - Counters::default());
        assert_eq!(bd.counter_sum(), bd.total, "span-sum invariant");
        assert!(bd.get(phase::PARTITION).is_some());
        assert!(bd.get(phase::LOOKUP).is_some());
        assert!(bd.get(phase::OTHER).is_some(), "gap attributed to other");
        assert_eq!(bd.get(phase::LOOKUP).unwrap().counters.lookups, 128);
        assert!(bd.total_est_s > 0.0);
        let share_sum: f64 = bd.phases.iter().map(|p| bd.share(p.phase)).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_recorder_is_all_zero() {
        let gpu = gpu();
        let rec = PhaseRecorder::start(&gpu);
        let bd = rec.finish(&gpu);
        assert!(bd.phases.is_empty());
        assert_eq!(bd.total, Counters::default());
        assert_eq!(bd.total_est_s, 0.0);
        assert_eq!(bd.share(phase::LOOKUP), 0.0);
    }

    #[test]
    fn repeated_phase_aggregates_across_spans() {
        let mut gpu = gpu();
        let data = gpu
            .alloc_from_vec(MemLocation::Gpu, (0u64..1024).collect::<Vec<_>>())
            .expect("fits HBM budget");
        let mut rec = PhaseRecorder::start(&gpu);
        for round in 0..3 {
            rec.begin(&gpu, phase::LOOKUP);
            for i in 0..16 {
                data.read(&mut gpu, (round * 16 + i) % 1024);
            }
            rec.end(&gpu);
        }
        let spans = rec.spans().len();
        assert_eq!(spans, 3);
        let bd = rec.finish(&gpu);
        assert_eq!(bd.phases.len(), 1);
        let lookup = bd.get(phase::LOOKUP).unwrap();
        assert_eq!(lookup.spans, 3);
        assert_eq!(bd.counter_sum(), bd.total);
    }
}
