//! GPU data-cache model (L1 and L2).
//!
//! On the paper's platform the GPU caches CPU-memory lines fetched over
//! NVLink in its normal cache hierarchy, which is why "the upper-most tree
//! levels are assumed to be cached and do not incur memory accesses" (§3.1)
//! and why Zipf-skewed lookups hit L1 with high probability (§5.2.2).

use crate::lru::SetAssocLru;

/// Set-associative data cache with LRU replacement, tag-only (no data is
/// stored; the simulator keeps data in host vectors).
#[derive(Debug, Clone)]
pub struct Cache {
    store: SetAssocLru,
    line_bytes: u64,
    line_shift: u32,
}

impl Cache {
    /// Create a cache of `capacity_bytes` with `line_bytes` lines and the
    /// given associativity. The line size must be a power of two. The
    /// geometry is normalized: at least one line is kept, the associativity
    /// is clamped to the line count, and the capacity is rounded down to a
    /// multiple of the associativity — this keeps scaled-down configurations
    /// (where a paper-sized cache shrinks to a handful of lines) valid.
    pub fn new(capacity_bytes: u64, line_bytes: u64, assoc: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = ((capacity_bytes / line_bytes) as usize).max(1);
        let assoc = assoc.clamp(1, lines);
        let lines = lines - lines % assoc;
        Cache {
            store: SetAssocLru::new(lines, assoc),
            line_bytes,
            line_shift: line_bytes.trailing_zeros(),
        }
    }

    /// Access the line containing `addr`; returns `true` on a hit and
    /// allocates the line on a miss.
    pub fn access(&mut self, addr: u64) -> bool {
        self.store.access(addr >> self.line_shift)
    }

    /// [`access`](Self::access) with the line tag's hash precomputed via
    /// [`crate::lru::hash_of`]. L1 and L2 share a line size, so the engine's
    /// per-line hot path hashes each tag once and probes both caches with it.
    pub(crate) fn access_hashed(&mut self, addr: u64, hash: u64) -> bool {
        self.store.access_hashed(addr >> self.line_shift, hash)
    }

    /// Whether the line containing `addr` is resident (no side effects).
    pub fn is_resident(&self, addr: u64) -> bool {
        self.store.probe(addr >> self.line_shift)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of sets in the underlying tag store.
    pub fn sets(&self) -> usize {
        self.store.sets()
    }

    /// The set the line containing `addr` maps to (pure).
    pub fn set_of(&self, addr: u64) -> usize {
        self.store.set_of(addr >> self.line_shift)
    }

    /// Invalidate all lines.
    pub fn flush(&mut self) {
        self.store.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_granularity() {
        let mut c = Cache::new(1024, 128, 2);
        assert!(!c.access(0));
        assert!(c.access(127));
        assert!(!c.access(128));
    }

    #[test]
    fn capacity_eviction() {
        // 2 lines total, fully associative.
        let mut c = Cache::new(256, 128, 2);
        c.access(0);
        c.access(128);
        c.access(0); // refresh line 0; line 1 is LRU
        c.access(256); // evicts line 1
        assert!(c.is_resident(0));
        assert!(!c.is_resident(128));
        assert!(c.is_resident(256));
    }
}
