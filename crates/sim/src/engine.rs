//! The GPU engine: routes every device-side memory access through the
//! TLB/cache models and maintains the performance counters.
//!
//! The model is trace-driven and deterministic: data structures issue their
//! real access sequences, and the engine decides — line by line — whether an
//! access hits in L1/L2, whether a CPU-memory line needs an address
//! translation, and what crosses the interconnect. Timing is *not* simulated
//! here; the [`CostModel`](crate::cost::CostModel) converts counter deltas
//! into time estimates afterwards.
//!
//! Access path for a CPU-memory (out-of-core) load, mirroring §2.1/§3.3.2 of
//! the paper:
//!
//! 1. L1 lookup — hit: done (remote lines are cached on-chip on the paper's
//!    coherent NVLink platform).
//! 2. L2 lookup — hit: done.
//! 3. GPU TLB lookup for the page — miss: one address-translation request is
//!    sent to the CPU's IOMMU (~3 µs, the effect the paper studies).
//! 4. The cacheline is fetched across the interconnect.
//!
//! GPU-memory loads take the same cache path but end in device memory and
//! never involve the remote TLB, which is why the hash join's GPU-resident
//! hash table is immune to the TLB cliff.

use crate::cache::Cache;
use crate::chaos::{ChaosActivity, ChaosSchedule};
use crate::counters::Counters;
use crate::fault::{FaultKind, FaultPlan, RetryPolicy, SimError};
use crate::lru;
use crate::mem::{Buffer, MemLocation};
use crate::pagestamps::PageStampTable;
use crate::spec::GpuSpec;
use crate::tlb::Tlb;
use crate::trace::{HitLevel, Trace, TraceEvent, TraceMode};

/// Re-miss distance (in line accesses) separating *thrashing* from
/// *periodic sweep* misses. A page re-missed within this window was evicted
/// by concurrently running lookups (a lookup-rate event, scaled by the
/// reproduction factor); a page re-missed after a longer interval is a
/// periodic revisit — e.g. the next tumbling window sweeping the same pages
/// — whose count is scale-invariant (pages × phases).
const THRASH_DISTANCE: u64 = 2048;

/// A deferred memory access waiting in the warp issue queue.
#[derive(Debug, Clone, Copy)]
struct IssuedAccess {
    loc: MemLocation,
    addr: u64,
    bytes: u64,
    write: bool,
}

/// The chaos effects in force at the current virtual time, precomputed so
/// the per-access hot paths pay flag checks instead of window scans.
/// Recomputed only when the virtual clock or the schedule changes.
#[derive(Debug, Clone, Copy)]
struct ChaosEffects {
    /// Transfers hard-fail while a link-flap window is active.
    link_flap: bool,
    /// Device operations fail with [`SimError::DeviceLost`].
    device_lost: bool,
    /// Page-quarantine probability of the active ECC storm (0.0 = none).
    ecc_page_rate: f64,
    /// Brownout stall accrued per streamed/written interconnect byte, in
    /// paper-scale nanoseconds (0.0 = no brownout).
    streamed_stall_ns_per_byte: f64,
    /// Brownout stall accrued per random interconnect byte (derated by the
    /// fine-grained-read efficiency, so random bytes stall longer).
    random_stall_ns_per_byte: f64,
}

impl Default for ChaosEffects {
    fn default() -> Self {
        ChaosEffects {
            link_flap: false,
            device_lost: false,
            ecc_page_rate: 0.0,
            streamed_stall_ns_per_byte: 0.0,
            random_stall_ns_per_byte: 0.0,
        }
    }
}

/// The simulated GPU. Owns the memory-system state and allocates buffers in
/// a shared virtual address space.
#[derive(Debug)]
pub struct Gpu {
    spec: GpuSpec,
    tlb: Tlb,
    l1: Cache,
    l2: Cache,
    counters: Counters,
    next_addr: u64,
    line_mask: u64,
    line_shift: u32,
    page_shift: u32,
    /// Line-access clock for re-miss distance measurement.
    access_clock: u64,
    /// The previously accessed line: a repeat access is a guaranteed L1 hit
    /// (the line is MRU in its set) and short-circuits the whole hierarchy.
    last_line: u64,
    /// Per-page stamp of the last miss (distinguishes thrashing re-misses
    /// from compulsory / periodic-sweep misses). Flat and bounded; cleared
    /// on [`Gpu::reset_memory_system`].
    missed_pages: PageStampTable,
    /// Warp-coalesced issue queue: accesses deferred by
    /// [`Gpu::issue_read`]/[`Gpu::issue_write`], resolved in program order
    /// by [`Gpu::access_lines`]. Every immediate accounting entry point
    /// drains this queue first, so the global accounting order always
    /// equals program order and batching is observationally invisible.
    issue: Vec<IssuedAccess>,
    /// Reusable scratch for the drain's data-parallel precompute pass:
    /// expanded per-lane line addresses and their set/tag hashes (shared by
    /// the L1 and L2 selectors). Kept on the engine so steady-state drains
    /// never allocate.
    drain_lines: Vec<u64>,
    drain_hashes: Vec<u64>,
    /// Optional access-trace recorder.
    trace: Option<Trace>,
    /// Deterministic fault-injection plan (defaults to no faults).
    fault_plan: FaultPlan,
    /// Per-kind fault draw sequence numbers (alloc, transfer, launch).
    fault_seq: [u64; 3],
    /// First injected fault observed during the current kernel body;
    /// surfaced by [`try_launch_kernel`](crate::exec::try_launch_kernel).
    pending_fault: Option<SimError>,
    /// Retry policy operators apply to transient faults.
    retry: RetryPolicy,
    /// Device bytes currently allocated (page-rounded reservations).
    gpu_live_bytes: u64,
    /// Deterministic chaos windows on the virtual clock (defaults to calm).
    chaos_schedule: ChaosSchedule,
    /// The virtual time the engine currently sits at, in seconds. Advanced
    /// only by the caller ([`Gpu::set_virtual_time`]); the trace-driven
    /// engine has no clock of its own.
    virtual_now_s: f64,
    /// Chaos effects active at `virtual_now_s`, precomputed for hot paths.
    chaos: ChaosEffects,
}

impl Gpu {
    /// Create a GPU from a device spec with an empty memory system.
    /// Panicking convenience over [`Gpu::try_new`]; use `try_new` where the
    /// spec comes from configuration rather than a vetted preset.
    pub fn new(spec: GpuSpec) -> Self {
        Self::try_new(spec).expect("invalid GPU spec")
    }

    /// Create a GPU from a device spec, validating it first.
    pub fn try_new(spec: GpuSpec) -> Result<Self, SimError> {
        spec.validate()?;
        let tlb = Tlb::new(spec.tlb_entries, spec.tlb_assoc, spec.page_bytes);
        let l1 = Cache::new(spec.l1_bytes, spec.cacheline_bytes, spec.l1_assoc);
        let l2 = Cache::new(spec.l2_bytes, spec.cacheline_bytes, spec.l2_assoc);
        let line_mask = spec.cacheline_bytes - 1;
        let line_shift = spec.cacheline_bytes.trailing_zeros();
        let page_shift = spec.page_bytes.trailing_zeros();
        let first_addr = spec.page_bytes;
        let spec_tlb_pages = spec.tlb_entries;
        Ok(Gpu {
            spec,
            tlb,
            l1,
            l2,
            counters: Counters::default(),
            // Reserve the zero page so no valid buffer starts at address 0.
            next_addr: first_addr,
            line_mask,
            line_shift,
            page_shift,
            access_clock: 0,
            last_line: u64::MAX,
            // Sized for the pages missable inside one thrash window at this
            // geometry: the TLB's own coverage plus the sweep front that
            // evicts it. A few thousand slots even for generous specs.
            missed_pages: PageStampTable::new(spec_tlb_pages * 8, THRASH_DISTANCE),
            issue: Vec::with_capacity(crate::exec::MAX_LANES * 4),
            drain_lines: Vec::with_capacity(crate::exec::MAX_LANES * 4),
            drain_hashes: Vec::with_capacity(crate::exec::MAX_LANES * 4),
            trace: None,
            fault_plan: FaultPlan::none(),
            fault_seq: [0; 3],
            pending_fault: None,
            retry: RetryPolicy::default(),
            gpu_live_bytes: 0,
            chaos_schedule: ChaosSchedule::none(),
            virtual_now_s: 0.0,
            chaos: ChaosEffects::default(),
        })
    }

    /// Start recording memory-system events (bounded at `capacity`,
    /// truncating beyond it). Replaces any previous recording.
    pub fn start_trace(&mut self, capacity: usize) {
        self.start_trace_mode(capacity, TraceMode::Truncate);
    }

    /// Start recording with an explicit capacity and overflow mode.
    /// Replaces any previous recording.
    pub fn start_trace_mode(&mut self, capacity: usize, mode: TraceMode) {
        self.access_lines();
        self.trace = Some(Trace::new(capacity, mode));
    }

    /// Start recording at the spec's [`trace_capacity`](GpuSpec) bound in
    /// ring mode — the safe default for runs of unknown length: memory
    /// stays bounded, the newest events survive, and the drop accounting in
    /// [`Trace::offered`] stays exact.
    pub fn start_bounded_trace(&mut self) {
        self.start_trace_mode(self.spec.trace_capacity, TraceMode::Ring);
    }

    /// Stop recording and return the trace, normalized to recording order
    /// (empty if never started). Any accesses still waiting in the issue
    /// queue are resolved first so their events land in this trace.
    pub fn stop_trace(&mut self) -> Trace {
        self.access_lines();
        let mut trace = self.trace.take().unwrap_or_default();
        trace.normalize();
        trace
    }

    /// Record one TLB miss, classifying it as a page-sweep event
    /// (compulsory first touch, or periodic revisit after more than
    /// [`THRASH_DISTANCE`] line accesses) or a thrashing re-miss. The split
    /// matters for the cost model: sweep misses are page-count events
    /// (already at paper scale), thrashing re-misses are lookup-rate events
    /// (scaled back up by the reproduction factor).
    #[inline]
    fn record_tlb_miss(&mut self, page_id: u64) {
        self.counters.tlb_misses += 1;
        if self.missed_pages.note_miss(page_id, self.access_clock) {
            self.counters.tlb_sweep_misses += 1;
        }
    }

    /// The device spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Current cumulative counters. Callers observe counters only at points
    /// where the issue queue has been drained (every immediate accounting
    /// entry point drains, and `lockstep` drains per round).
    pub fn counters(&self) -> Counters {
        debug_assert!(self.issue.is_empty(), "issued accesses not yet resolved");
        self.counters
    }

    /// Allocate a zero-initialized buffer of `len` elements at `loc`.
    ///
    /// Device allocations are fallible: they fail with
    /// [`SimError::OutOfDeviceMemory`] when the HBM capacity budget
    /// (`spec.hbm_bytes`) would be exceeded, and with
    /// [`SimError::AllocFault`] when an injected transient allocation
    /// failure fires. Host allocations always succeed (CPU DRAM is the
    /// capacity backstop in the paper's out-of-core setting).
    pub fn alloc<T: Copy + Default>(
        &mut self,
        loc: MemLocation,
        len: usize,
    ) -> Result<Buffer<T>, SimError> {
        self.alloc_from_vec(loc, vec![T::default(); len])
    }

    /// Allocate a buffer at `loc` initialized with `data` (host-side copy;
    /// not counted — staging input data is pre-query work). See
    /// [`Gpu::alloc`] for the failure modes of device allocations.
    pub fn alloc_from_vec<T: Copy>(
        &mut self,
        loc: MemLocation,
        data: Vec<T>,
    ) -> Result<Buffer<T>, SimError> {
        self.access_lines();
        let reserved = self.reservation_bytes::<T>(data.len());
        if loc == MemLocation::Gpu {
            if self.chaos.device_lost {
                self.note_device_lost();
                return Err(SimError::DeviceLost);
            }
            if self.draw_fault(FaultKind::Alloc) {
                self.counters.faults_alloc += 1;
                self.record_event(TraceEvent::Fault {
                    kind: FaultKind::Alloc,
                });
                return Err(SimError::AllocFault);
            }
            let budget = self.spec.hbm_bytes;
            if self.gpu_live_bytes + reserved > budget {
                return Err(SimError::OutOfDeviceMemory {
                    requested: reserved,
                    live: self.gpu_live_bytes,
                    budget,
                });
            }
            self.gpu_live_bytes += reserved;
        }
        let base = self.next_addr;
        // Page-align every allocation so buffers never share a page and the
        // partitioning bit arithmetic (§4.2) sees page-aligned relations.
        self.next_addr = base + reserved;
        Ok(Buffer::from_parts(data, base, loc))
    }

    /// Allocate a zero-initialized host (CPU-memory) buffer. Host
    /// allocations are infallible by contract, so callers staging input or
    /// spilling state to CPU memory need no error paths.
    pub fn alloc_host<T: Copy + Default>(&mut self, len: usize) -> Buffer<T> {
        self.alloc_host_from_vec(vec![T::default(); len])
    }

    /// Allocate a host (CPU-memory) buffer initialized with `data`;
    /// infallible (see [`Gpu::alloc_host`]).
    pub fn alloc_host_from_vec<T: Copy>(&mut self, data: Vec<T>) -> Buffer<T> {
        self.alloc_from_vec(MemLocation::Cpu, data)
            .expect("host allocations are infallible")
    }

    /// Allocate a host (CPU-memory) buffer that *aliases* `data` instead of
    /// copying it — staging a multi-megabyte base column is an `Arc` clone.
    /// Address assignment, accounting, and access semantics are identical to
    /// [`Gpu::alloc_host_from_vec`]; a later device-side write converts the
    /// buffer to owned storage (copy-on-write).
    pub fn alloc_host_shared<T: Copy>(&mut self, data: std::sync::Arc<[T]>) -> Buffer<T> {
        self.access_lines();
        let reserved = self.reservation_bytes::<T>(data.len());
        let base = self.next_addr;
        self.next_addr = base + reserved;
        Buffer::from_shared(data, base, MemLocation::Cpu)
    }

    /// Release a buffer. Device buffers return their reservation to the HBM
    /// budget; host buffers are simply dropped. Address space is not reused
    /// (the engine is a bump allocator), only capacity accounting changes.
    pub fn free<T: Copy>(&mut self, buf: Buffer<T>) {
        if buf.location() == MemLocation::Gpu {
            let reserved = self.reservation_bytes::<T>(buf.len());
            self.gpu_live_bytes = self.gpu_live_bytes.saturating_sub(reserved);
        }
    }

    /// Device bytes currently allocated (page-rounded reservations).
    pub fn live_gpu_bytes(&self) -> u64 {
        self.gpu_live_bytes
    }

    /// Device bytes still available under the HBM budget.
    pub fn gpu_headroom(&self) -> u64 {
        self.spec.hbm_bytes.saturating_sub(self.gpu_live_bytes)
    }

    /// Page-rounded bytes an allocation of `len` elements reserves.
    fn reservation_bytes<T>(&self, len: usize) -> u64 {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let page = self.spec.page_bytes;
        bytes.div_ceil(page).max(1) * page
    }

    /// Install a fault-injection plan (replaces the current plan and resets
    /// the per-kind fault sequences so plans compose reproducibly). The
    /// plan is validated first: NaN or out-of-`[0, 1]` rates are rejected
    /// with [`SimError::InvalidConfig`] instead of silently skewing draws.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), SimError> {
        plan.validate()?;
        self.access_lines();
        self.fault_plan = plan;
        self.fault_seq = [0; 3];
        self.pending_fault = None;
        Ok(())
    }

    /// Install a chaos schedule (validated; replaces the current schedule)
    /// and recompute the effects active at the current virtual time.
    pub fn set_chaos_schedule(&mut self, schedule: ChaosSchedule) -> Result<(), SimError> {
        schedule.validate()?;
        self.access_lines();
        self.chaos_schedule = schedule;
        self.recompute_chaos();
        Ok(())
    }

    /// The active chaos schedule.
    pub fn chaos_schedule(&self) -> &ChaosSchedule {
        &self.chaos_schedule
    }

    /// Move the virtual clock to `t_s` seconds and apply whichever chaos
    /// windows contain that instant. Queued accesses are resolved first so
    /// they are accounted under the old time's effects.
    pub fn set_virtual_time(&mut self, t_s: f64) {
        self.access_lines();
        self.virtual_now_s = t_s;
        if !self.chaos_schedule.is_empty() {
            self.recompute_chaos();
        }
    }

    /// Advance the virtual clock by `dt_s` seconds (see
    /// [`Gpu::set_virtual_time`]).
    pub fn advance_virtual_time(&mut self, dt_s: f64) {
        self.set_virtual_time(self.virtual_now_s + dt_s);
    }

    /// The current virtual time, in seconds.
    pub fn virtual_now_s(&self) -> f64 {
        self.virtual_now_s
    }

    /// The combined chaos effects active at the current virtual time.
    pub fn chaos_activity(&self) -> ChaosActivity {
        self.chaos_schedule.activity_at(self.virtual_now_s)
    }

    /// Whether a device-loss window is active right now.
    pub fn device_lost(&self) -> bool {
        self.chaos.device_lost
    }

    /// Earliest virtual time `>=` now at which no device-loss window is
    /// active — when recovery can rebuild device state.
    pub fn chaos_clearance_s(&self) -> f64 {
        self.chaos_schedule.clearance_s(self.virtual_now_s)
    }

    /// Recompute the cached [`ChaosEffects`] for the current virtual time,
    /// recording a [`TraceEvent::ChaosTransition`] when the active set
    /// changed.
    fn recompute_chaos(&mut self) {
        let a = self.chaos_schedule.activity_at(self.virtual_now_s);
        let (streamed, random) = if a.bandwidth_scale < 1.0 {
            // The degraded link delivers bytes at `scale` × nominal
            // bandwidth; the difference to nominal is stall time, accrued
            // at paper scale (simulated bytes × reproduction factor).
            let ic = &self.spec.interconnect;
            let eff_bw = ic.effective_bandwidth_gbps * 1e9;
            let rand_bw = eff_bw * ic.fine_grained_efficiency;
            let slow = 1.0 / a.bandwidth_scale - 1.0;
            let scale = self.spec.scale.factor as f64;
            (scale * slow * 1e9 / eff_bw, scale * slow * 1e9 / rand_bw)
        } else {
            (0.0, 0.0)
        };
        let next = ChaosEffects {
            link_flap: a.link_flap,
            device_lost: a.device_lost,
            ecc_page_rate: a.ecc_page_rate,
            streamed_stall_ns_per_byte: streamed,
            random_stall_ns_per_byte: random,
        };
        let flags = |e: &ChaosEffects| {
            (
                e.streamed_stall_ns_per_byte > 0.0,
                e.link_flap,
                e.ecc_page_rate > 0.0,
                e.device_lost,
            )
        };
        let changed = flags(&next) != flags(&self.chaos);
        self.chaos = next;
        if changed {
            let (brownout, link_flap, ecc_storm, device_lost) = flags(&self.chaos);
            self.record_event(TraceEvent::ChaosTransition {
                brownout,
                link_flap,
                ecc_storm,
                device_lost,
            });
        }
    }

    /// Accrue brownout stall for `bytes` moved over the degraded link.
    #[inline]
    fn chaos_stall(&mut self, bytes: u64, per_byte_ns: f64) {
        if per_byte_ns > 0.0 {
            self.counters.chaos_stall_ns += (bytes as f64 * per_byte_ns) as u64;
        }
    }

    /// Count and latch a device-loss refusal (at most one per latched
    /// fault, so a kernel body touching many lines reports one loss).
    fn note_device_lost(&mut self) {
        if !matches!(self.pending_fault, Some(SimError::DeviceLost)) {
            self.counters.faults_device_lost += 1;
            self.record_event(TraceEvent::DeviceLost);
            self.pending_fault = Some(SimError::DeviceLost);
        }
    }

    /// The active fault-injection plan.
    pub fn fault_plan(&self) -> FaultPlan {
        self.fault_plan
    }

    /// Set the retry policy operators apply to transient faults.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Draw the next fault decision for `kind` (advances that kind's
    /// deterministic sequence).
    fn draw_fault(&mut self, kind: FaultKind) -> bool {
        if !self.fault_plan.is_active() {
            return false;
        }
        let slot = match kind {
            FaultKind::Alloc => 0,
            FaultKind::Transfer => 1,
            FaultKind::Launch => 2,
        };
        let seq = self.fault_seq[slot];
        self.fault_seq[slot] += 1;
        self.fault_plan.should_fault(kind, seq)
    }

    /// Draw a transfer fault for one interconnect operation; records the
    /// fault and latches it for the surrounding fallible kernel launch.
    /// Chaos windows take precedence over the Bernoulli draws: device loss
    /// refuses the operation outright, a link flap hard-fails it.
    #[inline]
    fn draw_transfer_fault(&mut self) {
        if self.chaos.device_lost {
            self.note_device_lost();
            return;
        }
        if self.chaos.link_flap {
            self.counters.faults_transfer += 1;
            self.counters.faults_link_flap += 1;
            self.record_event(TraceEvent::Fault {
                kind: FaultKind::Transfer,
            });
            if self.pending_fault.is_none() {
                self.pending_fault = Some(SimError::TransientTransferFault);
            }
            return;
        }
        if self.draw_fault(FaultKind::Transfer) {
            self.counters.faults_transfer += 1;
            self.record_event(TraceEvent::Fault {
                kind: FaultKind::Transfer,
            });
            if self.pending_fault.is_none() {
                self.pending_fault = Some(SimError::TransientTransferFault);
            }
        }
    }

    /// Record one event into the active trace, if any.
    #[inline]
    fn record_event(&mut self, ev: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.record(ev);
        }
    }

    /// Clear any latched fault (called at fallible kernel entry).
    #[doc(hidden)]
    pub fn clear_pending_fault(&mut self) {
        self.access_lines();
        self.pending_fault = None;
    }

    /// Take the fault latched during the current kernel body, if any. Any
    /// accesses still in the issue queue are resolved first so their fault
    /// draws are observed by the surrounding fallible launch.
    #[doc(hidden)]
    pub fn take_pending_fault(&mut self) -> Option<SimError> {
        self.access_lines();
        self.pending_fault.take()
    }

    /// Count a kernel launch and draw an injected launch failure. Used by
    /// [`try_launch_kernel`](crate::exec::try_launch_kernel); the infallible
    /// [`kernel_launch`](Gpu::kernel_launch) never fails.
    #[doc(hidden)]
    pub fn try_begin_launch(&mut self) -> Result<(), SimError> {
        self.kernel_launch();
        if self.chaos.device_lost {
            self.note_device_lost();
            return Err(SimError::DeviceLost);
        }
        if self.draw_fault(FaultKind::Launch) {
            self.counters.faults_launch += 1;
            self.record_event(TraceEvent::Fault {
                kind: FaultKind::Launch,
            });
            return Err(SimError::KernelLaunchFailed);
        }
        Ok(())
    }

    /// Charge the deterministic backoff for retry number `attempt`
    /// (0-based) to the counters.
    pub fn record_retry(&mut self, attempt: u32) {
        self.access_lines();
        self.counters.retries += 1;
        let backoff_ns = self.retry.backoff_ns(attempt);
        self.counters.retry_backoff_ns += backoff_ns;
        self.record_event(TraceEvent::Retry {
            attempt,
            backoff_ns,
        });
    }

    /// Record a data-dependent device-side read of `bytes` at `addr`.
    /// Every covered cacheline is accessed individually.
    #[inline]
    pub fn touch_read(&mut self, loc: MemLocation, addr: u64, bytes: u64) {
        self.access_lines();
        debug_assert!(bytes > 0);
        if loc == MemLocation::Cpu {
            self.draw_transfer_fault();
        }
        // Hoist the trace check out of the per-line loop: the untraced
        // instantiation compiles to a loop with no recorder branches at all.
        if self.trace.is_some() {
            self.read_lines::<true>(loc, addr, bytes);
        } else {
            self.read_lines::<false>(loc, addr, bytes);
        }
    }

    /// Defer a data-dependent read: the access is queued and resolved — in
    /// program order — by the next [`Gpu::access_lines`] or by any immediate
    /// accounting call. This is the warp-coalesced issue path: `lockstep`
    /// collects one round's lane loads and resolves them in one drain,
    /// touching the memory-system state once per queue instead of once per
    /// call. Deferral is observationally invisible because data lives in
    /// host memory (values return immediately) and every observation point
    /// drains the queue first.
    #[inline]
    pub fn issue_read(&mut self, loc: MemLocation, addr: u64, bytes: u64) {
        debug_assert!(bytes > 0);
        self.issue.push(IssuedAccess {
            loc,
            addr,
            bytes,
            write: false,
        });
    }

    /// Defer a write (see [`Gpu::issue_read`] for the queue semantics).
    #[inline]
    pub fn issue_write(&mut self, loc: MemLocation, addr: u64, bytes: u64) {
        self.issue.push(IssuedAccess {
            loc,
            addr,
            bytes,
            write: true,
        });
    }

    /// Resolve every queued access in issue (= program) order. Idempotent
    /// and cheap when the queue is empty.
    #[inline]
    pub fn access_lines(&mut self) {
        match self.issue.len() {
            0 => {}
            // Dominant non-lockstep case (pointer-chasing probes drain after
            // every dependent load): resolve the lone request in place and
            // skip the batch scratch machinery entirely. Same accounting
            // order by construction.
            1 => {
                let req = self.issue[0];
                self.issue.clear();
                if req.write {
                    self.write_accounting(req.loc, req.addr, req.bytes);
                } else {
                    if req.loc == MemLocation::Cpu {
                        self.draw_transfer_fault();
                    }
                    if self.trace.is_some() {
                        self.read_lines::<true>(req.loc, req.addr, req.bytes);
                    } else {
                        self.read_lines::<false>(req.loc, req.addr, req.bytes);
                    }
                }
            }
            _ => self.drain_issue_queue(),
        }
    }

    /// The cold path of [`Gpu::access_lines`]: replay the queue through the
    /// same accounting the immediate entry points use. Runs of reads go
    /// through a two-pass batch resolve (see [`Gpu::replay_read_run`]);
    /// interleaved writes are applied in place so program order holds.
    fn drain_issue_queue(&mut self) {
        let queue = std::mem::take(&mut self.issue);
        if self.trace.is_some() {
            self.replay_queue::<true>(&queue);
        } else {
            self.replay_queue::<false>(&queue);
        }
        // Hand the allocation back so steady-state issue never reallocates.
        let mut queue = queue;
        queue.clear();
        self.issue = queue;
    }

    /// Batches below this size skip the two-pass scratch machinery: the
    /// per-run setup (scratch swap, run splitting, cursor bookkeeping)
    /// costs more than it saves until the hash/address precompute has a
    /// handful of lanes to amortize over. Pointer-chasing probes drain 2–3
    /// requests at a time; warp-lockstep rounds drain 32+.
    const SMALL_DRAIN: usize = 8;

    /// Scalar replay for small batches — the plain program-order loop the
    /// pre-batch engine ran, with identical accounting per request.
    fn replay_small<const TRACED: bool>(&mut self, queue: &[IssuedAccess]) {
        for req in queue {
            if req.write {
                self.write_accounting(req.loc, req.addr, req.bytes);
            } else {
                if req.loc == MemLocation::Cpu {
                    self.draw_transfer_fault();
                }
                self.read_lines::<TRACED>(req.loc, req.addr, req.bytes);
            }
        }
    }

    fn replay_queue<const TRACED: bool>(&mut self, queue: &[IssuedAccess]) {
        if queue.len() <= Self::SMALL_DRAIN {
            self.replay_small::<TRACED>(queue);
            return;
        }
        let mut i = 0;
        while i < queue.len() {
            let req = &queue[i];
            if req.write {
                self.write_accounting(req.loc, req.addr, req.bytes);
                i += 1;
                continue;
            }
            let run_end = queue[i..]
                .iter()
                .position(|r| r.write)
                .map_or(queue.len(), |p| i + p);
            self.replay_read_run::<TRACED>(&queue[i..run_end]);
            i = run_end;
        }
    }

    /// Resolve a maximal run of queued reads in two passes.
    ///
    /// **Pass 1 — data-parallel lane math (pure).** Expand every request
    /// into its cacheline sequence and precompute each lane's line address
    /// and the set/tag hash shared by the L1 and L2 selectors. Nothing here
    /// reads or writes simulator state, so hoisting it out of the replay
    /// loop commutes with everything and the compiler is free to pipeline
    /// the multiply-heavy hash math across all lanes of the batch.
    ///
    /// **Pass 2 — program-order application.** State transitions (LRU
    /// refreshes, fills, evictions, TLB walks), counters, fault draws, and
    /// trace events happen in exactly the order the scalar path produced
    /// them. Lanes are *not* independent — a duplicate line or a same-set
    /// conflict within one batch changes the later lane's hit/miss outcome
    /// — so classification against mutable state cannot be hoisted; only
    /// the pure lane math can. The differential suite's anchor cases pin
    /// this boundary.
    fn replay_read_run<const TRACED: bool>(&mut self, run: &[IssuedAccess]) {
        let mut lines = std::mem::take(&mut self.drain_lines);
        let mut hashes = std::mem::take(&mut self.drain_hashes);
        lines.clear();
        hashes.clear();
        let shift = self.line_shift;
        for req in run {
            let first = req.addr >> shift;
            let last = (req.addr + req.bytes - 1) >> shift;
            for line in first..=last {
                lines.push(line << shift);
                hashes.push(lru::hash_of(line));
            }
        }
        let mut cursor = 0usize;
        for req in run {
            if req.loc == MemLocation::Cpu {
                self.draw_transfer_fault();
            }
            let n = (((req.addr + req.bytes - 1) >> shift) - (req.addr >> shift)) as usize + 1;
            for k in cursor..cursor + n {
                self.access_line_hashed::<TRACED>(req.loc, lines[k], hashes[k]);
            }
            cursor += n;
        }
        self.drain_lines = lines;
        self.drain_hashes = hashes;
    }

    /// Per-line accounting of one read request.
    #[inline]
    fn read_lines<const TRACED: bool>(&mut self, loc: MemLocation, addr: u64, bytes: u64) {
        let first = addr >> self.line_shift;
        let last = (addr + bytes - 1) >> self.line_shift;
        for line in first..=last {
            self.access_line_read::<TRACED>(loc, line << self.line_shift);
        }
    }

    /// Record a device-side write of `bytes` at `addr`. Writes are modeled
    /// as streaming stores (no write-allocate): GPU kernels in this domain
    /// write results and partitions once and never read them back through
    /// the same kernel's caches.
    #[inline]
    pub fn touch_write(&mut self, loc: MemLocation, addr: u64, bytes: u64) {
        self.access_lines();
        self.write_accounting(loc, addr, bytes);
    }

    /// The accounting body shared by [`Gpu::touch_write`] and the issued
    /// write path (which must not re-drain the queue mid-replay).
    #[inline]
    fn write_accounting(&mut self, loc: MemLocation, addr: u64, bytes: u64) {
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent::Write { loc, addr, bytes });
        }
        match loc {
            MemLocation::Gpu => self.counters.gpu_bytes_written += bytes,
            MemLocation::Cpu => {
                self.draw_transfer_fault();
                self.counters.ic_bytes_written += bytes;
                let per_byte = self.chaos.streamed_stall_ns_per_byte;
                self.chaos_stall(bytes, per_byte);
                // Writes to CPU memory still need translations.
                self.translate(addr, bytes);
            }
        }
    }

    /// Record a sequential streaming read (table scan, probe-key stream).
    /// Counts full-bandwidth bytes; touches the TLB once per page, so scans
    /// do not thrash it (§4.3.1).
    #[inline]
    pub fn stream_read(&mut self, loc: MemLocation, addr: u64, bytes: u64) {
        self.access_lines();
        debug_assert!(bytes > 0);
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent::StreamRead { loc, addr, bytes });
        }
        match loc {
            MemLocation::Gpu => self.counters.gpu_bytes_read += bytes,
            MemLocation::Cpu => {
                self.draw_transfer_fault();
                self.counters.ic_bytes_streamed += bytes;
                let per_byte = self.chaos.streamed_stall_ns_per_byte;
                self.chaos_stall(bytes, per_byte);
                self.translate(addr, bytes);
            }
        }
    }

    /// Record a sequential streaming write.
    #[inline]
    pub fn stream_write(&mut self, loc: MemLocation, addr: u64, bytes: u64) {
        self.touch_write(loc, addr, bytes);
    }

    /// Count `n` abstract compute operations (≈ warp-wide instructions).
    #[inline]
    pub fn op(&mut self, n: u64) {
        self.counters.compute_ops += n;
    }

    /// Count `n` completed index lookups (normalizes Fig. 4's metric).
    #[inline]
    pub fn count_lookups(&mut self, n: u64) {
        self.counters.lookups += n;
    }

    /// Record a kernel launch.
    #[inline]
    pub fn kernel_launch(&mut self) {
        self.access_lines();
        self.counters.kernel_launches += 1;
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent::KernelLaunch);
        }
    }

    /// Snapshot the counters (use with `-` for interval deltas).
    pub fn snapshot(&self) -> Counters {
        debug_assert!(self.issue.is_empty(), "issued accesses not yet resolved");
        self.counters
    }

    /// Flush TLB and caches (cold start between queries). Counters are kept;
    /// take snapshots to measure intervals.
    pub fn reset_memory_system(&mut self) {
        self.access_lines();
        self.tlb.flush();
        self.l1.flush();
        self.l2.flush();
        self.last_line = u64::MAX;
        self.missed_pages.clear();
        self.record_event(TraceEvent::TlbFlush);
    }

    /// Slot count of the flat page-stamp table (diagnostic: the bounded
    /// replacement for the old per-session `HashMap` — tests pin that a
    /// multi-query session's footprint stays constant).
    pub fn missed_page_slots(&self) -> usize {
        self.missed_pages.capacity()
    }

    /// Whether the page holding `addr` currently has a cached translation
    /// (diagnostic; no side effects).
    pub fn tlb_resident(&self, addr: u64) -> bool {
        self.tlb.is_resident(addr)
    }

    #[inline]
    fn access_line_read<const TRACED: bool>(&mut self, loc: MemLocation, line_addr: u64) {
        self.access_clock += 1;
        // Consecutive-same-line fast path: the previous access left this
        // line MRU (rank 0) in its L1 set, so it is a guaranteed hit and
        // the refresh is a no-op — skip the hash and the set walk entirely.
        // (Addresses are unique across buffers, so a line address implies
        // its location; no `loc` check is needed.)
        if line_addr == self.last_line {
            self.counters.l1_hits += 1;
            if TRACED {
                self.record_event(TraceEvent::ReadLine {
                    loc,
                    line_addr,
                    hit: HitLevel::L1,
                });
            }
            return;
        }
        // L1 and L2 share the line size: hash the tag once for both.
        let hash = lru::hash_of(line_addr >> self.line_shift);
        self.access_line_cold::<TRACED>(loc, line_addr, hash);
    }

    /// [`Gpu::access_line_read`] with the tag hash precomputed by the
    /// drain's batch pass (pure lane math, so it is identical to what the
    /// scalar path would compute here).
    #[inline]
    fn access_line_hashed<const TRACED: bool>(
        &mut self,
        loc: MemLocation,
        line_addr: u64,
        hash: u64,
    ) {
        self.access_clock += 1;
        if line_addr == self.last_line {
            self.counters.l1_hits += 1;
            if TRACED {
                self.record_event(TraceEvent::ReadLine {
                    loc,
                    line_addr,
                    hit: HitLevel::L1,
                });
            }
            return;
        }
        self.access_line_cold::<TRACED>(loc, line_addr, hash);
    }

    /// The shared cold body: classify against L1/L2/TLB state and account.
    #[inline]
    fn access_line_cold<const TRACED: bool>(
        &mut self,
        loc: MemLocation,
        line_addr: u64,
        hash: u64,
    ) {
        self.last_line = line_addr;
        let hit = if self.l1.access_hashed(line_addr, hash) {
            self.counters.l1_hits += 1;
            HitLevel::L1
        } else {
            self.counters.l1_misses += 1;
            if self.l2.access_hashed(line_addr, hash) {
                self.counters.l2_hits += 1;
                HitLevel::L2
            } else {
                self.counters.l2_misses += 1;
                match loc {
                    MemLocation::Gpu => {
                        if self.chaos.ecc_page_rate > 0.0
                            && self.chaos_schedule.page_quarantined(
                                line_addr >> self.page_shift,
                                self.chaos.ecc_page_rate,
                            )
                        {
                            // ECC storm: the page's HBM copy is quarantined;
                            // the line is re-fetched over the interconnect
                            // (priced at the fine-grained-read bandwidth by
                            // the cost model) instead of read from device
                            // memory. The caches still fill, so the penalty
                            // is paid once per (re-)fetch.
                            self.counters.ecc_refetch_lines += 1;
                            if TRACED {
                                self.record_event(TraceEvent::EccRefetch { line_addr });
                            }
                        } else {
                            self.counters.gpu_bytes_read += self.spec.cacheline_bytes;
                        }
                        HitLevel::GpuMem
                    }
                    MemLocation::Cpu => {
                        let tlb_hit = self.tlb.access(line_addr);
                        if tlb_hit {
                            self.counters.tlb_hits += 1;
                        } else {
                            self.record_tlb_miss(line_addr >> self.page_shift);
                        }
                        self.counters.ic_lines_random += 1;
                        self.counters.ic_bytes_random += self.spec.cacheline_bytes;
                        let per_byte = self.chaos.random_stall_ns_per_byte;
                        self.chaos_stall(self.spec.cacheline_bytes, per_byte);
                        HitLevel::Remote { tlb_hit }
                    }
                }
            }
        };
        if TRACED {
            self.record_event(TraceEvent::ReadLine {
                loc,
                line_addr,
                hit,
            });
        }
    }

    /// TLB traffic for a (possibly multi-page) sequential or write access.
    /// Each page translation is traced as [`TraceEvent::Translate`] so the
    /// trace carries *every* TLB access the counters see (random reads
    /// record theirs inside [`TraceEvent::ReadLine`]).
    #[inline]
    fn translate(&mut self, addr: u64, bytes: u64) {
        let first = addr >> self.page_shift;
        let last = (addr + bytes - 1) >> self.page_shift;
        for page in first..=last {
            let hit = self.tlb.access(page << self.page_shift);
            if hit {
                self.counters.tlb_hits += 1;
            } else {
                self.record_tlb_miss(page);
            }
            self.record_event(TraceEvent::Translate {
                page_addr: page << self.page_shift,
                hit,
            });
        }
    }

    /// Cacheline size helper (used by index layouts).
    #[inline]
    pub fn cacheline_bytes(&self) -> u64 {
        self.spec.cacheline_bytes
    }

    #[allow(dead_code)]
    fn line_mask(&self) -> u64 {
        self.line_mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    #[test]
    fn repeated_read_hits_cache() {
        let mut g = gpu();
        let buf = g.alloc_host_from_vec(vec![0u64; 64]);
        let _ = buf.read(&mut g, 0);
        let before = g.snapshot();
        let _ = buf.read(&mut g, 1); // same cacheline
        let d = g.snapshot() - before;
        assert_eq!(d.ic_lines_random, 0);
        assert_eq!(d.l1_hits + d.l2_hits, 1);
    }

    #[test]
    fn tlb_miss_once_per_page_when_working_set_fits() {
        let mut g = gpu();
        let page = g.spec().page_bytes as usize;
        // Two pages of data; read one element per cacheline, twice.
        let n = 2 * page / 8;
        let buf = g.alloc_host_from_vec(vec![0u64; n]);
        let step = (g.spec().cacheline_bytes / 8) as usize;
        for round in 0..2 {
            let before = g.snapshot();
            for i in (0..n).step_by(step) {
                let _ = buf.read(&mut g, i);
            }
            let d = g.snapshot() - before;
            if round == 0 {
                assert_eq!(d.tlb_misses, 2, "cold: one miss per page");
            }
        }
    }

    #[test]
    fn tlb_thrashes_beyond_coverage() {
        let mut g = gpu();
        let page = g.spec().page_bytes;
        let entries = g.spec().tlb_entries as u64;
        // Allocate data covering 2x the TLB range; cyclically touch one line
        // per page. Each line is cold in the caches at the scaled L1/L2
        // sizes except... use distinct lines each round to defeat caches.
        let pages = 2 * entries;
        let n = (pages * page / 8) as usize;
        let buf = g.alloc_host_from_vec(vec![0u64; n]);
        let per_page = (page / 8) as usize;
        let mut misses_last_round = 0;
        for round in 0..3u64 {
            let before = g.snapshot();
            for p in 0..pages as usize {
                // Different line each round so data caches never filter.
                let idx = p * per_page + (round as usize + 1) * 16;
                let _ = buf.read(&mut g, idx);
            }
            misses_last_round = (g.snapshot() - before).tlb_misses;
        }
        // LRU + cyclic over 2x coverage => every access misses.
        assert_eq!(misses_last_round, pages);
    }

    #[test]
    fn streaming_scan_minimal_tlb_traffic() {
        let mut g = gpu();
        let page = g.spec().page_bytes;
        let n = (4 * page / 8) as usize;
        let buf = g.alloc_host_from_vec(vec![0u64; n]);
        let before = g.snapshot();
        let chunk = 4096;
        for i in (0..n).step_by(chunk) {
            let _ = buf.stream_read(&mut g, i, chunk.min(n - i));
        }
        let d = g.snapshot() - before;
        assert_eq!(d.ic_bytes_streamed, n as u64 * 8);
        // 4 pages -> at most a handful of translations (page boundaries may
        // be visited by two chunks).
        assert!(d.tlb_misses <= 8, "got {} misses", d.tlb_misses);
        assert_eq!(d.ic_lines_random, 0);
    }

    #[test]
    fn gpu_memory_never_touches_tlb() {
        let mut g = gpu();
        let n = (4 * g.spec().page_bytes / 8) as usize;
        let buf = g.alloc_from_vec(MemLocation::Gpu, vec![0u64; n]).unwrap();
        let before = g.snapshot();
        let step = (g.spec().cacheline_bytes / 8) as usize;
        for i in (0..n).step_by(step) {
            let _ = buf.read(&mut g, i);
        }
        let d = g.snapshot() - before;
        assert_eq!(d.tlb_misses, 0);
        assert_eq!(d.tlb_hits, 0);
        assert!(d.gpu_bytes_read > 0);
        assert_eq!(d.ic_bytes_total(), 0);
    }

    #[test]
    fn multi_line_read_counts_each_line() {
        let mut g = gpu();
        let buf = g.alloc_host_from_vec(vec![0u64; 1024]);
        let before = g.snapshot();
        // 4 KiB node = 32 cachelines of 128 B.
        let _ = buf.read_range(&mut g, 0, 512);
        let d = g.snapshot() - before;
        assert_eq!(d.ic_lines_random, 32);
    }

    #[test]
    fn brownout_accrues_stall_only_inside_the_window() {
        use crate::chaos::{ChaosKind, ChaosSchedule};
        let mut g = gpu();
        g.set_chaos_schedule(ChaosSchedule::seeded(1).with_window(
            ChaosKind::Brownout {
                bandwidth_scale: 0.5,
            },
            1.0,
            2.0,
        ))
        .unwrap();
        let buf = g.alloc_host_from_vec(vec![0u64; 4096]);
        // Before the window: no stall.
        let before = g.snapshot();
        buf.stream_read(&mut g, 0, 4096);
        let _ = buf.read(&mut g, 0);
        assert_eq!((g.snapshot() - before).chaos_stall_ns, 0);
        // Inside: streamed and random remote bytes both accrue stall.
        g.set_virtual_time(1.5);
        let before = g.snapshot();
        buf.stream_read(&mut g, 0, 4096);
        let streamed_stall = (g.snapshot() - before).chaos_stall_ns;
        assert!(streamed_stall > 0, "streamed bytes must stall");
        g.reset_memory_system();
        let before = g.snapshot();
        let _ = buf.read(&mut g, 512);
        let random_stall = (g.snapshot() - before).chaos_stall_ns;
        assert!(random_stall > 0, "random remote lines must stall");
        // After: calm again.
        g.set_virtual_time(2.0);
        let before = g.snapshot();
        buf.stream_read(&mut g, 0, 4096);
        assert_eq!((g.snapshot() - before).chaos_stall_ns, 0);
    }

    #[test]
    fn link_flap_hard_fails_transfers_during_the_window() {
        use crate::chaos::{ChaosKind, ChaosSchedule};
        use crate::exec::try_launch_kernel;
        let mut g = gpu();
        g.set_chaos_schedule(ChaosSchedule::seeded(1).with_window(ChaosKind::LinkFlap, 0.0, 1.0))
            .unwrap();
        let buf = g.alloc_host_from_vec(vec![0u64; 64]);
        let err = try_launch_kernel(&mut g, |g| {
            let _ = buf.read(g, 0);
        })
        .unwrap_err();
        assert_eq!(err, SimError::TransientTransferFault);
        let c = g.counters();
        assert!(c.faults_link_flap > 0);
        assert_eq!(c.faults_link_flap, c.faults_transfer);
        // Past the window the same kernel succeeds.
        g.set_virtual_time(1.0);
        assert!(try_launch_kernel(&mut g, |g| {
            let _ = buf.read(g, 1);
        })
        .is_ok());
    }

    #[test]
    fn device_loss_refuses_allocs_launches_and_transfers() {
        use crate::chaos::{ChaosKind, ChaosSchedule};
        use crate::exec::try_launch_kernel;
        let mut g = gpu();
        g.set_chaos_schedule(ChaosSchedule::seeded(1).with_window(ChaosKind::DeviceLoss, 1.0, 2.5))
            .unwrap();
        let host = g.alloc_host_from_vec(vec![0u64; 64]);
        // Before the window the device works.
        assert!(g.alloc_from_vec(MemLocation::Gpu, vec![0u64; 16]).is_ok());
        g.set_virtual_time(1.0);
        assert!(g.device_lost());
        assert_eq!(
            g.alloc_from_vec(MemLocation::Gpu, vec![0u64; 16])
                .unwrap_err(),
            SimError::DeviceLost
        );
        let err = try_launch_kernel(&mut g, |_| ()).unwrap_err();
        assert_eq!(err, SimError::DeviceLost);
        let err = try_launch_kernel(&mut g, |g| {
            let _ = host.read(g, 0);
        })
        .unwrap_err();
        assert_eq!(err, SimError::DeviceLost, "transfers also refuse");
        assert!(!SimError::DeviceLost.is_transient());
        assert!(g.counters().faults_device_lost > 0);
        assert_eq!(g.chaos_clearance_s(), 2.5);
        g.set_virtual_time(g.chaos_clearance_s());
        assert!(!g.device_lost());
        assert!(g.alloc_from_vec(MemLocation::Gpu, vec![0u64; 16]).is_ok());
    }

    #[test]
    fn ecc_storm_refetches_quarantined_lines_over_the_interconnect() {
        use crate::chaos::{ChaosKind, ChaosSchedule};
        let mut g = gpu();
        g.set_chaos_schedule(ChaosSchedule::seeded(3).with_window(
            ChaosKind::EccStorm { page_rate: 1.0 },
            0.0,
            1.0,
        ))
        .unwrap();
        let pages = 4 * g.spec().page_bytes;
        let n = (pages / 8) as usize;
        let buf = g.alloc_from_vec(MemLocation::Gpu, vec![0u64; n]).unwrap();
        let step = (g.spec().cacheline_bytes / 8) as usize;
        let before = g.snapshot();
        for i in (0..n).step_by(step) {
            let _ = buf.read(&mut g, i);
        }
        let d = g.snapshot() - before;
        assert!(d.ecc_refetch_lines > 0, "rate 1.0 quarantines every page");
        assert_eq!(d.gpu_bytes_read, 0, "no line was served from HBM");
        // Refetched lines still fill the caches: an immediate repeat access
        // to the same line hits on-chip without another refetch.
        let _ = buf.read(&mut g, 0);
        let before = g.snapshot();
        let _ = buf.read(&mut g, 0);
        let d2 = g.snapshot() - before;
        assert_eq!(d2.ecc_refetch_lines, 0);
        assert_eq!(d2.l1_hits, 1);
        // Past the storm, device memory serves normally again.
        g.set_virtual_time(1.0);
        g.reset_memory_system();
        let before = g.snapshot();
        let _ = buf.read(&mut g, 0);
        let d3 = g.snapshot() - before;
        assert_eq!(d3.ecc_refetch_lines, 0);
        assert!(d3.gpu_bytes_read > 0);
    }

    #[test]
    fn chaos_transitions_are_traced_and_deterministic() {
        use crate::chaos::ChaosScenario;
        use crate::trace::TraceEvent;
        let run = || {
            let mut g = gpu();
            g.set_chaos_schedule(ChaosScenario::Combined.schedule(7))
                .unwrap();
            g.start_trace(1 << 10);
            let buf = g.alloc_host_from_vec(vec![0u64; 1024]);
            for step in 0..12 {
                g.set_virtual_time(step as f64 * 0.005);
                buf.stream_read(&mut g, 0, 64);
            }
            (g.stop_trace().into_events(), g.counters())
        };
        let (ev_a, c_a) = run();
        let (ev_b, c_b) = run();
        assert_eq!(ev_a, ev_b, "chaos runs must be byte-deterministic");
        assert_eq!(c_a, c_b);
        let transitions = ev_a
            .iter()
            .filter(|e| matches!(e, TraceEvent::ChaosTransition { .. }))
            .count();
        assert!(transitions >= 2, "windows must open and close in the trace");
    }

    #[test]
    fn invalid_plans_and_schedules_are_rejected_at_install() {
        use crate::chaos::{ChaosKind, ChaosSchedule};
        let mut g = gpu();
        let err = g
            .set_fault_plan(FaultPlan::seeded(1).with_transfer_faults(f64::NAN))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        assert!(
            !g.fault_plan().is_active(),
            "rejected plan is not installed"
        );
        let err = g
            .set_chaos_schedule(ChaosSchedule::seeded(1).with_window(ChaosKind::LinkFlap, 5.0, 1.0))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
        assert!(g.chaos_schedule().is_empty());
    }

    #[test]
    fn reset_memory_system_forces_cold_misses() {
        let mut g = gpu();
        let buf = g.alloc_host_from_vec(vec![0u64; 16]);
        let _ = buf.read(&mut g, 0);
        g.reset_memory_system();
        let before = g.snapshot();
        let _ = buf.read(&mut g, 0);
        let d = g.snapshot() - before;
        assert_eq!(d.ic_lines_random, 1);
        assert_eq!(d.tlb_misses, 1);
    }
}
