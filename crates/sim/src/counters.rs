//! Performance counters collected by the GPU model.
//!
//! These play the role of the POWER9 hardware performance counters the paper
//! uses to observe the GPU's address-translation traffic (§3.3.2), plus the
//! usual cache/transfer counters needed by the cost model.

use crate::fault::SimError;
use serde::Serialize;
use std::ops::{Add, Sub};

/// Invoke a macro once with the full list of counter fields. Every
/// element-wise operation (delta, sum, inversion check) goes through this
/// single list, so adding a counter cannot silently miss one of them.
macro_rules! for_each_counter {
    ($m:ident) => {
        $m!(
            ic_lines_random,
            ic_bytes_random,
            ic_bytes_streamed,
            ic_bytes_written,
            tlb_hits,
            tlb_misses,
            tlb_sweep_misses,
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            gpu_bytes_read,
            gpu_bytes_written,
            compute_ops,
            kernel_launches,
            lookups,
            faults_alloc,
            faults_transfer,
            faults_launch,
            faults_link_flap,
            faults_device_lost,
            ecc_refetch_lines,
            chaos_stall_ns,
            retries,
            retry_backoff_ns
        )
    };
}

/// Cumulative event counters. All counts are in *simulated* units; the cost
/// model scales them back up to paper scale.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Counters {
    /// Cachelines fetched from CPU memory over the interconnect by
    /// data-dependent (random) accesses.
    pub ic_lines_random: u64,
    /// Bytes fetched from CPU memory by data-dependent accesses.
    pub ic_bytes_random: u64,
    /// Bytes streamed sequentially from CPU memory (table scans, probe-key
    /// streams). Streaming reads achieve the full effective bandwidth.
    pub ic_bytes_streamed: u64,
    /// Bytes written back to CPU memory (e.g. result spilling).
    pub ic_bytes_written: u64,
    /// GPU TLB hits.
    pub tlb_hits: u64,
    /// GPU TLB misses. Every miss issues one address-translation request
    /// across the interconnect to the CPU's IOMMU (§3.3.2), so this equals
    /// the paper's "translation requests" metric.
    pub tlb_misses: u64,
    /// The subset of `tlb_misses` that are *page-sweep* events: compulsory
    /// first touches plus periodic re-misses (pages revisited after a long
    /// interval, e.g. once per window). Their counts are proportional to
    /// pages × phases, which the reproduction scale does not shrink — so
    /// the cost model prices them unscaled. The remaining misses are
    /// *thrashing* re-misses (rapid evictions by concurrent lookups), which
    /// scale with the lookup rate.
    pub tlb_sweep_misses: u64,
    /// L1 data-cache hits.
    pub l1_hits: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 data-cache hits.
    pub l2_hits: u64,
    /// L2 data-cache misses.
    pub l2_misses: u64,
    /// Bytes read from GPU device memory.
    pub gpu_bytes_read: u64,
    /// Bytes written to GPU device memory.
    pub gpu_bytes_written: u64,
    /// Abstract compute operations (one unit ≈ one warp-wide instruction).
    pub compute_ops: u64,
    /// Number of kernel launches.
    pub kernel_launches: u64,
    /// Number of index lookups performed (for per-lookup normalization,
    /// as in Fig. 4's "translation requests per lookup").
    pub lookups: u64,
    /// Injected device-allocation failures observed.
    pub faults_alloc: u64,
    /// Injected transient transfer faults observed.
    pub faults_transfer: u64,
    /// Injected kernel-launch failures observed.
    pub faults_launch: u64,
    /// The subset of `faults_transfer` fired by a chaos link-flap window
    /// (time-correlated hard failures rather than independent draws).
    pub faults_link_flap: u64,
    /// Operations refused because a chaos device-loss window was active.
    /// Not counted in `faults_total` — device loss is a correlated outage,
    /// not an independent injected fault.
    pub faults_device_lost: u64,
    /// Device cachelines re-fetched over the interconnect because their
    /// page was quarantined by a chaos ECC storm.
    pub ecc_refetch_lines: u64,
    /// Stall time accrued by chaos brownout windows (the bandwidth the
    /// degraded link could not deliver), in paper-scale nanoseconds. Priced
    /// unscaled by the cost model, like `retry_backoff_ns`.
    pub chaos_stall_ns: u64,
    /// Operator retries performed in response to transient faults.
    pub retries: u64,
    /// Deterministic retry backoff accumulated, in nanoseconds. Priced by
    /// the cost model as unscaled stall time (like kernel launches).
    pub retry_backoff_ns: u64,
}

impl Counters {
    /// Address-translation requests sent to the CPU (= TLB misses).
    pub fn translation_requests(&self) -> u64 {
        self.tlb_misses
    }

    /// Translation requests per index lookup — the y-axis of Fig. 4.
    /// Returns 0.0 if no lookups were recorded.
    pub fn translations_per_lookup(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.tlb_misses as f64 / self.lookups as f64
        }
    }

    /// Total bytes that crossed the interconnect (both directions, payload
    /// only; translation traffic is accounted separately by the cost model).
    pub fn ic_bytes_total(&self) -> u64 {
        self.ic_bytes_random + self.ic_bytes_streamed + self.ic_bytes_written
    }

    /// Total injected faults observed, across all kinds.
    pub fn faults_total(&self) -> u64 {
        self.faults_alloc + self.faults_transfer + self.faults_launch
    }

    /// L1 hit rate in [0, 1]; 0.0 if there were no L1 accesses.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// L2 hit rate in [0, 1]; 0.0 if there were no L2 accesses.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// TLB hit rate in [0, 1]; 0.0 if there were no TLB accesses.
    pub fn tlb_hit_rate(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            0.0
        } else {
            self.tlb_hits as f64 / total as f64
        }
    }

    /// Strict interval delta: `after.checked_delta(before)` yields the
    /// events between two snapshots, or a typed
    /// [`SimError::CounterDeltaInverted`] naming the first inverted field
    /// when the snapshots were captured out of order (or across a counter
    /// reset). Use this wherever a garbage delta would poison a report;
    /// the `-` operator saturates instead of failing.
    pub fn checked_delta(self, before: Counters) -> Result<Counters, SimError> {
        macro_rules! check_fields {
            ($($f:ident),+) => {{
                $(
                    if self.$f < before.$f {
                        return Err(SimError::CounterDeltaInverted {
                            field: stringify!($f),
                        });
                    }
                )+
            }};
        }
        for_each_counter!(check_fields);
        Ok(self - before)
    }
}

impl Sub for Counters {
    type Output = Counters;

    /// Element-wise *saturating* difference: `after - before` yields the
    /// events of the interval between two snapshots. An inverted pair
    /// (snapshots out of order, or taken across a counter reset) clamps to
    /// zero instead of panicking in debug / wrapping in release; use
    /// [`Counters::checked_delta`] to surface inversion as a typed error.
    fn sub(self, rhs: Counters) -> Counters {
        macro_rules! sub_fields {
            ($($f:ident),+) => {
                Counters { $($f: self.$f.saturating_sub(rhs.$f)),+ }
            };
        }
        for_each_counter!(sub_fields)
    }
}

impl Add for Counters {
    type Output = Counters;

    /// Element-wise saturating sum — used to aggregate per-phase and
    /// per-window deltas back into run totals.
    fn add(self, rhs: Counters) -> Counters {
        macro_rules! add_fields {
            ($($f:ident),+) => {
                Counters { $($f: self.$f.saturating_add(rhs.$f)),+ }
            };
        }
        for_each_counter!(add_fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtraction() {
        let before = Counters {
            tlb_misses: 5,
            lookups: 10,
            ..Counters::default()
        };
        let after = Counters {
            tlb_misses: 25,
            lookups: 20,
            ..Counters::default()
        };
        let d = after - before;
        assert_eq!(d.tlb_misses, 20);
        assert_eq!(d.lookups, 10);
        assert!((d.translations_per_lookup() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_delta_saturates_instead_of_panicking() {
        // Regression: a delta across a counter reset (or out-of-order
        // snapshots) used to panic in debug and wrap to garbage in release.
        let before = Counters {
            tlb_misses: 25,
            lookups: 20,
            ..Counters::default()
        };
        let after = Counters {
            tlb_misses: 5,
            lookups: 30,
            ..Counters::default()
        };
        let d = after - before;
        assert_eq!(d.tlb_misses, 0, "inverted field clamps to zero");
        assert_eq!(d.lookups, 10, "well-ordered fields still subtract");
    }

    #[test]
    fn checked_delta_surfaces_inversion_as_typed_error() {
        let before = Counters {
            l1_hits: 7,
            ..Counters::default()
        };
        let after = Counters {
            l1_hits: 3,
            ..Counters::default()
        };
        let err = after.checked_delta(before).unwrap_err();
        assert_eq!(err, SimError::CounterDeltaInverted { field: "l1_hits" });
        // A well-ordered pair matches the `-` operator exactly.
        let ok = before.checked_delta(after - after).unwrap();
        assert_eq!(ok, before);
    }

    #[test]
    fn add_is_elementwise() {
        let a = Counters {
            tlb_misses: 3,
            lookups: 1,
            ..Counters::default()
        };
        let b = Counters {
            tlb_misses: 4,
            retries: 2,
            ..Counters::default()
        };
        let s = a + b;
        assert_eq!(s.tlb_misses, 7);
        assert_eq!(s.lookups, 1);
        assert_eq!(s.retries, 2);
    }

    #[test]
    fn rates_handle_zero() {
        let c = Counters::default();
        assert_eq!(c.l1_hit_rate(), 0.0);
        assert_eq!(c.tlb_hit_rate(), 0.0);
        assert_eq!(c.translations_per_lookup(), 0.0);
    }

    #[test]
    fn hit_rates() {
        let c = Counters {
            l1_hits: 69,
            l1_misses: 31,
            tlb_hits: 3,
            tlb_misses: 1,
            ..Counters::default()
        };
        assert!((c.l1_hit_rate() - 0.69).abs() < 1e-12);
        assert!((c.tlb_hit_rate() - 0.75).abs() < 1e-12);
    }
}
