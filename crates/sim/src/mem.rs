//! Simulated memory: placement-aware buffers in a shared virtual address
//! space.
//!
//! A [`Buffer`] holds real host data (an owned `Vec<T>`, or shared
//! `Arc<[T]>` storage aliasing a staged column — see [`Storage`]) and
//! carries a base virtual address plus a placement ([`MemLocation::Cpu`] for out-of-core base
//! relations and indexes, [`MemLocation::Gpu`] for device-resident state such
//! as hash tables and partition buffers). Every device-side access goes
//! through the [`Gpu`] engine, which drives the
//! TLB/cache/interconnect models; host-side accessors (`host`, `host_mut`)
//! bypass accounting and model work the CPU does ahead of query time, such
//! as bulk-loading an index (§3.2: "we assume the index already exists when
//! the query is run").

use crate::engine::Gpu;
use std::mem::{size_of, size_of_val};
use std::sync::Arc;

/// Where a buffer physically resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum MemLocation {
    /// GPU device memory (HBM). Fast, capacity-limited, no remote TLB
    /// involvement.
    Gpu,
    /// CPU main memory, accessed by the GPU across the interconnect at
    /// cacheline granularity (§2.1).
    Cpu,
}

/// Backing storage of a [`Buffer`]: exclusively owned, or aliasing a
/// read-mostly column shared with the workload layer (e.g. a staged base
/// relation). Shared storage turns staging a multi-megabyte column into an
/// `Arc` clone; the first device-side *write* silently converts to owned
/// (copy-on-write), so buffer semantics are unchanged either way.
#[derive(Debug, Clone)]
enum Storage<T> {
    Owned(Vec<T>),
    Shared(Arc<[T]>),
}

impl<T: Copy> Storage<T> {
    #[inline]
    fn as_slice(&self) -> &[T] {
        match self {
            Storage::Owned(v) => v,
            Storage::Shared(a) => a,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [T] {
        if let Storage::Shared(a) = self {
            *self = Storage::Owned(a.to_vec());
        }
        match self {
            Storage::Owned(v) => v,
            Storage::Shared(_) => unreachable!("converted to owned above"),
        }
    }
}

/// A typed, placement-aware memory region with a stable virtual base address.
#[derive(Debug, Clone)]
pub struct Buffer<T> {
    data: Storage<T>,
    base: u64,
    loc: MemLocation,
}

impl<T: Copy> Buffer<T> {
    /// Internal constructor; use [`Gpu::alloc`] / [`Gpu::alloc_from_vec`].
    pub(crate) fn from_parts(data: Vec<T>, base: u64, loc: MemLocation) -> Self {
        Buffer {
            data: Storage::Owned(data),
            base,
            loc,
        }
    }

    /// Internal constructor for shared (zero-copy) storage; use
    /// [`Gpu::alloc_host_shared`].
    pub(crate) fn from_shared(data: Arc<[T]>, base: u64, loc: MemLocation) -> Self {
        Buffer {
            data: Storage::Shared(data),
            base,
            loc,
        }
    }

    /// The shared (`Arc`) storage backing this buffer, if it was allocated
    /// zero-copy via [`Gpu::alloc_host_shared`] and has not been converted
    /// to owned by a write. While the column stays alive, the returned
    /// `Arc`'s pointer identity is a stable identity for its contents —
    /// callers use it to recognize the same staged column across queries
    /// (e.g. to reuse an index fit).
    pub fn shared_storage(&self) -> Option<Arc<[T]>> {
        match &self.data {
            Storage::Shared(a) => Some(Arc::clone(a)),
            Storage::Owned(_) => None,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.as_slice().len()
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.as_slice().is_empty()
    }

    /// Placement of this buffer.
    pub fn location(&self) -> MemLocation {
        self.loc
    }

    /// Base virtual address.
    pub fn base_addr(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u64 {
        std::mem::size_of_val(self.data.as_slice()) as u64
    }

    /// Virtual address of element `i`.
    #[inline]
    pub fn addr_of(&self, i: usize) -> u64 {
        debug_assert!(i <= self.data.as_slice().len());
        self.base + (i * size_of::<T>()) as u64
    }

    /// Device-side read of element `i`: counted by the memory system.
    #[inline]
    pub fn read(&self, gpu: &mut Gpu, i: usize) -> T {
        gpu.touch_read(self.loc, self.addr_of(i), size_of::<T>() as u64);
        self.data.as_slice()[i]
    }

    /// Device-side read of `count` contiguous elements starting at `i`
    /// (a coalesced access: all covered cachelines are fetched once).
    #[inline]
    pub fn read_range(&self, gpu: &mut Gpu, i: usize, count: usize) -> &[T] {
        gpu.touch_read(self.loc, self.addr_of(i), (count * size_of::<T>()) as u64);
        &self.data.as_slice()[i..i + count]
    }

    /// Device-side read of element `i` on the warp-coalesced issue path:
    /// the value returns immediately (data is host-resident) while the
    /// memory-system accounting is queued for the next
    /// [`Gpu::access_lines`] drain — in program order, so counters, traces,
    /// and fault draws are byte-identical to [`Buffer::read`].
    #[inline]
    pub fn read_issued(&self, gpu: &mut Gpu, i: usize) -> T {
        gpu.issue_read(self.loc, self.addr_of(i), size_of::<T>() as u64);
        self.data.as_slice()[i]
    }

    /// Coalesced-range variant of [`Buffer::read_issued`].
    #[inline]
    pub fn read_range_issued(&self, gpu: &mut Gpu, i: usize, count: usize) -> &[T] {
        gpu.issue_read(self.loc, self.addr_of(i), (count * size_of::<T>()) as u64);
        &self.data.as_slice()[i..i + count]
    }

    /// Device-side write of element `i`: counted by the memory system.
    #[inline]
    pub fn write(&mut self, gpu: &mut Gpu, i: usize, value: T) {
        gpu.touch_write(self.loc, self.addr_of(i), size_of::<T>() as u64);
        self.data.as_mut_slice()[i] = value;
    }

    /// Device-side coalesced write of a contiguous run starting at `i`
    /// (e.g. flushing a software write-combining buffer).
    #[inline]
    pub fn write_range(&mut self, gpu: &mut Gpu, i: usize, values: &[T]) {
        gpu.touch_write(self.loc, self.addr_of(i), size_of_val(values) as u64);
        self.data.as_mut_slice()[i..i + values.len()].copy_from_slice(values);
    }

    /// Coalesced write on the issue path: data lands immediately, the
    /// accounting is deferred to the next [`Gpu::access_lines`] drain (see
    /// [`Buffer::read_issued`]).
    #[inline]
    pub fn write_range_issued(&mut self, gpu: &mut Gpu, i: usize, values: &[T]) {
        gpu.issue_write(self.loc, self.addr_of(i), size_of_val(values) as u64);
        self.data.as_mut_slice()[i..i + values.len()].copy_from_slice(values);
    }

    /// Sequential streaming read of `count` elements starting at `i`.
    /// Streaming reads achieve full effective interconnect bandwidth and do
    /// not thrash the TLB (one translation per page, §4.3.1: "its table scan
    /// is not subject to frequent TLB misses").
    #[inline]
    pub fn stream_read(&self, gpu: &mut Gpu, i: usize, count: usize) -> &[T] {
        gpu.stream_read(self.loc, self.addr_of(i), (count * size_of::<T>()) as u64);
        &self.data.as_slice()[i..i + count]
    }

    /// Sequential streaming write of a contiguous run starting at `i`.
    #[inline]
    pub fn stream_write(&mut self, gpu: &mut Gpu, i: usize, values: &[T]) {
        gpu.stream_write(self.loc, self.addr_of(i), size_of_val(values) as u64);
        self.data.as_mut_slice()[i..i + values.len()].copy_from_slice(values);
    }

    /// Host-side view (not counted — pre-query work such as data loading).
    pub fn host(&self) -> &[T] {
        self.data.as_slice()
    }

    /// Host-side mutable view (not counted). Copies shared storage to owned
    /// first (copy-on-write).
    pub fn host_mut(&mut self) -> &mut [T] {
        self.data.as_mut_slice()
    }

    /// Consume the buffer and return the host data (copies when shared).
    pub fn into_host(self) -> Vec<T> {
        match self.data {
            Storage::Owned(v) => v,
            Storage::Shared(a) => a.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Gpu;
    use crate::scale::Scale;
    use crate::spec::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    #[test]
    fn addresses_are_contiguous_and_page_aligned() {
        let mut gpu = gpu();
        let a: Buffer<u64> = gpu.alloc_host(10);
        let b: Buffer<u64> = gpu.alloc_host(10);
        assert_eq!(a.addr_of(1) - a.addr_of(0), 8);
        assert_eq!(a.base_addr() % gpu.spec().page_bytes, 0);
        assert_eq!(b.base_addr() % gpu.spec().page_bytes, 0);
        assert!(b.base_addr() >= a.base_addr() + a.size_bytes());
    }

    #[test]
    fn read_write_round_trip_counted() {
        let mut gpu = gpu();
        let mut buf: Buffer<u64> = gpu.alloc(MemLocation::Gpu, 4).unwrap();
        buf.write(&mut gpu, 2, 42);
        assert_eq!(buf.read(&mut gpu, 2), 42);
        let c = gpu.counters();
        assert_eq!(c.gpu_bytes_written, 8);
        assert!(c.gpu_bytes_read >= 8);
    }

    #[test]
    fn cpu_read_crosses_interconnect() {
        let mut gpu = gpu();
        let buf = gpu.alloc_host_from_vec(vec![1u64, 2, 3]);
        let _ = buf.read(&mut gpu, 0);
        let c = gpu.counters();
        assert_eq!(c.ic_lines_random, 1);
        assert_eq!(c.ic_bytes_random, gpu.spec().cacheline_bytes);
    }

    #[test]
    fn host_access_not_counted() {
        let mut gpu = gpu();
        let mut buf = gpu.alloc_host_from_vec(vec![0u64; 100]);
        buf.host_mut()[5] = 7;
        assert_eq!(buf.host()[5], 7);
        assert_eq!(gpu.counters().ic_bytes_total(), 0);
    }
}
