//! A flat open-addressed page→stamp table backing TLB-miss classification.
//!
//! The engine classifies every TLB miss as either a *periodic sweep* miss
//! (first touch, or a revisit after more than the thrash distance) or a
//! *thrashing* re-miss (evicted by concurrent lookups and re-missed soon
//! after). The original implementation kept a `HashMap<page, last_stamp>`
//! that retained one entry for every page ever missed in the session —
//! unbounded growth — and paid a SipHash probe on the hottest miss path.
//!
//! This table exploits the classification's structure: an entry whose stamp
//! is older than the thrash distance classifies a re-miss *exactly* like an
//! absent entry (both answer "sweep", and both are then overwritten with
//! the current stamp). Stale slots are therefore reusable tombstones, which
//! bounds the table at the number of pages missed within one thrash window
//! — a property of the configured geometry, not of session length. Probing
//! is a multiplicative hash plus a linear scan over a flat array; when the
//! table does fill with fresh entries it rebuilds (dropping stale slots,
//! doubling if needed), which is observationally invisible: classification
//! depends only on the stored (page, stamp) facts, never on slot layout.

use crate::lru::hash_of;

/// Sentinel for an empty slot; page ids are `addr >> page_shift` and never
/// reach `u64::MAX`.
const EMPTY_PAGE: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    page: u64,
    stamp: u64,
}

const EMPTY_SLOT: Slot = Slot {
    page: EMPTY_PAGE,
    stamp: 0,
};

/// Flat open-addressed table of last-miss stamps per page.
#[derive(Debug, Clone)]
pub(crate) struct PageStampTable {
    slots: Vec<Slot>,
    mask: u64,
    /// Occupied slots (fresh or stale); drives the rebuild threshold.
    live: usize,
    /// Re-miss distance separating thrashing from sweep classification.
    thrash_distance: u64,
}

impl PageStampTable {
    /// Create a table with at least `capacity_hint` slots (rounded up to a
    /// power of two, minimum 1024).
    pub(crate) fn new(capacity_hint: usize, thrash_distance: u64) -> Self {
        let cap = capacity_hint.next_power_of_two().max(1024);
        PageStampTable {
            slots: vec![EMPTY_SLOT; cap],
            mask: (cap - 1) as u64,
            live: 0,
            thrash_distance,
        }
    }

    /// Current slot count (diagnostic; bounded-footprint tests watch this).
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Forget everything (memory-system flush between queries).
    pub(crate) fn clear(&mut self) {
        self.slots.fill(EMPTY_SLOT);
        self.live = 0;
    }

    /// Record a miss of `page` at line-access time `now`; returns `true`
    /// when the miss classifies as a periodic sweep (first touch or a
    /// revisit beyond the thrash distance), `false` for a thrashing
    /// re-miss. Exactly equivalent to the `HashMap::insert` classification:
    /// absent → sweep, stale stamp → sweep, fresh stamp → thrash.
    pub(crate) fn note_miss(&mut self, page: u64, now: u64) -> bool {
        debug_assert_ne!(page, EMPTY_PAGE);
        let mut idx = hash_of(page) & self.mask;
        let mut reusable: Option<u64> = None;
        for _ in 0..self.slots.len() {
            let slot = self.slots[idx as usize];
            if slot.page == page {
                let sweep = now - slot.stamp > self.thrash_distance;
                self.slots[idx as usize].stamp = now;
                return sweep;
            }
            if slot.page == EMPTY_PAGE {
                // Not present: a first touch (or a long-forgotten page whose
                // stale slot was reused) — a sweep miss either way.
                let at = reusable.unwrap_or(idx);
                if reusable.is_none() {
                    self.live += 1;
                }
                self.slots[at as usize] = Slot { page, stamp: now };
                if self.live * 4 >= self.slots.len() * 3 {
                    self.rebuild(now);
                }
                return true;
            }
            if reusable.is_none() && now - slot.stamp > self.thrash_distance {
                // Stale slot: classification-equivalent to absent, so it can
                // host a new page without changing any future answer.
                reusable = Some(idx);
            }
            idx = (idx + 1) & self.mask;
        }
        // Full wrap without finding the page or an empty slot.
        if let Some(at) = reusable {
            self.slots[at as usize] = Slot { page, stamp: now };
        } else {
            // Every slot is fresh: grow, then insert (guaranteed room).
            self.rebuild(now);
            return self.note_miss(page, now);
        }
        true
    }

    /// Drop stale slots and rehash the fresh ones, doubling the capacity
    /// until the surviving load is at most one half. Capacity never
    /// shrinks, so a steady-state workload sees a constant footprint.
    fn rebuild(&mut self, now: u64) {
        let fresh: Vec<Slot> = self
            .slots
            .iter()
            .filter(|s| s.page != EMPTY_PAGE && now - s.stamp <= self.thrash_distance)
            .copied()
            .collect();
        let mut cap = self.slots.len();
        while fresh.len() * 2 >= cap {
            cap *= 2;
        }
        self.slots.clear();
        self.slots.resize(cap, EMPTY_SLOT);
        self.mask = (cap - 1) as u64;
        self.live = fresh.len();
        for slot in fresh {
            let mut idx = hash_of(slot.page) & self.mask;
            while self.slots[idx as usize].page != EMPTY_PAGE {
                idx = (idx + 1) & self.mask;
            }
            self.slots[idx as usize] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// The original unbounded classifier, for differential testing.
    struct Reference {
        missed: HashMap<u64, u64>,
        thrash_distance: u64,
    }

    impl Reference {
        fn note_miss(&mut self, page: u64, now: u64) -> bool {
            match self.missed.insert(page, now) {
                None => true,
                Some(last) => now - last > self.thrash_distance,
            }
        }
    }

    #[test]
    fn classification_matches_hashmap_reference() {
        for thrash in [4u64, 64, 2048] {
            let mut table = PageStampTable::new(1, thrash);
            let mut reference = Reference {
                missed: HashMap::new(),
                thrash_distance: thrash,
            };
            let mut now = 0u64;
            let mut x = 0x9E37_79B9u64;
            for step in 0..50_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(step);
                // A mix of hot reuse (small ids) and a drifting sweep front.
                let page = if x & 3 == 0 {
                    x >> 60
                } else {
                    (x >> 33) % 4096
                };
                now += (x >> 13) & 7;
                assert_eq!(
                    table.note_miss(page, now),
                    reference.note_miss(page, now),
                    "thrash={thrash} page={page} now={now}"
                );
            }
        }
    }

    #[test]
    fn clear_forgets_everything() {
        let mut t = PageStampTable::new(1, 2048);
        assert!(t.note_miss(7, 1));
        assert!(!t.note_miss(7, 2));
        t.clear();
        assert!(t.note_miss(7, 3), "cleared table must classify as sweep");
    }

    #[test]
    fn steady_state_capacity_is_constant() {
        let mut t = PageStampTable::new(1, 2048);
        // Many "queries", each missing the same bounded page set, with a
        // flush in between — the session footprint must not grow.
        let mut now = 0u64;
        t.note_miss(0, now);
        let cap_after_first = t.capacity();
        for _ in 0..200 {
            for page in 0..500u64 {
                now += 1;
                t.note_miss(page, now);
            }
            t.clear();
        }
        assert_eq!(t.capacity(), cap_after_first);
    }

    #[test]
    fn grows_only_when_fresh_set_demands_it() {
        let mut t = PageStampTable::new(1, u64::MAX >> 1); // nothing goes stale
        let initial = t.capacity();
        for page in 0..10_000u64 {
            t.note_miss(page, page);
        }
        assert!(t.capacity() > initial, "all-fresh load must trigger growth");
        // All pages remain present and fresh.
        assert!(!t.note_miss(3, 10_001));
    }
}
