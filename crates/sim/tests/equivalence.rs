//! Differential equivalence suite for the deferred (batched) issue path.
//!
//! The engine has two ways to account a data-dependent access: the
//! immediate entry points (`touch_read` / `touch_write`) and the issue
//! queue (`issue_read` / `issue_write` + `access_lines`) that `lockstep`
//! and the warp-cooperative index loops use. The whole point of the queue
//! is to be *observationally invisible*: because every immediate
//! accounting call drains the queue first, global accounting order equals
//! program order exactly — so counters, trace events, and fault draws must
//! come out byte-identical however the same access stream is split between
//! the two paths.
//!
//! These tests drive random interleavings of reads, writes, streams,
//! drains, and memory-system resets through one GPU on the immediate path
//! and a twin GPU on the issued path, and assert the twins never diverge.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use windex_sim::{Gpu, GpuSpec, MemLocation, Scale};

/// Elements of the shared probe buffer.
const N: usize = 1 << 14;

/// Trace capacity comfortably above the maximum events a case can emit.
const TRACE_CAP: usize = 1 << 14;

fn twin() -> (Gpu, u64) {
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    let buf = gpu.alloc_host_from_vec(vec![0u64; N]);
    (gpu, buf.base_addr())
}

/// Replay `ops` on both engines. `(sel, i, bytes)` decodes to an access at
/// element `i`: reads (immediate vs issued), writes (immediate vs issued),
/// streaming reads (immediate on both — they drain the twin's queue),
/// explicit drain points, and full memory-system resets.
fn replay(traced: bool, ops: &[(u8, usize, u64)]) {
    let (mut imm, base_a) = twin();
    let (mut iss, base_b) = twin();
    assert_eq!(base_a, base_b, "twin allocators must agree on addresses");
    if traced {
        imm.start_trace(TRACE_CAP);
        iss.start_trace(TRACE_CAP);
    }
    for &(sel, i, bytes) in ops {
        let addr = base_a + (i * 8) as u64;
        match sel {
            0..=69 => {
                imm.touch_read(MemLocation::Cpu, addr, bytes);
                iss.issue_read(MemLocation::Cpu, addr, bytes);
            }
            70..=79 => {
                imm.touch_write(MemLocation::Cpu, addr, bytes);
                iss.issue_write(MemLocation::Cpu, addr, bytes);
            }
            80..=86 => {
                imm.stream_read(MemLocation::Cpu, addr, bytes);
                iss.stream_read(MemLocation::Cpu, addr, bytes);
            }
            87..=94 => {
                iss.access_lines(); // immediate path has nothing queued
            }
            _ => {
                imm.reset_memory_system();
                iss.reset_memory_system();
            }
        }
    }
    iss.access_lines();
    assert_eq!(
        imm.counters(),
        iss.counters(),
        "issued path diverged from the immediate path"
    );
    if traced {
        let ta = imm.stop_trace();
        let tb = iss.stop_trace();
        assert_eq!(ta.offered(), tb.offered());
        assert_eq!(ta.events(), tb.events(), "trace event streams differ");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random interleavings of reads/writes/streams/drains/resets must
    /// produce identical counters on the immediate and issued paths.
    #[test]
    fn batched_issue_matches_immediate_untraced(
        ops in pvec((0u8..100, 0usize..(N - 8), 1u64..=64), 1..300),
    ) {
        replay(false, &ops);
    }

    /// Same, with the trace recorder installed: the event streams (kinds,
    /// addresses, hit levels, order) must be identical too.
    #[test]
    fn batched_issue_matches_immediate_traced(
        ops in pvec((0u8..100, 0usize..(N - 8), 1u64..=64), 1..300),
    ) {
        replay(true, &ops);
    }
}

/// A hit-heavy and a miss-heavy deterministic stream, as fixed regression
/// anchors alongside the randomized cases.
#[test]
fn fixed_streams_match() {
    // Hit-heavy: hammer one line.
    let hot: Vec<(u8, usize, u64)> = (0..500).map(|_| (0u8, 3usize, 8u64)).collect();
    replay(true, &hot);
    // Miss-heavy: stride one page per access, wider than TLB + caches.
    let cold: Vec<(u8, usize, u64)> = (0..500).map(|k| (0u8, (k * 512) % (N - 8), 8u64)).collect();
    replay(true, &cold);
}

/// The flat page-stamp table must keep a multi-query session's footprint
/// constant: after warm-up, running more queries over the same working set
/// cannot grow the table (the old `HashMap` grew without bound until the
/// session ended).
#[test]
fn multi_query_session_footprint_stays_constant() {
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    let page = gpu.spec().page_bytes as usize;
    let buf = gpu.alloc_host_from_vec(vec![0u64; 512 * page / 8]);
    let mut warmed = 0usize;
    for query in 0..40 {
        // Each "query" touches 512 distinct pages, then resets (the
        // between-queries cold start every executor performs).
        for p in 0..512 {
            let _ = buf.read(&mut gpu, p * page / 8);
        }
        gpu.reset_memory_system();
        if query == 4 {
            warmed = gpu.missed_page_slots();
        }
        if query > 4 {
            assert_eq!(
                gpu.missed_page_slots(),
                warmed,
                "page-stamp table grew after warm-up (query {query})"
            );
        }
    }
    assert!(warmed > 0);
}
