//! Differential equivalence suite for the deferred (batched) issue path.
//!
//! The engine has two ways to account a data-dependent access: the
//! immediate entry points (`touch_read` / `touch_write`) and the issue
//! queue (`issue_read` / `issue_write` + `access_lines`) that `lockstep`
//! and the warp-cooperative index loops use. The whole point of the queue
//! is to be *observationally invisible*: because every immediate
//! accounting call drains the queue first, global accounting order equals
//! program order exactly — so counters, trace events, and fault draws must
//! come out byte-identical however the same access stream is split between
//! the two paths.
//!
//! These tests drive random interleavings of reads, writes, streams,
//! drains, and memory-system resets through one GPU on the immediate path
//! and a twin GPU on the issued path, and assert the twins never diverge.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use windex_sim::{Gpu, GpuSpec, MemLocation, Scale};

/// Elements of the shared probe buffer.
const N: usize = 1 << 14;

/// Trace capacity comfortably above the maximum events a case can emit.
const TRACE_CAP: usize = 1 << 14;

/// A twin with a caller-sized probe buffer — the TLB-thrashing and
/// cross-page anchors need a working set spanning many pages (one page is
/// 1 MiB at paper scale, far wider than the default buffer).
fn twin_sized(elems: usize) -> (Gpu, u64) {
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    let buf = gpu.alloc_host_from_vec(vec![0u64; elems]);
    (gpu, buf.base_addr())
}

/// Replay `ops` on both engines. `(sel, i, bytes)` decodes to an access at
/// element `i`: reads (immediate vs issued), writes (immediate vs issued),
/// streaming reads (immediate on both — they drain the twin's queue),
/// explicit drain points, and full memory-system resets.
fn replay(traced: bool, ops: &[(u8, usize, u64)]) {
    replay_sized(N, traced, ops);
}

/// `replay` over a caller-sized buffer (for streams wider than one page).
fn replay_sized(elems: usize, traced: bool, ops: &[(u8, usize, u64)]) {
    let (mut imm, base_a) = twin_sized(elems);
    let (mut iss, base_b) = twin_sized(elems);
    assert_eq!(base_a, base_b, "twin allocators must agree on addresses");
    if traced {
        imm.start_trace(TRACE_CAP);
        iss.start_trace(TRACE_CAP);
    }
    for &(sel, i, bytes) in ops {
        let addr = base_a + (i * 8) as u64;
        match sel {
            0..=69 => {
                imm.touch_read(MemLocation::Cpu, addr, bytes);
                iss.issue_read(MemLocation::Cpu, addr, bytes);
            }
            70..=79 => {
                imm.touch_write(MemLocation::Cpu, addr, bytes);
                iss.issue_write(MemLocation::Cpu, addr, bytes);
            }
            80..=86 => {
                imm.stream_read(MemLocation::Cpu, addr, bytes);
                iss.stream_read(MemLocation::Cpu, addr, bytes);
            }
            87..=94 => {
                iss.access_lines(); // immediate path has nothing queued
            }
            _ => {
                imm.reset_memory_system();
                iss.reset_memory_system();
            }
        }
    }
    iss.access_lines();
    assert_eq!(
        imm.counters(),
        iss.counters(),
        "issued path diverged from the immediate path"
    );
    if traced {
        let ta = imm.stop_trace();
        let tb = iss.stop_trace();
        assert_eq!(ta.offered(), tb.offered());
        assert_eq!(ta.events(), tb.events(), "trace event streams differ");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random interleavings of reads/writes/streams/drains/resets must
    /// produce identical counters on the immediate and issued paths.
    #[test]
    fn batched_issue_matches_immediate_untraced(
        ops in pvec((0u8..100, 0usize..(N - 8), 1u64..=64), 1..300),
    ) {
        replay(false, &ops);
    }

    /// Same, with the trace recorder installed: the event streams (kinds,
    /// addresses, hit levels, order) must be identical too.
    #[test]
    fn batched_issue_matches_immediate_traced(
        ops in pvec((0u8..100, 0usize..(N - 8), 1u64..=64), 1..300),
    ) {
        replay(true, &ops);
    }
}

/// A hit-heavy and a miss-heavy deterministic stream, as fixed regression
/// anchors alongside the randomized cases.
#[test]
fn fixed_streams_match() {
    // Hit-heavy: hammer one line.
    let hot: Vec<(u8, usize, u64)> = (0..500).map(|_| (0u8, 3usize, 8u64)).collect();
    replay(true, &hot);
    // Miss-heavy: stride one page per access, wider than TLB + caches.
    let cold: Vec<(u8, usize, u64)> = (0..500).map(|k| (0u8, (k * 512) % (N - 8), 8u64)).collect();
    replay(true, &cold);
}

/// Edge lanes of the batched classifier, pinned as fixed anchors: the same
/// cache line appearing more than once inside one drained batch (the later
/// copies must classify as hits of the first, exactly as program order
/// would), and duplicates at mixed access widths sharing a line.
#[test]
fn duplicate_line_within_one_batch_matches() {
    let mut ops: Vec<(u8, usize, u64)> = Vec::new();
    // Six reads of the very same element queued back to back, one drain.
    ops.extend((0..6).map(|_| (0u8, 100usize, 8u64)));
    ops.push((87, 0, 0));
    // Same line at different offsets/widths within a single batch; the
    // first access misses, the rest are intra-batch hits.
    ops.extend([
        (0u8, 200usize, 8u64),
        (0, 201, 16),
        (0, 203, 32),
        (0, 200, 64),
    ]);
    ops.push((87, 0, 0));
    // Duplicate lines interleaved with a write to the same line, then a
    // re-read after a reset (must miss again on both paths).
    ops.extend([(0u8, 300usize, 8u64), (70, 300, 8), (0, 300, 8)]);
    ops.push((95, 0, 0));
    ops.push((0, 300, 8));
    replay(true, &ops);
}

/// More distinct lines mapping to one L1 set than the set holds, all queued
/// in a single batch: the classifier must evict mid-batch in program order.
/// Geometry: 128 B lines × 16 sets → same-set stride is 256 elements; the
/// L1 is 8-way, so 12 lines overflow the set inside one drain.
#[test]
fn same_set_conflict_within_one_batch_matches() {
    const SET_STRIDE: usize = 256; // elements between lines in one L1 set
    let mut ops: Vec<(u8, usize, u64)> = Vec::new();
    ops.extend((0..12).map(|k| (0u8, k * SET_STRIDE, 8u64)));
    ops.push((87, 0, 0));
    // Re-run the same batch: the head lines were evicted by the tail, so
    // hit/miss flips relative to a naive "seen this batch" classifier.
    ops.extend((0..12).map(|k| (0u8, k * SET_STRIDE, 8u64)));
    ops.push((87, 0, 0));
    // And once more in reverse order, without an intermediate drain.
    ops.extend((0..12).rev().map(|k| (0u8, k * SET_STRIDE, 8u64)));
    replay(true, &ops);
}

/// TLB-thrashing mix: a working set of 40 distinct pages (the TLB holds
/// 32 entries in one fully-associative set), walked round-robin so every
/// access faults the TLB while the L2 still sees reuse. Needs its own
/// buffer — one page is 1 MiB at paper scale, wider than the default N.
#[test]
fn tlb_thrashing_stream_matches() {
    let page_elems = GpuSpec::v100_nvlink2(Scale::PAPER).page_bytes as usize / 8;
    const PAGES: usize = 40;
    let mut ops: Vec<(u8, usize, u64)> = Vec::new();
    for round in 0..4usize {
        for p in 0..PAGES {
            // Vary the in-page offset per round so lines differ too.
            ops.push((0, p * page_elems + round * 16, 8));
        }
        ops.push((87, 0, 0));
    }
    replay_sized(PAGES * page_elems, true, &ops);
}

/// Cross-page accesses: spans whose byte range straddles a page boundary
/// must account lines (and TLB entries) on both pages, identically on the
/// immediate and issued paths — including duplicates inside one batch.
#[test]
fn cross_page_accesses_match() {
    let page_elems = GpuSpec::v100_nvlink2(Scale::PAPER).page_bytes as usize / 8;
    let mut ops: Vec<(u8, usize, u64)> = Vec::new();
    for p in 1..=6usize {
        // 32 bytes before the boundary, 64-byte span → crosses into page p.
        ops.push((0, p * page_elems - 4, 64));
        // The same straddling span again within the same batch.
        ops.push((0, p * page_elems - 4, 64));
        // A write straddling the same boundary at a different offset.
        ops.push((70, p * page_elems - 2, 48));
    }
    ops.push((87, 0, 0));
    // A streaming read across a boundary drains and must match too.
    ops.push((80, 3 * page_elems - 4, 64));
    replay_sized(7 * page_elems, true, &ops);
}

/// The flat page-stamp table must keep a multi-query session's footprint
/// constant: after warm-up, running more queries over the same working set
/// cannot grow the table (the old `HashMap` grew without bound until the
/// session ended).
#[test]
fn multi_query_session_footprint_stays_constant() {
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    let page = gpu.spec().page_bytes as usize;
    let buf = gpu.alloc_host_from_vec(vec![0u64; 512 * page / 8]);
    let mut warmed = 0usize;
    for query in 0..40 {
        // Each "query" touches 512 distinct pages, then resets (the
        // between-queries cold start every executor performs).
        for p in 0..512 {
            let _ = buf.read(&mut gpu, p * page / 8);
        }
        gpu.reset_memory_system();
        if query == 4 {
            warmed = gpu.missed_page_slots();
        }
        if query > 4 {
            assert_eq!(
                gpu.missed_page_slots(),
                warmed,
                "page-stamp table grew after warm-up (query {query})"
            );
        }
    }
    assert!(warmed > 0);
}
