//! Trace-recorder tests: assert on access *patterns*, not just counters.

use windex_sim::{Gpu, GpuSpec, HitLevel, MemLocation, Scale, TraceEvent};

fn gpu() -> Gpu {
    Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
}

#[test]
fn coalesced_range_read_is_one_event_per_line() {
    let mut g = gpu();
    let buf = g.alloc_host_from_vec(vec![0u64; 1024]);
    g.start_trace(1024);
    // A 4 KiB node read = 32 lines of 128 B.
    let _ = buf.read_range(&mut g, 0, 512);
    let trace = g.stop_trace();
    let lines: Vec<u64> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ReadLine { line_addr, .. } => Some(*line_addr),
            _ => None,
        })
        .collect();
    assert_eq!(lines.len(), 32);
    // Line-aligned, ascending, contiguous.
    assert!(lines.windows(2).all(|w| w[1] == w[0] + 128));
    assert!(lines.iter().all(|a| a % 128 == 0));
}

#[test]
fn second_touch_hits_l1() {
    let mut g = gpu();
    let buf = g.alloc_host_from_vec(vec![0u64; 64]);
    g.start_trace(16);
    let _ = buf.read(&mut g, 0);
    let _ = buf.read(&mut g, 1); // same line
    let trace = g.stop_trace();
    match trace.events() {
        [TraceEvent::ReadLine { hit: first, .. }, TraceEvent::ReadLine { hit: second, .. }] => {
            assert!(matches!(first, HitLevel::Remote { tlb_hit: false }));
            assert_eq!(*second, HitLevel::L1);
        }
        other => panic!("unexpected trace {other:?}"),
    }
}

#[test]
fn gpu_memory_accesses_never_reach_remote() {
    let mut g = gpu();
    let buf = g
        .alloc_from_vec(MemLocation::Gpu, vec![0u64; 1 << 14])
        .unwrap();
    g.start_trace(4096);
    let step = 16; // one line apart
    for i in (0..1 << 14).step_by(step) {
        let _ = buf.read(&mut g, i);
    }
    let trace = g.stop_trace();
    for ev in trace.events() {
        if let TraceEvent::ReadLine { hit, .. } = ev {
            assert!(!matches!(hit, HitLevel::Remote { .. }), "{ev:?}");
        }
    }
}

#[test]
fn stream_and_write_events_recorded() {
    let mut g = gpu();
    let buf = g.alloc_host_from_vec(vec![0u64; 4096]);
    let mut out = g.alloc_from_vec(MemLocation::Gpu, vec![0u64; 16]).unwrap();
    g.start_trace(16);
    g.kernel_launch();
    let _ = buf.stream_read(&mut g, 0, 4096);
    out.write(&mut g, 3, 7);
    let trace = g.stop_trace();
    assert!(matches!(trace.events()[0], TraceEvent::KernelLaunch));
    assert!(matches!(
        trace.events()[1],
        TraceEvent::StreamRead {
            loc: MemLocation::Cpu,
            bytes: 32768,
            ..
        }
    ));
    assert!(matches!(
        trace.events()[2],
        TraceEvent::Write {
            loc: MemLocation::Gpu,
            bytes: 8,
            ..
        }
    ));
}

#[test]
fn tracing_does_not_change_counters() {
    let run = |traced: bool| {
        let mut g = gpu();
        let buf = g.alloc_host_from_vec((0u64..1 << 14).collect::<Vec<_>>());
        if traced {
            g.start_trace(1 << 20);
        }
        for i in (0..1 << 14).step_by(37) {
            let _ = buf.read(&mut g, i);
        }
        g.counters()
    };
    assert_eq!(run(false), run(true));
}
