//! Trace-recorder tests: assert on access *patterns*, not just counters.

use windex_sim::{Gpu, GpuSpec, HitLevel, MemLocation, Scale, TraceEvent, TraceMode};

fn gpu() -> Gpu {
    Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
}

#[test]
fn coalesced_range_read_is_one_event_per_line() {
    let mut g = gpu();
    let buf = g.alloc_host_from_vec(vec![0u64; 1024]);
    g.start_trace(1024);
    // A 4 KiB node read = 32 lines of 128 B.
    let _ = buf.read_range(&mut g, 0, 512);
    let trace = g.stop_trace();
    let lines: Vec<u64> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ReadLine { line_addr, .. } => Some(*line_addr),
            _ => None,
        })
        .collect();
    assert_eq!(lines.len(), 32);
    // Line-aligned, ascending, contiguous.
    assert!(lines.windows(2).all(|w| w[1] == w[0] + 128));
    assert!(lines.iter().all(|a| a % 128 == 0));
}

#[test]
fn second_touch_hits_l1() {
    let mut g = gpu();
    let buf = g.alloc_host_from_vec(vec![0u64; 64]);
    g.start_trace(16);
    let _ = buf.read(&mut g, 0);
    let _ = buf.read(&mut g, 1); // same line
    let trace = g.stop_trace();
    match trace.events() {
        [TraceEvent::ReadLine { hit: first, .. }, TraceEvent::ReadLine { hit: second, .. }] => {
            assert!(matches!(first, HitLevel::Remote { tlb_hit: false }));
            assert_eq!(*second, HitLevel::L1);
        }
        other => panic!("unexpected trace {other:?}"),
    }
}

#[test]
fn gpu_memory_accesses_never_reach_remote() {
    let mut g = gpu();
    let buf = g
        .alloc_from_vec(MemLocation::Gpu, vec![0u64; 1 << 14])
        .unwrap();
    g.start_trace(4096);
    let step = 16; // one line apart
    for i in (0..1 << 14).step_by(step) {
        let _ = buf.read(&mut g, i);
    }
    let trace = g.stop_trace();
    for ev in trace.events() {
        if let TraceEvent::ReadLine { hit, .. } = ev {
            assert!(!matches!(hit, HitLevel::Remote { .. }), "{ev:?}");
        }
    }
}

#[test]
fn stream_and_write_events_recorded() {
    let mut g = gpu();
    let buf = g.alloc_host_from_vec(vec![0u64; 4096]);
    let mut out = g.alloc_from_vec(MemLocation::Gpu, vec![0u64; 16]).unwrap();
    g.start_trace(16);
    g.kernel_launch();
    let _ = buf.stream_read(&mut g, 0, 4096);
    out.write(&mut g, 3, 7);
    let trace = g.stop_trace();
    assert!(matches!(trace.events()[0], TraceEvent::KernelLaunch));
    assert!(matches!(
        trace.events()[1],
        TraceEvent::StreamRead {
            loc: MemLocation::Cpu,
            bytes: 32768,
            ..
        }
    ));
    // The streamed CPU read's page translation is traced too (a cold miss).
    assert!(matches!(
        trace.events()[2],
        TraceEvent::Translate { hit: false, .. }
    ));
    assert!(matches!(
        trace.events()[3],
        TraceEvent::Write {
            loc: MemLocation::Gpu,
            bytes: 8,
            ..
        }
    ));
}

#[test]
fn offered_totals_reconcile_exactly_with_counters() {
    let mut g = gpu();
    let buf = g.alloc_host_from_vec((0u64..1 << 14).collect::<Vec<_>>());
    // A tiny ring that evicts heavily: the recorded buffer shrinks, but
    // the offered totals must still match the counters event for event.
    g.start_trace_mode(64, TraceMode::Ring);
    let before = g.snapshot();
    g.kernel_launch();
    for i in (0..1 << 14).step_by(37) {
        let _ = buf.read(&mut g, i);
    }
    let _ = buf.stream_read(&mut g, 0, 1 << 12);
    g.reset_memory_system();
    let d = g.snapshot() - before;
    let trace = g.stop_trace();
    let o = trace.offered();
    assert!(trace.dropped_events() > 0, "ring must have evicted");
    assert_eq!(o.tlb_accesses, d.tlb_hits + d.tlb_misses);
    assert_eq!(o.tlb_misses, d.tlb_misses);
    assert_eq!(o.l2_accesses, d.l2_hits + d.l2_misses);
    assert_eq!(o.l2_misses, d.l2_misses);
    assert_eq!(o.kernel_launches, d.kernel_launches);
    assert_eq!(o.tlb_flushes, 1);
    assert_eq!(trace.events().len(), 64);
}

#[test]
fn retries_and_faults_appear_in_the_trace() {
    use windex_sim::FaultPlan;
    let mut g = gpu();
    g.set_fault_plan(FaultPlan::seeded(3).with_transfer_faults(1.0))
        .expect("valid fault plan");
    let buf = g.alloc_host_from_vec(vec![0u64; 64]);
    g.start_trace(64);
    let _ = buf.stream_read(&mut g, 0, 64);
    g.record_retry(0);
    let trace = g.stop_trace();
    assert_eq!(trace.offered().faults, 1);
    assert_eq!(trace.offered().retries, 1);
    assert!(trace
        .events()
        .iter()
        .any(|e| matches!(e, TraceEvent::Fault { .. })));
    assert!(trace
        .events()
        .iter()
        .any(|e| matches!(e, TraceEvent::Retry { attempt: 0, .. })));
}

#[test]
fn tracing_does_not_change_counters() {
    let run = |traced: bool| {
        let mut g = gpu();
        let buf = g.alloc_host_from_vec((0u64..1 << 14).collect::<Vec<_>>());
        if traced {
            g.start_trace(1 << 20);
        }
        for i in (0..1 << 14).step_by(37) {
            let _ = buf.read(&mut g, i);
        }
        g.counters()
    };
    assert_eq!(run(false), run(true));
}
