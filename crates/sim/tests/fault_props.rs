//! Property tests for the deterministic fault plan: the empirical fault
//! rate over many draws must converge to the configured rate for every
//! [`FaultKind`], and the per-kind sequences must be independent (setting
//! one kind's rate never changes another kind's draws).

use proptest::prelude::*;
use windex_sim::{FaultKind, FaultPlan};

/// Draws per empirical-rate measurement. At 1e5 draws the binomial standard
/// deviation of the empirical rate is at most ~0.16%, so the 1.5% absolute
/// tolerance below is ~10 sigma — a failure means bias, not bad luck.
const DRAWS: u64 = 100_000;

const KINDS: [FaultKind; 3] = [FaultKind::Alloc, FaultKind::Transfer, FaultKind::Launch];

fn plan_with_rate(seed: u64, kind: FaultKind, rate: f64) -> FaultPlan {
    let p = FaultPlan::seeded(seed);
    match kind {
        FaultKind::Alloc => p.with_alloc_failures(rate),
        FaultKind::Transfer => p.with_transfer_faults(rate),
        FaultKind::Launch => p.with_launch_failures(rate),
    }
}

fn empirical_rate(plan: &FaultPlan, kind: FaultKind) -> f64 {
    let hits = (0..DRAWS).filter(|&s| plan.should_fault(kind, s)).count();
    hits as f64 / DRAWS as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Each kind's empirical rate over 1e5 draws converges to the
    /// configured rate.
    #[test]
    fn empirical_rate_converges_per_kind(
        seed in any::<u64>(),
        rate in 0.02f64..0.8,
    ) {
        for kind in KINDS {
            let plan = plan_with_rate(seed, kind, rate);
            let got = empirical_rate(&plan, kind);
            prop_assert!(
                (got - rate).abs() < 0.015,
                "kind {:?}: configured {} but measured {} over {} draws",
                kind, rate, got, DRAWS
            );
            // The plan only faults the configured kind.
            for other in KINDS {
                if other != kind {
                    prop_assert!((0..256).all(|s| !plan.should_fault(other, s)));
                }
            }
        }
    }

    /// Kinds draw from independent sequences: changing one kind's rate
    /// leaves every other kind's draw sequence byte-identical, and two
    /// kinds at the same rate still disagree on individual draws.
    #[test]
    fn kinds_draw_independent_sequences(
        seed in any::<u64>(),
        rate in 0.1f64..0.9,
    ) {
        let all = FaultPlan::seeded(seed)
            .with_alloc_failures(rate)
            .with_transfer_faults(rate)
            .with_launch_failures(rate);
        for kind in KINDS {
            let solo = plan_with_rate(seed, kind, rate);
            let from_all: Vec<bool> =
                (0..4096).map(|s| all.should_fault(kind, s)).collect();
            let from_solo: Vec<bool> =
                (0..4096).map(|s| solo.should_fault(kind, s)).collect();
            prop_assert_eq!(
                from_all, from_solo,
                "other kinds' rates must not perturb {:?}'s sequence", kind
            );
        }
        // Same seed and rate, different kinds => different positions.
        let a: Vec<bool> = (0..4096).map(|s| all.should_fault(FaultKind::Alloc, s)).collect();
        let t: Vec<bool> = (0..4096).map(|s| all.should_fault(FaultKind::Transfer, s)).collect();
        let l: Vec<bool> = (0..4096).map(|s| all.should_fault(FaultKind::Launch, s)).collect();
        prop_assert_ne!(&a, &t);
        prop_assert_ne!(&t, &l);
        prop_assert_ne!(&a, &l);
    }
}
