//! Property tests for the memory-system models: the cache/TLB simulators
//! must behave exactly like a reference LRU, and the cost model must be
//! monotone in every counter.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use windex_sim::cache::Cache;
use windex_sim::tlb::Tlb;
use windex_sim::{CostModel, Counters, GpuSpec, Scale};

/// Reference fully-associative LRU over block ids.
struct RefLru {
    capacity: usize,
    blocks: Vec<u64>, // most recent last
}

impl RefLru {
    fn new(capacity: usize) -> Self {
        RefLru {
            capacity,
            blocks: Vec::new(),
        }
    }

    fn access(&mut self, block: u64) -> bool {
        if let Some(i) = self.blocks.iter().position(|&b| b == block) {
            self.blocks.remove(i);
            self.blocks.push(block);
            true
        } else {
            if self.blocks.len() == self.capacity {
                self.blocks.remove(0);
            }
            self.blocks.push(block);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A fully-associative Cache must agree with the reference LRU on
    /// every access outcome.
    #[test]
    fn fully_associative_cache_is_exact_lru(
        lines in 1usize..16,
        accesses in pvec(0u64..1 << 14, 1..300),
    ) {
        let line = 128u64;
        let mut cache = Cache::new(lines as u64 * line, line, lines);
        let mut reference = RefLru::new(lines);
        for addr in accesses {
            let got = cache.access(addr);
            let expect = reference.access(addr / line);
            prop_assert_eq!(got, expect, "addr {}", addr);
        }
    }

    /// Same for a fully-associative TLB at page granularity.
    #[test]
    fn fully_associative_tlb_is_exact_lru(
        entries in 1usize..12,
        accesses in pvec(0u64..1 << 20, 1..300),
    ) {
        let page = 4096u64;
        let mut tlb = Tlb::new(entries, entries, page);
        let mut reference = RefLru::new(entries);
        for addr in accesses {
            let got = tlb.access(addr);
            let expect = reference.access(addr / page);
            prop_assert_eq!(got, expect, "addr {}", addr);
        }
    }

    /// A working set within capacity never misses after the first touch,
    /// regardless of associativity (hashed set indexing may still conflict,
    /// so this is asserted only for the fully-associative configuration).
    #[test]
    fn no_capacity_misses_within_fully_assoc_capacity(
        lines in 2usize..32,
        rounds in 2usize..6,
    ) {
        let line = 128u64;
        let mut cache = Cache::new(lines as u64 * line, line, lines);
        let mut misses = 0;
        for round in 0..rounds {
            for i in 0..lines as u64 {
                if !cache.access(i * line) && round > 0 {
                    misses += 1;
                }
            }
        }
        prop_assert_eq!(misses, 0);
    }

    /// The cost model is monotone: adding events never reduces the total
    /// estimate.
    #[test]
    fn cost_model_is_monotone(
        base_streamed in 0u64..1 << 24,
        base_random in 0u64..1 << 24,
        base_misses in 0u64..1 << 12,
        extra in 1u64..1 << 20,
        overlap in any::<bool>(),
    ) {
        let model = CostModel::new(&GpuSpec::v100_nvlink2(Scale::PAPER));
        let base = Counters {
            ic_bytes_streamed: base_streamed,
            ic_bytes_random: base_random,
            tlb_misses: base_misses,
            ..Counters::default()
        };
        let t0 = model.estimate(&base, overlap).total_s;
        for grow in [
            Counters { ic_bytes_streamed: base_streamed + extra, ..base },
            Counters { ic_bytes_random: base_random + extra, ..base },
            Counters { tlb_misses: base_misses + extra, ..base },
            Counters { gpu_bytes_read: extra, ..base },
            Counters { kernel_launches: extra.min(1 << 10), ..base },
            Counters { retry_backoff_ns: extra, ..base },
        ] {
            let t1 = model.estimate(&grow, overlap).total_s;
            prop_assert!(t1 >= t0, "adding events reduced time: {t0} -> {t1}");
        }
    }

    /// Scale round trips: sim→paper→sim is the identity for multiples of
    /// the factor.
    #[test]
    fn scale_round_trip(factor in 1u64..1 << 12, chunks in 0u64..1 << 20) {
        let s = Scale::new(factor);
        let paper = chunks * factor;
        prop_assert_eq!(s.paper_bytes(s.sim_bytes(paper)), paper);
    }
}
