//! Multi-value GPU hash table, modeled after WarpCore's
//! `MultiValueHashTable` (Jünger et al., HiPC'20), which the paper's hash
//! join baseline uses (§3.2): open addressing with double-hashing probing over
//! (key, block-head) slots, plus per-key *value blocks* so duplicate keys
//! gather their values in contiguous chunks ("multiple items can be
//! gathered into blocks to increase data locality", §3.1).
//!
//! Blocks grow geometrically (1 → 8 → 64 → capped at the configured block
//! size, 512 in the paper's runs), so unique keys pay one slot while heavy
//! multi-value keys get long block chains. Appending walks the chain to its
//! tail — the behaviour that degrades the hash join under heavily skewed
//! build keys ("the hash join degrades to a long probe chain", §5.2.2).
//!
//! The table lives in GPU memory (§3.2: "The hash table is kept in GPU
//! memory"), so it is immune to the GPU TLB cliff but bounded by device
//! capacity — the design choice the paper challenges with out-of-core
//! indexes.

use crate::error::{with_join_retries, JoinError};
use windex_sim::{Buffer, Gpu, MemLocation};

/// Sentinel for an empty slot / null block pointer.
const EMPTY: u64 = u64::MAX;

/// Block header layout: `[capacity, len, next, values…]`.
const BLOCK_HEADER: usize = 3;

/// Hash-table configuration (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct HashTableConfig {
    /// Slot-array load factor; the paper configures 50 %.
    pub load_factor: f64,
    /// Maximum value-block size (values per block); the paper uses 512.
    pub max_block: usize,
}

impl Default for HashTableConfig {
    fn default() -> Self {
        HashTableConfig {
            load_factor: 0.5,
            max_block: 512,
        }
    }
}

/// An open-addressing multi-value hash table in GPU memory.
#[derive(Debug)]
pub struct MultiValueHashTable {
    /// Interleaved slots: `[key, block_head, key, block_head, …]`.
    slots: Buffer<u64>,
    /// Value-block pool, bump-allocated.
    pool: Buffer<u64>,
    pool_cursor: usize,
    capacity: usize,
    mask: u64,
    len: usize,
    distinct: usize,
    config: HashTableConfig,
}

/// splitmix64 finalizer: a fast, well-distributed integer hash.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Second hash for double hashing; forced odd so the step is coprime with
/// the power-of-two capacity and the probe sequence visits every slot.
#[inline]
fn hash64_step(x: u64) -> u64 {
    hash64(x ^ 0xD6E8_FEB8_6659_FD93) | 1
}

impl MultiValueHashTable {
    /// Slot-array capacity for `expected` insertions at `config`'s load
    /// factor.
    fn capacity_for(expected: usize, config: &HashTableConfig) -> usize {
        ((expected.max(1) as f64 / config.load_factor) as usize)
            .next_power_of_two()
            .max(16)
    }

    /// Value-pool slots for `expected` insertions: worst case every key is
    /// distinct (one 1-value block per key, 1 + header), plus geometric
    /// growth overhead bounded by 2x.
    fn pool_slots_for(expected: usize) -> usize {
        expected * (BLOCK_HEADER + 2) * 2 + 64
    }

    /// Device bytes a table sized for `expected` insertions reserves
    /// (page-rounded, like the engine's allocator). Used by the query
    /// engine's admission check and the hash join's build chunking.
    pub fn reservation_bytes(gpu: &Gpu, expected: usize, config: &HashTableConfig) -> u64 {
        let page = gpu.spec().page_bytes;
        let round = |bytes: u64| bytes.div_ceil(page).max(1) * page;
        let slots = (Self::capacity_for(expected, config) * 2 * 8) as u64;
        let pool = (Self::pool_slots_for(expected) * 8) as u64;
        round(slots) + round(pool)
    }

    /// Create a table sized for `expected` insertions at the configured
    /// load factor. The value pool is sized for `expected` values plus
    /// chain overhead. Fails with [`JoinError::InvalidConfig`] on a bad
    /// configuration and propagates device-allocation errors; transient
    /// allocation faults are retried under the engine's retry policy.
    pub fn new(gpu: &mut Gpu, expected: usize, config: HashTableConfig) -> Result<Self, JoinError> {
        if !(config.load_factor > 0.0 && config.load_factor <= 1.0) {
            return Err(JoinError::InvalidConfig(
                "hash-table load factor must be in (0, 1]",
            ));
        }
        if config.max_block < 1 {
            return Err(JoinError::InvalidConfig(
                "hash-table max block must be at least 1",
            ));
        }
        let capacity = Self::capacity_for(expected, &config);
        let pool_slots = Self::pool_slots_for(expected);
        let slots = with_join_retries(gpu, |g| {
            g.alloc_from_vec(MemLocation::Gpu, vec![EMPTY; capacity * 2])
                .map_err(JoinError::from)
        })?;
        let pool = match with_join_retries(gpu, |g| {
            g.alloc_from_vec(MemLocation::Gpu, vec![0u64; pool_slots])
                .map_err(JoinError::from)
        }) {
            Ok(p) => p,
            Err(e) => {
                gpu.free(slots);
                return Err(e);
            }
        };
        Ok(MultiValueHashTable {
            slots,
            pool,
            pool_cursor: 0,
            capacity,
            mask: capacity as u64 - 1,
            len: 0,
            distinct: 0,
            config,
        })
    }

    /// Number of inserted (key, value) pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.distinct
    }

    /// Slot-array capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes of GPU memory held by the table.
    pub fn gpu_bytes(&self) -> u64 {
        self.slots.size_bytes() + self.pool.size_bytes()
    }

    fn alloc_block(&mut self, gpu: &mut Gpu, cap: usize) -> Result<u64, JoinError> {
        let need = BLOCK_HEADER + cap;
        if self.pool_cursor + need > self.pool.len() {
            return Err(JoinError::PoolExhausted {
                needed: need,
                available: self.pool.len() - self.pool_cursor,
            });
        }
        let at = self.pool_cursor;
        self.pool_cursor += need;
        self.pool.write(gpu, at, cap as u64);
        self.pool.write(gpu, at + 1, 0);
        self.pool.write(gpu, at + 2, EMPTY);
        Ok(at as u64)
    }

    /// Insert one (key, value) pair (device-side: every access is counted).
    /// Duplicate keys append to the key's block chain, walking to the tail.
    /// Fails with [`JoinError::ReservedKey`] for `u64::MAX` and
    /// [`JoinError::PoolExhausted`] when the table was undersized.
    pub fn insert(&mut self, gpu: &mut Gpu, key: u64, value: u64) -> Result<(), JoinError> {
        if key == EMPTY {
            return Err(JoinError::ReservedKey);
        }
        let mut slot = hash64(key) & self.mask;
        let step = hash64_step(key);
        loop {
            // One slot = (key, head): an adjacent pair, usually one line.
            let pair = self.slots.read_range(gpu, (slot * 2) as usize, 2);
            let (k, head) = (pair[0], pair[1]);
            if k == EMPTY {
                // Claim the slot with a fresh 1-value block.
                let b = self.alloc_block(gpu, 1)? as usize;
                self.pool.write(gpu, b + 1, 1);
                self.pool.write(gpu, b + BLOCK_HEADER, value);
                self.slots.write(gpu, (slot * 2) as usize, key);
                self.slots.write(gpu, (slot * 2 + 1) as usize, b as u64);
                self.len += 1;
                self.distinct += 1;
                return Ok(());
            }
            if k == key {
                self.append_to_chain(gpu, head, value)?;
                self.len += 1;
                return Ok(());
            }
            slot = (slot + step) & self.mask;
        }
    }

    /// Walk the chain from `head` to the tail block and append, growing the
    /// chain with a geometrically larger block when the tail is full.
    fn append_to_chain(&mut self, gpu: &mut Gpu, head: u64, value: u64) -> Result<(), JoinError> {
        let mut b = head as usize;
        loop {
            let hdr = self.pool.read_range(gpu, b, BLOCK_HEADER);
            let (cap, used, next) = (hdr[0] as usize, hdr[1] as usize, hdr[2]);
            if used < cap {
                self.pool.write(gpu, b + BLOCK_HEADER + used, value);
                self.pool.write(gpu, b + 1, (used + 1) as u64);
                return Ok(());
            }
            if next != EMPTY {
                b = next as usize;
                continue;
            }
            // Grow: next block is 8x larger, capped at max_block.
            let new_cap = (cap * 8).min(self.config.max_block).max(1);
            let nb = self.alloc_block(gpu, new_cap)? as usize;
            self.pool.write(gpu, nb + 1, 1);
            self.pool.write(gpu, nb + BLOCK_HEADER, value);
            self.pool.write(gpu, b + 2, nb as u64);
            return Ok(());
        }
    }

    /// Release the table's device buffers back to the HBM budget.
    pub fn free(self, gpu: &mut Gpu) {
        gpu.free(self.slots);
        gpu.free(self.pool);
    }

    /// Probe for `key`, invoking `emit` for every stored value (the GPU
    /// handle is passed through so the callback can materialize results).
    /// Returns the number of matches. The first access is one random slot
    /// read; chain blocks are read contiguously (the locality §3.1
    /// describes).
    pub fn probe<F: FnMut(&mut Gpu, u64)>(&self, gpu: &mut Gpu, key: u64, mut emit: F) -> usize {
        // Probe reads account immediately rather than through the deferred
        // issue queue: every read here is sequentially *dependent* (the
        // value decides the next slot), so there is never a batch to
        // coalesce — the queue round-trip would be pure overhead. The
        // accounting stream is identical either way: reads land in probe
        // order, before any `emit` writes, exactly as the drained queue
        // would have replayed them.
        let mut slot = hash64(key) & self.mask;
        // Double-hash step, computed lazily: most probes resolve at the
        // first slot (empty or direct hit) and never need it. The step is
        // forced odd, so 0 is a safe "not yet computed" sentinel.
        let mut step = 0u64;
        loop {
            let pair = self.slots.read_range(gpu, (slot * 2) as usize, 2);
            let (k, head) = (pair[0], pair[1]);
            if k == EMPTY {
                return 0;
            }
            if k == key {
                let mut count = 0;
                let mut b = head as usize;
                while b != EMPTY as usize {
                    let hdr = self.pool.read_range(gpu, b, BLOCK_HEADER);
                    let (used, next) = (hdr[1] as usize, hdr[2]);
                    if used > 0 {
                        let vals = self.pool.read_range(gpu, b + BLOCK_HEADER, used);
                        for &v in vals {
                            emit(gpu, v);
                        }
                        count += used;
                    }
                    b = if next == EMPTY {
                        EMPTY as usize
                    } else {
                        next as usize
                    };
                }
                return count;
            }
            if step == 0 {
                step = hash64_step(key);
            }
            slot = (slot + step) & self.mask;
        }
    }

    /// Probe returning only the match count (no value materialization).
    pub fn count(&self, gpu: &mut Gpu, key: u64) -> usize {
        self.probe(gpu, key, |_, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    #[test]
    fn insert_and_probe_unique() {
        let mut g = gpu();
        let mut t = MultiValueHashTable::new(&mut g, 1000, HashTableConfig::default()).unwrap();
        for i in 0..1000u64 {
            t.insert(&mut g, i * 3, i).unwrap();
        }
        assert_eq!(t.len(), 1000);
        assert_eq!(t.distinct_keys(), 1000);
        for i in (0..1000u64).step_by(7) {
            let mut got = Vec::new();
            let n = t.probe(&mut g, i * 3, |_, v| got.push(v));
            assert_eq!(n, 1);
            assert_eq!(got, vec![i]);
        }
        assert_eq!(t.count(&mut g, 1), 0);
        assert_eq!(t.count(&mut g, 3001), 0);
    }

    #[test]
    fn multi_value_chains() {
        let mut g = gpu();
        let mut t = MultiValueHashTable::new(&mut g, 4000, HashTableConfig::default()).unwrap();
        for i in 0..1000u64 {
            t.insert(&mut g, i % 10, i).unwrap();
        }
        assert_eq!(t.len(), 1000);
        assert_eq!(t.distinct_keys(), 10);
        for k in 0..10u64 {
            let mut got = Vec::new();
            t.probe(&mut g, k, |_, v| got.push(v));
            assert_eq!(got.len(), 100);
            assert!(got.iter().all(|v| v % 10 == k));
        }
    }

    #[test]
    fn blocks_grow_geometrically() {
        let mut g = gpu();
        let cfg = HashTableConfig {
            load_factor: 0.5,
            max_block: 64,
        };
        let mut t = MultiValueHashTable::new(&mut g, 2000, cfg).unwrap();
        // One hot key with 1000 values: chain 1, 8, 64, 64, ...
        for i in 0..1000u64 {
            t.insert(&mut g, 42, i).unwrap();
        }
        let mut got = Vec::new();
        t.probe(&mut g, 42, |_, v| got.push(v));
        assert_eq!(got.len(), 1000);
        got.sort_unstable();
        assert_eq!(got, (0..1000u64).collect::<Vec<_>>());
    }

    #[test]
    fn load_factor_respected() {
        let mut g = gpu();
        let t = MultiValueHashTable::new(&mut g, 1024, HashTableConfig::default()).unwrap();
        assert!(t.capacity() >= 2048);
    }

    #[test]
    fn skewed_build_walks_chains() {
        // Appending to a long chain costs reads proportional to its length
        // in blocks — the §5.2.2 degradation.
        let mut g = gpu();
        let cfg = HashTableConfig {
            load_factor: 0.5,
            max_block: 8,
        };
        let mut t = MultiValueHashTable::new(&mut g, 4096, cfg).unwrap();
        for i in 0..64u64 {
            t.insert(&mut g, 7, i).unwrap();
        }
        let before = g.snapshot();
        t.insert(&mut g, 7, 64).unwrap();
        let d = g.snapshot() - before;
        // Walking ~9 full blocks: at least one header access per block
        // (they may hit in cache, but the accesses are issued).
        let accesses = d.l1_hits + d.l1_misses;
        assert!(accesses >= 9, "only {accesses} accesses for a chain append");
    }

    #[test]
    fn table_is_gpu_resident() {
        let mut g = gpu();
        let mut t = MultiValueHashTable::new(&mut g, 128, HashTableConfig::default()).unwrap();
        let before = g.snapshot();
        t.insert(&mut g, 1, 2).unwrap();
        let _ = t.count(&mut g, 1);
        let d = g.snapshot() - before;
        assert_eq!(d.ic_bytes_total(), 0);
        assert_eq!(d.tlb_misses, 0);
    }
}
