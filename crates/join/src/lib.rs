//! # windex-join — GPU join operators over the simulated memory system
//!
//! The join machinery of the reproduction:
//!
//! - [`MultiValueHashTable`] / [`hash_join()`] — the paper's baseline: a
//!   WarpCore-style multi-value hash table in GPU memory, built on the
//!   smaller relation on the fly and probed by a full scan of the larger
//!   relation (§3.2);
//! - [`inlj_stream`] / [`inlj_pairs`] — the textbook index-nested loop join
//!   dispatching one thread per probe tuple (§3.3.1);
//! - [`RadixPartitioner`] — software-write-combining radix partitioner with
//!   a linear allocator (§4.3.1), with the §4.2 bit-range selection in
//!   [`PartitionBits`];
//! - [`index_range_scan`] / [`full_scan_filter`] — the Fig. 1 access-path
//!   pair: stream only a predicate's contiguous key range vs. scan it all;
//! - [`ResultSink`] — GPU-memory result materialization (with a CPU spill
//!   mode).

#![warn(missing_docs)]

pub mod error;
pub mod hash_join;
pub mod hash_table;
pub mod inlj;
pub mod partition_bits;
pub mod radix_partition;
pub mod range_scan;
pub mod sink;

pub use error::{with_join_retries, JoinError};
pub use hash_join::{hash_join, HashJoinConfig, HashJoinStats};
pub use hash_table::{hash64, HashTableConfig, MultiValueHashTable};
pub use inlj::{inlj_pairs, inlj_stream};
pub use partition_bits::PartitionBits;
pub use radix_partition::{Partitioned, RadixPartitioner};
pub use range_scan::{full_scan_filter, index_range_scan, RangeScanStats};
pub use sink::ResultSink;
