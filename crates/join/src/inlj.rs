//! Index-nested loop join (INLJ).
//!
//! "Our INLJ is a text book implementation that calls an index structure in
//! the inner loop" (§3.2). "The GPU implementation of INLJ dispatches a
//! thread for each tuple of the probe side relation" (§3.3.1): the probe
//! stream is processed one warp (32 tuples) at a time, each warp performing
//! a cooperative index lookup, and matches are materialized as
//! `(probe rid, base-relation position)` pairs.
//!
//! Two probe sources are provided:
//!
//! - [`inlj_stream`] — probes keys streamed straight from the CPU-resident
//!   relation *S* (the unpartitioned join of §3.3);
//! - [`inlj_pairs`] — probes already-partitioned `(key, rid)` pairs from a
//!   GPU-memory buffer (the partitioned joins of §4.3 and the windowed
//!   operator of §5).

use crate::error::{with_join_retries, JoinError};
use crate::sink::ResultSink;
use windex_index::OutOfCoreIndex;
use windex_sim::{try_launch_kernel, warps_of, Buffer, Gpu, WARP_SIZE};

/// Probe the index with keys from the CPU-resident probe relation
/// `s[range]` (one streaming pass over the interconnect). Matches are
/// appended to `sink` as `(absolute probe rid, index position)`.
/// Returns the number of matches. Injected transient faults are retried
/// under the engine's retry policy; each retry rolls the sink back to its
/// entry length so partial outputs of a failed kernel are discarded.
pub fn inlj_stream(
    gpu: &mut Gpu,
    index: &dyn OutOfCoreIndex,
    s: &Buffer<u64>,
    range: std::ops::Range<usize>,
    sink: &mut ResultSink,
) -> Result<usize, JoinError> {
    if range.is_empty() {
        return Ok(0);
    }
    let mark = sink.len();
    with_join_retries(gpu, |gpu| {
        sink.truncate(mark);
        try_launch_kernel(gpu, |gpu| {
            let mut matches = 0;
            let mut out = [None; WARP_SIZE];
            for warp in warps_of(range.clone()) {
                let start = warp.start;
                let keys = s.stream_read(gpu, start, warp.len()).to_vec();
                index.lookup_warp(gpu, &keys, &mut out);
                for (i, hit) in out[..keys.len()].iter().enumerate() {
                    if let Some(pos) = hit {
                        sink.emit(gpu, (start + i) as u64, *pos);
                        matches += 1;
                    }
                }
            }
            matches
        })
        .map_err(JoinError::from)
    })
}

/// Probe the index with partitioned `(key, rid)` pairs from GPU memory
/// (`pairs[pair_range]`, pair-indexed). Matches are appended to `sink` as
/// `(probe rid, index position)`. Returns the number of matches. Fault
/// retry semantics match [`inlj_stream`].
pub fn inlj_pairs(
    gpu: &mut Gpu,
    index: &dyn OutOfCoreIndex,
    pairs: &Buffer<u64>,
    pair_range: std::ops::Range<usize>,
    sink: &mut ResultSink,
) -> Result<usize, JoinError> {
    if pair_range.is_empty() {
        return Ok(0);
    }
    let mark = sink.len();
    with_join_retries(gpu, |gpu| {
        sink.truncate(mark);
        try_launch_kernel(gpu, |gpu| {
            let mut matches = 0;
            let mut out = [None; WARP_SIZE];
            let mut keys = [0u64; WARP_SIZE];
            let mut rids = [0u64; WARP_SIZE];
            for warp in warps_of(pair_range.clone()) {
                let w = warp.len();
                // One coalesced read of the warp's (key, rid) pairs.
                let chunk = pairs.read_range(gpu, warp.start * 2, w * 2);
                for i in 0..w {
                    keys[i] = chunk[i * 2];
                    rids[i] = chunk[i * 2 + 1];
                }
                index.lookup_warp(gpu, &keys[..w], &mut out);
                for (i, hit) in out[..w].iter().enumerate() {
                    if let Some(pos) = hit {
                        sink.emit(gpu, rids[i], *pos);
                        matches += 1;
                    }
                }
            }
            matches
        })
        .map_err(JoinError::from)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_bits::PartitionBits;
    use crate::radix_partition::RadixPartitioner;
    use std::rc::Rc;
    use windex_index::BinarySearchIndex;
    use windex_sim::{GpuSpec, MemLocation, Scale};

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    #[test]
    fn stream_inlj_finds_all_fk_matches() {
        let mut g = gpu();
        let r_keys: Vec<u64> = (0..10_000u64).map(|i| i * 2).collect();
        let data = Rc::new(g.alloc_host_from_vec(r_keys.clone()));
        let idx = BinarySearchIndex::new(data);
        let s_keys: Vec<u64> = (0..500u64).map(|i| (i * 37 % 10_000) * 2).collect();
        let s = g.alloc_host_from_vec(s_keys.clone());
        let mut sink = ResultSink::with_capacity(&mut g, 500, MemLocation::Gpu).unwrap();
        let n = inlj_stream(&mut g, &idx, &s, 0..500, &mut sink).unwrap();
        assert_eq!(n, 500);
        for (srid, rpos) in sink.host_pairs() {
            assert_eq!(r_keys[rpos as usize], s_keys[srid as usize]);
        }
    }

    #[test]
    fn stream_inlj_skips_misses() {
        let mut g = gpu();
        let r_keys: Vec<u64> = (0..100u64).map(|i| i * 2).collect();
        let data = Rc::new(g.alloc_host_from_vec(r_keys));
        let idx = BinarySearchIndex::new(data);
        // Odd keys never match.
        let s_keys: Vec<u64> = (0..64u64).map(|i| i * 2 + (i % 2)).collect();
        let s = g.alloc_host_from_vec(s_keys);
        let mut sink = ResultSink::with_capacity(&mut g, 64, MemLocation::Gpu).unwrap();
        let n = inlj_stream(&mut g, &idx, &s, 0..64, &mut sink).unwrap();
        assert_eq!(n, 32);
    }

    #[test]
    fn pairs_inlj_equals_stream_inlj() {
        let mut g = gpu();
        let r_keys: Vec<u64> = (0..50_000u64).map(|i| i * 3).collect();
        let data = Rc::new(g.alloc_host_from_vec(r_keys));
        let idx = BinarySearchIndex::new(data);
        let s_keys: Vec<u64> = (0..4096u64).map(|i| (i * 997 % 50_000) * 3).collect();
        let s = g.alloc_host_from_vec(s_keys);

        let mut direct = ResultSink::with_capacity(&mut g, 4096, MemLocation::Gpu).unwrap();
        inlj_stream(&mut g, &idx, &s, 0..4096, &mut direct).unwrap();

        let part = RadixPartitioner::new(PartitionBits { shift: 4, bits: 8 }, 0);
        let pt = part.partition_stream(&mut g, &s, 0..4096).unwrap();
        let mut viaparts = ResultSink::with_capacity(&mut g, 4096, MemLocation::Gpu).unwrap();
        inlj_pairs(&mut g, &idx, &pt.pairs, 0..pt.len(), &mut viaparts).unwrap();

        let mut a = direct.host_pairs();
        let mut b = viaparts.host_pairs();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_probe_range() {
        let mut g = gpu();
        let data = Rc::new(g.alloc_host_from_vec(vec![1u64, 2, 3]));
        let idx = BinarySearchIndex::new(data);
        let s = g.alloc_host_from_vec(vec![1u64]);
        let mut sink = ResultSink::with_capacity(&mut g, 1, MemLocation::Gpu).unwrap();
        assert_eq!(inlj_stream(&mut g, &idx, &s, 0..0, &mut sink).unwrap(), 0);
        assert_eq!(g.counters().kernel_launches, 0);
    }
}
