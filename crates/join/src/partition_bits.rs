//! Partition-bit selection (§4.2 of the paper).
//!
//! Radix partitioning the lookup keys only improves locality if the chosen
//! bits actually distinguish memory pages and traversal paths:
//!
//! - the **most significant** useful bit is the bit that "splits the root
//!   node" — the top bit of the key *domain* (higher bits are identical on
//!   every key and never affect a comparator);
//! - the **least significant** useful bit is the bit just above the page
//!   size: keys differing only below it fall into the same memory page
//!   anyway.
//!
//! The paper's runs use 2048 partitions (11 bits), ignoring the 4 least
//! significant key bits (§4.3.1); [`PartitionBits::select`] reproduces the
//! §4.2 rule for arbitrary data/page geometry, and
//! [`PartitionBits::paper_default`] reproduces the fixed configuration.

use windex_sim::GpuSpec;

/// A contiguous range of key bits used as the radix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionBits {
    /// Right-shift applied to `(key - min_key)` before masking.
    pub shift: u32,
    /// Number of radix bits (`partitions = 2^bits`).
    pub bits: u32,
}

impl PartitionBits {
    /// The paper's fixed configuration: 2048 partitions (11 bits), skipping
    /// the 4 least significant bits.
    pub fn paper_default() -> Self {
        PartitionBits { shift: 4, bits: 11 }
    }

    /// Apply the §4.2 rule: choose up to `max_bits` bits starting at the
    /// domain's top bit (root split) down to the bit above the page size.
    ///
    /// - `key_domain` — `max_key - min_key` of the indexed relation;
    /// - `tuples` — number of indexed tuples (for key density);
    /// - `spec` — supplies the page size.
    pub fn select(key_domain: u64, tuples: u64, spec: &GpuSpec, max_bits: u32) -> Self {
        assert!(max_bits >= 1);
        if key_domain == 0 || tuples == 0 {
            return PartitionBits { shift: 0, bits: 1 };
        }
        let domain_bits = 64 - key_domain.leading_zeros();
        // One page holds page_bytes/8 tuples; with tuples spread over
        // key_domain values, a page spans ~page_bytes/8 * domain/tuples key
        // values. Bits below that boundary land in the same page.
        let keys_per_page =
            (spec.page_bytes as f64 / 8.0 * key_domain as f64 / tuples as f64).max(1.0);
        let page_bit = keys_per_page.log2().ceil() as u32;
        // Take the top `max_bits` of the domain, but never below page_bit.
        let shift = domain_bits
            .saturating_sub(max_bits)
            .max(page_bit.min(domain_bits - 1));
        let bits = (domain_bits - shift).clamp(1, max_bits);
        PartitionBits { shift, bits }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        1usize << self.bits
    }

    /// Partition index of `key` relative to `min_key`.
    #[inline]
    pub fn partition_of(&self, key: u64, min_key: u64) -> usize {
        (((key - min_key) >> self.shift) & ((1u64 << self.bits) - 1)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};

    #[test]
    fn paper_default_is_2048_partitions_skip_4_lsb() {
        let b = PartitionBits::paper_default();
        assert_eq!(b.partitions(), 2048);
        assert_eq!(b.shift, 4);
        // Keys differing only in the low 4 bits share a partition.
        assert_eq!(b.partition_of(0x10, 0), b.partition_of(0x1F, 0));
        assert_ne!(b.partition_of(0x10, 0), b.partition_of(0x20, 0));
    }

    #[test]
    fn select_uses_top_domain_bits() {
        let spec = GpuSpec::v100_nvlink2(Scale::PAPER);
        // 2^24 tuples over a 2^28 key domain (domain_bits = 29). A 1 MiB
        // page holds 2^17 tuples, spanning 2^17 · 16 = 2^21 key values, so
        // the usable range is bits 28‥21: 8 bits starting at shift 21.
        let b = PartitionBits::select(1 << 28, 1 << 24, &spec, 11);
        assert_eq!(b.shift, 21);
        assert_eq!(b.bits, 8);
        // shift + bits reach the domain's top bit.
        assert_eq!(b.shift + b.bits, 29);
    }

    #[test]
    fn select_respects_page_floor() {
        let spec = GpuSpec::v100_nvlink2(Scale::PAPER);
        // Tiny domain: all bits fall inside one page; selection degrades
        // gracefully to the top bits it can get.
        let b = PartitionBits::select(1 << 10, 1 << 20, &spec, 11);
        assert!(b.bits >= 1);
        assert!(b.shift + b.bits <= 11);
    }

    #[test]
    fn partition_order_follows_key_order_for_top_bits() {
        let spec = GpuSpec::v100_nvlink2(Scale::PAPER);
        let b = PartitionBits::select(1 << 30, 1 << 22, &spec, 11);
        // With top-of-domain bits, partition index is monotone in the key.
        let mut last = 0;
        for key in (0u64..(1 << 30)).step_by(1 << 22) {
            let p = b.partition_of(key, 0);
            assert!(p >= last, "partition order regressed at key {key}");
            last = p;
        }
    }

    #[test]
    fn degenerate_domain() {
        let spec = GpuSpec::v100_nvlink2(Scale::PAPER);
        let b = PartitionBits::select(0, 100, &spec, 11);
        assert_eq!(b.partitions(), 2);
        assert_eq!(b.partition_of(5, 5), 0);
    }
}
