//! Hash join baseline (§3.2).
//!
//! Mirrors the paper's configuration: a WarpCore-style multi-value hash
//! table with a 50 % load factor and block size 512, kept in GPU memory.
//! "We flip the input relations to build on the smaller relation and reduce
//! the hash table size. To reflect real-world use, the query builds the
//! hash table on-the-fly, which we include in the throughput measurement."
//!
//! The probe side is therefore the *larger* relation, which the join reads
//! with a full table scan — streaming the entire relation across the
//! interconnect regardless of selectivity. That scan volume is exactly what
//! Fig. 1 and the paper's INLJ study set out to avoid.
//!
//! ## Degradation under a device-memory budget
//!
//! When the hash table for the whole build side would not fit the HBM
//! budget, the join splits the build side into the fewest equal chunks
//! whose tables fit, and runs one build+probe pass per chunk (the probe
//! stream is re-read each pass — the extra interconnect traffic is counted
//! honestly). The union of per-pass matches equals the single-pass result.
//! Transient injected faults are retried under the engine's retry policy,
//! rolling back partial sink output before each retry.

use crate::error::{with_join_retries, JoinError};
use crate::hash_table::{HashTableConfig, MultiValueHashTable};
use crate::sink::ResultSink;
use windex_sim::{try_launch_kernel, warps_of, Buffer, Gpu, SimError};

/// Hash-join configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashJoinConfig {
    /// Hash-table parameters (paper defaults: 50 % load factor, block 512).
    pub table: HashTableConfig,
}

/// Statistics of one hash-join run.
#[derive(Debug, Clone, Copy)]
pub struct HashJoinStats {
    /// Materialized result pairs.
    pub matches: usize,
    /// Distinct keys in the build side (summed per pass: a key spanning
    /// chunk boundaries of a multi-pass build is counted once per chunk).
    pub build_distinct: usize,
    /// GPU memory held by the (largest per-pass) hash table in bytes.
    pub table_bytes: u64,
    /// Build passes run (1 unless the build side was chunked to fit the
    /// device-memory budget).
    pub build_passes: usize,
}

/// Fewest equal build chunks whose hash tables fit the current headroom.
fn plan_passes(gpu: &Gpu, n: usize, config: &HashJoinConfig) -> usize {
    if n == 0 {
        return 1;
    }
    let headroom = gpu.gpu_headroom();
    let mut passes = 1usize;
    while passes < n {
        let chunk = n.div_ceil(passes);
        if MultiValueHashTable::reservation_bytes(gpu, chunk, &config.table) <= headroom {
            break;
        }
        passes *= 2;
    }
    passes.min(n)
}

/// Build the table for `build[range]` and stream-insert its keys. Frees the
/// table on any failure so retries start from a clean budget.
fn build_pass(
    gpu: &mut Gpu,
    build: &Buffer<u64>,
    range: std::ops::Range<usize>,
    config: &HashJoinConfig,
) -> Result<MultiValueHashTable, JoinError> {
    let mut table = MultiValueHashTable::new(gpu, range.len(), config.table)?;
    let outcome = try_launch_kernel(gpu, |gpu| {
        for warp in warps_of(range.clone()) {
            let start = warp.start;
            let keys = build.stream_read(gpu, start, warp.len());
            for (i, &k) in keys.iter().enumerate() {
                table.insert(gpu, k, (start + i) as u64)?;
            }
        }
        Ok(())
    });
    match outcome {
        Ok(Ok(())) => Ok(table),
        Ok(Err(e)) => {
            table.free(gpu);
            Err(e)
        }
        Err(sim) => {
            table.free(gpu);
            Err(sim.into())
        }
    }
}

/// Run the hash join: build on `build` (CPU-resident keys, streamed once
/// per pass), probe with a full scan of `probe`. Matches are emitted to
/// `sink` as `(probe rid, build rid)` pairs. Build and probe are separate
/// kernels; the build is included in the measurement window, as in the
/// paper. See the module docs for multi-pass degradation and fault retry
/// behavior.
pub fn hash_join(
    gpu: &mut Gpu,
    build: &Buffer<u64>,
    probe: &Buffer<u64>,
    config: HashJoinConfig,
    sink: &mut ResultSink,
) -> Result<HashJoinStats, JoinError> {
    let n = build.len();
    let sink_mark = sink.len();
    let mut passes = plan_passes(gpu, n, &config);
    'plan: loop {
        sink.truncate(sink_mark);
        let mut matches = 0;
        let mut build_distinct = 0;
        let mut table_bytes = 0u64;
        let chunk = n.div_ceil(passes.max(1)).max(1);
        let mut at = 0usize;
        loop {
            let end = (at + chunk).min(n);
            // --- build kernel(s): stream this chunk of the build side.
            let table = if at < end {
                match with_join_retries(gpu, |gpu| build_pass(gpu, build, at..end, &config)) {
                    Ok(t) => t,
                    Err(JoinError::Sim(SimError::OutOfDeviceMemory { .. })) if passes < n => {
                        // The admission plan was optimistic (e.g. the sink
                        // shares the budget): halve the chunk and restart.
                        passes = (passes * 2).min(n);
                        continue 'plan;
                    }
                    Err(e) => return Err(e),
                }
            } else {
                MultiValueHashTable::new(gpu, 0, config.table)?
            };

            // --- probe kernel: full scan of the probe side per pass.
            if !probe.is_empty() {
                let pass_mark = sink.len();
                let probed = with_join_retries(gpu, |gpu| {
                    sink.truncate(pass_mark);
                    try_launch_kernel(gpu, |gpu| {
                        let mut pass_matches = 0;
                        for warp in warps_of(0..probe.len()) {
                            let start = warp.start;
                            let keys = probe.stream_read(gpu, start, warp.len());
                            for (i, &k) in keys.iter().enumerate() {
                                let rid = (start + i) as u64;
                                pass_matches += table.probe(gpu, k, |gpu, build_rid| {
                                    sink.emit(gpu, rid, build_rid);
                                });
                            }
                        }
                        pass_matches
                    })
                    .map_err(JoinError::from)
                });
                match probed {
                    Ok(m) => matches += m,
                    Err(e) => {
                        table.free(gpu);
                        return Err(e);
                    }
                }
            }
            build_distinct += table.distinct_keys();
            table_bytes = table_bytes.max(table.gpu_bytes());
            table.free(gpu);
            if end >= n {
                break;
            }
            at = end;
        }
        return Ok(HashJoinStats {
            matches,
            build_distinct,
            table_bytes,
            build_passes: passes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, MemLocation, Scale};

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    #[test]
    fn fk_join_matches_every_probe_partner() {
        let mut g = gpu();
        let r: Vec<u64> = (0..5000u64).map(|i| i * 2).collect();
        let s: Vec<u64> = (0..800u64).map(|i| (i * 13 % 5000) * 2).collect();
        let rb = g.alloc_host_from_vec(r.clone());
        let sb = g.alloc_host_from_vec(s.clone());
        let mut sink = ResultSink::with_capacity(&mut g, 800, MemLocation::Gpu).unwrap();
        // Build on S (smaller), probe with R — as the paper flips them.
        let stats = hash_join(&mut g, &sb, &rb, HashJoinConfig::default(), &mut sink).unwrap();
        assert_eq!(stats.matches, 800);
        assert_eq!(stats.build_passes, 1);
        for (r_rid, s_rid) in sink.host_pairs() {
            assert_eq!(r[r_rid as usize], s[s_rid as usize]);
        }
    }

    #[test]
    fn probe_side_is_fully_scanned() {
        let mut g = gpu();
        let r: Vec<u64> = (0..100_000u64).collect();
        let s: Vec<u64> = vec![1, 2, 3];
        let rb = g.alloc_host_from_vec(r);
        let sb = g.alloc_host_from_vec(s);
        let mut sink = ResultSink::with_capacity(&mut g, 16, MemLocation::Gpu).unwrap();
        let before = g.snapshot();
        hash_join(&mut g, &sb, &rb, HashJoinConfig::default(), &mut sink).unwrap();
        let d = g.snapshot() - before;
        // The full probe relation crosses the interconnect even though only
        // 3 tuples match — the transfer-volume problem of Fig. 1.
        assert!(d.ic_bytes_streamed >= 100_000 * 8);
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn duplicate_build_keys_multi_match() {
        let mut g = gpu();
        let build: Vec<u64> = vec![7, 7, 7, 9];
        let probe: Vec<u64> = vec![7, 8, 9];
        let bb = g.alloc_host_from_vec(build);
        let pb = g.alloc_host_from_vec(probe);
        let mut sink = ResultSink::with_capacity(&mut g, 8, MemLocation::Gpu).unwrap();
        let stats = hash_join(&mut g, &bb, &pb, HashJoinConfig::default(), &mut sink).unwrap();
        assert_eq!(stats.matches, 4); // 3 for key 7 + 1 for key 9
        assert_eq!(stats.build_distinct, 2);
        let pairs = sink.host_pairs();
        assert_eq!(pairs.iter().filter(|(p, _)| *p == 0).count(), 3);
        assert_eq!(pairs.iter().filter(|(p, _)| *p == 2).count(), 1);
    }

    #[test]
    fn empty_inputs() {
        let mut g = gpu();
        let empty = g.alloc_host_from_vec(Vec::<u64>::new());
        let some = g.alloc_host_from_vec(vec![1u64, 2]);
        let mut sink = ResultSink::with_capacity(&mut g, 4, MemLocation::Gpu).unwrap();
        let s1 = hash_join(&mut g, &empty, &some, HashJoinConfig::default(), &mut sink).unwrap();
        assert_eq!(s1.matches, 0);
        let s2 = hash_join(&mut g, &some, &empty, HashJoinConfig::default(), &mut sink).unwrap();
        assert_eq!(s2.matches, 0);
    }

    #[test]
    fn reserved_build_key_is_a_typed_error() {
        let mut g = gpu();
        let bb = g.alloc_host_from_vec(vec![1u64, u64::MAX]);
        let pb = g.alloc_host_from_vec(vec![1u64]);
        let mut sink = ResultSink::with_capacity(&mut g, 4, MemLocation::Gpu).unwrap();
        let err = hash_join(&mut g, &bb, &pb, HashJoinConfig::default(), &mut sink).unwrap_err();
        assert_eq!(err, JoinError::ReservedKey);
        assert_eq!(
            g.live_gpu_bytes(),
            sink_reservation(&g),
            "table freed on error"
        );
        sink.free(&mut g);
    }

    fn sink_reservation(g: &Gpu) -> u64 {
        // One sink of 4 pairs = 64 bytes → one page.
        g.spec().page_bytes
    }

    /// A V100 spec with finer pages so sub-megabyte HBM budgets are
    /// expressible (the default simulated page is 1 MiB).
    fn small_page_spec(hbm_bytes: u64) -> GpuSpec {
        let mut spec = GpuSpec::v100_nvlink2(Scale::PAPER);
        spec.page_bytes = 4096;
        spec.hbm_bytes = hbm_bytes;
        spec
    }

    #[test]
    fn oversized_build_chunks_into_multiple_passes() {
        // Shrink HBM so one table for the whole build side cannot fit.
        let mut g = Gpu::new(small_page_spec(64 * 1024));
        let r: Vec<u64> = (0..4000u64).map(|i| i * 2).collect();
        let s: Vec<u64> = (0..500u64).map(|i| (i * 7 % 4000) * 2).collect();
        let rb = g.alloc_host_from_vec(r.clone());
        let sb = g.alloc_host_from_vec(s.clone());
        let mut sink = ResultSink::with_capacity(&mut g, 500, MemLocation::Cpu).unwrap();
        let stats = hash_join(&mut g, &rb, &sb, HashJoinConfig::default(), &mut sink).unwrap();
        assert!(stats.build_passes > 1, "expected chunked build");
        assert_eq!(
            stats.matches, 500,
            "multi-pass union equals one-pass result"
        );
        for (s_rid, r_rid) in sink.host_pairs() {
            assert_eq!(s[s_rid as usize], r[r_rid as usize]);
        }
        assert_eq!(g.live_gpu_bytes(), 0, "all tables freed");
    }

    #[test]
    fn multi_pass_equals_single_pass_result() {
        let r: Vec<u64> = (0..3000u64).map(|i| i % 700).collect(); // duplicates
        let s: Vec<u64> = (0..400u64).map(|i| i * 3 % 700).collect();

        let mut g1 = gpu();
        let rb1 = g1.alloc_host_from_vec(r.clone());
        let sb1 = g1.alloc_host_from_vec(s.clone());
        let mut sink1 = ResultSink::with_capacity(&mut g1, 4096, MemLocation::Cpu).unwrap();
        let one = hash_join(&mut g1, &rb1, &sb1, HashJoinConfig::default(), &mut sink1).unwrap();
        assert_eq!(one.build_passes, 1);

        let mut g2 = Gpu::new(small_page_spec(64 * 1024));
        let rb2 = g2.alloc_host_from_vec(r);
        let sb2 = g2.alloc_host_from_vec(s);
        let mut sink2 = ResultSink::with_capacity(&mut g2, 4096, MemLocation::Cpu).unwrap();
        let many = hash_join(&mut g2, &rb2, &sb2, HashJoinConfig::default(), &mut sink2).unwrap();
        assert!(many.build_passes > 1);

        let mut a = sink1.host_pairs();
        let mut b = sink2.host_pairs();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
