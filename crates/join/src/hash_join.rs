//! Hash join baseline (§3.2).
//!
//! Mirrors the paper's configuration: a WarpCore-style multi-value hash
//! table with a 50 % load factor and block size 512, kept in GPU memory.
//! "We flip the input relations to build on the smaller relation and reduce
//! the hash table size. To reflect real-world use, the query builds the
//! hash table on-the-fly, which we include in the throughput measurement."
//!
//! The probe side is therefore the *larger* relation, which the join reads
//! with a full table scan — streaming the entire relation across the
//! interconnect regardless of selectivity. That scan volume is exactly what
//! Fig. 1 and the paper's INLJ study set out to avoid.

use crate::hash_table::{HashTableConfig, MultiValueHashTable};
use crate::sink::ResultSink;
use windex_sim::{launch_kernel, warps_of, Buffer, Gpu};

/// Hash-join configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashJoinConfig {
    /// Hash-table parameters (paper defaults: 50 % load factor, block 512).
    pub table: HashTableConfig,
}

/// Statistics of one hash-join run.
#[derive(Debug, Clone, Copy)]
pub struct HashJoinStats {
    /// Materialized result pairs.
    pub matches: usize,
    /// Distinct keys in the build side.
    pub build_distinct: usize,
    /// GPU memory held by the hash table in bytes.
    pub table_bytes: u64,
}

/// Run the hash join: build on `build` (CPU-resident keys, streamed once),
/// probe with a full scan of `probe`. Matches are emitted to `sink` as
/// `(probe rid, build rid)` pairs. Build and probe are separate kernels;
/// the build is included in the measurement window, as in the paper.
pub fn hash_join(
    gpu: &mut Gpu,
    build: &Buffer<u64>,
    probe: &Buffer<u64>,
    config: HashJoinConfig,
    sink: &mut ResultSink,
) -> HashJoinStats {
    // --- build kernel: stream the build side and insert.
    let mut table = MultiValueHashTable::new(gpu, build.len(), config.table);
    if !build.is_empty() {
        launch_kernel(gpu, |gpu| {
            for warp in warps_of(0..build.len()) {
                let start = warp.start;
                let keys = build.stream_read(gpu, start, warp.len()).to_vec();
                for (i, k) in keys.into_iter().enumerate() {
                    table.insert(gpu, k, (start + i) as u64);
                }
            }
        });
    }

    // --- probe kernel: full scan of the probe side.
    let mut matches = 0;
    if !probe.is_empty() {
        launch_kernel(gpu, |gpu| {
            for warp in warps_of(0..probe.len()) {
                let start = warp.start;
                let keys = probe.stream_read(gpu, start, warp.len()).to_vec();
                for (i, k) in keys.into_iter().enumerate() {
                    let rid = (start + i) as u64;
                    matches += table.probe(gpu, k, |gpu, build_rid| {
                        sink.emit(gpu, rid, build_rid);
                    });
                }
            }
        });
    }

    HashJoinStats {
        matches,
        build_distinct: table.distinct_keys(),
        table_bytes: table.gpu_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, MemLocation, Scale};

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    #[test]
    fn fk_join_matches_every_probe_partner() {
        let mut g = gpu();
        let r: Vec<u64> = (0..5000u64).map(|i| i * 2).collect();
        let s: Vec<u64> = (0..800u64).map(|i| (i * 13 % 5000) * 2).collect();
        let rb = g.alloc_from_vec(MemLocation::Cpu, r.clone());
        let sb = g.alloc_from_vec(MemLocation::Cpu, s.clone());
        let mut sink = ResultSink::with_capacity(&mut g, 800, MemLocation::Gpu);
        // Build on S (smaller), probe with R — as the paper flips them.
        let stats = hash_join(&mut g, &sb, &rb, HashJoinConfig::default(), &mut sink);
        assert_eq!(stats.matches, 800);
        for (r_rid, s_rid) in sink.host_pairs() {
            assert_eq!(r[r_rid as usize], s[s_rid as usize]);
        }
    }

    #[test]
    fn probe_side_is_fully_scanned() {
        let mut g = gpu();
        let r: Vec<u64> = (0..100_000u64).collect();
        let s: Vec<u64> = vec![1, 2, 3];
        let rb = g.alloc_from_vec(MemLocation::Cpu, r);
        let sb = g.alloc_from_vec(MemLocation::Cpu, s);
        let mut sink = ResultSink::with_capacity(&mut g, 16, MemLocation::Gpu);
        let before = g.snapshot();
        hash_join(&mut g, &sb, &rb, HashJoinConfig::default(), &mut sink);
        let d = g.snapshot() - before;
        // The full probe relation crosses the interconnect even though only
        // 3 tuples match — the transfer-volume problem of Fig. 1.
        assert!(d.ic_bytes_streamed >= 100_000 * 8);
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn duplicate_build_keys_multi_match() {
        let mut g = gpu();
        let build: Vec<u64> = vec![7, 7, 7, 9];
        let probe: Vec<u64> = vec![7, 8, 9];
        let bb = g.alloc_from_vec(MemLocation::Cpu, build);
        let pb = g.alloc_from_vec(MemLocation::Cpu, probe);
        let mut sink = ResultSink::with_capacity(&mut g, 8, MemLocation::Gpu);
        let stats = hash_join(&mut g, &bb, &pb, HashJoinConfig::default(), &mut sink);
        assert_eq!(stats.matches, 4); // 3 for key 7 + 1 for key 9
        assert_eq!(stats.build_distinct, 2);
        let pairs = sink.host_pairs();
        assert_eq!(pairs.iter().filter(|(p, _)| *p == 0).count(), 3);
        assert_eq!(pairs.iter().filter(|(p, _)| *p == 2).count(), 1);
    }

    #[test]
    fn empty_inputs() {
        let mut g = gpu();
        let empty = g.alloc_from_vec(MemLocation::Cpu, Vec::<u64>::new());
        let some = g.alloc_from_vec(MemLocation::Cpu, vec![1u64, 2]);
        let mut sink = ResultSink::with_capacity(&mut g, 4, MemLocation::Gpu);
        let s1 = hash_join(&mut g, &empty, &some, HashJoinConfig::default(), &mut sink);
        assert_eq!(s1.matches, 0);
        let s2 = hash_join(&mut g, &some, &empty, HashJoinConfig::default(), &mut sink);
        assert_eq!(s2.matches, 0);
    }
}
