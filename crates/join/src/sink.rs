//! Join result materialization.
//!
//! The paper's queries materialize join results into GPU memory (§3.2,
//! footnote: "Large results could be spilled to CPU memory"). The sink is a
//! preallocated pair buffer with an append cursor; a spill variant writes to
//! CPU memory instead, for results larger than device capacity.

use windex_sim::{Buffer, Gpu, MemLocation};

/// An append-only buffer of join result pairs.
#[derive(Debug)]
pub struct ResultSink {
    /// Interleaved pairs `(left, right)`.
    pairs: Buffer<u64>,
    cursor: usize,
}

impl ResultSink {
    /// Preallocate space for `capacity` result pairs at `loc`
    /// ([`MemLocation::Gpu`] for the paper's default, [`MemLocation::Cpu`]
    /// to model spilling).
    pub fn with_capacity(gpu: &mut Gpu, capacity: usize, loc: MemLocation) -> Self {
        ResultSink {
            pairs: gpu.alloc(loc, capacity * 2),
            cursor: 0,
        }
    }

    /// Append one result pair (a device-side materialization write).
    #[inline]
    pub fn emit(&mut self, gpu: &mut Gpu, left: u64, right: u64) {
        assert!(self.cursor * 2 + 2 <= self.pairs.len(), "result sink overflow");
        self.pairs.write_range(gpu, self.cursor * 2, &[left, right]);
        self.cursor += 1;
    }

    /// Number of materialized pairs.
    pub fn len(&self) -> usize {
        self.cursor
    }

    /// Whether no pairs were materialized.
    pub fn is_empty(&self) -> bool {
        self.cursor == 0
    }

    /// Where the results live.
    pub fn location(&self) -> MemLocation {
        self.pairs.location()
    }

    /// Host view of the materialized pairs (tests / verification).
    pub fn host_pairs(&self) -> Vec<(u64, u64)> {
        (0..self.cursor)
            .map(|i| (self.pairs.host()[i * 2], self.pairs.host()[i * 2 + 1]))
            .collect()
    }

    /// Reset the cursor, keeping the allocation (reuse across queries).
    pub fn clear(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};

    #[test]
    fn emit_and_read_back() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let mut sink = ResultSink::with_capacity(&mut gpu, 4, MemLocation::Gpu);
        sink.emit(&mut gpu, 1, 2);
        sink.emit(&mut gpu, 3, 4);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.host_pairs(), vec![(1, 2), (3, 4)]);
        assert!(gpu.counters().gpu_bytes_written >= 32);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let mut sink = ResultSink::with_capacity(&mut gpu, 1, MemLocation::Gpu);
        sink.emit(&mut gpu, 1, 2);
        sink.emit(&mut gpu, 3, 4);
    }

    #[test]
    fn cpu_spill_counts_interconnect_writes() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let mut sink = ResultSink::with_capacity(&mut gpu, 2, MemLocation::Cpu);
        sink.emit(&mut gpu, 7, 8);
        assert!(gpu.counters().ic_bytes_written >= 16);
    }
}
