//! Join result materialization.
//!
//! The paper's queries materialize join results into GPU memory (§3.2,
//! footnote: "Large results could be spilled to CPU memory"). The sink is a
//! preallocated pair buffer with an append cursor. When the buffer
//! overflows, the sink *spills*: the live pairs move to a larger CPU-memory
//! buffer (the copy crossing the interconnect is counted) and appends
//! continue there — results larger than device capacity degrade gracefully
//! instead of failing the query.

use crate::error::{with_join_retries, JoinError};
use windex_sim::{Buffer, Gpu, MemLocation};

/// An append-only buffer of join result pairs with automatic CPU spill.
#[derive(Debug)]
pub struct ResultSink {
    /// Interleaved pairs `(left, right)`.
    pairs: Buffer<u64>,
    cursor: usize,
    spills: usize,
}

impl ResultSink {
    /// Preallocate space for `capacity` result pairs at `loc`
    /// ([`MemLocation::Gpu`] for the paper's default, [`MemLocation::Cpu`]
    /// to model spilling). Device allocations are fallible; transient
    /// allocation faults are retried under the engine's retry policy.
    pub fn with_capacity(
        gpu: &mut Gpu,
        capacity: usize,
        loc: MemLocation,
    ) -> Result<Self, JoinError> {
        let pairs = match loc {
            MemLocation::Gpu => with_join_retries(gpu, |g| {
                g.alloc(MemLocation::Gpu, capacity * 2)
                    .map_err(JoinError::from)
            })?,
            MemLocation::Cpu => gpu.alloc_host(capacity * 2),
        };
        Ok(ResultSink {
            pairs,
            cursor: 0,
            spills: 0,
        })
    }

    /// Append one result pair (a device-side materialization write). On
    /// overflow the sink spills to a doubled CPU-memory buffer and the
    /// append proceeds there; it never fails.
    #[inline]
    pub fn emit(&mut self, gpu: &mut Gpu, left: u64, right: u64) {
        if self.cursor * 2 + 2 > self.pairs.len() {
            self.spill_grow(gpu);
        }
        self.pairs.write_range(gpu, self.cursor * 2, &[left, right]);
        self.cursor += 1;
    }

    /// Move the live pairs into a CPU-memory buffer of at least double the
    /// capacity. The copy is real traffic: the live pairs are read from
    /// their current location and streamed to CPU memory over the
    /// interconnect.
    fn spill_grow(&mut self, gpu: &mut Gpu) {
        let new_len = (self.pairs.len() * 2).max(4);
        let mut data = self.pairs.host()[..self.cursor * 2].to_vec();
        data.resize(new_len, 0);
        let moved_bytes = (self.cursor * 16) as u64;
        if moved_bytes > 0 {
            gpu.stream_read(self.pairs.location(), self.pairs.addr_of(0), moved_bytes);
        }
        let new_pairs = gpu.alloc_host_from_vec(data);
        if moved_bytes > 0 {
            gpu.stream_write(MemLocation::Cpu, new_pairs.addr_of(0), moved_bytes);
        }
        let old = std::mem::replace(&mut self.pairs, new_pairs);
        gpu.free(old);
        self.spills += 1;
    }

    /// Number of materialized pairs.
    pub fn len(&self) -> usize {
        self.cursor
    }

    /// Whether no pairs were materialized.
    pub fn is_empty(&self) -> bool {
        self.cursor == 0
    }

    /// Where the results currently live (changes to CPU after a spill).
    pub fn location(&self) -> MemLocation {
        self.pairs.location()
    }

    /// Number of overflow spills performed.
    pub fn spill_count(&self) -> usize {
        self.spills
    }

    /// Host view of the materialized pairs (tests / verification).
    pub fn host_pairs(&self) -> Vec<(u64, u64)> {
        (0..self.cursor)
            .map(|i| (self.pairs.host()[i * 2], self.pairs.host()[i * 2 + 1]))
            .collect()
    }

    /// Roll the cursor back to `len` pairs (no-op if already shorter).
    /// Operators retrying a failed kernel truncate to their entry mark so
    /// partial outputs of the failed attempt are discarded.
    pub fn truncate(&mut self, len: usize) {
        self.cursor = self.cursor.min(len);
    }

    /// Reset the cursor, keeping the allocation (reuse across queries).
    pub fn clear(&mut self) {
        self.cursor = 0;
    }

    /// Release the sink's buffer back to the device budget.
    pub fn free(self, gpu: &mut Gpu) {
        gpu.free(self.pairs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};

    #[test]
    fn emit_and_read_back() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let mut sink = ResultSink::with_capacity(&mut gpu, 4, MemLocation::Gpu).unwrap();
        sink.emit(&mut gpu, 1, 2);
        sink.emit(&mut gpu, 3, 4);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.host_pairs(), vec![(1, 2), (3, 4)]);
        assert!(gpu.counters().gpu_bytes_written >= 32);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn overflow_spills_to_cpu_and_keeps_results() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let mut sink = ResultSink::with_capacity(&mut gpu, 2, MemLocation::Gpu).unwrap();
        assert_eq!(sink.location(), MemLocation::Gpu);
        for i in 0..10u64 {
            sink.emit(&mut gpu, i, i * 10);
        }
        assert_eq!(sink.len(), 10);
        assert_eq!(
            sink.location(),
            MemLocation::Cpu,
            "sink must spill, not panic"
        );
        assert!(sink.spill_count() >= 1);
        let pairs = sink.host_pairs();
        assert_eq!(pairs, (0..10u64).map(|i| (i, i * 10)).collect::<Vec<_>>());
    }

    #[test]
    fn spill_copy_is_counted_as_interconnect_writes() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let mut sink = ResultSink::with_capacity(&mut gpu, 2, MemLocation::Gpu).unwrap();
        sink.emit(&mut gpu, 1, 2);
        sink.emit(&mut gpu, 3, 4);
        let before = gpu.snapshot();
        sink.emit(&mut gpu, 5, 6); // overflow: 2 live pairs move to CPU
        let d = gpu.snapshot() - before;
        // The 32-byte copy crosses the interconnect, plus the new append.
        assert!(
            d.ic_bytes_written >= 32,
            "spill writes: {}",
            d.ic_bytes_written
        );
        assert!(d.gpu_bytes_read >= 32, "spill reads the live GPU pairs");
    }

    #[test]
    fn spill_releases_the_device_reservation() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let mut sink = ResultSink::with_capacity(&mut gpu, 2, MemLocation::Gpu).unwrap();
        let held = gpu.live_gpu_bytes();
        assert!(held > 0);
        for i in 0..5u64 {
            sink.emit(&mut gpu, i, i);
        }
        assert_eq!(
            gpu.live_gpu_bytes(),
            0,
            "spilled sink holds no device memory"
        );
        sink.free(&mut gpu);
        assert_eq!(gpu.live_gpu_bytes(), 0);
    }

    #[test]
    fn truncate_rolls_back_partial_output() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let mut sink = ResultSink::with_capacity(&mut gpu, 8, MemLocation::Gpu).unwrap();
        sink.emit(&mut gpu, 1, 1);
        let mark = sink.len();
        sink.emit(&mut gpu, 2, 2);
        sink.emit(&mut gpu, 3, 3);
        sink.truncate(mark);
        assert_eq!(sink.host_pairs(), vec![(1, 1)]);
        sink.truncate(99); // no-op when longer than the cursor
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn cpu_spill_counts_interconnect_writes() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let mut sink = ResultSink::with_capacity(&mut gpu, 2, MemLocation::Cpu).unwrap();
        sink.emit(&mut gpu, 7, 8);
        assert!(gpu.counters().ic_bytes_written >= 16);
    }
}
