//! Radix partitioner with software write-combining (SWWC) and a linear
//! allocator, after Stehle & Jacobsen (SIGMOD'17) — the algorithm the paper
//! picks "due to its high performance in GPU memory" (§4.3.1).
//!
//! The operator partitions a run of (key, rid) pairs from the probe stream
//! into a GPU-memory buffer ordered by partition:
//!
//! 1. **stage** — the input keys are streamed once across the interconnect
//!    into a GPU staging buffer (pairing each key with its rid);
//! 2. **histogram** — one GPU-memory pass counts keys per partition and a
//!    prefix sum assigns each partition a contiguous output region (the
//!    linear allocator);
//! 3. **scatter** — a second GPU-memory pass routes each pair through a
//!    per-partition write-combining buffer of one cacheline, which is
//!    flushed with a single coalesced write when full.
//!
//! Interconnect cost is therefore exactly one pass over the input, and all
//! device-memory writes are full cachelines — the properties that make SWWC
//! fast on real GPUs.

use crate::error::{with_join_retries, JoinError};
use crate::partition_bits::PartitionBits;
use windex_sim::{try_launch_kernel, Buffer, Gpu, MemLocation};

/// A reusable radix partitioner for (key, rid) pairs.
#[derive(Debug, Clone)]
pub struct RadixPartitioner {
    bits: PartitionBits,
    min_key: u64,
}

/// The result of partitioning one input run.
#[derive(Debug)]
pub struct Partitioned {
    /// Interleaved (key, rid) pairs in GPU memory, grouped by partition.
    pub pairs: Buffer<u64>,
    /// Exclusive prefix offsets: partition `p` occupies pair indices
    /// `offsets[p] .. offsets[p + 1]`.
    pub offsets: Vec<usize>,
}

impl Partitioned {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len() / 2
    }

    /// Whether the run was empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Release the pair buffer back to the device budget.
    pub fn free(self, gpu: &mut Gpu) {
        gpu.free(self.pairs);
    }
}

impl RadixPartitioner {
    /// Create a partitioner with the given bit range. `min_key` anchors the
    /// key domain (§4.2: the high bits shared by all keys carry no
    /// information).
    pub fn new(bits: PartitionBits, min_key: u64) -> Self {
        RadixPartitioner { bits, min_key }
    }

    /// The configured bit range.
    pub fn bits(&self) -> PartitionBits {
        self.bits
    }

    /// Partition `keys[range]` (a run of the CPU-resident probe stream) with
    /// rids equal to their absolute stream positions. Launches the staging
    /// and partitioning kernels and returns partition-ordered pairs in GPU
    /// memory. Device-allocation and injected-fault errors are surfaced
    /// after bounded retries (each kernel is idempotent, so retrying simply
    /// re-runs it); the staging buffer is always released.
    pub fn partition_stream(
        &self,
        gpu: &mut Gpu,
        keys: &Buffer<u64>,
        range: std::ops::Range<usize>,
    ) -> Result<Partitioned, JoinError> {
        let n = range.len();
        let p = self.bits.partitions();
        if n == 0 {
            return Ok(Partitioned {
                pairs: with_join_retries(gpu, |g| {
                    g.alloc(MemLocation::Gpu, 0).map_err(JoinError::from)
                })?,
                offsets: vec![0; p + 1],
            });
        }
        let line_pairs = (gpu.spec().cacheline_bytes as usize / 16).max(1);

        // --- stage: one interconnect pass, paired with rids in GPU memory.
        let mut staging: Buffer<u64> = with_join_retries(gpu, |g| {
            g.alloc(MemLocation::Gpu, n * 2).map_err(JoinError::from)
        })?;
        let staged = with_join_retries(gpu, |gpu| {
            try_launch_kernel(gpu, |gpu| {
                let start = range.start;
                let vals = keys.stream_read(gpu, start, n).to_vec();
                for (i, k) in vals.into_iter().enumerate() {
                    // Written as full lines by the staging kernel.
                    staging.host_mut()[i * 2] = k;
                    staging.host_mut()[i * 2 + 1] = (start + i) as u64;
                }
                gpu.stream_write(MemLocation::Gpu, staging.addr_of(0), (n * 16) as u64);
            })
            .map_err(JoinError::from)
        });
        if let Err(e) = staged {
            gpu.free(staging);
            return Err(e);
        }

        // --- histogram + prefix sum (linear allocator).
        let mut hist = vec![0usize; p];
        let counted = with_join_retries(gpu, |gpu| {
            hist.iter_mut().for_each(|h| *h = 0); // idempotent retries
            try_launch_kernel(gpu, |gpu| {
                gpu.stream_read(MemLocation::Gpu, staging.addr_of(0), (n * 16) as u64);
                for i in 0..n {
                    let key = staging.host()[i * 2];
                    hist[self.bits.partition_of(key, self.min_key)] += 1;
                }
                gpu.op(n as u64 / 32 + p as u64);
            })
            .map_err(JoinError::from)
        });
        if let Err(e) = counted {
            gpu.free(staging);
            return Err(e);
        }
        let mut offsets = vec![0usize; p + 1];
        for i in 0..p {
            offsets[i + 1] = offsets[i] + hist[i];
        }

        // --- scatter through per-partition write-combining buffers.
        let out: Result<Buffer<u64>, JoinError> = with_join_retries(gpu, |g| {
            g.alloc(MemLocation::Gpu, n * 2).map_err(JoinError::from)
        });
        let mut out = match out {
            Ok(b) => b,
            Err(e) => {
                gpu.free(staging);
                return Err(e);
            }
        };
        let scattered = with_join_retries(gpu, |gpu| {
            try_launch_kernel(gpu, |gpu| {
                gpu.stream_read(MemLocation::Gpu, staging.addr_of(0), (n * 16) as u64);
                let mut cursors = offsets[..p].to_vec();
                let mut wc: Vec<Vec<u64>> = vec![Vec::with_capacity(line_pairs * 2); p];
                for i in 0..n {
                    let key = staging.host()[i * 2];
                    let rid = staging.host()[i * 2 + 1];
                    let part = self.bits.partition_of(key, self.min_key);
                    let buf = &mut wc[part];
                    buf.push(key);
                    buf.push(rid);
                    if buf.len() == line_pairs * 2 {
                        // Flush one full cacheline with a coalesced write on
                        // the deferred issue path (drained at kernel end).
                        out.write_range_issued(gpu, cursors[part] * 2, buf);
                        cursors[part] += line_pairs;
                        buf.clear();
                    }
                }
                // Flush the remaining partial lines.
                for (part, buf) in wc.iter_mut().enumerate() {
                    if !buf.is_empty() {
                        out.write_range_issued(gpu, cursors[part] * 2, buf);
                        cursors[part] += buf.len() / 2;
                        buf.clear();
                    }
                }
                gpu.op(n as u64 / 32);
                debug_assert!(cursors.iter().zip(offsets[1..].iter()).all(|(c, o)| c == o));
            })
            .map_err(JoinError::from)
        });
        gpu.free(staging);
        if let Err(e) = scattered {
            gpu.free(out);
            return Err(e);
        }

        Ok(Partitioned {
            pairs: out,
            offsets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    fn keys_buffer(gpu: &mut Gpu, keys: Vec<u64>) -> Buffer<u64> {
        gpu.alloc_host_from_vec(keys)
    }

    #[test]
    fn partitions_are_contiguous_and_complete() {
        let mut g = gpu();
        let keys: Vec<u64> = (0..10_000u64).map(|i| (i * 7919) % 65536).collect();
        let buf = keys_buffer(&mut g, keys.clone());
        let bits = PartitionBits { shift: 4, bits: 6 };
        let part = RadixPartitioner::new(bits, 0);
        let out = part.partition_stream(&mut g, &buf, 0..keys.len()).unwrap();
        assert_eq!(out.len(), keys.len());
        assert_eq!(out.partitions(), 64);
        // Every pair is in its partition's region and rids map back.
        for p in 0..out.partitions() {
            for i in out.offsets[p]..out.offsets[p + 1] {
                let k = out.pairs.host()[i * 2];
                let rid = out.pairs.host()[i * 2 + 1] as usize;
                assert_eq!(bits.partition_of(k, 0), p);
                assert_eq!(keys[rid], k);
            }
        }
        // All rids present exactly once.
        let mut rids: Vec<u64> = (0..out.len())
            .map(|i| out.pairs.host()[i * 2 + 1])
            .collect();
        rids.sort_unstable();
        assert!(rids.iter().enumerate().all(|(i, &r)| r == i as u64));
    }

    #[test]
    fn range_offsets_use_absolute_rids() {
        let mut g = gpu();
        let keys: Vec<u64> = (0..1000u64).collect();
        let buf = keys_buffer(&mut g, keys);
        let part = RadixPartitioner::new(PartitionBits { shift: 0, bits: 4 }, 0);
        let out = part.partition_stream(&mut g, &buf, 500..600).unwrap();
        assert_eq!(out.len(), 100);
        for i in 0..out.len() {
            let rid = out.pairs.host()[i * 2 + 1];
            assert!((500..600).contains(&(rid as usize)));
        }
    }

    #[test]
    fn one_interconnect_pass_only() {
        let mut g = gpu();
        let n = 50_000;
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 3).collect();
        let buf = keys_buffer(&mut g, keys);
        let part = RadixPartitioner::new(PartitionBits::paper_default(), 0);
        let before = g.snapshot();
        let _ = part.partition_stream(&mut g, &buf, 0..n).unwrap();
        let d = g.snapshot() - before;
        assert_eq!(d.ic_bytes_streamed, n as u64 * 8, "exactly one input pass");
        assert_eq!(d.ic_bytes_random, 0);
        // Device traffic: stage write + 2 passes + scatter write ≈ 4–5
        // pair-buffer passes.
        assert!(d.gpu_bytes_written >= 2 * n as u64 * 16);
        assert_eq!(d.kernel_launches, 3);
    }

    #[test]
    fn empty_run() {
        let mut g = gpu();
        let buf = keys_buffer(&mut g, vec![1, 2, 3]);
        let part = RadixPartitioner::new(PartitionBits::paper_default(), 0);
        let out = part.partition_stream(&mut g, &buf, 1..1).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.offsets.last(), Some(&0));
    }

    #[test]
    fn single_partition_degenerate() {
        let mut g = gpu();
        let keys = vec![5u64, 6, 7, 8];
        let buf = keys_buffer(&mut g, keys.clone());
        // All keys share the partition when shift swallows the domain.
        let part = RadixPartitioner::new(PartitionBits { shift: 32, bits: 1 }, 0);
        let out = part.partition_stream(&mut g, &buf, 0..4).unwrap();
        assert_eq!(out.offsets, vec![0, 4, 4]);
        // SWWC preserves arrival order within a partition.
        let got: Vec<u64> = (0..4).map(|i| out.pairs.host()[i * 2]).collect();
        assert_eq!(got, keys);
    }
}
