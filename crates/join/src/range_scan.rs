//! Index range scans vs. full table scans — the access-path choice of
//! Fig. 1.
//!
//! "When queries expose selectivity, a full table scan wastes bandwidth"
//! (§1): a range predicate over the sorted base relation maps to a
//! *contiguous* position range, so an index needs two lower-bound searches
//! and can then stream exactly the matching run across the interconnect.
//! The full-scan baseline streams the entire relation and filters on the
//! GPU. Both operators return the matching tuples materialized in GPU
//! memory; the difference is the transfer volume.

use crate::error::{with_join_retries, JoinError};
use crate::sink::ResultSink;
use windex_index::OutOfCoreIndex;
use windex_sim::{try_launch_kernel, Buffer, Gpu};

/// Result of a range-selection operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeScanStats {
    /// Matching tuples materialized.
    pub matches: usize,
    /// First matching position in the base relation.
    pub first_pos: u64,
}

/// Index range scan: two index searches bound the contiguous run of
/// positions with keys in `lo..=hi`; the run is streamed once across the
/// interconnect and materialized as `(position, key)` pairs in `sink`.
/// Injected transient faults are retried under the engine's retry policy;
/// each retry rolls the sink back to its entry length.
pub fn index_range_scan(
    gpu: &mut Gpu,
    index: &dyn OutOfCoreIndex,
    data: &Buffer<u64>,
    lo: u64,
    hi: u64,
    sink: &mut ResultSink,
) -> Result<RangeScanStats, JoinError> {
    let mark = sink.len();
    with_join_retries(gpu, |gpu| {
        sink.truncate(mark);
        try_launch_kernel(gpu, |gpu| {
            let range = index.range(gpu, lo, hi);
            let first_pos = range.start;
            let (start, end) = (range.start as usize, range.end as usize);
            let mut matches = 0;
            // Stream the matching run in chunks (coalesced, full-bandwidth).
            const CHUNK: usize = 4096;
            let mut at = start;
            while at < end {
                let n = CHUNK.min(end - at);
                let vals = data.stream_read(gpu, at, n).to_vec();
                for (i, v) in vals.into_iter().enumerate() {
                    debug_assert!((lo..=hi).contains(&v));
                    sink.emit(gpu, (at + i) as u64, v);
                    matches += 1;
                }
                at += n;
            }
            RangeScanStats { matches, first_pos }
        })
        .map_err(JoinError::from)
    })
}

/// Full-scan baseline: stream the whole relation, filter on the GPU, and
/// materialize the matches. Transfers `|R|` bytes regardless of
/// selectivity — the Fig. 1 waste. Fault retry semantics match
/// [`index_range_scan`].
pub fn full_scan_filter(
    gpu: &mut Gpu,
    data: &Buffer<u64>,
    lo: u64,
    hi: u64,
    sink: &mut ResultSink,
) -> Result<RangeScanStats, JoinError> {
    let mark = sink.len();
    with_join_retries(gpu, |gpu| {
        sink.truncate(mark);
        try_launch_kernel(gpu, |gpu| {
            let mut matches = 0;
            let mut first_pos = u64::MAX;
            const CHUNK: usize = 4096;
            let mut at = 0;
            let n_total = data.len();
            while at < n_total {
                let n = CHUNK.min(n_total - at);
                let vals = data.stream_read(gpu, at, n).to_vec();
                gpu.op(n as u64 / 32 + 1); // predicate evaluation
                for (i, v) in vals.into_iter().enumerate() {
                    if (lo..=hi).contains(&v) {
                        if first_pos == u64::MAX {
                            first_pos = (at + i) as u64;
                        }
                        sink.emit(gpu, (at + i) as u64, v);
                        matches += 1;
                    }
                }
                at += n;
            }
            RangeScanStats { matches, first_pos }
        })
        .map_err(JoinError::from)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use windex_index::BinarySearchIndex;
    use windex_sim::{GpuSpec, MemLocation, Scale};

    fn setup(n: u64) -> (Gpu, Rc<Buffer<u64>>, BinarySearchIndex) {
        let mut g = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let keys: Vec<u64> = (0..n).map(|i| i * 3).collect();
        let data = Rc::new(g.alloc_host_from_vec(keys));
        let idx = BinarySearchIndex::new(Rc::clone(&data));
        (g, data, idx)
    }

    #[test]
    fn index_scan_equals_full_scan() {
        let (mut g, data, idx) = setup(10_000);
        let (lo, hi) = (3000, 9000);
        let mut a = ResultSink::with_capacity(&mut g, 10_000, MemLocation::Gpu).unwrap();
        let sa = index_range_scan(&mut g, &idx, &data, lo, hi, &mut a).unwrap();
        let mut b = ResultSink::with_capacity(&mut g, 10_000, MemLocation::Gpu).unwrap();
        let sb = full_scan_filter(&mut g, &data, lo, hi, &mut b).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a.host_pairs(), b.host_pairs());
        assert_eq!(sa.matches, 2001); // keys 3000,3003,…,9000
        assert_eq!(sa.first_pos, 1000);
    }

    #[test]
    fn index_scan_transfers_only_the_range() {
        let (mut g, data, idx) = setup(100_000);
        let mut sink = ResultSink::with_capacity(&mut g, 100_000, MemLocation::Gpu).unwrap();
        let before = g.snapshot();
        index_range_scan(&mut g, &idx, &data, 0, 2_999, &mut sink).unwrap();
        let d = g.snapshot() - before;
        // 1000 matching tuples: ~8 KB streamed + a few search lines, far
        // below the 800 KB full relation.
        assert!(d.ic_bytes_streamed <= 16 * 1024, "{}", d.ic_bytes_streamed);

        let mut sink2 = ResultSink::with_capacity(&mut g, 100_000, MemLocation::Gpu).unwrap();
        let before = g.snapshot();
        full_scan_filter(&mut g, &data, 0, 2_999, &mut sink2).unwrap();
        let d_full = g.snapshot() - before;
        assert!(d_full.ic_bytes_streamed >= 100_000 * 8);
    }

    #[test]
    fn empty_range() {
        let (mut g, data, idx) = setup(100);
        let mut sink = ResultSink::with_capacity(&mut g, 100, MemLocation::Gpu).unwrap();
        // Between two keys: 3k+1 never matches.
        let s = index_range_scan(&mut g, &idx, &data, 7, 8, &mut sink).unwrap();
        assert_eq!(s.matches, 0);
        assert!(sink.is_empty());
        // Inverted bounds.
        let s = index_range_scan(&mut g, &idx, &data, 50, 10, &mut sink).unwrap();
        assert_eq!(s.matches, 0);
    }

    #[test]
    fn full_domain_range() {
        let (mut g, data, idx) = setup(1000);
        let mut sink = ResultSink::with_capacity(&mut g, 1000, MemLocation::Gpu).unwrap();
        let s = index_range_scan(&mut g, &idx, &data, 0, u64::MAX, &mut sink).unwrap();
        assert_eq!(s.matches, 1000);
    }
}
