//! Typed errors for the join operators.
//!
//! Join operators surface every failure of the simulated device — injected
//! transient faults, HBM capacity exhaustion — and their own logical errors
//! (reserved keys, pool exhaustion, bad configuration) as values instead of
//! panicking, so the query engine above can degrade gracefully.

use serde::Serialize;
use windex_sim::{Gpu, SimError};

/// An error from a join operator.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum JoinError {
    /// A simulator fault or capacity error (allocation failure, transfer
    /// fault, kernel-launch failure, out of device memory).
    Sim(SimError),
    /// `u64::MAX` is reserved as the hash table's empty-slot sentinel and
    /// cannot be inserted as a key.
    ReservedKey,
    /// The hash table's value-block pool is exhausted (more values inserted
    /// than the table was sized for).
    PoolExhausted {
        /// Pool slots the allocation needed.
        needed: usize,
        /// Pool slots still available.
        available: usize,
    },
    /// Invalid operator configuration.
    InvalidConfig(&'static str),
}

impl JoinError {
    /// Whether retrying the failed operation may succeed (delegates to
    /// [`SimError::is_transient`]; logical errors are never transient).
    pub fn is_transient(&self) -> bool {
        match self {
            JoinError::Sim(e) => e.is_transient(),
            _ => false,
        }
    }
}

impl From<SimError> for JoinError {
    fn from(e: SimError) -> Self {
        JoinError::Sim(e)
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Sim(e) => write!(f, "simulator error: {e}"),
            JoinError::ReservedKey => {
                write!(f, "u64::MAX is reserved as the hash-table sentinel")
            }
            JoinError::PoolExhausted { needed, available } => write!(
                f,
                "hash-table value pool exhausted (needed {needed} slots, {available} available)"
            ),
            JoinError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for JoinError {}

/// Run `attempt` with bounded retries on transient faults, mirroring
/// [`windex_sim::with_retries`] but for [`JoinError`]-returning operators.
/// Each retry charges its deterministic backoff to the GPU's counters.
pub fn with_join_retries<R>(
    gpu: &mut Gpu,
    mut attempt: impl FnMut(&mut Gpu) -> Result<R, JoinError>,
) -> Result<R, JoinError> {
    let max_retries = gpu.retry_policy().max_retries;
    let mut tries: u32 = 0;
    loop {
        match attempt(gpu) {
            Ok(r) => return Ok(r),
            Err(e) if e.is_transient() && tries < max_retries => {
                gpu.record_retry(tries);
                tries += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{FaultPlan, GpuSpec, MemLocation, Scale};

    #[test]
    fn transiency_classification() {
        assert!(JoinError::Sim(SimError::AllocFault).is_transient());
        assert!(!JoinError::ReservedKey.is_transient());
        assert!(!JoinError::PoolExhausted {
            needed: 1,
            available: 0
        }
        .is_transient());
        assert!(!JoinError::InvalidConfig("x").is_transient());
    }

    #[test]
    fn retries_recover_from_transient_alloc_faults() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        gpu.set_fault_plan(FaultPlan::seeded(7).with_alloc_failures(0.5))
            .expect("valid fault plan");
        // With a 50 % alloc-fault rate and 3 retries, some attempt in the
        // deterministic sequence succeeds.
        let buf = with_join_retries(&mut gpu, |g| {
            g.alloc::<u64>(MemLocation::Gpu, 64)
                .map_err(JoinError::from)
        })
        .expect("retries should eventually succeed at this rate");
        assert_eq!(buf.len(), 64);
        assert!(gpu.counters().retries >= 1 || gpu.counters().faults_alloc == 0);
        gpu.free(buf);
    }
}
