//! Property tests for index maintenance: the B+tree under random
//! insert/remove interleavings must behave exactly like a reference
//! ordered map, and Harmonia's batched rebuild must preserve contents.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use windex_index::{
    BPlusTree, BPlusTreeConfig, Harmonia, HarmoniaConfig, IndexError, OutOfCoreIndex,
};
use windex_sim::{Gpu, GpuSpec, Scale};

fn gpu() -> Gpu {
    Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
}

/// One maintenance operation.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Remove(u64),
    Lookup(u64),
}

fn ops(max_key: u64, n: usize) -> impl Strategy<Value = Vec<Op>> {
    pvec(
        prop_oneof![
            (0..max_key).prop_map(Op::Insert),
            (0..max_key).prop_map(Op::Remove),
            (0..max_key).prop_map(Op::Lookup),
        ],
        1..n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Apply random insert/remove/lookup sequences to a small-node B+tree
    /// and a BTreeMap; every observable result must agree, and the leaf
    /// chain must stay sorted.
    #[test]
    fn btree_matches_reference_map(
        initial in pvec(0u64..500, 0..60),
        script in ops(500, 120),
    ) {
        let mut sorted: Vec<u64> = initial.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut reference: BTreeMap<u64, u64> = sorted
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect();

        let mut g = gpu();
        let cfg = BPlusTreeConfig {
            node_bytes: 128, // tiny nodes: max structural churn
            fill_factor: 0.8,
            spare_nodes: 4096,
        };
        let mut tree = BPlusTree::bulk_load(&mut g, &sorted, cfg);
        let mut next_rid = 1_000_000u64;

        for op in script {
            match op {
                Op::Insert(k) => {
                    let expect_dup = reference.contains_key(&k);
                    match tree.insert(k, next_rid) {
                        Ok(()) => {
                            prop_assert!(!expect_dup, "insert {k} should have been dup");
                            reference.insert(k, next_rid);
                            next_rid += 1;
                        }
                        Err(IndexError::DuplicateKey(_)) => prop_assert!(expect_dup),
                        Err(e) => prop_assert!(false, "unexpected {e}"),
                    }
                }
                Op::Remove(k) => {
                    let expect = reference.remove(&k);
                    match tree.remove(k) {
                        Ok(rid) => prop_assert_eq!(Some(rid), expect),
                        Err(IndexError::KeyNotFound(_)) => prop_assert!(expect.is_none()),
                        Err(e) => prop_assert!(false, "unexpected {e}"),
                    }
                }
                Op::Lookup(k) => {
                    prop_assert_eq!(tree.lookup(&mut g, k), reference.get(&k).copied());
                }
            }
            prop_assert_eq!(tree.len(), reference.len());
        }

        // Final structural check: the leaf chain equals the reference.
        let scan = tree.scan_host();
        let expect: Vec<(u64, u64)> = reference.into_iter().collect();
        prop_assert_eq!(scan, expect);
    }

    /// Harmonia's batched rebuild preserves all previous keys and adds the
    /// new batch with correct positional rids.
    #[test]
    fn harmonia_batch_insert_preserves_contents(
        initial in pvec(0u64..10_000, 1..200),
        batch in pvec(0u64..10_000, 1..50),
    ) {
        let mut sorted = initial.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut g = gpu();
        let mut h = Harmonia::build(&mut g, &sorted, HarmoniaConfig::default());

        let fresh: Vec<u64> = {
            let mut b = batch.clone();
            b.sort_unstable();
            b.dedup();
            b.retain(|k| sorted.binary_search(k).is_err());
            b
        };
        if fresh.is_empty() {
            return Ok(());
        }
        h.insert_batch(&mut g, &fresh).unwrap();

        let mut all = sorted.clone();
        all.extend(&fresh);
        all.sort_unstable();
        prop_assert_eq!(h.len(), all.len());
        for (i, &k) in all.iter().enumerate() {
            prop_assert_eq!(h.lookup(&mut g, k), Some(i as u64), "key {}", k);
        }
    }

    /// `lower_bound` agrees with `partition_point` for every index over
    /// arbitrary sorted sets and probes.
    #[test]
    fn lower_bound_agrees_with_reference(
        keys in pvec(0u64..1 << 20, 1..300),
        probes in pvec(0u64..1 << 21, 1..60),
    ) {
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut g = gpu();
        let col = std::rc::Rc::new(
            g.alloc_host_from_vec(sorted.clone()),
        );
        let indexes: Vec<Box<dyn OutOfCoreIndex>> = vec![
            Box::new(windex_index::BinarySearchIndex::new(std::rc::Rc::clone(&col))),
            Box::new(BPlusTree::bulk_load(&mut g, &sorted, BPlusTreeConfig {
                node_bytes: 128,
                ..Default::default()
            })),
            Box::new(Harmonia::build(&mut g, &sorted, HarmoniaConfig::default())),
            Box::new(windex_index::RadixSpline::build(
                &mut g,
                std::rc::Rc::clone(&col),
                windex_index::RadixSplineConfig::default(),
            )),
        ];
        for idx in &indexes {
            for &p in &probes {
                let expect = sorted.partition_point(|&k| k < p) as u64;
                prop_assert_eq!(
                    idx.lower_bound(&mut g, p),
                    expect,
                    "{} probe {}",
                    idx.kind(),
                    p
                );
            }
        }
    }
}
