//! The common interface of all out-of-core index structures.
//!
//! Indexes answer *lower-bound* point lookups over the sorted base relation
//! *R* stored in CPU memory, returning the matched tuple's position (rid).
//! Lookups are issued warp-at-a-time and advance in SIMT lockstep so that
//! concurrent lanes interleave their memory accesses in the shared TLB and
//! caches — the behaviour §4.1 of the paper analyzes.

use windex_sim::Gpu;

/// The four index structures the paper evaluates (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum IndexKind {
    /// Plain binary search over the sorted base relation.
    BinarySearch,
    /// Standard B+tree with 4 KiB nodes (§3.2).
    BPlusTree,
    /// Harmonia: GPU-optimized B+tree with 32-key nodes and cooperative
    /// sub-warp traversal (Yan et al., §2.2).
    Harmonia,
    /// RadixSpline: single-pass learned index over the sorted array
    /// (Kipf et al., §2.2).
    RadixSpline,
}

impl IndexKind {
    /// Display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::BinarySearch => "binary-search",
            IndexKind::BPlusTree => "b+tree",
            IndexKind::Harmonia => "harmonia",
            IndexKind::RadixSpline => "radix-spline",
        }
    }

    /// All kinds, in the order the paper's figures list them.
    pub fn all() -> [IndexKind; 4] {
        [
            IndexKind::BPlusTree,
            IndexKind::BinarySearch,
            IndexKind::Harmonia,
            IndexKind::RadixSpline,
        ]
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An index over the sorted base relation, accessed out-of-core by the GPU.
pub trait OutOfCoreIndex {
    /// Which of the paper's four structures this is.
    fn kind(&self) -> IndexKind;

    /// Number of indexed tuples.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Warp-cooperative lookup of up to one warp of keys, in SIMT lockstep.
    /// `out[i]` receives the base-relation position of `keys[i]` if present,
    /// else `None`. `out` must be at least as long as `keys`, and `keys`
    /// must not exceed the warp size.
    fn lookup_warp(&self, gpu: &mut Gpu, keys: &[u64], out: &mut [Option<u64>]);

    /// Convenience scalar lookup (a warp of one).
    fn lookup(&self, gpu: &mut Gpu, key: u64) -> Option<u64> {
        let mut out = [None];
        self.lookup_warp(gpu, std::slice::from_ref(&key), &mut out);
        out[0]
    }

    /// Position of the first indexed key ≥ `key`, or `len()` if every key
    /// is smaller. Positions refer to the sorted base relation, so a range
    /// of keys maps to a *contiguous* position range — the property range
    /// scans exploit (see [`range`](OutOfCoreIndex::range)).
    ///
    /// For structures that store rids (B+tree, Harmonia) this is the rid at
    /// the lower-bound slot, which equals the position for bulk-loaded
    /// indexes over the sorted column.
    fn lower_bound(&self, gpu: &mut Gpu, key: u64) -> u64;

    /// The contiguous position range of all keys in `lo..=hi`. Empty when
    /// no key falls inside the bounds.
    fn range(&self, gpu: &mut Gpu, lo: u64, hi: u64) -> std::ops::Range<u64> {
        if lo > hi {
            return 0..0;
        }
        let start = self.lower_bound(gpu, lo);
        let end = if hi == u64::MAX {
            self.len() as u64
        } else {
            self.lower_bound(gpu, hi + 1)
        };
        start..end.max(start)
    }

    /// Bytes of auxiliary structure beyond the base relation itself
    /// (0 for binary search).
    fn aux_bytes(&self) -> u64;

    /// Whether the structure supports inserting new keys after the build
    /// (B+tree: yes, incrementally; Harmonia: batched rebuild; the others:
    /// no — §6 recommends Harmonia "if the index must support inserts and
    /// updates").
    fn supports_inserts(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            IndexKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(IndexKind::RadixSpline.to_string(), "radix-spline");
    }
}
