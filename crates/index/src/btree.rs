//! Standard B+tree with large (4 KiB) nodes, stored out-of-core.
//!
//! The paper configures the B+tree with 4 KiB nodes (§3.2). Large nodes keep
//! the tree shallow, but a 4 KiB node spans 32 cachelines, and the binary
//! search *within* each node produces random accesses across those lines
//! (§3.1) — so the B+tree trades tree height for per-node traffic. Smaller
//! nodes (cf. the node-size ablation) invert that trade-off.
//!
//! Layout: all nodes live in one flat `u64` pool in CPU memory. A node of
//! `B` bytes has `B/8` slots:
//!
//! ```text
//! slot 0:                header = count
//! slots 1 ..= K:         keys (K = (B/8 - 2) / 2)
//! internal:  slots K+1 ..= 2K+1:  child node ids (K+1 of them)
//! leaf:      slots K+1 ..= 2K:    rids;  slot 2K+1: next-leaf id
//! ```
//!
//! Internal separators follow the "first key of the right subtree"
//! convention: child `i` holds keys in `[sep[i], sep[i+1])`.

use crate::traits::{IndexKind, OutOfCoreIndex};
use windex_sim::{lockstep, Buffer, Gpu, WARP_SIZE};

/// Sentinel node id / rid.
const NONE: u64 = u64::MAX;

/// Errors reported by index maintenance operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The preallocated node pool is exhausted; rebuild with more
    /// `spare_nodes`.
    CapacityExhausted,
    /// The key is already present (the base relation holds unique keys).
    DuplicateKey(u64),
    /// The key to delete does not exist.
    KeyNotFound(u64),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::CapacityExhausted => write!(f, "node pool exhausted"),
            IndexError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            IndexError::KeyNotFound(k) => write!(f, "key {k} not found"),
        }
    }
}

impl std::error::Error for IndexError {}

/// B+tree tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BPlusTreeConfig {
    /// Node size in bytes; must be a power of two ≥ 64. The paper uses 4 KiB.
    pub node_bytes: usize,
    /// Bulk-load fill factor of leaves and internal nodes, in (0, 1].
    pub fill_factor: f64,
    /// Extra nodes preallocated for post-build inserts.
    pub spare_nodes: usize,
}

impl Default for BPlusTreeConfig {
    fn default() -> Self {
        BPlusTreeConfig {
            node_bytes: 4096,
            fill_factor: 1.0,
            spare_nodes: 0,
        }
    }
}

/// A bulk-loaded B+tree over unique sorted keys, mapping key → rid.
#[derive(Debug)]
pub struct BPlusTree {
    nodes: Buffer<u64>,
    slots_per_node: usize,
    key_cap: usize,
    root: u64,
    /// Number of levels; 1 = root is a leaf.
    height: u32,
    len: usize,
    allocated_nodes: usize,
    pool_nodes: usize,
    config: BPlusTreeConfig,
}

impl BPlusTree {
    /// Bulk-load from unique sorted keys; rid `i` is assigned to `keys[i]`.
    /// The tree is stored in CPU memory and accessed out-of-core.
    pub fn bulk_load(gpu: &mut Gpu, keys: &[u64], config: BPlusTreeConfig) -> Self {
        assert!(config.node_bytes.is_power_of_two() && config.node_bytes >= 64);
        assert!(config.fill_factor > 0.0 && config.fill_factor <= 1.0);
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));

        let slots = config.node_bytes / 8;
        let key_cap = (slots - 2) / 2;
        let per_leaf = ((key_cap as f64 * config.fill_factor) as usize).max(1);
        let per_internal = ((key_cap as f64 * config.fill_factor) as usize).max(2);

        // Estimate node count level by level.
        let mut count = keys.len().div_ceil(per_leaf).max(1);
        let mut total = count;
        while count > 1 {
            count = count.div_ceil(per_internal + 1).max(1);
            total += count;
        }
        let pool_nodes = total + config.spare_nodes;
        let mut pool = vec![0u64; pool_nodes * slots];

        // --- Leaf level ---
        let mut next_node: usize = 0;
        let mut level: Vec<(u64, u64)> = Vec::new(); // (min key, node id)
        let leaf_count = keys.len().div_ceil(per_leaf).max(1);
        for leaf in 0..leaf_count {
            let id = next_node;
            next_node += 1;
            let start = leaf * per_leaf;
            let end = ((leaf + 1) * per_leaf).min(keys.len());
            let base = id * slots;
            pool[base] = (end - start) as u64;
            for (j, i) in (start..end).enumerate() {
                pool[base + 1 + j] = keys[i];
                pool[base + 1 + key_cap + j] = i as u64;
            }
            pool[base + 2 * key_cap + 1] = if leaf + 1 < leaf_count {
                (id + 1) as u64
            } else {
                NONE
            };
            level.push((keys.get(start).copied().unwrap_or(0), id as u64));
        }

        // --- Internal levels ---
        let mut height = 1;
        while level.len() > 1 {
            height += 1;
            let fan = per_internal + 1; // children per internal node
                                        // Balance the groups instead of chunking greedily: a greedy
                                        // final group of one child would create a zero-separator node,
                                        // which deletes cannot rebalance through. Balanced sizes are
                                        // always ≥ 2 for fan ≥ 2 when more than one group is needed.
            let groups = level.len().div_ceil(fan);
            let base_size = level.len() / groups;
            let remainder = level.len() % groups;
            let mut upper = Vec::with_capacity(groups);
            let mut at = 0;
            for g in 0..groups {
                let size = base_size + usize::from(g < remainder);
                let group = &level[at..at + size];
                at += size;
                let id = next_node;
                next_node += 1;
                let base = id * slots;
                pool[base] = (group.len() - 1) as u64; // separator count
                for (j, &(min_key, child)) in group.iter().enumerate() {
                    if j > 0 {
                        pool[base + j] = min_key; // slot 1..=count
                    }
                    pool[base + 1 + key_cap + j] = child;
                }
                upper.push((group[0].0, id as u64));
            }
            debug_assert_eq!(at, level.len());
            level = upper;
        }

        let root = level[0].1;
        assert!(next_node <= pool_nodes);
        let nodes = gpu.alloc_host_from_vec(pool);
        BPlusTree {
            nodes,
            slots_per_node: slots,
            key_cap,
            root,
            height,
            len: keys.len(),
            allocated_nodes: next_node,
            pool_nodes,
            config,
        }
    }

    /// The node size in bytes.
    pub fn node_bytes(&self) -> usize {
        self.config.node_bytes
    }

    /// Tree height in levels (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of allocated nodes.
    pub fn node_count(&self) -> usize {
        self.allocated_nodes
    }

    // ----- host-side structural helpers (insert path) -----

    #[inline]
    fn base(&self, node: u64) -> usize {
        node as usize * self.slots_per_node
    }

    fn count(&self, node: u64) -> usize {
        self.nodes.host()[self.base(node)] as usize
    }

    fn key_at(&self, node: u64, i: usize) -> u64 {
        self.nodes.host()[self.base(node) + 1 + i]
    }

    fn child_at(&self, node: u64, i: usize) -> u64 {
        self.nodes.host()[self.base(node) + 1 + self.key_cap + i]
    }

    fn rid_at(&self, node: u64, i: usize) -> u64 {
        self.nodes.host()[self.base(node) + 1 + self.key_cap + i]
    }

    fn alloc_node(&mut self) -> Result<u64, IndexError> {
        if self.allocated_nodes >= self.pool_nodes {
            return Err(IndexError::CapacityExhausted);
        }
        let id = self.allocated_nodes as u64;
        self.allocated_nodes += 1;
        let base = self.base(id);
        self.nodes.host_mut()[base..base + self.slots_per_node].fill(0);
        Ok(id)
    }

    /// Insert `key → rid` after the build (host-side maintenance, as done by
    /// the CPU between queries). Splits full nodes; may grow the tree by one
    /// level. Fails if the key exists or the node pool is exhausted.
    pub fn insert(&mut self, key: u64, rid: u64) -> Result<(), IndexError> {
        match self.insert_rec(self.root, self.height, key, rid)? {
            None => Ok(()),
            Some((sep, new_node)) => {
                // Root split: make a new root with two children.
                let new_root = self.alloc_node()?;
                let kc = self.key_cap;
                let old_root = self.root;
                let base = self.base(new_root);
                let host = self.nodes.host_mut();
                host[base] = 1;
                host[base + 1] = sep;
                host[base + 1 + kc] = old_root;
                host[base + 1 + kc + 1] = new_node;
                self.root = new_root;
                self.height += 1;
                Ok(())
            }
        }
    }

    /// Recursive insert; returns `Some((separator, new right sibling))` when
    /// the visited node split.
    fn insert_rec(
        &mut self,
        node: u64,
        level: u32,
        key: u64,
        rid: u64,
    ) -> Result<Option<(u64, u64)>, IndexError> {
        let count = self.count(node);
        if level == 1 {
            // Leaf: find the slot.
            let mut pos = 0;
            while pos < count && self.key_at(node, pos) < key {
                pos += 1;
            }
            if pos < count && self.key_at(node, pos) == key {
                return Err(IndexError::DuplicateKey(key));
            }
            if count < self.key_cap {
                self.leaf_insert_at(node, pos, key, rid);
                self.len += 1;
                return Ok(None);
            }
            // Split the leaf, then insert into the proper half.
            let right = self.alloc_node()?;
            let mid = count / 2;
            let kc = self.key_cap;
            let (lb, rb) = (self.base(node), self.base(right));
            let host = self.nodes.host_mut();
            for j in mid..count {
                host[rb + 1 + (j - mid)] = host[lb + 1 + j];
                host[rb + 1 + kc + (j - mid)] = host[lb + 1 + kc + j];
            }
            host[rb] = (count - mid) as u64;
            host[lb] = mid as u64;
            // Leaf chain: left -> right -> old next.
            host[rb + 2 * kc + 1] = host[lb + 2 * kc + 1];
            host[lb + 2 * kc + 1] = right;
            let sep = self.key_at(right, 0);
            if key < sep {
                let mut p = 0;
                while p < self.count(node) && self.key_at(node, p) < key {
                    p += 1;
                }
                self.leaf_insert_at(node, p, key, rid);
            } else {
                let mut p = 0;
                while p < self.count(right) && self.key_at(right, p) < key {
                    p += 1;
                }
                self.leaf_insert_at(right, p, key, rid);
            }
            self.len += 1;
            return Ok(Some((sep, right)));
        }

        // Internal: route to the child.
        let mut ci = 0;
        while ci < count && self.key_at(node, ci) <= key {
            ci += 1;
        }
        let child = self.child_at(node, ci);
        let Some((sep, new_child)) = self.insert_rec(child, level - 1, key, rid)? else {
            return Ok(None);
        };
        // Child split: insert (sep, new_child) after position ci.
        if count < self.key_cap {
            self.internal_insert_at(node, ci, sep, new_child);
            return Ok(None);
        }
        // Split this internal node. Gather the (count+1) children and count
        // separators plus the new entry, then redistribute.
        let mut seps: Vec<u64> = (0..count).map(|i| self.key_at(node, i)).collect();
        let mut children: Vec<u64> = (0..=count).map(|i| self.child_at(node, i)).collect();
        seps.insert(ci, sep);
        children.insert(ci + 1, new_child);
        let right = self.alloc_node()?;
        let mid = seps.len() / 2; // separator promoted upward
        let up = seps[mid];
        let kc = self.key_cap;
        let (lb, rb) = (self.base(node), self.base(right));
        let host = self.nodes.host_mut();
        // Left keeps seps[..mid], children[..=mid].
        host[lb] = mid as u64;
        for (j, &s) in seps[..mid].iter().enumerate() {
            host[lb + 1 + j] = s;
        }
        for (j, &c) in children[..=mid].iter().enumerate() {
            host[lb + 1 + kc + j] = c;
        }
        // Right takes seps[mid+1..], children[mid+1..].
        let rcount = seps.len() - mid - 1;
        host[rb] = rcount as u64;
        for (j, &s) in seps[mid + 1..].iter().enumerate() {
            host[rb + 1 + j] = s;
        }
        for (j, &c) in children[mid + 1..].iter().enumerate() {
            host[rb + 1 + kc + j] = c;
        }
        Ok(Some((up, right)))
    }

    fn leaf_insert_at(&mut self, node: u64, pos: usize, key: u64, rid: u64) {
        let count = self.count(node);
        debug_assert!(count < self.key_cap);
        let kc = self.key_cap;
        let base = self.base(node);
        let host = self.nodes.host_mut();
        for j in (pos..count).rev() {
            host[base + 1 + j + 1] = host[base + 1 + j];
            host[base + 1 + kc + j + 1] = host[base + 1 + kc + j];
        }
        host[base + 1 + pos] = key;
        host[base + 1 + kc + pos] = rid;
        host[base] = (count + 1) as u64;
    }

    fn internal_insert_at(&mut self, node: u64, pos: usize, sep: u64, child: u64) {
        let count = self.count(node);
        debug_assert!(count < self.key_cap);
        let kc = self.key_cap;
        let base = self.base(node);
        let host = self.nodes.host_mut();
        for j in (pos..count).rev() {
            host[base + 1 + j + 1] = host[base + 1 + j];
        }
        for j in (pos + 1..=count).rev() {
            host[base + 1 + kc + j + 1] = host[base + 1 + kc + j];
        }
        host[base + 1 + pos] = sep;
        host[base + 1 + kc + pos + 1] = child;
        host[base] = (count + 1) as u64;
    }

    /// Delete `key`, returning its rid. Underflowing nodes borrow from or
    /// merge with a sibling; the tree shrinks by a level when the root is
    /// left with a single child (host-side maintenance, like `insert`).
    pub fn remove(&mut self, key: u64) -> Result<u64, IndexError> {
        let rid = self.remove_rec(self.root, self.height, key)?;
        self.len -= 1;
        // Collapse an internal root with a single remaining child.
        while self.height > 1 && self.count(self.root) == 0 {
            self.root = self.child_at(self.root, 0);
            self.height -= 1;
        }
        Ok(rid)
    }

    /// Minimum entries per non-root node.
    fn min_fill(&self) -> usize {
        (self.key_cap / 2).max(1)
    }

    /// Recursive delete; restores the invariant for the visited child
    /// before returning, so only the *current* node may be underfull.
    fn remove_rec(&mut self, node: u64, level: u32, key: u64) -> Result<u64, IndexError> {
        let count = self.count(node);
        if level == 1 {
            let mut pos = 0;
            while pos < count && self.key_at(node, pos) < key {
                pos += 1;
            }
            if pos >= count || self.key_at(node, pos) != key {
                return Err(IndexError::KeyNotFound(key));
            }
            let rid = self.rid_at(node, pos);
            let kc = self.key_cap;
            let base = self.base(node);
            let host = self.nodes.host_mut();
            for j in pos..count - 1 {
                host[base + 1 + j] = host[base + 1 + j + 1];
                host[base + 1 + kc + j] = host[base + 1 + kc + j + 1];
            }
            host[base] = (count - 1) as u64;
            return Ok(rid);
        }
        // Route to the child, delete there, then fix any underflow.
        let mut ci = 0;
        while ci < count && self.key_at(node, ci) <= key {
            ci += 1;
        }
        let child = self.child_at(node, ci);
        let rid = self.remove_rec(child, level - 1, key)?;
        if self.count(child) < self.min_fill() {
            self.fix_underflow(node, ci, level - 1);
        }
        Ok(rid)
    }

    /// Rebalance `parent`'s `ci`-th child (at `child_level`): borrow from a
    /// richer sibling, else merge with one.
    fn fix_underflow(&mut self, parent: u64, ci: usize, child_level: u32) {
        let pcount = self.count(parent);
        // Every internal node has at least one separator (bulk load
        // balances its groups; splits and merges preserve it), so a sibling
        // always exists.
        debug_assert!(pcount >= 1, "internal node without separators");
        let min = self.min_fill();
        let leaf = child_level == 1;
        if ci > 0 && self.count(self.child_at(parent, ci - 1)) > min {
            self.borrow_from_left(parent, ci, leaf);
        } else if ci < pcount && self.count(self.child_at(parent, ci + 1)) > min {
            self.borrow_from_right(parent, ci, leaf);
        } else if ci > 0 {
            self.merge_children(parent, ci - 1, leaf);
        } else {
            self.merge_children(parent, ci, leaf);
        }
    }

    /// Move the left sibling's last entry into the child's front.
    fn borrow_from_left(&mut self, parent: u64, ci: usize, leaf: bool) {
        let kc = self.key_cap;
        let left = self.child_at(parent, ci - 1);
        let child = self.child_at(parent, ci);
        let lcount = self.count(left);
        let ccount = self.count(child);
        let (lb, cb, pb) = (self.base(left), self.base(child), self.base(parent));
        if leaf {
            let k = self.key_at(left, lcount - 1);
            let r = self.rid_at(left, lcount - 1);
            let host = self.nodes.host_mut();
            for j in (0..ccount).rev() {
                host[cb + 1 + j + 1] = host[cb + 1 + j];
                host[cb + 1 + kc + j + 1] = host[cb + 1 + kc + j];
            }
            host[cb + 1] = k;
            host[cb + 1 + kc] = r;
            host[cb] = (ccount + 1) as u64;
            host[lb] = (lcount - 1) as u64;
            // Separator before the child = its new first key.
            host[pb + ci] = k;
        } else {
            // Rotate through the parent separator.
            let sep = self.key_at(parent, ci - 1);
            let lk = self.key_at(left, lcount - 1);
            let lchild = self.child_at(left, lcount);
            let host = self.nodes.host_mut();
            for j in (0..ccount).rev() {
                host[cb + 1 + j + 1] = host[cb + 1 + j];
            }
            for j in (0..=ccount).rev() {
                host[cb + 1 + kc + j + 1] = host[cb + 1 + kc + j];
            }
            host[cb + 1] = sep;
            host[cb + 1 + kc] = lchild;
            host[cb] = (ccount + 1) as u64;
            host[lb] = (lcount - 1) as u64;
            host[pb + ci] = lk;
        }
    }

    /// Move the right sibling's first entry into the child's back.
    fn borrow_from_right(&mut self, parent: u64, ci: usize, leaf: bool) {
        let kc = self.key_cap;
        let right = self.child_at(parent, ci + 1);
        let child = self.child_at(parent, ci);
        let rcount = self.count(right);
        let ccount = self.count(child);
        let (rb, cb, pb) = (self.base(right), self.base(child), self.base(parent));
        if leaf {
            let k = self.key_at(right, 0);
            let r = self.rid_at(right, 0);
            let host = self.nodes.host_mut();
            host[cb + 1 + ccount] = k;
            host[cb + 1 + kc + ccount] = r;
            host[cb] = (ccount + 1) as u64;
            for j in 0..rcount - 1 {
                host[rb + 1 + j] = host[rb + 1 + j + 1];
                host[rb + 1 + kc + j] = host[rb + 1 + kc + j + 1];
            }
            host[rb] = (rcount - 1) as u64;
            host[pb + ci + 1] = host[rb + 1]; // right's new first key
        } else {
            let sep = self.key_at(parent, ci);
            let rk = self.key_at(right, 0);
            let rchild = self.child_at(right, 0);
            let host = self.nodes.host_mut();
            host[cb + 1 + ccount] = sep;
            host[cb + 1 + kc + ccount + 1] = rchild;
            host[cb] = (ccount + 1) as u64;
            for j in 0..rcount - 1 {
                host[rb + 1 + j] = host[rb + 1 + j + 1];
            }
            for j in 0..rcount {
                host[rb + 1 + kc + j] = host[rb + 1 + kc + j + 1];
            }
            host[rb] = (rcount - 1) as u64;
            host[pb + ci + 1] = rk;
        }
    }

    /// Merge `parent`'s children `li` and `li + 1` into the left one and
    /// drop the separating entry from the parent. (The freed node id is
    /// leaked from the bump pool — acceptable for this workload's rare
    /// deletes; a production free-list is an easy extension.)
    fn merge_children(&mut self, parent: u64, li: usize, leaf: bool) {
        let kc = self.key_cap;
        let left = self.child_at(parent, li);
        let right = self.child_at(parent, li + 1);
        let lcount = self.count(left);
        let rcount = self.count(right);
        let (lb, rb, pb) = (self.base(left), self.base(right), self.base(parent));
        let sep = self.key_at(parent, li);
        {
            let host = self.nodes.host_mut();
            if leaf {
                for j in 0..rcount {
                    host[lb + 1 + lcount + j] = host[rb + 1 + j];
                    host[lb + 1 + kc + lcount + j] = host[rb + 1 + kc + j];
                }
                host[lb] = (lcount + rcount) as u64;
                host[lb + 2 * kc + 1] = host[rb + 2 * kc + 1]; // leaf chain
            } else {
                host[lb + 1 + lcount] = sep;
                for j in 0..rcount {
                    host[lb + 1 + lcount + 1 + j] = host[rb + 1 + j];
                }
                for j in 0..=rcount {
                    host[lb + 1 + kc + lcount + 1 + j] = host[rb + 1 + kc + j];
                }
                host[lb] = (lcount + rcount + 1) as u64;
            }
        }
        // Remove separator li and child li+1 from the parent.
        let pcount = self.count(parent);
        let host = self.nodes.host_mut();
        for j in li..pcount - 1 {
            host[pb + 1 + j] = host[pb + 1 + j + 1];
        }
        for j in li + 1..pcount {
            host[pb + 1 + kc + j] = host[pb + 1 + kc + j + 1];
        }
        host[pb] = (pcount - 1) as u64;
    }

    /// Host-side full scan of leaf chain (diagnostics / tests): all
    /// (key, rid) pairs in key order.
    pub fn scan_host(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len);
        // Find the leftmost leaf.
        let mut node = self.root;
        for _ in 1..self.height {
            node = self.child_at(node, 0);
        }
        loop {
            let count = self.count(node);
            for i in 0..count {
                out.push((self.key_at(node, i), self.rid_at(node, i)));
            }
            let next = self.nodes.host()[self.base(node) + 2 * self.key_cap + 1];
            if next == NONE {
                break;
            }
            node = next;
        }
        out
    }
}

/// Per-lane traversal state for the lockstep lookup.
#[derive(Debug, Clone, Copy)]
struct Lane {
    key: u64,
    node: u64,
    level: u32,
    lo: u32,
    hi: u32,
    header_loaded: bool,
    result: Option<u64>,
}

impl OutOfCoreIndex for BPlusTree {
    fn kind(&self) -> IndexKind {
        IndexKind::BPlusTree
    }

    fn len(&self) -> usize {
        self.len
    }

    fn lookup_warp(&self, gpu: &mut Gpu, keys: &[u64], out: &mut [Option<u64>]) {
        assert!(keys.len() <= WARP_SIZE);
        assert!(out.len() >= keys.len());
        let slots = self.slots_per_node;
        let kc = self.key_cap;
        let mut lanes: Vec<Lane> = keys
            .iter()
            .map(|&key| Lane {
                key,
                node: self.root,
                level: self.height,
                lo: 0,
                hi: 0,
                header_loaded: false,
                result: None,
            })
            .collect();
        let nodes = &self.nodes;
        // Node probes go through the deferred issue path: `lockstep` drains
        // one round's lane loads in lane order as one batched pass.
        lockstep(gpu, &mut lanes, |gpu, lane| {
            let base = lane.node as usize * slots;
            if !lane.header_loaded {
                let count = nodes.read_issued(gpu, base) as u32;
                lane.lo = 0;
                lane.hi = count;
                lane.header_loaded = true;
                return false;
            }
            if lane.lo < lane.hi {
                // One binary-search probe within the node.
                let mid = lane.lo + (lane.hi - lane.lo) / 2;
                let k = nodes.read_issued(gpu, base + 1 + mid as usize);
                let go_right = if lane.level > 1 {
                    k <= lane.key // upper bound over separators
                } else {
                    k < lane.key // lower bound over leaf keys
                };
                if go_right {
                    lane.lo = mid + 1;
                } else {
                    lane.hi = mid;
                }
                return false;
            }
            if lane.level > 1 {
                // Descend: child pointer at the lower-bound position.
                lane.node = nodes.read_issued(gpu, base + 1 + kc + lane.lo as usize);
                lane.level -= 1;
                lane.header_loaded = false;
                return false;
            }
            // Leaf: verify and fetch the rid.
            let count = nodes.read_issued(gpu, base) as u32; // cached header line
            if lane.lo < count && nodes.read_issued(gpu, base + 1 + lane.lo as usize) == lane.key {
                lane.result = Some(nodes.read_issued(gpu, base + 1 + kc + lane.lo as usize));
            }
            true
        });
        for (o, lane) in out.iter_mut().zip(&lanes) {
            *o = lane.result;
        }
        gpu.count_lookups(keys.len() as u64);
    }

    fn lower_bound(&self, gpu: &mut Gpu, key: u64) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let slots = self.slots_per_node;
        let kc = self.key_cap;
        let mut node = self.root;
        let mut level = self.height;
        loop {
            let base = node as usize * slots;
            let count = self.nodes.read(gpu, base) as usize;
            let (mut lo, mut hi) = (0usize, count);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let k = self.nodes.read(gpu, base + 1 + mid);
                let go_right = if level > 1 { k <= key } else { k < key };
                if go_right {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if level > 1 {
                node = self.nodes.read(gpu, base + 1 + kc + lo);
                level -= 1;
                continue;
            }
            // Leaf: the lower-bound slot, possibly in the next leaf.
            if lo < count {
                return self.nodes.read(gpu, base + 1 + kc + lo);
            }
            let next = self.nodes.read(gpu, base + 2 * kc + 1);
            if next == NONE {
                return self.len as u64;
            }
            // Non-empty by construction: splits leave >= 1 key per leaf.
            let nbase = next as usize * slots;
            return self.nodes.read(gpu, nbase + 1 + kc);
        }
    }

    fn aux_bytes(&self) -> u64 {
        self.nodes.size_bytes()
    }

    fn supports_inserts(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    fn tree_with(keys: &[u64], config: BPlusTreeConfig) -> (Gpu, BPlusTree) {
        let mut g = gpu();
        let t = BPlusTree::bulk_load(&mut g, keys, config);
        (g, t)
    }

    #[test]
    fn finds_every_key_multi_level() {
        // Small nodes force several levels.
        let keys: Vec<u64> = (0..5000).map(|i| i * 7 + 3).collect();
        let cfg = BPlusTreeConfig {
            node_bytes: 128,
            ..Default::default()
        };
        let (mut g, t) = tree_with(&keys, cfg);
        assert!(t.height() >= 3, "height {}", t.height());
        for (i, &k) in keys.iter().enumerate().step_by(13) {
            assert_eq!(t.lookup(&mut g, k), Some(i as u64), "key {k}");
        }
    }

    #[test]
    fn rejects_absent_keys() {
        let keys: Vec<u64> = (0..5000).map(|i| i * 7 + 3).collect();
        let (mut g, t) = tree_with(&keys, BPlusTreeConfig::default());
        for miss in [0u64, 1, 2, 4, 9, 7 * 5000 + 3, u64::MAX] {
            assert_eq!(t.lookup(&mut g, miss), None, "key {miss}");
        }
    }

    #[test]
    fn default_nodes_are_4kib() {
        let keys: Vec<u64> = (0..100_000).map(|i| i * 2).collect();
        let (_, t) = tree_with(&keys, BPlusTreeConfig::default());
        assert_eq!(t.node_bytes(), 4096);
        // 255 keys per leaf => ~393 leaves > 256-way root => 3 levels.
        assert!(t.height() == 3, "height {}", t.height());
        assert_eq!(t.len(), 100_000);
    }

    #[test]
    fn scan_returns_sorted_pairs() {
        let keys: Vec<u64> = (0..3000).map(|i| i * 11).collect();
        let cfg = BPlusTreeConfig {
            node_bytes: 256,
            ..Default::default()
        };
        let (_, t) = tree_with(&keys, cfg);
        let scan = t.scan_host();
        assert_eq!(scan.len(), keys.len());
        for (i, (k, rid)) in scan.iter().enumerate() {
            assert_eq!(*k, keys[i]);
            assert_eq!(*rid, i as u64);
        }
    }

    #[test]
    fn insert_then_lookup() {
        let keys: Vec<u64> = (0..2000).map(|i| i * 4).collect();
        let cfg = BPlusTreeConfig {
            node_bytes: 128,
            fill_factor: 0.8,
            spare_nodes: 4096,
        };
        let mut g = gpu();
        let mut t = BPlusTree::bulk_load(&mut g, &keys, cfg);
        // Insert odd keys between existing ones.
        for i in 0..2000u64 {
            t.insert(i * 4 + 1, 1_000_000 + i).unwrap();
        }
        assert_eq!(t.len(), 4000);
        for i in (0..2000u64).step_by(17) {
            assert_eq!(t.lookup(&mut g, i * 4), Some(i));
            assert_eq!(t.lookup(&mut g, i * 4 + 1), Some(1_000_000 + i));
        }
        // Scan stays sorted after splits.
        let scan = t.scan_host();
        assert_eq!(scan.len(), 4000);
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn insert_duplicate_fails() {
        let keys: Vec<u64> = (0..100).collect();
        let cfg = BPlusTreeConfig {
            spare_nodes: 16,
            ..Default::default()
        };
        let mut g = gpu();
        let mut t = BPlusTree::bulk_load(&mut g, &keys, cfg);
        assert_eq!(t.insert(50, 999), Err(IndexError::DuplicateKey(50)));
    }

    #[test]
    fn pool_exhaustion_reported() {
        let keys: Vec<u64> = (0..64).map(|i| i * 2).collect();
        let cfg = BPlusTreeConfig {
            node_bytes: 64,
            fill_factor: 1.0,
            spare_nodes: 0,
        };
        let mut g = gpu();
        let mut t = BPlusTree::bulk_load(&mut g, &keys, cfg);
        let mut saw_exhaustion = false;
        for i in 0..64u64 {
            match t.insert(i * 2 + 1, i) {
                Ok(()) => {}
                Err(IndexError::CapacityExhausted) => {
                    saw_exhaustion = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_exhaustion);
    }

    #[test]
    fn lower_bound_and_range() {
        let keys: Vec<u64> = (0..3000).map(|i| i * 10).collect();
        let cfg = BPlusTreeConfig {
            node_bytes: 256, // force several levels and leaf-boundary hops
            ..Default::default()
        };
        let (mut g, t) = tree_with(&keys, cfg);
        for probe in [0u64, 5, 10, 11, 14995, 29990, 29991, u64::MAX] {
            let expect = keys.partition_point(|&k| k < probe) as u64;
            assert_eq!(t.lower_bound(&mut g, probe), expect, "probe {probe}");
        }
        // Probe just past every leaf boundary to exercise the next-leaf hop.
        for leaf_last in (14..3000).step_by(15) {
            let probe = keys[leaf_last - 1] + 1;
            let expect = keys.partition_point(|&k| k < probe) as u64;
            assert_eq!(t.lower_bound(&mut g, probe), expect);
        }
        assert_eq!(t.range(&mut g, 100, 200), 10..21);
        assert_eq!(t.range(&mut g, 29995, u64::MAX), 3000..3000);
    }

    #[test]
    fn remove_then_lookup() {
        let keys: Vec<u64> = (0..2000).map(|i| i * 3).collect();
        let cfg = BPlusTreeConfig {
            node_bytes: 128, // deep tree: exercises borrows and merges
            ..Default::default()
        };
        let mut g = gpu();
        let mut t = BPlusTree::bulk_load(&mut g, &keys, cfg);
        // Remove every third key.
        for i in (0..2000u64).step_by(3) {
            assert_eq!(t.remove(i * 3), Ok(i), "remove {}", i * 3);
        }
        assert_eq!(t.len(), 2000 - 667);
        for i in 0..2000u64 {
            let expect = if i % 3 == 0 { None } else { Some(i) };
            assert_eq!(t.lookup(&mut g, i * 3), expect, "key {}", i * 3);
        }
        // Scan stays sorted and complete.
        let scan = t.scan_host();
        assert_eq!(scan.len(), t.len());
        assert!(scan.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn remove_everything_collapses_tree() {
        let keys: Vec<u64> = (0..500).collect();
        let cfg = BPlusTreeConfig {
            node_bytes: 128,
            ..Default::default()
        };
        let mut g = gpu();
        let mut t = BPlusTree::bulk_load(&mut g, &keys, cfg);
        assert!(t.height() > 1);
        // Delete in an interleaved order to hit left and right siblings.
        let mut order: Vec<u64> = (0..500).collect();
        order.sort_by_key(|k| (k % 7, *k));
        for k in order {
            assert_eq!(t.remove(k), Ok(k));
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1, "root should collapse to a leaf");
        assert_eq!(t.lookup(&mut g, 0), None);
    }

    #[test]
    fn remove_missing_key_fails() {
        let keys: Vec<u64> = (0..100).map(|i| i * 2).collect();
        let mut g = gpu();
        let mut t = BPlusTree::bulk_load(&mut g, &keys, BPlusTreeConfig::default());
        assert_eq!(t.remove(3), Err(IndexError::KeyNotFound(3)));
        assert_eq!(t.remove(200), Err(IndexError::KeyNotFound(200)));
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn interleaved_insert_remove() {
        let keys: Vec<u64> = (0..300).map(|i| i * 10).collect();
        let cfg = BPlusTreeConfig {
            node_bytes: 128,
            fill_factor: 0.7,
            spare_nodes: 512,
        };
        let mut g = gpu();
        let mut t = BPlusTree::bulk_load(&mut g, &keys, cfg);
        for i in 0..300u64 {
            t.insert(i * 10 + 5, 1000 + i).unwrap();
            t.remove(i * 10).unwrap();
        }
        assert_eq!(t.len(), 300);
        for i in (0..300u64).step_by(11) {
            assert_eq!(t.lookup(&mut g, i * 10), None);
            assert_eq!(t.lookup(&mut g, i * 10 + 5), Some(1000 + i));
        }
    }

    #[test]
    fn single_key_tree() {
        let (mut g, t) = tree_with(&[42], BPlusTreeConfig::default());
        assert_eq!(t.height(), 1);
        assert_eq!(t.lookup(&mut g, 42), Some(0));
        assert_eq!(t.lookup(&mut g, 41), None);
    }
}
