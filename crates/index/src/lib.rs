//! # windex-index — out-of-core GPU index structures
//!
//! The four index structures the paper evaluates over a fast interconnect
//! (§3.1): plain binary search, a standard B+tree with 4 KiB nodes,
//! Harmonia (a GPU-optimized B+tree with cooperative sub-warp traversal),
//! and the RadixSpline learned index. All structures live in CPU memory and
//! answer warp-cooperative point lookups whose every memory access flows
//! through the [`windex_sim`] GPU model.
//!
//! ```
//! use std::rc::Rc;
//! use windex_index::{OutOfCoreIndex, RadixSpline, RadixSplineConfig};
//! use windex_sim::{Gpu, GpuSpec, MemLocation, Scale};
//!
//! let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
//! let keys: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect();
//! let col = Rc::new(gpu.alloc_host_from_vec(keys));
//! let rs = RadixSpline::build(&mut gpu, col, RadixSplineConfig::default());
//! assert_eq!(rs.lookup(&mut gpu, 300), Some(100));
//! assert_eq!(rs.lookup(&mut gpu, 301), None);
//! ```

#![warn(missing_docs)]

pub mod binary_search;
pub mod btree;
pub mod harmonia;
pub mod radix_spline;
pub mod traits;

pub use binary_search::BinarySearchIndex;
pub use btree::{BPlusTree, BPlusTreeConfig, IndexError};
pub use harmonia::{Harmonia, HarmoniaConfig};
pub use radix_spline::{RadixSpline, RadixSplineConfig};
pub use traits::{IndexKind, OutOfCoreIndex};
