//! RadixSpline: a single-pass learned index over a sorted array (Kipf et
//! al., aiDM@SIGMOD'20; §2.2 of the paper).
//!
//! The build fits a *greedy spline corridor* over the (key → position)
//! function with a bounded maximum error ε, and lays a radix table over the
//! most significant key bits pointing into the spline-point array. A lookup
//!
//! 1. reads the two radix-table cells bracketing the key's prefix,
//! 2. binary-searches the (short) spline-point range for the key's segment,
//! 3. interpolates the two bracketing spline points, and
//! 4. binary-searches the base relation within `±(ε+1)` of the estimate.
//!
//! Per key this touches only a handful of cachelines in three compact
//! regions (table, spline, data window) — the fewest of the four structures
//! — which is why the paper finds the RadixSpline fastest once partitioning
//! removes TLB thrashing (§6 recommends it at 1.1–1.8× over Harmonia).

use crate::traits::{IndexKind, OutOfCoreIndex};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Weak};
use windex_sim::{lockstep, Buffer, Gpu, WARP_SIZE};

/// Host-side build artifacts: a pure function of (key column, config).
///
/// Fitting the corridor and measuring its observed error are by far the
/// dominant build cost (two O(n) passes over the column), so builds over
/// the *same* shared column — e.g. the baseline matrix, which runs three
/// RadixSpline strategies against one staged relation — memoize the
/// artifacts per thread. Identity is the column `Arc`'s pointer, held as a
/// `Weak` so the cache never keeps a dropped column alive (and a freed
/// address can never be mistaken for its reincarnation: a hit requires the
/// original `Arc` to still be alive via `upgrade`).
#[derive(Clone)]
struct FitArtifacts {
    max_error: usize,
    radix_bits_cfg: Option<u32>,
    spline: Arc<[u64]>,
    radix_table: Arc<[u64]>,
    min_key: u64,
    max_key: u64,
    shift: u32,
    radix_bits: u32,
    lookup_error: usize,
}

/// Fit-memo entries kept per thread: enough for a benchmark matrix cycling
/// through a few relation sizes without the sizes evicting each other.
const FIT_CACHE_CAP: usize = 4;

thread_local! {
    static FIT_CACHE: RefCell<Vec<(Weak<[u64]>, FitArtifacts)>> = const { RefCell::new(Vec::new()) };
}

/// Cached artifacts for `col` under `config`, if this thread built them
/// while the column was (and still is) alive.
fn cached_fit(col: &Arc<[u64]>, config: &RadixSplineConfig) -> Option<FitArtifacts> {
    FIT_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        let hit = cache.iter().position(|(weak, art)| {
            art.max_error == config.max_error
                && art.radix_bits_cfg == config.radix_bits
                && weak.upgrade().is_some_and(|alive| Arc::ptr_eq(&alive, col))
        })?;
        // Move-to-front: keep the benchmark loop's working set resident.
        let entry = cache.remove(hit);
        let art = entry.1.clone();
        cache.insert(0, entry);
        Some(art)
    })
}

/// Remember `art` as the fit of `col`, evicting dead and overflow entries.
fn remember_fit(col: &Arc<[u64]>, art: FitArtifacts) {
    FIT_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        cache.retain(|(weak, _)| weak.strong_count() > 0);
        cache.insert(0, (Arc::downgrade(col), art));
        cache.truncate(FIT_CACHE_CAP);
    });
}

/// RadixSpline tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RadixSplineConfig {
    /// Maximum interpolation error ε, in tuples.
    pub max_error: usize,
    /// Radix-table bits; `None` picks `log2(n) - 2` clamped to `[1, 24]`.
    pub radix_bits: Option<u32>,
}

impl Default for RadixSplineConfig {
    fn default() -> Self {
        RadixSplineConfig {
            max_error: 32,
            radix_bits: None,
        }
    }
}

/// A built RadixSpline over an out-of-core sorted column.
#[derive(Debug)]
pub struct RadixSpline {
    /// The sorted base relation (shared with the caller).
    data: Rc<Buffer<u64>>,
    /// Interleaved spline points: `[key0, pos0, key1, pos1, …]`, so one
    /// point sits in one cacheline-adjacent pair.
    spline: Buffer<u64>,
    /// `2^bits + 1` entries mapping a key prefix to the index of the first
    /// spline point with that prefix or a larger one.
    radix_table: Buffer<u64>,
    min_key: u64,
    max_key: u64,
    shift: u32,
    radix_bits: u32,
    max_error: usize,
    /// The error bound actually used by lookups: the *observed* maximum
    /// interpolation error of the built spline (≤ the configured ε). For
    /// dense keys the spline is exact and this collapses to 0, making the
    /// bounded search a single-cacheline probe — the reason the paper's
    /// learned index wins on its workload.
    lookup_error: usize,
}

impl RadixSpline {
    /// Build over `data` (sorted ascending, unique). Single pass, host-side
    /// (index construction is pre-query work, §3.2).
    pub fn build(gpu: &mut Gpu, data: Rc<Buffer<u64>>, config: RadixSplineConfig) -> Self {
        assert!(config.max_error >= 1);
        // Same staged column, same config, same thread → reuse the fit.
        // `alloc_host_shared` has the same address assignment and accounting
        // as `alloc_host_from_vec`, so a hit changes wall time only.
        let col = data.shared_storage();
        if let Some(art) = col.as_ref().and_then(|c| cached_fit(c, &config)) {
            return RadixSpline {
                data,
                spline: gpu.alloc_host_shared(Arc::clone(&art.spline)),
                radix_table: gpu.alloc_host_shared(Arc::clone(&art.radix_table)),
                min_key: art.min_key,
                max_key: art.max_key,
                shift: art.shift,
                radix_bits: art.radix_bits,
                max_error: art.max_error,
                lookup_error: art.lookup_error,
            };
        }
        let keys = data.host();
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        let n = keys.len();
        let min_key = keys.first().copied().unwrap_or(0);
        let max_key = keys.last().copied().unwrap_or(0);

        let spline_pts = greedy_spline_corridor(keys, config.max_error as f64);
        let lookup_error = observed_max_error(keys, &spline_pts).ceil() as usize;

        // Radix table geometry.
        let radix_bits = config.radix_bits.unwrap_or_else(|| {
            let lg = (n.max(2) as f64).log2().floor() as u32;
            lg.saturating_sub(2).clamp(1, 24)
        });
        let domain = max_key - min_key;
        let domain_bits = 64 - domain.leading_zeros();
        let shift = domain_bits.saturating_sub(radix_bits);

        let cells = (1usize << radix_bits) + 1;
        // table[p] = first spline index whose prefix >= p. Built in one
        // append-only pass (each cell is written exactly once) instead of a
        // full default fill followed by a second overwrite pass — the table
        // is megabytes at high bit counts and the double write was ~half
        // the non-spline build cost.
        let mut table = Vec::with_capacity(cells);
        for (i, &(k, _)) in spline_pts.iter().enumerate() {
            let p = ((k - min_key) >> shift) as usize;
            while table.len() <= p {
                table.push(i as u64);
            }
        }
        // Remaining cells (prefixes beyond the last spline key) get len().
        table.resize(cells, spline_pts.len() as u64);

        let mut interleaved = Vec::with_capacity(spline_pts.len() * 2);
        for &(k, p) in &spline_pts {
            interleaved.push(k);
            interleaved.push(p);
        }

        let art = FitArtifacts {
            max_error: config.max_error,
            radix_bits_cfg: config.radix_bits,
            spline: interleaved.into(),
            radix_table: table.into(),
            min_key,
            max_key,
            shift,
            radix_bits,
            lookup_error,
        };
        if let Some(c) = &col {
            remember_fit(c, art.clone());
        }
        RadixSpline {
            data,
            spline: gpu.alloc_host_shared(Arc::clone(&art.spline)),
            radix_table: gpu.alloc_host_shared(art.radix_table),
            min_key,
            max_key,
            shift,
            radix_bits,
            max_error: config.max_error,
            lookup_error,
        }
    }

    /// Number of spline points.
    pub fn spline_points(&self) -> usize {
        self.spline.len() / 2
    }

    /// Radix-table bits in use.
    pub fn radix_bits(&self) -> u32 {
        self.radix_bits
    }

    /// Maximum interpolation error ε (build-time corridor width).
    pub fn max_error(&self) -> usize {
        self.max_error
    }

    /// Observed maximum interpolation error of the built spline (the bound
    /// lookups actually search; 0 for perfectly linear data).
    pub fn lookup_error(&self) -> usize {
        self.lookup_error
    }

    /// The shared base column.
    pub fn data(&self) -> &Rc<Buffer<u64>> {
        &self.data
    }

    /// Host-side error validation: max |predicted − true| over all keys
    /// (tests; O(n log s)).
    pub fn max_observed_error_host(&self) -> f64 {
        let keys = self.data.host();
        let mut worst: f64 = 0.0;
        for (i, &k) in keys.iter().enumerate() {
            let est = self.predict_host(k);
            worst = worst.max((est - i as f64).abs());
        }
        worst
    }

    /// Host-side position prediction (uncounted).
    fn predict_host(&self, key: u64) -> f64 {
        let s = self.spline.host();
        let pts = s.len() / 2;
        // Find the first spline key >= key.
        let mut lo = 0usize;
        let mut hi = pts;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if s[mid * 2] < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        interpolate(s, pts, lo, key)
    }
}

/// Interpolate within the segment ending at spline index `seg_end` (the
/// first point with key ≥ lookup key). `s` is the interleaved array.
#[inline]
fn interpolate(s: &[u64], pts: usize, seg_end: usize, key: u64) -> f64 {
    if pts == 0 {
        return 0.0;
    }
    if seg_end == 0 {
        return s[1] as f64; // key <= first spline key
    }
    if seg_end >= pts {
        return s[(pts - 1) * 2 + 1] as f64; // key beyond last spline key
    }
    let (k0, p0) = (s[(seg_end - 1) * 2], s[(seg_end - 1) * 2 + 1]);
    let (k1, p1) = (s[seg_end * 2], s[seg_end * 2 + 1]);
    debug_assert!(k1 > k0);
    p0 as f64 + (key - k0) as f64 * (p1 - p0) as f64 / (k1 - k0) as f64
}

/// Exact maximum interpolation error of a fitted spline over its keys.
///
/// Walks the spline segment by segment and evaluates each segment's keys in
/// a tight inner loop with loop-invariant endpoints — the compiler can
/// vectorize it, and since every key sees the exact same expression as the
/// old one-key-at-a-time pass (and `f64::max` over the same set is
/// order-insensitive for non-NaN values), the result is bit-identical.
fn observed_max_error(keys: &[u64], pts: &[(u64, u64)]) -> f64 {
    if pts.len() < 2 {
        return 0.0;
    }
    let s: Vec<u64> = pts.iter().flat_map(|&(k, p)| [k, p]).collect();
    let n_pts = pts.len();
    let mut worst: f64 = 0.0;
    let mut at = 0usize; // next key index to classify
    for seg in 0..=n_pts {
        if at >= keys.len() {
            break;
        }
        // Keys whose first spline key >= them is `seg`: those with
        // key <= s[seg*2] (and > the previous spline key, by construction).
        let end = if seg < n_pts {
            let bound = s[seg * 2];
            at + keys[at..].partition_point(|&k| k <= bound)
        } else {
            keys.len()
        };
        if seg == 0 || seg >= n_pts {
            // Constant prediction outside the spline's key range.
            let est = if seg == 0 {
                s[1] as f64
            } else {
                s[(n_pts - 1) * 2 + 1] as f64
            };
            for (off, _) in keys[at..end].iter().enumerate() {
                worst = worst.max((est - (at + off) as f64).abs());
            }
        } else {
            let (k0, p0) = (s[(seg - 1) * 2], s[(seg - 1) * 2 + 1]);
            let (k1, p1) = (s[seg * 2], s[seg * 2 + 1]);
            let p0f = p0 as f64;
            let dp = (p1 - p0) as f64;
            let dk = (k1 - k0) as f64;
            // Four-lane max reduction: `f64::max` is associative and
            // commutative over these values (all finite, `.abs()` ≥ 0), so
            // folding lanes at the end is bit-identical to the serial scan
            // — but the independent accumulators break the loop-carried
            // `max` dependency and let the divide pipeline 4-wide.
            let seg_keys = &keys[at..end];
            let mut acc = [0.0f64; 4];
            let chunks = seg_keys.len() / 4;
            for c in 0..chunks {
                for (j, a) in acc.iter_mut().enumerate() {
                    let off = c * 4 + j;
                    // Same expression as `interpolate`, term for term.
                    let est = p0f + (seg_keys[off] - k0) as f64 * dp / dk;
                    *a = a.max((est - (at + off) as f64).abs());
                }
            }
            for (off, &key) in seg_keys.iter().enumerate().skip(chunks * 4) {
                let est = p0f + (key - k0) as f64 * dp / dk;
                acc[0] = acc[0].max((est - (at + off) as f64).abs());
            }
            worst = worst.max(acc[0].max(acc[1]).max(acc[2].max(acc[3])));
        }
        at = end;
    }
    worst
}

/// Greedy spline corridor fit (Neumann & Michel's GreedySplineCorridor as
/// used by RadixSpline): one pass, emits the fewest points such that linear
/// interpolation between consecutive points errs by at most ε positions.
fn greedy_spline_corridor(keys: &[u64], eps: f64) -> Vec<(u64, u64)> {
    let n = keys.len();
    if n == 0 {
        return vec![];
    }
    if n == 1 {
        return vec![(keys[0], 0)];
    }
    let mut pts: Vec<(u64, u64)> = vec![(keys[0], 0)];
    let mut base = (keys[0] as f64, 0.0f64);
    // Corridor slope bounds kept as exact rationals `num/den` (den > 0;
    // `1/0` = +∞, `-1/0` = −∞ under the comparison rules below). All
    // comparisons cross-multiply instead of dividing: `a/b > c/d ⟺
    // a·d > c·b` for positive denominators. With integer-valued operands
    // (key deltas, rank deltas, integral ε) the products are exact in f64
    // up to 2^53, so no per-key division — the hot-loop bottleneck — is
    // ever needed, and the fitted points match the divide-based corridor.
    let (mut up_num, mut up_den) = (1.0f64, 0.0f64);
    let (mut lo_num, mut lo_den) = (-1.0f64, 0.0f64);
    let mut prev = (keys[0], 0u64);
    for (i, &k) in keys.iter().enumerate().skip(1) {
        let dx = k as f64 - base.0;
        let y = i as f64 - base.1;
        debug_assert!(dx > 0.0);
        // slope y/dx above the upper bound or below the lower bound?
        if y * up_den > up_num * dx || y * lo_den < lo_num * dx {
            // Corridor violated: the previous point becomes a spline point
            // and the new corridor starts there.
            pts.push(prev);
            base = (prev.0 as f64, prev.1 as f64);
            let dx = k as f64 - base.0;
            let y = i as f64 - base.1;
            (up_num, up_den) = (y + eps, dx);
            (lo_num, lo_den) = (y - eps, dx);
        } else {
            // Tighten: upper = min(upper, (y+eps)/dx), lower likewise.
            if (y + eps) * up_den < up_num * dx {
                (up_num, up_den) = (y + eps, dx);
            }
            if (y - eps) * lo_den > lo_num * dx {
                (lo_num, lo_den) = (y - eps, dx);
            }
        }
        prev = (k, i as u64);
    }
    let last = (keys[n - 1], (n - 1) as u64);
    if pts.last() != Some(&last) {
        pts.push(last);
    }
    pts
}

/// Lookup phases of one lane.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Read the two radix cells bracketing the prefix.
    Radix,
    /// Binary search the spline range for the segment.
    SplineSearch { lo: u64, hi: u64 },
    /// Read the bracketing spline points and compute the window.
    Interpolate { seg_end: u64 },
    /// Bounded binary search in the data window.
    DataSearch { lo: u64, hi: u64 },
    /// Verify the lower-bound slot.
    Verify { pos: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Lane {
    key: u64,
    phase: Phase,
    result: Option<u64>,
}

impl OutOfCoreIndex for RadixSpline {
    fn kind(&self) -> IndexKind {
        IndexKind::RadixSpline
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn lookup_warp(&self, gpu: &mut Gpu, keys: &[u64], out: &mut [Option<u64>]) {
        assert!(keys.len() <= WARP_SIZE);
        assert!(out.len() >= keys.len());
        let n = self.data.len() as u64;
        let pts = self.spline_points() as u64;
        let mut lanes: Vec<Lane> = keys
            .iter()
            .map(|&key| Lane {
                key,
                phase: Phase::Radix,
                result: None,
            })
            .collect();

        lockstep(gpu, &mut lanes, |gpu, lane| {
            if n == 0 || lane.key < self.min_key || lane.key > self.max_key {
                return true;
            }
            match lane.phase {
                Phase::Radix => {
                    let p = ((lane.key - self.min_key) >> self.shift) as usize;
                    let cells = self.radix_table.read_range_issued(gpu, p, 2);
                    lane.phase = Phase::SplineSearch {
                        lo: cells[0],
                        hi: cells[1],
                    };
                    false
                }
                Phase::SplineSearch { lo, hi } => {
                    if lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        let k = self.spline.read_issued(gpu, (mid * 2) as usize);
                        lane.phase = if k < lane.key {
                            Phase::SplineSearch { lo: mid + 1, hi }
                        } else {
                            Phase::SplineSearch { lo, hi: mid }
                        };
                    } else {
                        lane.phase = Phase::Interpolate { seg_end: lo };
                    }
                    false
                }
                Phase::Interpolate { seg_end } => {
                    // Fetch the bracketing points (coalesced: 2–4 adjacent
                    // u64 slots) and compute the search window.
                    let est = if seg_end == 0 {
                        let p = self.spline.read_range_issued(gpu, 0, 2);
                        p[1] as f64
                    } else if seg_end >= pts {
                        let p = self
                            .spline
                            .read_range_issued(gpu, ((pts - 1) * 2) as usize, 2);
                        p[1] as f64
                    } else {
                        let quad =
                            self.spline
                                .read_range_issued(gpu, ((seg_end - 1) * 2) as usize, 4);
                        let (k0, p0, k1, p1) = (quad[0], quad[1], quad[2], quad[3]);
                        p0 as f64 + (lane.key - k0) as f64 * (p1 - p0) as f64 / (k1 - k0) as f64
                    };
                    gpu.op(1);
                    let e = self.lookup_error as f64 + 1.0;
                    let lo = (est - e).max(0.0) as u64;
                    let hi = ((est + e) as u64 + 1).min(n);
                    lane.phase = Phase::DataSearch { lo, hi };
                    false
                }
                Phase::DataSearch { lo, hi } => {
                    if lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        let k = self.data.read_issued(gpu, mid as usize);
                        lane.phase = if k < lane.key {
                            Phase::DataSearch { lo: mid + 1, hi }
                        } else {
                            Phase::DataSearch { lo, hi: mid }
                        };
                        false
                    } else {
                        lane.phase = Phase::Verify { pos: lo };
                        false
                    }
                }
                Phase::Verify { pos } => {
                    if pos < n && self.data.read_issued(gpu, pos as usize) == lane.key {
                        lane.result = Some(pos);
                    }
                    true
                }
            }
        });

        for (o, lane) in out.iter_mut().zip(&lanes) {
            *o = lane.result;
        }
        gpu.count_lookups(keys.len() as u64);
    }

    fn lower_bound(&self, gpu: &mut Gpu, key: u64) -> u64 {
        let n = self.data.len() as u64;
        if n == 0 || key <= self.min_key {
            return 0;
        }
        if key > self.max_key {
            return n;
        }
        let pts = self.spline_points() as u64;
        // Radix cells bracketing the prefix.
        let p = ((key - self.min_key) >> self.shift) as usize;
        let cells = self.radix_table.read_range(gpu, p, 2);
        let (mut lo, mut hi) = (cells[0], cells[1]);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.spline.read(gpu, (mid * 2) as usize) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Interpolate and bounded-search the data window.
        let est = if lo == 0 {
            self.spline.read_range(gpu, 0, 2)[1] as f64
        } else if lo >= pts {
            self.spline.read_range(gpu, ((pts - 1) * 2) as usize, 2)[1] as f64
        } else {
            let quad = self.spline.read_range(gpu, ((lo - 1) * 2) as usize, 4);
            quad[1] as f64
                + (key - quad[0]) as f64 * (quad[3] - quad[1]) as f64 / (quad[2] - quad[0]) as f64
        };
        gpu.op(1);
        let e = self.lookup_error as f64 + 1.0;
        let (mut dlo, mut dhi) = (((est - e).max(0.0)) as u64, ((est + e) as u64 + 1).min(n));
        while dlo < dhi {
            let mid = dlo + (dhi - dlo) / 2;
            if self.data.read(gpu, mid as usize) < key {
                dlo = mid + 1;
            } else {
                dhi = mid;
            }
        }
        dlo
    }

    fn aux_bytes(&self) -> u64 {
        self.spline.size_bytes() + self.radix_table.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    fn build(keys: Vec<u64>, config: RadixSplineConfig) -> (Gpu, RadixSpline) {
        let mut g = gpu();
        let data = Rc::new(g.alloc_host_from_vec(keys));
        let rs = RadixSpline::build(&mut g, data, config);
        (g, rs)
    }

    fn sparse_keys(n: usize, seed: u64) -> Vec<u64> {
        // Deterministic pseudo-random gaps in [1, 31].
        let mut k = 0u64;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                k += 1 + (state % 31);
                k
            })
            .collect()
    }

    #[test]
    fn corridor_error_bound_holds() {
        for seed in 0..5 {
            let keys = sparse_keys(20_000, seed);
            let (_, rs) = build(keys, RadixSplineConfig::default());
            let err = rs.max_observed_error_host();
            assert!(
                err <= rs.max_error() as f64 + 1e-6,
                "seed {seed}: observed error {err} > ε {}",
                rs.max_error()
            );
        }
    }

    #[test]
    fn spline_is_much_smaller_than_data() {
        let keys = sparse_keys(100_000, 1);
        let (_, rs) = build(keys, RadixSplineConfig::default());
        assert!(rs.spline_points() > 1);
        assert!(
            rs.spline_points() < 100_000 / 10,
            "{} points",
            rs.spline_points()
        );
    }

    #[test]
    fn finds_every_key() {
        let keys = sparse_keys(30_000, 2);
        let (mut g, rs) = build(keys.clone(), RadixSplineConfig::default());
        for (i, &k) in keys.iter().enumerate().step_by(97) {
            assert_eq!(rs.lookup(&mut g, k), Some(i as u64), "key {k}");
        }
        // Boundary keys.
        assert_eq!(rs.lookup(&mut g, keys[0]), Some(0));
        assert_eq!(
            rs.lookup(&mut g, *keys.last().unwrap()),
            Some(keys.len() as u64 - 1)
        );
    }

    #[test]
    fn rejects_absent_keys() {
        let keys = sparse_keys(30_000, 3);
        let (mut g, rs) = build(keys.clone(), RadixSplineConfig::default());
        let set: std::collections::HashSet<u64> = keys.iter().copied().collect();
        let mut probed = 0;
        for k in (0..keys.last().copied().unwrap() + 100).step_by(211) {
            if !set.contains(&k) {
                assert_eq!(rs.lookup(&mut g, k), None, "key {k}");
                probed += 1;
            }
        }
        assert!(probed > 50);
        // Out-of-domain.
        assert_eq!(rs.lookup(&mut g, 0), None);
        assert_eq!(rs.lookup(&mut g, u64::MAX), None);
    }

    #[test]
    fn tight_error_bound_still_correct() {
        let keys = sparse_keys(10_000, 4);
        let cfg = RadixSplineConfig {
            max_error: 4,
            radix_bits: Some(10),
        };
        let (mut g, rs) = build(keys.clone(), cfg);
        assert!(rs.max_observed_error_host() <= 4.0 + 1e-6);
        for (i, &k) in keys.iter().enumerate().step_by(53) {
            assert_eq!(rs.lookup(&mut g, k), Some(i as u64));
        }
    }

    #[test]
    fn dense_keys_need_few_points() {
        let keys: Vec<u64> = (0..10_000u64).collect();
        let (mut g, rs) = build(keys, RadixSplineConfig::default());
        // A perfect line needs exactly the two endpoints.
        assert_eq!(rs.spline_points(), 2);
        assert_eq!(rs.lookup(&mut g, 5000), Some(5000));
    }

    #[test]
    fn lookup_touches_few_lines() {
        let keys = sparse_keys(1 << 17, 5);
        let (mut g, rs) = build(keys.clone(), RadixSplineConfig::default());
        g.reset_memory_system();
        let before = g.snapshot();
        let _ = rs.lookup(&mut g, keys[77_777]);
        let d = g.snapshot() - before;
        assert!(
            d.ic_lines_random <= 16,
            "RadixSpline lookup touched {} lines",
            d.ic_lines_random
        );
    }

    #[test]
    fn lower_bound_and_range() {
        let keys = sparse_keys(5000, 9);
        let (mut g, rs) = build(keys.clone(), RadixSplineConfig::default());
        let max = *keys.last().unwrap();
        for probe in [
            0u64,
            keys[0],
            keys[0] + 1,
            keys[777],
            keys[777] + 1,
            max,
            max + 1,
        ] {
            let expect = keys.partition_point(|&k| k < probe) as u64;
            assert_eq!(rs.lower_bound(&mut g, probe), expect, "probe {probe}");
        }
        // Dense sweep over a window of the key domain.
        for probe in keys[100]..keys[110] {
            let expect = keys.partition_point(|&k| k < probe) as u64;
            assert_eq!(rs.lower_bound(&mut g, probe), expect, "probe {probe}");
        }
        let r = rs.range(&mut g, keys[10], keys[20]);
        assert_eq!(r, 10..21);
    }

    #[test]
    fn empty_and_tiny() {
        let (mut g, rs) = build(vec![], RadixSplineConfig::default());
        assert_eq!(rs.lookup(&mut g, 1), None);
        let (mut g, rs) = build(vec![10], RadixSplineConfig::default());
        assert_eq!(rs.lookup(&mut g, 10), Some(0));
        assert_eq!(rs.lookup(&mut g, 9), None);
        let (mut g, rs) = build(vec![10, 20], RadixSplineConfig::default());
        assert_eq!(rs.lookup(&mut g, 10), Some(0));
        assert_eq!(rs.lookup(&mut g, 20), Some(1));
        assert_eq!(rs.lookup(&mut g, 15), None);
    }
}
