//! Harmonia: a high-throughput B+tree for GPUs (Yan et al., PPoPP'19; §2.2
//! of the paper).
//!
//! Harmonia separates the tree into a *key region* (all nodes' keys, stored
//! level-order) and a *child prefix-sum array*: the children of node `i` are
//! nodes `prefix[i] + j`, eliminating per-node child pointers. Its main
//! optimization is *cooperative sub-warp traversal*: the warp is divided
//! into sub-warps of `lanes_per_key` threads; each sub-warp searches one
//! node cooperatively — the lanes probe evenly spaced pivots of the node's
//! key region in parallel, which coalesces the node's cachelines into a
//! single access — and the sub-warp then "progresses unto the next tuple,
//! until each tuple in the initial warp has been processed" (§3.3.1).
//!
//! The cooperative access pattern is why Harmonia shows the *fewest*
//! translation requests per lookup in Fig. 4 (11.3 vs. binary search's 105
//! at 111 GiB): each node visit costs the sub-warp one coalesced fetch, and
//! node visits per key are few because the fanout keeps the tree shallow.
//!
//! The paper configures 32 keys per node (§3.2). Inserts are supported as
//! batched merge-rebuilds (§6 recommends Harmonia "if the index must
//! support inserts and updates"; the original proposes lazy batched
//! updates, which a rebuild models at the same interface).

use crate::traits::{IndexKind, OutOfCoreIndex};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Weak};
use windex_sim::{lockstep, Buffer, Gpu, SubWarp, WARP_SIZE};

/// Padding value for unused key slots. `u64::MAX` is therefore not an
/// indexable key.
const PAD: u64 = u64::MAX;

/// Harmonia tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct HarmoniaConfig {
    /// Keys per node; the paper uses 32 (§3.2).
    pub keys_per_node: usize,
    /// Lanes cooperating on one key (sub-warp width); must divide 32.
    pub lanes_per_key: usize,
}

impl Default for HarmoniaConfig {
    fn default() -> Self {
        HarmoniaConfig {
            keys_per_node: 32,
            lanes_per_key: 8,
        }
    }
}

/// Host-side build artifacts: a pure function of (key column, node width).
/// Same memoization scheme as the RadixSpline fit cache — identity is the
/// shared column `Arc`, held weakly so a dropped column frees its entry.
#[derive(Clone)]
struct TreeArtifacts {
    nk: usize,
    region: Arc<[u64]>,
    prefix: Arc<[u64]>,
    first_leaf: u64,
    height: u32,
    len: usize,
}

/// Tree-memo entries kept per thread (see the RadixSpline fit cache).
const TREE_CACHE_CAP: usize = 4;

thread_local! {
    static TREE_CACHE: RefCell<Vec<(Weak<[u64]>, TreeArtifacts)>> = const { RefCell::new(Vec::new()) };
}

fn cached_tree(col: &Arc<[u64]>, nk: usize) -> Option<TreeArtifacts> {
    TREE_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        let hit = cache.iter().position(|(weak, art)| {
            art.nk == nk && weak.upgrade().is_some_and(|alive| Arc::ptr_eq(&alive, col))
        })?;
        let entry = cache.remove(hit);
        let art = entry.1.clone();
        cache.insert(0, entry);
        Some(art)
    })
}

fn remember_tree(col: &Arc<[u64]>, art: TreeArtifacts) {
    TREE_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        cache.retain(|(weak, _)| weak.strong_count() > 0);
        cache.insert(0, (Arc::downgrade(col), art));
        cache.truncate(TREE_CACHE_CAP);
    });
}

/// The Harmonia index: key region + child prefix array, in CPU memory.
#[derive(Debug)]
pub struct Harmonia {
    /// `node_count × keys_per_node` keys, level-order, `PAD`-padded.
    key_region: Buffer<u64>,
    /// `prefix[i]` = node id of node `i`'s first child (0 for leaves).
    prefix: Buffer<u64>,
    nk: usize,
    lanes_per_key: usize,
    /// Node id of the first leaf (leaves are the last level, contiguous).
    first_leaf: u64,
    height: u32,
    len: usize,
}

impl Harmonia {
    /// Build from unique sorted keys; rid `i` is assigned to `keys[i]`.
    pub fn build(gpu: &mut Gpu, keys: &[u64], config: HarmoniaConfig) -> Self {
        Self::validate(keys, &config);
        let (region, prefix, first_leaf, height) = Self::fit(keys, config.keys_per_node);
        Harmonia {
            key_region: gpu.alloc_host_from_vec(region),
            prefix: gpu.alloc_host_from_vec(prefix),
            nk: config.keys_per_node,
            lanes_per_key: config.lanes_per_key,
            first_leaf,
            height,
            len: keys.len(),
        }
    }

    /// [`build`](Self::build) over a staged shared column: repeated builds
    /// of the same column on one thread reuse the fitted tree (the region
    /// and prefix arrays are pure functions of the keys and the node
    /// width). `alloc_host_shared` assigns addresses and accounts exactly
    /// like `alloc_host_from_vec`, so a memo hit changes wall time only.
    pub fn build_shared(gpu: &mut Gpu, data: &Rc<Buffer<u64>>, config: HarmoniaConfig) -> Self {
        let col = match data.shared_storage() {
            Some(c) => c,
            None => return Self::build(gpu, data.host(), config),
        };
        Self::validate(data.host(), &config);
        let nk = config.keys_per_node;
        if let Some(art) = cached_tree(&col, nk) {
            return Harmonia {
                key_region: gpu.alloc_host_shared(Arc::clone(&art.region)),
                prefix: gpu.alloc_host_shared(Arc::clone(&art.prefix)),
                nk,
                lanes_per_key: config.lanes_per_key,
                first_leaf: art.first_leaf,
                height: art.height,
                len: art.len,
            };
        }
        let (region, prefix, first_leaf, height) = Self::fit(&col, nk);
        let art = TreeArtifacts {
            nk,
            region: region.into(),
            prefix: prefix.into(),
            first_leaf,
            height,
            len: col.len(),
        };
        remember_tree(&col, art.clone());
        Harmonia {
            key_region: gpu.alloc_host_shared(Arc::clone(&art.region)),
            prefix: gpu.alloc_host_shared(art.prefix),
            nk,
            lanes_per_key: config.lanes_per_key,
            first_leaf,
            height,
            len: art.len,
        }
    }

    fn validate(keys: &[u64], config: &HarmoniaConfig) {
        assert!(config.keys_per_node >= 2);
        assert!(
            config.lanes_per_key > 0 && WARP_SIZE.is_multiple_of(config.lanes_per_key),
            "lanes_per_key must divide the warp size"
        );
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(keys.iter().all(|&k| k != PAD), "u64::MAX is reserved");
    }

    /// The pure fit: level geometry plus the filled key region and child
    /// prefix array. Returns `(region, prefix, first_leaf, height)`.
    fn fit(keys: &[u64], nk: usize) -> (Vec<u64>, Vec<u64>, u64, u32) {
        // Level geometry, top-down node counts. The leaf level packs the
        // keys nk at a time; every level above holds the min key of each
        // child node, so its node count is ceil(children / nk). Computing
        // the counts arithmetically lets the region and prefix arrays be
        // filled in place — no per-node staging vectors (the old
        // level-of-nodes representation allocated one small `Vec` per node,
        // which dominated the build at millions of keys).
        let leaf_count = if keys.is_empty() {
            1
        } else {
            keys.len().div_ceil(nk)
        };
        let mut counts = vec![leaf_count];
        while *counts.last().unwrap() > 1 {
            counts.push(counts.last().unwrap().div_ceil(nk));
        }
        counts.reverse(); // top-down: counts[0] = 1 (the root)
        let node_count: usize = counts.iter().sum();
        let first_leaf = (node_count - leaf_count) as u64;
        let height = counts.len() as u32;
        // BFS id of each level's first node.
        let bases: Vec<usize> = counts
            .iter()
            .scan(0usize, |acc, &c| {
                let b = *acc;
                *acc += c;
                Some(b)
            })
            .collect();

        let mut region = vec![PAD; node_count * nk];
        let mut prefix = vec![0u64; node_count];

        // Leaves are packed and contiguous: one straight copy.
        let leaf_at = first_leaf as usize * nk;
        region[leaf_at..leaf_at + keys.len()].copy_from_slice(keys);

        // prefix[i] = id of node i's first child (internal levels only).
        for li in 0..counts.len().saturating_sub(1) {
            let mut child_cursor = bases[li + 1] as u64;
            for j in 0..counts[li] {
                prefix[bases[li] + j] = child_cursor;
                child_cursor += nk.min(counts[li + 1] - j * nk) as u64;
            }
        }

        // Internal node keys, bottom-up: each level's keys are the min keys
        // of the level below (for the leaf level, the first key per node).
        let mut mins: Vec<u64> = if keys.is_empty() {
            vec![PAD]
        } else {
            (0..leaf_count).map(|j| keys[j * nk]).collect()
        };
        for li in (0..counts.len().saturating_sub(1)).rev() {
            for j in 0..counts[li] {
                let chunk = &mins[j * nk..(j * nk + nk).min(mins.len())];
                let at = (bases[li] + j) * nk;
                region[at..at + chunk.len()].copy_from_slice(chunk);
            }
            mins = (0..counts[li]).map(|j| mins[j * nk]).collect();
        }

        (region, prefix, first_leaf, height)
    }

    /// Tree height in levels (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The sub-warp geometry used for traversal.
    pub fn sub_warp(&self) -> SubWarp {
        SubWarp::new(self.lanes_per_key)
    }

    /// Keys per node.
    pub fn keys_per_node(&self) -> usize {
        self.nk
    }

    /// Reconstruct all (key, rid) pairs host-side (tests / rebuild).
    pub fn scan_host(&self) -> Vec<(u64, u64)> {
        let region = self.key_region.host();
        let leaf_slots = &region[self.first_leaf as usize * self.nk..];
        leaf_slots
            .iter()
            .take_while(|&&k| k != PAD)
            .enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect()
    }

    /// Batched insert: merges `new_keys` with the existing keys and rebuilds
    /// (Harmonia's lazy-update model). New rids continue after the current
    /// maximum — callers appending to the base relation get matching
    /// positions. Duplicate keys are rejected.
    pub fn insert_batch(&mut self, gpu: &mut Gpu, new_keys: &[u64]) -> Result<(), String> {
        let mut all: Vec<u64> = self.scan_host().into_iter().map(|(k, _)| k).collect();
        all.extend_from_slice(new_keys);
        all.sort_unstable();
        if all.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate key in batch".into());
        }
        let rebuilt = Harmonia::build(
            gpu,
            &all,
            HarmoniaConfig {
                keys_per_node: self.nk,
                lanes_per_key: self.lanes_per_key,
            },
        );
        *self = rebuilt;
        Ok(())
    }

    /// Cooperative node search: the sub-warp reads the node's key region
    /// (all its cachelines, coalesced into one access) and computes the
    /// position of the last key ≤ `key`, or `None` if all keys exceed it.
    #[inline]
    fn search_node(&self, gpu: &mut Gpu, node: u64, key: u64) -> Option<usize> {
        let base = node as usize * self.nk;
        let slice = self.key_region.read_range(gpu, base, self.nk);
        gpu.op(1); // parallel compare + reduction by the sub-warp
        scan_node_slice(slice, key)
    }

    /// [`search_node`](Self::search_node) on the deferred issue path, used
    /// inside `lockstep` so a round's node fetches drain as one batched pass.
    #[inline]
    fn search_node_issued(&self, gpu: &mut Gpu, node: u64, key: u64) -> Option<usize> {
        let base = node as usize * self.nk;
        let slice = self.key_region.read_range_issued(gpu, base, self.nk);
        gpu.op(1); // parallel compare + reduction by the sub-warp
        scan_node_slice(slice, key)
    }
}

/// Position of the last key ≤ `key` in a `PAD`-terminated node slice.
#[inline]
fn scan_node_slice(slice: &[u64], key: u64) -> Option<usize> {
    let mut found = None;
    for (j, &k) in slice.iter().enumerate() {
        if k != PAD && k <= key {
            found = Some(j);
        } else {
            break;
        }
    }
    found
}

/// One sub-warp's traversal state: a chunk of the warp's keys, processed
/// one key at a time.
struct Group<'a> {
    keys: &'a [u64],
    results: Vec<Option<u64>>,
    cursor: usize,
    node: u64,
    level: u32,
}

impl OutOfCoreIndex for Harmonia {
    fn kind(&self) -> IndexKind {
        IndexKind::Harmonia
    }

    fn len(&self) -> usize {
        self.len
    }

    fn lookup_warp(&self, gpu: &mut Gpu, keys: &[u64], out: &mut [Option<u64>]) {
        assert!(keys.len() <= WARP_SIZE);
        assert!(out.len() >= keys.len());
        let groups_n = WARP_SIZE / self.lanes_per_key;
        let chunk = keys.len().div_ceil(groups_n).max(1);
        let mut groups: Vec<Group> = keys
            .chunks(chunk)
            .map(|c| Group {
                keys: c,
                results: Vec::with_capacity(c.len()),
                cursor: 0,
                node: 0,
                level: self.height,
            })
            .collect();

        // Sub-warp node fetches go through the deferred issue path:
        // `lockstep` drains each round's loads in group order as one
        // batched pass over the memory system.
        lockstep(gpu, &mut groups, |gpu, g| {
            if g.cursor >= g.keys.len() {
                return true;
            }
            let key = g.keys[g.cursor];
            if g.level > 1 {
                // Internal node: descend via the prefix array.
                let slot = self.search_node_issued(gpu, g.node, key).unwrap_or(0);
                let child_base = self.prefix.read_issued(gpu, g.node as usize);
                g.node = child_base + slot as u64;
                g.level -= 1;
                return false;
            }
            // Leaf: exact-match check; rid is positional (leaves are packed).
            let res = self.search_node_issued(gpu, g.node, key).and_then(|slot| {
                let base = g.node as usize * self.nk;
                if self.key_region.host()[base + slot] == key {
                    Some((g.node - self.first_leaf) * self.nk as u64 + slot as u64)
                } else {
                    None
                }
            });
            g.results.push(res);
            // Next key of this sub-warp restarts from the root.
            g.cursor += 1;
            g.node = 0;
            g.level = self.height;
            g.cursor >= g.keys.len()
        });

        let mut i = 0;
        for g in &groups {
            for r in &g.results {
                out[i] = *r;
                i += 1;
            }
        }
        debug_assert_eq!(i, keys.len());
        gpu.count_lookups(keys.len() as u64);
    }

    fn lower_bound(&self, gpu: &mut Gpu, key: u64) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let mut node = 0u64;
        for _ in 1..self.height {
            let slot = self.search_node(gpu, node, key).unwrap_or(0);
            let child_base = self.prefix.read(gpu, node as usize);
            node = child_base + slot as u64;
        }
        let rid_base = (node - self.first_leaf) * self.nk as u64;
        let pos = match self.search_node(gpu, node, key) {
            // All leaf keys exceed `key`: the leaf's first slot is the bound.
            None => rid_base,
            Some(slot) => {
                let base = node as usize * self.nk;
                if self.key_region.host()[base + slot] == key {
                    rid_base + slot as u64
                } else {
                    // Last key <= `key`: the bound is one past it (possibly
                    // the first slot of the next, packed, leaf).
                    rid_base + slot as u64 + 1
                }
            }
        };
        pos.min(self.len as u64)
    }

    fn aux_bytes(&self) -> u64 {
        self.key_region.size_bytes() + self.prefix.size_bytes()
    }

    fn supports_inserts(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
    }

    fn build(keys: &[u64]) -> (Gpu, Harmonia) {
        let mut g = gpu();
        let h = Harmonia::build(&mut g, keys, HarmoniaConfig::default());
        (g, h)
    }

    #[test]
    fn finds_every_key() {
        let keys: Vec<u64> = (0..10_000).map(|i| i * 3 + 5).collect();
        let (mut g, h) = build(&keys);
        assert!(h.height() >= 3);
        for (i, &k) in keys.iter().enumerate().step_by(37) {
            assert_eq!(h.lookup(&mut g, k), Some(i as u64), "key {k}");
        }
    }

    #[test]
    fn rejects_absent_keys() {
        let keys: Vec<u64> = (0..10_000).map(|i| i * 3 + 5).collect();
        let (mut g, h) = build(&keys);
        for miss in [0u64, 4, 6, 3 * 10_000 + 5, 999_999_999] {
            assert_eq!(h.lookup(&mut g, miss), None, "key {miss}");
        }
    }

    #[test]
    fn warp_lookup_order_preserved() {
        let keys: Vec<u64> = (0..50_000).map(|i| i * 2).collect();
        let (mut g, h) = build(&keys);
        let probe: Vec<u64> = (0..32u64).map(|i| i * 1500 * 2 + 1).collect(); // misses
        let probe_hits: Vec<u64> = (0..32u64).map(|i| i * 1500 * 2).collect();
        let mut out = vec![None; 32];
        h.lookup_warp(&mut g, &probe_hits, &mut out);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r, Some(i as u64 * 1500));
        }
        h.lookup_warp(&mut g, &probe, &mut out);
        assert!(out.iter().all(|r| r.is_none()));
    }

    #[test]
    fn node_access_is_coalesced() {
        let keys: Vec<u64> = (0..(1 << 15)).map(|i| i * 2).collect();
        let (mut g, h) = build(&keys);
        g.reset_memory_system();
        let before = g.snapshot();
        let _ = h.lookup(&mut g, 2 * 12345);
        let d = g.snapshot() - before;
        // Height levels, each reading one 32-key node (2 lines of 128 B)
        // plus one prefix entry per internal level.
        let max_lines = h.height() as u64 * 2 + h.height() as u64;
        assert!(
            d.ic_lines_random <= max_lines,
            "lines {} > {}",
            d.ic_lines_random,
            max_lines
        );
    }

    #[test]
    fn insert_batch_rebuilds() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 4).collect();
        let (mut g, mut h) = build(&keys);
        h.insert_batch(&mut g, &[2, 6, 10]).unwrap();
        assert_eq!(h.len(), 1003);
        assert_eq!(h.lookup(&mut g, 2), Some(1)); // sorted position
        assert_eq!(h.lookup(&mut g, 0), Some(0));
        assert!(h
            .insert_batch(&mut g, &[2])
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn empty_and_single() {
        let (mut g, h) = build(&[]);
        assert!(h.is_empty());
        assert_eq!(h.lookup(&mut g, 1), None);
        let (mut g, h) = build(&[9]);
        assert_eq!(h.lookup(&mut g, 9), Some(0));
        assert_eq!(h.lookup(&mut g, 8), None);
        assert_eq!(h.lookup(&mut g, 10), None);
    }

    #[test]
    fn lower_bound_and_range() {
        let keys: Vec<u64> = (0..5000).map(|i| i * 10 + 3).collect();
        let (mut g, h) = build(&keys);
        for probe in [0u64, 3, 4, 13, 25000, 49993, 49994, u64::MAX] {
            let expect = keys.partition_point(|&k| k < probe) as u64;
            assert_eq!(h.lower_bound(&mut g, probe), expect, "probe {probe}");
        }
        // Cross every leaf boundary (32 keys per node).
        for leaf in (32..5000).step_by(32) {
            let probe = keys[leaf - 1] + 1;
            let expect = keys.partition_point(|&k| k < probe) as u64;
            assert_eq!(h.lower_bound(&mut g, probe), expect);
        }
        assert_eq!(h.range(&mut g, 13, 33), 1..4);
    }

    #[test]
    fn custom_subwarp_width() {
        let keys: Vec<u64> = (0..5000).map(|i| i * 2 + 1).collect();
        let mut g = gpu();
        let h = Harmonia::build(
            &mut g,
            &keys,
            HarmoniaConfig {
                keys_per_node: 16,
                lanes_per_key: 4,
            },
        );
        assert_eq!(h.sub_warp().groups_per_warp(), 8);
        for (i, &k) in keys.iter().enumerate().step_by(101) {
            assert_eq!(h.lookup(&mut g, k), Some(i as u64));
        }
    }
}
