//! Binary search over the sorted base relation.
//!
//! The simplest of the paper's four access paths: no auxiliary structure at
//! all, `O(log n)` probes per key straight into the out-of-core data. Each
//! probe of the lower levels lands on a distinct cacheline *and* page, which
//! is exactly why this index suffers the worst TLB thrashing in Fig. 4
//! (~105 translation requests per key at 111 GiB).

use crate::traits::{IndexKind, OutOfCoreIndex};
use std::rc::Rc;
use windex_sim::{lockstep, Buffer, Gpu, WARP_SIZE};

/// Lower-bound binary search over a sorted column in CPU memory.
#[derive(Debug, Clone)]
pub struct BinarySearchIndex {
    data: Rc<Buffer<u64>>,
}

#[derive(Debug, Clone, Copy)]
struct Lane {
    key: u64,
    lo: usize,
    hi: usize,
    result: Option<u64>,
}

impl BinarySearchIndex {
    /// Create a search over `data`, which must be sorted ascending and
    /// duplicate-free (verified in debug builds).
    pub fn new(data: Rc<Buffer<u64>>) -> Self {
        debug_assert!(data.host().windows(2).all(|w| w[0] < w[1]));
        BinarySearchIndex { data }
    }

    /// The underlying sorted column.
    pub fn data(&self) -> &Rc<Buffer<u64>> {
        &self.data
    }
}

impl OutOfCoreIndex for BinarySearchIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::BinarySearch
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn lookup_warp(&self, gpu: &mut Gpu, keys: &[u64], out: &mut [Option<u64>]) {
        assert!(keys.len() <= WARP_SIZE);
        assert!(out.len() >= keys.len());
        let n = self.data.len();
        let mut lanes: Vec<Lane> = keys
            .iter()
            .map(|&key| Lane {
                key,
                lo: 0,
                hi: n,
                result: None,
            })
            .collect();
        let data = &self.data;
        // Lane probes go through the deferred issue path: `lockstep` drains
        // them once per round, in lane order, as one batched pass.
        lockstep(gpu, &mut lanes, |gpu, lane| {
            if lane.lo < lane.hi {
                // One halving step: a single data-dependent probe.
                let mid = lane.lo + (lane.hi - lane.lo) / 2;
                if data.read_issued(gpu, mid) < lane.key {
                    lane.lo = mid + 1;
                } else {
                    lane.hi = mid;
                }
                false
            } else {
                // Search exhausted: verify the lower-bound slot.
                if lane.lo < n && data.read_issued(gpu, lane.lo) == lane.key {
                    lane.result = Some(lane.lo as u64);
                }
                true
            }
        });
        for (o, lane) in out.iter_mut().zip(&lanes) {
            *o = lane.result;
        }
        gpu.count_lookups(keys.len() as u64);
    }

    fn lower_bound(&self, gpu: &mut Gpu, key: u64) -> u64 {
        let n = self.data.len();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.data.read(gpu, mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as u64
    }

    fn aux_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::{GpuSpec, Scale};

    fn setup(keys: Vec<u64>) -> (Gpu, BinarySearchIndex) {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let data = Rc::new(gpu.alloc_host_from_vec(keys));
        (gpu, BinarySearchIndex::new(data))
    }

    #[test]
    fn finds_every_key() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 3 + 1).collect();
        let (mut gpu, idx) = setup(keys.clone());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(idx.lookup(&mut gpu, k), Some(i as u64), "key {k}");
        }
    }

    #[test]
    fn rejects_absent_keys() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 3 + 1).collect();
        let (mut gpu, idx) = setup(keys);
        for miss in [0u64, 2, 3, 2999, 3001, u64::MAX] {
            assert_eq!(idx.lookup(&mut gpu, miss), None, "key {miss}");
        }
    }

    #[test]
    fn warp_lookup_matches_scalar() {
        let keys: Vec<u64> = (0..4096).map(|i| i * 5).collect();
        let (mut gpu, idx) = setup(keys.clone());
        let probe: Vec<u64> = (0..32).map(|i| keys[i * 100 + 3]).collect();
        let mut out = vec![None; 32];
        idx.lookup_warp(&mut gpu, &probe, &mut out);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r, Some((i * 100 + 3) as u64));
        }
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let keys: Vec<u64> = (0..(1 << 14)).map(|i| i * 2).collect();
        let (mut gpu, idx) = setup(keys);
        let before = gpu.snapshot();
        let _ = idx.lookup(&mut gpu, 12345 * 2);
        let d = gpu.snapshot() - before;
        // log2(2^14) = 14 probes + 1 verify, each at most one line.
        let probes = d.l1_hits + d.l1_misses;
        assert!((14..=16).contains(&probes), "probes = {probes}");
        assert_eq!(d.lookups, 1);
    }

    #[test]
    fn lower_bound_and_range() {
        let keys: Vec<u64> = (0..500).map(|i| i * 10).collect();
        let (mut gpu, idx) = setup(keys.clone());
        for probe in [0u64, 5, 10, 11, 4990, 4991, 9999] {
            let expect = keys.partition_point(|&k| k < probe) as u64;
            assert_eq!(idx.lower_bound(&mut gpu, probe), expect, "probe {probe}");
        }
        assert_eq!(idx.range(&mut gpu, 100, 199), 10..20);
        assert_eq!(idx.range(&mut gpu, 101, 109), 11..11);
        assert_eq!(idx.range(&mut gpu, 0, u64::MAX), 0..500);
        assert_eq!(idx.range(&mut gpu, 200, 100), 0..0);
    }

    #[test]
    fn empty_index() {
        let (mut gpu, idx) = setup(vec![]);
        assert!(idx.is_empty());
        assert_eq!(idx.lookup(&mut gpu, 7), None);
    }

    #[test]
    fn single_element() {
        let (mut gpu, idx) = setup(vec![42]);
        assert_eq!(idx.lookup(&mut gpu, 42), Some(0));
        assert_eq!(idx.lookup(&mut gpu, 41), None);
        assert_eq!(idx.lookup(&mut gpu, 43), None);
    }
}
