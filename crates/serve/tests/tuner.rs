//! End-to-end tests of the online auto-tuner behind [`TunedServer`]:
//! convergence to the regime-correct plan from a wrong start, hysteresis
//! spacing of switches, byte-identical determinism, and the interaction
//! with the degradation ladder under an injected device loss.

use windex_core::{default_candidates, TuneReason, TunerConfig};
use windex_serve::prelude::*;
use windex_sim::{ChaosKind, ChaosSchedule};

fn spec() -> GpuSpec {
    GpuSpec::v100_nvlink2(Scale::PAPER)
}

/// Dense sorted R at a paper-scale size, like the bench workloads.
fn relation(paper_gib: f64, seed: u64) -> Relation {
    Relation::unique_sorted(
        Scale::PAPER.sim_tuples_for_paper_gib(paper_gib),
        KeyDistribution::Dense,
        seed,
    )
}

/// A saturating single-tenant trace: ~5 full 32 Ki-key batches.
fn trace(r: &Relation, tenant: TenantId) -> Vec<TimedRequest> {
    generate_tenant_trace(
        &TraceConfig {
            seed: 7,
            tenants: 1,
            requests: 40,
            min_keys: 2_048,
            max_keys: 6_144,
            offered_load_rps: 160.0,
            deadline_s: None,
        },
        tenant,
        r,
    )
}

/// Run one tenant from a forced starting candidate with exploration off,
/// so every move is a pure argmin decision.
fn run_from(paper_gib: f64, initial_candidate: usize) -> TunedReport {
    let r = relation(paper_gib, 42);
    let tr = trace(&r, 0);
    let cfg = TunedConfig {
        tuner: TunerConfig {
            epsilon: 0.0,
            initial_candidate: Some(initial_candidate),
            ..TunerConfig::default()
        },
        ..TunedConfig::default()
    };
    let mut srv = TunedServer::new(spec(), cfg, vec![(0, r)], None).unwrap();
    srv.run(&tr).unwrap()
}

/// Index of the hash join / the first windowed plan in the default set.
fn candidate_index(needle: &str) -> usize {
    default_candidates()
        .iter()
        .position(|c| c.label().contains(needle))
        .expect("candidate present")
}

#[test]
fn converges_to_hash_join_in_core() {
    // A 1 GiB tenant started on the windowed INLJ must measure its way
    // back to the hash join: in-core, streaming R once per batch is
    // cheaper than per-key index traversal (§5 regime boundary).
    let rep = run_from(1.0, candidate_index("windowed"));
    assert_eq!(rep.completed, rep.requests);
    assert_eq!(rep.per_tenant[0].final_plan, "hash-join");
    assert!(
        rep.tune_events
            .iter()
            .any(|e| { e.event.reason == TuneReason::Argmin && e.event.to == "hash-join" }),
        "an argmin switch to hash-join must be on the event stream: {:?}",
        rep.tune_events
    );
}

#[test]
fn converges_to_windowed_inlj_out_of_core() {
    // A 64 GiB tenant started on the hash join must switch to a windowed
    // INLJ with a sane window: out-of-core, streaming R per batch costs
    // ~R/batch_keys times more than per-key lookups.
    let rep = run_from(64.0, candidate_index("hash"));
    assert_eq!(rep.completed, rep.requests);
    let plan = &rep.per_tenant[0].final_plan;
    assert!(plan.contains("windowed-inlj"), "final plan {plan}");
    let w: usize = plan
        .split("w=")
        .nth(1)
        .and_then(|s| s.split(')').next())
        .and_then(|s| s.parse().ok())
        .expect("windowed plan label carries a window size");
    assert!(
        (64..=1 << 20).contains(&w),
        "window {w} outside any sane range"
    );
    assert!(rep.switches >= 1, "at least one argmin switch");
}

#[test]
fn hysteresis_spaces_switches_by_the_dwell() {
    // Same wrong-start run: the first switch cannot land before the dwell
    // window has passed, and consecutive switches stay at least a dwell
    // apart per tenant.
    let dwell = TunerConfig::default().min_dwell_batches;
    let rep = run_from(1.0, candidate_index("windowed"));
    let switches: Vec<u64> = rep
        .tune_events
        .iter()
        .filter(|e| e.event.reason == TuneReason::Argmin)
        .map(|e| e.event.batch)
        .collect();
    assert!(!switches.is_empty(), "the bad start must trigger a switch");
    assert!(
        switches[0] >= dwell,
        "first switch at batch {} inside the dwell {dwell}",
        switches[0]
    );
    assert!(
        switches.windows(2).all(|w| w[1] - w[0] >= dwell),
        "switches closer than the dwell: {switches:?}"
    );
}

#[test]
fn tuned_runs_are_byte_identical() {
    // Mixed-regime two-tenant run with exploration on: the full report —
    // KPIs, per-tenant plans, and the TuneEvent stream — serializes
    // byte-identically across runs.
    let run = || {
        let small = relation(1.0, 42);
        let big = relation(64.0, 43);
        let tr = merge_traces(vec![trace(&small, 0), trace(&big, 1)]);
        let mut srv = TunedServer::new(
            spec(),
            TunedConfig::default(),
            vec![(0, small), (1, big)],
            None,
        )
        .unwrap();
        serde_json::to_string(&srv.run(&tr).unwrap()).unwrap()
    };
    let a = run();
    assert_eq!(a, run(), "same seed and trace must serialize identically");
    // The OpenMetrics rendering is equally deterministic.
    let rep: TunedReport = {
        let small = relation(1.0, 42);
        let big = relation(64.0, 43);
        let tr = merge_traces(vec![trace(&small, 0), trace(&big, 1)]);
        let mut srv = TunedServer::new(
            spec(),
            TunedConfig::default(),
            vec![(0, small), (1, big)],
            None,
        )
        .unwrap();
        srv.run(&tr).unwrap()
    };
    let m = render_tuner_openmetrics(&rep);
    assert_eq!(m, render_tuner_openmetrics(&rep));
    assert!(m.ends_with("# EOF\n"));
}

#[test]
fn device_loss_pins_the_tuner_until_recovery() {
    // A device-loss window mid-trace walks the session through the PR 6
    // recovery path; the dispatch reports a degradation, which must pin
    // the tuner (no plan churn while the ladder is active) and surface a
    // Pinned event — deterministically.
    let run = || {
        let r = relation(1.0, 42);
        let tr = trace(&r, 0);
        let cfg = TunedConfig {
            tuner: TunerConfig {
                epsilon: 0.0,
                ..TunerConfig::default()
            },
            ..TunedConfig::default()
        };
        let mut srv = TunedServer::new(spec(), cfg, vec![(0, r)], None).unwrap();
        srv.gpu_mut()
            .set_chaos_schedule(ChaosSchedule::seeded(99).with_window(
                ChaosKind::DeviceLoss,
                0.06,
                0.10,
            ))
            .unwrap();
        srv.run(&tr).unwrap()
    };
    let rep = run();
    assert_eq!(rep.completed, rep.requests, "loss is recovered, not shed");
    let pins: Vec<_> = rep
        .tune_events
        .iter()
        .filter(|e| e.event.reason == TuneReason::Pinned)
        .collect();
    assert!(
        !pins.is_empty(),
        "device loss must pin the tuner: {:?}",
        rep.tune_events
    );
    assert!(rep.per_tenant[0].pinned_batches > 0);
    // No argmin switch lands inside a pin window.
    let b = run();
    assert_eq!(
        serde_json::to_string(&rep).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "chaos runs must stay deterministic"
    );
}
