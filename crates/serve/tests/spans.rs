//! Span-tree acceptance tests: every request that enters any server leaves
//! with a causally valid span tree whose stage spans reconcile bitwise with
//! its end-to-end latency — single-GPU, auto-tuned, sharded cluster, and a
//! cluster losing a device mid-trace. Also covers the bounded sim-trace
//! overflow modes (ring eviction, every-nth sampling) threaded through the
//! serving layers, with exact offered/recorded/dropped reconciliation.

use windex_core::TunerConfig;
use windex_serve::prelude::*;
use windex_sim::{ChaosScenario, TraceMode};

fn v100() -> GpuSpec {
    GpuSpec::v100_nvlink2(Scale::PAPER)
}

fn relation(seed: u64) -> Relation {
    Relation::unique_sorted(1 << 14, KeyDistribution::SparseUniform, seed)
}

fn trace_for(r: &Relation, requests: usize, seed: u64) -> Vec<TimedRequest> {
    generate_trace(
        &TraceConfig {
            seed,
            requests,
            deadline_s: None,
            ..TraceConfig::default()
        },
        r,
    )
}

fn sharded_cfg(gpus: usize) -> ClusterConfig {
    ClusterConfig {
        serve: ServeConfig::default(),
        cluster: ClusterSpec::sharded(gpus, v100(), InterconnectSpec::nvlink4_peer()),
    }
}

/// Every trace validates, and the stage fold telescopes bitwise to the
/// end-to-end latency (the contract `RequestTrace::validate` enforces).
fn assert_all_valid(traces: &[RequestTrace], requests: usize, label: &str) {
    assert_eq!(traces.len(), requests, "{label}: one span tree per request");
    for t in traces {
        t.validate()
            .unwrap_or_else(|e| panic!("{label}: request {} span tree invalid: {e}", t.request));
        assert_eq!(
            t.stages.total_s().to_bits(),
            t.latency_s().to_bits(),
            "{label}: request {} stage sum must equal latency bitwise",
            t.request
        );
    }
}

/// Single-GPU server: every request — including shed ones under a
/// saturating arrival process — carries a valid span tree, with no shard
/// legs and a zero merge stage.
#[test]
fn single_gpu_span_trees_cover_every_outcome() {
    let r = relation(3);
    let trace = generate_trace(
        &TraceConfig {
            seed: 11,
            requests: 256,
            min_keys: 256,
            max_keys: 2_048,
            offered_load_rps: 2_000.0,
            deadline_s: None,
            ..TraceConfig::default()
        },
        &r,
    );
    let mut gpu = Gpu::new(v100());
    let mut server = Server::new(&mut gpu, ServeConfig::default(), r).unwrap();
    let rep = server.run(&mut gpu, &trace).unwrap().report;
    assert_all_valid(&rep.traces, trace.len(), "server");
    assert!(rep.shed > 0, "this load must shed to exercise shed spans");
    let shed = rep
        .traces
        .iter()
        .filter(|t| t.outcome == RequestOutcome::Shed)
        .count();
    assert_eq!(shed, rep.shed, "shed outcomes reconcile with the report");
    for t in &rep.traces {
        assert!(t.legs.is_empty(), "single GPU never fans out");
        assert_eq!(t.critical_leg, None);
        assert_eq!(t.stages.merge_s, 0.0, "no merge stage without fan-out");
    }
}

/// Sharded cluster: fan-out requests carry one leg per probed shard, the
/// critical leg is the latest delivery, and the fanned count reconciles
/// with the report's cross-shard counter.
#[test]
fn cluster_span_trees_fan_out_with_critical_legs() {
    let r = relation(3);
    let trace = trace_for(&r, 192, 17);
    let mut cluster = ClusterServer::new(sharded_cfg(4), r).unwrap();
    let rep = cluster.run(&trace).unwrap().report;
    assert_all_valid(&rep.traces, trace.len(), "cluster");
    let fanned = rep.traces.iter().filter(|t| t.legs.len() > 1).count();
    assert_eq!(
        fanned, rep.cross_shard_requests,
        "span-tree fan-out reconciles with the cross-shard counter"
    );
    assert!(fanned > 0, "multi-key requests over 4 shards must fan out");
    for t in &rep.traces {
        if t.legs.is_empty() {
            assert_eq!(t.critical_leg, None);
            continue;
        }
        let c = t.critical_leg.expect("fanned request names a critical leg");
        assert!(c < t.legs.len());
        for leg in &t.legs {
            assert!(
                leg.delivered_s <= t.legs[c].delivered_s,
                "request {}: critical leg must be the latest delivery",
                t.request
            );
        }
    }
}

/// Device loss mid-trace: the re-shard's rebuild and redrives land inside
/// the affected requests' service/merge stages, and every span tree still
/// validates with outcome counts reconciling against the report.
#[test]
fn chaos_span_trees_survive_device_loss() {
    let r = relation(5);
    let trace = generate_trace(
        &TraceConfig {
            seed: 23,
            requests: 512,
            offered_load_rps: 8_000.0,
            deadline_s: None,
            ..TraceConfig::default()
        },
        &r,
    );
    let mut cluster = ClusterServer::new(sharded_cfg(4), r).unwrap();
    cluster
        .set_chaos_schedules(ChaosScenario::DeviceLoss.cluster_schedules(40, 4, 1))
        .unwrap();
    let rep = cluster.run(&trace).unwrap().report;
    assert!(!rep.per_shard[1].alive, "GPU 1 must actually be lost");
    assert_all_valid(&rep.traces, trace.len(), "chaos");
    let mut completed = 0;
    let mut missed = 0;
    let mut shed = 0;
    for t in &rep.traces {
        match t.outcome {
            RequestOutcome::Completed => completed += 1,
            RequestOutcome::DeadlineMissed => missed += 1,
            RequestOutcome::Shed => shed += 1,
        }
    }
    assert_eq!(completed, rep.completed);
    assert_eq!(missed, rep.deadline_missed);
    assert_eq!(shed, rep.shed);
}

/// Auto-tuned server: span trees cover every request across tenants, and
/// the tuner's probe batches are flagged on the traces they ride in.
#[test]
fn tuned_span_trees_flag_probe_batches() {
    let r = relation(7);
    let trace = trace_for(&r, 192, 31);
    let tenants: Vec<(TenantId, Relation)> = (0..4).map(|id| (id, r.clone())).collect();
    // Exploration is a seeded ε-draw per decision, gated by the hysteresis
    // dwell; crank ε and shrink the dwell so this short trace is guaranteed
    // to land probe batches.
    let cfg = TunedConfig {
        tuner: TunerConfig {
            epsilon: 0.9,
            min_dwell_batches: 1,
            ..TunerConfig::default()
        },
        ..TunedConfig::default()
    };
    let mut srv = TunedServer::new(v100(), cfg, tenants, None).unwrap();
    let rep = srv.run(&trace).unwrap();
    assert_all_valid(&rep.traces, trace.len(), "tuned");
    assert!(
        rep.traces.iter().any(|t| t.probe),
        "exploration must flag at least one probe batch on its span trees"
    );
}

/// Ring mode through the cluster: a bounded recorder on shard 0's GPU keeps
/// exactly the run's suffix, the offered side keeps the full-run truth, and
/// `offered - recorded` is the exact drop accounting.
#[test]
fn ring_trace_keeps_the_suffix_through_the_cluster() {
    let r = relation(3);
    let trace = trace_for(&r, 96, 17);
    const CAP: usize = 256;

    let full = {
        let mut cluster = ClusterServer::new(sharded_cfg(4), r.clone()).unwrap();
        cluster.shard_gpu_mut(0).start_trace(1 << 22);
        cluster.run(&trace).unwrap();
        cluster.shard_gpu_mut(0).stop_trace()
    };
    assert_eq!(full.dropped_events(), 0, "full capacity must drop nothing");
    assert!(
        full.offered().events as usize > CAP,
        "run must overflow the bounded ring ({} events)",
        full.offered().events
    );

    let ring = {
        let mut cluster = ClusterServer::new(sharded_cfg(4), r.clone()).unwrap();
        cluster
            .shard_gpu_mut(0)
            .start_trace_mode(CAP, TraceMode::Ring);
        cluster.run(&trace).unwrap();
        cluster.shard_gpu_mut(0).stop_trace()
    };
    // The offered side is the full-run truth regardless of eviction.
    assert_eq!(ring.offered(), full.offered());
    // Exact reconciliation: everything offered is recorded or dropped.
    assert_eq!(
        ring.offered().events,
        ring.recorded().events + ring.dropped_events()
    );
    assert!(ring.truncated());
    assert_eq!(ring.events().len(), CAP, "ring holds exactly its capacity");
    // Ring keeps the most recent events: the recorded buffer is the full
    // run's suffix, in order.
    let all = full.events();
    assert_eq!(ring.events(), &all[all.len() - CAP..]);
}

/// Every-nth sampling through the tuned server: the recorder thins the
/// stream uniformly (exactly the ordinals ≡ 0 mod n), while the offered
/// totals still match an unbounded recording of the same deterministic run.
#[test]
fn sampled_trace_thins_uniformly_through_the_tuned_server() {
    let r = relation(7);
    let trace = trace_for(&r, 96, 31);
    let tenants: Vec<(TenantId, Relation)> = (0..4).map(|id| (id, r.clone())).collect();
    const NTH: u64 = 7;

    let run = |mode: Option<TraceMode>| {
        let mut srv =
            TunedServer::new(v100(), TunedConfig::default(), tenants.clone(), None).unwrap();
        match mode {
            Some(m) => srv.gpu_mut().start_trace_mode(1 << 22, m),
            None => srv.gpu_mut().start_trace(1 << 22),
        }
        srv.run(&trace).unwrap();
        srv.gpu_mut().stop_trace()
    };

    let full = run(None);
    assert_eq!(full.dropped_events(), 0);
    let sampled = run(Some(TraceMode::SampleEveryNth(NTH)));

    assert_eq!(
        sampled.offered(),
        full.offered(),
        "offered keeps full truth"
    );
    assert!(
        sampled.dropped_events() > 0,
        "sampling must thin the stream"
    );
    assert_eq!(
        sampled.offered().events,
        sampled.recorded().events + sampled.dropped_events()
    );
    assert_eq!(
        sampled.recorded().events,
        full.offered().events.div_ceil(NTH),
        "every n-th ordinal is retained"
    );
    // The retained events are exactly every NTH-th of the full stream.
    let expect: Vec<_> = full
        .events()
        .iter()
        .step_by(NTH as usize)
        .copied()
        .collect();
    assert_eq!(sampled.events(), expect.as_slice());
}
