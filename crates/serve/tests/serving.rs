//! Acceptance tests for the serving layer: the served responses must be
//! *exactly* what an offline run of the query engine would produce, the
//! whole pipeline must be deterministic down to serialized bytes, and the
//! server must degrade (shed, shrink, spill) rather than fail under
//! pressure.

use windex_core::window::{windowed_inlj, WindowConfig};
use windex_core::{QueryExecutor, StreamingWindowJoin};
use windex_index::IndexKind;
use windex_join::ResultSink;
use windex_serve::prelude::*;
use windex_sim::{FaultPlan, RetryPolicy};

fn gpu() -> Gpu {
    Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER))
}

fn relation() -> Relation {
    Relation::unique_sorted(1 << 14, KeyDistribution::SparseUniform, 1)
}

/// Offline reference: run the engine's own windowed operator over the
/// concatenated keys of every request (in arrival order) and map each
/// match back to its request via the concatenation index.
fn offline_matches(
    g: &mut Gpu,
    r: &Relation,
    trace: &[TimedRequest],
    index: IndexKind,
) -> Vec<Vec<(u64, u64)>> {
    let mut concat: Vec<u64> = Vec::new();
    let mut owner: Vec<usize> = Vec::new();
    for (req, t) in trace.iter().enumerate() {
        for &k in &t.request.keys {
            concat.push(k);
            owner.push(req);
        }
    }
    let col = std::rc::Rc::new(g.alloc_host_from_vec(r.keys().to_vec()));
    let built =
        windex_core::BuiltIndex::build(g, index, &col, &windex_core::IndexConfigs::default());
    let bits = QueryExecutor::new().resolve_bits(g, r);
    let s_col = g.alloc_host_from_vec(concat.clone());
    let mut sink = ResultSink::with_capacity(g, concat.len().max(1), MemLocation::Cpu).unwrap();
    let n = concat.len();
    windowed_inlj(
        g,
        built.as_dyn(),
        &s_col,
        0..n,
        WindowConfig {
            window_tuples: 1024,
            bits,
            min_key: r.min_key().unwrap_or(0),
        },
        &mut sink,
    )
    .unwrap();
    let mut per_request = vec![Vec::new(); trace.len()];
    for (concat_idx, pos) in sink.host_pairs() {
        per_request[owner[concat_idx as usize]].push((concat[concat_idx as usize], pos));
    }
    per_request
}

#[test]
fn served_responses_equal_offline_execution() {
    let r = relation();
    let cfg = TraceConfig::default();
    let trace = generate_trace(&cfg, &r);

    let mut g = gpu();
    let expected = offline_matches(&mut g, &r, &trace, IndexKind::RadixSpline);

    let mut g2 = gpu();
    let mut server = Server::new(&mut g2, ServeConfig::default(), r).unwrap();
    let outcome = server.run(&mut g2, &trace).unwrap();

    assert_eq!(outcome.responses.len(), trace.len());
    assert_eq!(outcome.report.shed, 0, "nothing shed under default limits");
    for resp in &outcome.responses {
        assert_eq!(resp.outcome, RequestOutcome::Completed);
        let mut got = resp.matches.clone();
        let mut want = expected[resp.request as usize].clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "request {} match set differs", resp.request);
    }
    // The union check in one line: total tuples agree with the offline run.
    assert_eq!(
        outcome.report.result_tuples,
        expected.iter().map(Vec::len).sum::<usize>()
    );
}

#[test]
fn no_cross_tenant_leakage() {
    let r = relation();
    let cfg = TraceConfig {
        tenants: 6,
        ..TraceConfig::default()
    };
    let trace = generate_trace(&cfg, &r);
    let mut g = gpu();
    let mut server = Server::new(&mut g, ServeConfig::default(), r.clone()).unwrap();
    let outcome = server.run(&mut g, &trace).unwrap();
    for resp in &outcome.responses {
        let req = &trace[resp.request as usize].request;
        assert_eq!(resp.tenant, req.tenant, "tenant echo must match");
        // Every key the server sampled exists in R, so every key matches
        // exactly once: the response is complete and contains nothing that
        // the request did not ask for.
        assert_eq!(resp.matches.len(), req.keys.len());
        for &(key, pos) in &resp.matches {
            assert!(
                req.keys.contains(&key),
                "request {} answered with foreign key {key}",
                resp.request
            );
            assert_eq!(r.keys()[pos as usize], key, "index position must match");
        }
    }
}

#[test]
fn same_seed_yields_byte_identical_reports() {
    let run = || {
        let r = relation();
        let trace = generate_trace(&TraceConfig::default(), &r);
        let mut g = gpu();
        let mut server = Server::new(&mut g, ServeConfig::default(), r).unwrap();
        let outcome = server.run(&mut g, &trace).unwrap();
        (
            serde_json::to_string(&outcome.report).unwrap(),
            serde_json::to_string(&outcome.responses).unwrap(),
        )
    };
    let (report_a, responses_a) = run();
    let (report_b, responses_b) = run();
    assert_eq!(report_a, report_b, "reports must be byte-identical");
    assert_eq!(responses_a, responses_b, "responses must be byte-identical");

    // A different seed produces a different trace, hence a different report.
    let r = relation();
    let trace = generate_trace(
        &TraceConfig {
            seed: 99,
            ..TraceConfig::default()
        },
        &r,
    );
    let mut g = gpu();
    let mut server = Server::new(&mut g, ServeConfig::default(), r).unwrap();
    let outcome = server.run(&mut g, &trace).unwrap();
    assert_ne!(serde_json::to_string(&outcome.report).unwrap(), report_a);
}

#[test]
fn shared_batching_beats_per_request_execution() {
    let r = relation();
    // Load high enough that per-request execution cannot hide its fixed
    // per-dispatch costs behind the arrival gaps.
    let cfg = TraceConfig {
        requests: 256,
        offered_load_rps: 50_000.0,
        ..TraceConfig::default()
    };
    let trace = generate_trace(&cfg, &r);

    let mut g1 = gpu();
    let mut shared = Server::new(&mut g1, ServeConfig::default(), r.clone()).unwrap();
    let batched = shared.run(&mut g1, &trace).unwrap().report;

    let mut g2 = gpu();
    let mut solo = Server::new(
        &mut g2,
        ServeConfig {
            policy: BatchPolicy::PerRequest,
            ..ServeConfig::default()
        },
        r,
    )
    .unwrap();
    let per_request = solo.run(&mut g2, &trace).unwrap().report;

    assert!(
        batched.mean_batch_keys > per_request.mean_batch_keys,
        "shared windows must carry more keys: {} vs {}",
        batched.mean_batch_keys,
        per_request.mean_batch_keys
    );
    assert!(
        batched.virtual_makespan_s < per_request.virtual_makespan_s,
        "batched {} s vs per-request {} s",
        batched.virtual_makespan_s,
        per_request.virtual_makespan_s
    );
    assert!(
        batched.latency.p95_s < per_request.latency.p95_s,
        "batched p95 {} s vs per-request p95 {} s",
        batched.latency.p95_s,
        per_request.latency.p95_s
    );
    assert!(batched.keys_per_second > per_request.keys_per_second);
}

#[test]
fn admission_control_sheds_over_the_backpressure_bound() {
    let r = relation();
    let cfg = TraceConfig {
        requests: 128,
        offered_load_rps: 500_000.0, // far beyond service capacity
        ..TraceConfig::default()
    };
    let trace = generate_trace(&cfg, &r);
    let mut g = gpu();
    let mut server = Server::new(
        &mut g,
        ServeConfig {
            max_pending_keys: 256,
            ..ServeConfig::default()
        },
        r,
    )
    .unwrap();
    let outcome = server.run(&mut g, &trace).unwrap();
    assert!(outcome.report.shed > 0, "overload must shed");
    assert!(
        outcome.report.completed > 0,
        "admitted requests still complete"
    );
    assert_eq!(
        outcome.report.completed + outcome.report.shed + outcome.report.deadline_missed,
        trace.len()
    );
    assert!(outcome
        .report
        .events
        .iter()
        .any(|e| matches!(e, ServeEvent::LoadShed { .. })));
    assert!(outcome.report.max_queue_depth_keys <= 256);
    // Shed responses carry no matches.
    for resp in &outcome.responses {
        if resp.outcome == RequestOutcome::Shed {
            assert!(resp.matches.is_empty());
        }
    }
}

#[test]
fn tight_device_budget_shrinks_the_shared_window() {
    let mut spec = GpuSpec::v100_nvlink2(Scale::PAPER);
    spec.page_bytes = 4096;
    // Room for roughly half a 2048-key window of partitioned pairs: the
    // first full dispatch must shrink the window to fit.
    spec.hbm_bytes = 32 * 1024;
    let mut g = Gpu::new(spec);
    let r = relation();
    // Load high enough that shared windows actually fill (the partitioner
    // sizes its device buffers by the dispatched batch, so near-empty
    // windows never feel the budget).
    let trace = generate_trace(
        &TraceConfig {
            offered_load_rps: 200_000.0,
            ..TraceConfig::default()
        },
        &r,
    );
    let mut server = Server::new(
        &mut g,
        ServeConfig {
            index: IndexKind::BinarySearch,
            window_tuples: 2048,
            result_location: MemLocation::Cpu,
            ..ServeConfig::default()
        },
        r.clone(),
    )
    .unwrap();
    let outcome = server.run(&mut g, &trace).unwrap();
    assert!(
        outcome
            .report
            .events
            .iter()
            .any(|e| matches!(e, ServeEvent::WindowShrunk { .. })),
        "events: {:?}",
        outcome.report.events
    );
    assert!(outcome.report.effective_window_tuples < 2048);
    assert_eq!(outcome.report.shed, 0, "degradation, not shedding");
    // Results survive the degradation unchanged.
    let mut g2 = gpu();
    let expected = offline_matches(&mut g2, &r, &trace, IndexKind::BinarySearch);
    for resp in &outcome.responses {
        let mut got = resp.matches.clone();
        let mut want = expected[resp.request as usize].clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn unrecoverable_faults_shed_batches_not_the_server() {
    let r = relation();
    let trace = generate_trace(
        &TraceConfig {
            requests: 32,
            ..TraceConfig::default()
        },
        &r,
    );
    let mut g = gpu();
    let mut server = Server::new(&mut g, ServeConfig::default(), r).unwrap();
    g.set_retry_policy(RetryPolicy {
        max_retries: 1,
        base_backoff_ns: 10,
    });
    g.set_fault_plan(FaultPlan::seeded(3).with_transfer_faults(1.0))
        .expect("valid fault plan");
    let outcome = server.run(&mut g, &trace).unwrap();
    assert_eq!(
        outcome.report.shed,
        trace.len(),
        "every dispatch faults, every request is shed"
    );
    assert!(outcome
        .report
        .events
        .iter()
        .any(|e| matches!(e, ServeEvent::BatchAbandoned { .. })));
    assert!(outcome.report.retries > 0, "retries were attempted first");

    // Lifting the fault plan restores normal service on the same server.
    g.set_fault_plan(FaultPlan::none())
        .expect("valid fault plan");
    let outcome = server.run(&mut g, &trace).unwrap();
    assert_eq!(outcome.report.shed, 0);
    assert_eq!(outcome.report.completed, trace.len());
}

#[test]
fn server_rejects_invalid_configurations() {
    let mut g = gpu();
    let r = relation();
    assert!(Server::new(
        &mut g,
        ServeConfig {
            window_tuples: 0,
            ..ServeConfig::default()
        },
        r.clone(),
    )
    .is_err());
    assert!(Server::new(
        &mut g,
        ServeConfig {
            quantum_keys: 0,
            ..ServeConfig::default()
        },
        r.clone(),
    )
    .is_err());
    assert!(Server::new(
        &mut g,
        ServeConfig {
            policy: BatchPolicy::Shared { max_delay_s: 0.0 },
            ..ServeConfig::default()
        },
        r,
    )
    .is_err());
    // Unsorted relations cannot be indexed.
    let unsorted = Relation::from_keys(vec![5, 1, 3], false);
    assert!(Server::new(&mut g, ServeConfig::default(), unsorted).is_err());
}

#[test]
fn deadlines_are_classified_in_virtual_time() {
    let r = relation();
    let trace = generate_trace(
        &TraceConfig {
            requests: 64,
            offered_load_rps: 100_000.0,
            deadline_s: Some(1e-9), // impossible budget
            ..TraceConfig::default()
        },
        &r,
    );
    let mut g = gpu();
    let mut server = Server::new(&mut g, ServeConfig::default(), r).unwrap();
    let outcome = server.run(&mut g, &trace).unwrap();
    assert!(outcome.report.deadline_missed > 0);
    // Deadline-missed responses still carry their (valid) matches.
    for resp in &outcome.responses {
        if resp.outcome == RequestOutcome::DeadlineMissed {
            assert!(!resp.matches.is_empty());
        }
    }
}

/// The streaming operator itself stays usable when driven exactly like the
/// server drives it (reset per dispatch) — a regression guard for the
/// dispatch protocol.
#[test]
fn dispatch_protocol_round_trips_through_the_operator() {
    let mut g = gpu();
    let r = relation();
    let col = std::rc::Rc::new(g.alloc_host_from_vec(r.keys().to_vec()));
    let built = windex_core::BuiltIndex::build(
        &mut g,
        IndexKind::RadixSpline,
        &col,
        &windex_core::IndexConfigs::default(),
    );
    let bits = QueryExecutor::new().resolve_bits(&g, &r);
    let mut op = StreamingWindowJoin::new(
        &mut g,
        WindowConfig {
            window_tuples: 8,
            bits,
            min_key: r.min_key().unwrap(),
        },
    )
    .unwrap();
    let mut sink = ResultSink::with_capacity(&mut g, 64, MemLocation::Cpu).unwrap();
    for round in 0..4u64 {
        op.reset();
        let batch: Vec<(u64, u64)> = (0..5u64)
            .map(|i| (r.keys()[(round * 5 + i) as usize], round * 5 + i))
            .collect();
        op.push(&mut g, built.as_dyn(), &batch, &mut sink).unwrap();
        op.flush_now(&mut g, built.as_dyn(), &mut sink).unwrap();
        assert_eq!(op.stats().windows, 1);
        assert_eq!(sink.len(), 5);
        for (rid, pos) in sink.host_pairs() {
            assert_eq!(r.keys()[pos as usize], r.keys()[rid as usize]);
        }
        sink.clear();
    }
}

// ---------------------------------------------------------------------------
// Chaos: time-correlated fault windows on the serving clock.
// ---------------------------------------------------------------------------

#[test]
fn device_loss_trace_completes_every_request() {
    let r = relation();
    let trace = generate_trace(&TraceConfig::default(), &r);
    let mut g = gpu();
    let mut server = Server::new(&mut g, ServeConfig::default(), r.clone()).unwrap();
    // The DeviceLoss scenario kills the device at 20 ms of serving time;
    // the default trace still has arrivals in flight then.
    g.set_chaos_schedule(windex_sim::ChaosScenario::DeviceLoss.schedule(99))
        .expect("valid schedule");
    let outcome = server.run(&mut g, &trace).unwrap();

    // Every request is answered: recovery, not refusal.
    assert_eq!(outcome.responses.len(), trace.len());
    assert_eq!(outcome.report.shed, 0, "device loss must not shed requests");
    assert_eq!(outcome.report.slo.availability, 1.0);
    let mttrs: Vec<f64> = outcome
        .report
        .events
        .iter()
        .filter_map(|e| match e {
            ServeEvent::DeviceLossRecovered { mttr_s } => Some(*mttr_s),
            _ => None,
        })
        .collect();
    assert!(!mttrs.is_empty(), "a recovery must be recorded");
    for m in &mttrs {
        assert!(
            m.is_finite() && *m > 0.0,
            "MTTR must be finite and positive"
        );
    }
    assert!(
        !g.device_lost(),
        "replacement device is healthy at trace end"
    );

    // Results after recovery equal a calm offline run: the rebuilt index
    // answers exactly like the lost one.
    let mut g2 = gpu();
    let expected = offline_matches(&mut g2, &r, &trace, IndexKind::RadixSpline);
    for resp in &outcome.responses {
        let mut got = resp.matches.clone();
        let mut want = expected[resp.request as usize].clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "request {} differs post-recovery", resp.request);
    }
}

#[test]
fn link_flap_is_ridden_out_by_backoff_retries() {
    let r = relation();
    let trace = generate_trace(&TraceConfig::default(), &r);
    let mut g = gpu();
    let mut server = Server::new(&mut g, ServeConfig::default(), r).unwrap();
    // 20 ms of hard-failing transfers starting at t = 20 ms: doubling
    // backoff walks the clock past the window within the attempt budget.
    g.set_chaos_schedule(windex_sim::ChaosScenario::LinkFlap.schedule(99))
        .expect("valid schedule");
    let outcome = server.run(&mut g, &trace).unwrap();
    assert_eq!(outcome.report.shed, 0, "flap is transient; nothing is shed");
    assert_eq!(outcome.report.completed, trace.len());
    assert!(
        outcome
            .report
            .events
            .iter()
            .any(|e| matches!(e, ServeEvent::DispatchRetried { .. })),
        "the flap must surface as dispatch retries"
    );
    assert!(outcome.report.retry.attempts > 0);
    assert!(outcome.report.retry.backoff_s > 0.0);
    assert_eq!(outcome.report.breaker.opens, 0, "retries absorb the flap");
}

#[test]
fn chaos_serving_is_deterministic() {
    let r = relation();
    let trace = generate_trace(&TraceConfig::default(), &r);
    let run = || {
        let mut g = gpu();
        let mut server = Server::new(&mut g, ServeConfig::default(), r.clone()).unwrap();
        g.set_chaos_schedule(windex_sim::ChaosScenario::Combined.schedule(99))
            .expect("valid schedule");
        let outcome = server.run(&mut g, &trace).unwrap();
        (
            serde_json::to_string(&outcome.report).unwrap(),
            render_openmetrics(&outcome.report),
        )
    };
    let (report_a, metrics_a) = run();
    let (report_b, metrics_b) = run();
    assert_eq!(
        report_a, report_b,
        "chaos runs must replay byte-identically"
    );
    assert_eq!(metrics_a, metrics_b);
}

#[test]
fn persistent_faults_trip_the_breaker_and_fast_reject() {
    let r = relation();
    let trace = generate_trace(
        &TraceConfig {
            requests: 96,
            tenants: 1,
            ..TraceConfig::default()
        },
        &r,
    );
    let mut g = gpu();
    // Disable serve-level retries so each faulting dispatch abandons
    // immediately — the breaker then trips while arrivals are still
    // flowing, which is what exercises the fast-reject path.
    let cfg = ServeConfig {
        resilience: ResilienceConfig {
            retry: RetryConfig {
                max_attempts_per_dispatch: 0,
                ..RetryConfig::default()
            },
            ..ResilienceConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut server = Server::new(&mut g, cfg, r).unwrap();
    g.set_retry_policy(RetryPolicy {
        max_retries: 1,
        base_backoff_ns: 10,
    });
    // Every transfer faults, forever: retries exhaust, batches abandon,
    // and the tenant's breaker must open and start fast-rejecting.
    g.set_fault_plan(FaultPlan::seeded(3).with_transfer_faults(1.0))
        .expect("valid fault plan");
    let outcome = server.run(&mut g, &trace).unwrap();
    assert!(outcome.report.breaker.opens > 0, "breaker must trip open");
    assert!(
        outcome.report.breaker.fast_rejects > 0,
        "an open breaker sheds load without touching the device"
    );
    assert!(outcome
        .report
        .events
        .iter()
        .any(|e| matches!(e, ServeEvent::CircuitOpened { .. })));
    assert!(outcome
        .report
        .events
        .iter()
        .any(|e| matches!(e, ServeEvent::CircuitShed { .. })));
    assert!(outcome
        .report
        .events
        .iter()
        .any(|e| matches!(e, ServeEvent::RetriesExhausted { .. })));
    assert_eq!(outcome.report.shed, trace.len(), "no request completes");
    assert!((outcome.report.slo.availability - 0.0).abs() < f64::EPSILON);
}
