//! Cluster acceptance tests: routing correctness (property-tested),
//! fan-out/merge equivalence with the single-GPU server, device-loss
//! survival with availability 1.0 and finite MTTR, and byte-determinism of
//! the serialized cluster report.

use proptest::prelude::*;
use windex_join::PartitionBits;
use windex_serve::prelude::*;
use windex_sim::ChaosScenario;

fn v100() -> GpuSpec {
    GpuSpec::v100_nvlink2(Scale::PAPER)
}

fn relation(seed: u64) -> Relation {
    Relation::unique_sorted(1 << 14, KeyDistribution::SparseUniform, seed)
}

fn cluster_cfg(gpus: usize, placement_sharded: bool) -> ClusterConfig {
    let link = InterconnectSpec::nvlink4_peer();
    let cluster = if placement_sharded {
        ClusterSpec::sharded(gpus, v100(), link)
    } else {
        ClusterSpec::replicated(gpus, v100(), link)
    };
    ClusterConfig {
        serve: ServeConfig::default(),
        cluster,
    }
}

fn trace_for(r: &Relation, requests: usize, seed: u64) -> Vec<TimedRequest> {
    generate_trace(
        &TraceConfig {
            seed,
            requests,
            deadline_s: None,
            ..TraceConfig::default()
        },
        r,
    )
}

/// Canonical form of a response's matches: sorted `(key, position)` pairs.
/// Cluster merges arrive per shard, so only the set is defined — but it
/// must be exactly the single-GPU set, positions included.
fn canonical(matches: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut m = matches.to_vec();
    m.sort_unstable();
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every key routes to the shard that owns its radix partition, and
    /// contiguous ownership is monotone in the key — the invariant that
    /// makes shard slices contiguous runs of sorted R.
    #[test]
    fn every_key_routes_to_its_partition_owner(
        bits in 2u32..10,
        shift in 0u32..40,
        shards in 1usize..8,
        min_key in 0u64..1_000_000,
        keys in prop_vec(any::<u64>(), 1..64),
    ) {
        let pb = PartitionBits { shift, bits };
        let shards = shards.min(pb.partitions());
        let router = ShardRouter::contiguous(pb, min_key, shards).unwrap();
        for k in keys {
            let key = min_key.saturating_add(k % (1u64 << (shift + bits).min(63)));
            let p = router.partition_of(key);
            prop_assert_eq!(router.shard_of(key), router.owner_of(p));
            prop_assert!(router.shard_of(key) < shards);
        }
        // Ownership is monotone over the partition index (contiguous runs).
        let owners: Vec<usize> = (0..pb.partitions()).map(|p| router.owner_of(p)).collect();
        prop_assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*owners.first().unwrap(), 0);
        prop_assert_eq!(*owners.last().unwrap(), shards - 1);
    }
}

/// Sharded keys land on the shard whose resident slice contains them: the
/// router and the constructor's slice boundaries agree on every key of R.
#[test]
fn router_agrees_with_resident_slices() {
    let r = relation(11);
    let cluster = ClusterServer::new(cluster_cfg(4, true), r.clone()).unwrap();
    let router = cluster.router();
    let keys = r.keys();
    let mut boundaries = vec![0usize];
    for shard in 0..4 {
        boundaries.push(keys.partition_point(|&k| router.shard_of(k) <= shard));
    }
    assert_eq!(boundaries[4], keys.len(), "every key owned by some shard");
    for (i, &k) in keys.iter().enumerate() {
        let s = router.shard_of(k);
        assert!(boundaries[s] <= i && i < boundaries[s + 1]);
    }
}

/// Fan-out/merge over the cluster returns exactly the single-GPU results:
/// same outcomes, same match sets, same global positions — for both a
/// sharded and a replicated 4-GPU cluster.
#[test]
fn cluster_matches_single_gpu_server() {
    let r = relation(3);
    let trace = trace_for(&r, 192, 17);

    // Force identical partition bits so probe semantics match exactly.
    let cfg4 = cluster_cfg(4, true);
    let bits = cfg4.cluster.shard_bits(&r).unwrap();
    let serve = ServeConfig {
        partition_bits: Some(bits),
        ..ServeConfig::default()
    };

    let mut gpu = Gpu::new(v100());
    let mut single = Server::new(&mut gpu, serve, r.clone()).unwrap();
    let baseline = single.run(&mut gpu, &trace).unwrap();
    assert_eq!(baseline.report.shed, 0, "baseline must shed nothing");

    for sharded in [true, false] {
        let mut cfg = cluster_cfg(4, sharded);
        cfg.serve = serve;
        let mut cluster = ClusterServer::new(cfg, r.clone()).unwrap();
        let outcome = cluster.run(&trace).unwrap();
        assert_eq!(outcome.responses.len(), baseline.responses.len());
        for (c, b) in outcome.responses.iter().zip(&baseline.responses) {
            assert_eq!(c.request, b.request);
            assert_eq!(c.outcome, b.outcome, "request {} outcome", c.request);
            assert_eq!(
                canonical(&c.matches),
                canonical(&b.matches),
                "request {} match set (sharded={sharded})",
                c.request
            );
        }
        assert_eq!(
            outcome.report.result_tuples, baseline.report.result_tuples,
            "total matches preserved (sharded={sharded})"
        );
        if sharded {
            assert!(
                outcome.report.cross_shard_requests > 0,
                "multi-key requests over 4 shards must fan out"
            );
        } else {
            assert_eq!(outcome.report.cross_shard_requests, 0);
        }
    }
}

/// Losing one specific GPU mid-trace under sharded placement: the cluster
/// re-shards the lost partitions onto an adjacent survivor, answers every
/// request (availability 1.0), and reports a finite positive MTTR.
#[test]
fn sharded_cluster_survives_targeted_device_loss() {
    let r = relation(5);
    // Enough offered load that dispatches are in flight inside the
    // DeviceLoss window [0.020 s, 0.035 s).
    let trace = generate_trace(
        &TraceConfig {
            seed: 23,
            requests: 512,
            offered_load_rps: 8_000.0,
            deadline_s: None,
            ..TraceConfig::default()
        },
        &r,
    );
    let mut cluster = ClusterServer::new(cluster_cfg(4, true), r).unwrap();
    cluster
        .set_chaos_schedules(ChaosScenario::DeviceLoss.cluster_schedules(40, 4, 1))
        .unwrap();
    let outcome = cluster.run(&trace).unwrap();
    let rep = &outcome.report;
    assert_eq!(rep.alive_gpus, 3, "exactly GPU 1 lost");
    assert!(!rep.per_shard[1].alive);
    assert!(rep.reshards >= 1, "device loss absorbed by re-sharding");
    assert_eq!(rep.failovers, 0, "sharded placement never fails over");
    assert!(
        rep.mttr_total_s.is_finite() && rep.mttr_total_s > 0.0,
        "finite positive MTTR, got {}",
        rep.mttr_total_s
    );
    assert_eq!(rep.shed, 0, "no request shed");
    assert_eq!(
        rep.slo.availability, 1.0,
        "availability 1.0 through the loss"
    );
    assert_eq!(rep.completed + rep.deadline_missed, rep.requests);
    // The survivor that absorbed the partitions now owns the lost slice.
    let absorbed: usize = rep
        .per_shard
        .iter()
        .filter(|s| s.alive)
        .map(|s| s.tuples)
        .sum();
    assert_eq!(absorbed, cluster.relation().len(), "R fully servable");
}

/// Losing GPU 0 is the hard re-shard direction: the absorbing survivor's
/// slice grows *downward* (its base offset `lo` drops to 0), and a dispatch
/// already in flight on that survivor was computed against the old slice.
/// Delivered global match positions must still be exactly the single-GPU
/// server's — the base must be the dispatch-time offset, not the post-
/// re-shard one.
#[test]
fn losing_gpu_zero_keeps_global_match_positions() {
    let r = relation(5);
    let trace = generate_trace(
        &TraceConfig {
            seed: 23,
            requests: 512,
            offered_load_rps: 8_000.0,
            deadline_s: None,
            ..TraceConfig::default()
        },
        &r,
    );
    let cfg = cluster_cfg(4, true);
    let bits = cfg.cluster.shard_bits(&r).unwrap();
    let serve = ServeConfig {
        partition_bits: Some(bits),
        ..ServeConfig::default()
    };

    let mut gpu = Gpu::new(v100());
    let mut single = Server::new(&mut gpu, serve, r.clone()).unwrap();
    let baseline = single.run(&mut gpu, &trace).unwrap();
    assert_eq!(baseline.report.shed, 0, "baseline must shed nothing");

    let mut cfg = cluster_cfg(4, true);
    cfg.serve = serve;
    let mut cluster = ClusterServer::new(cfg, r).unwrap();
    cluster
        .set_chaos_schedules(ChaosScenario::DeviceLoss.cluster_schedules(40, 4, 0))
        .unwrap();
    let outcome = cluster.run(&trace).unwrap();
    let rep = &outcome.report;
    assert!(!rep.per_shard[0].alive, "GPU 0 lost");
    assert!(rep.reshards >= 1, "loss absorbed by re-sharding");
    assert_eq!(rep.shed, 0);
    assert_eq!(rep.slo.availability, 1.0);
    for (c, b) in outcome.responses.iter().zip(&baseline.responses) {
        assert_eq!(c.request, b.request);
        assert_eq!(
            canonical(&c.matches),
            canonical(&b.matches),
            "request {} global match positions after losing GPU 0",
            c.request
        );
    }
}

/// Replication never shards, so a replicated cluster must construct and
/// serve relations whose key domain is too small to give every GPU a
/// partition — down to a single key — while sharded placement keeps
/// rejecting them.
#[test]
fn replicated_cluster_serves_tiny_domains() {
    for keys in [vec![42u64], vec![7, 8, 9]] {
        let r = Relation::from_keys(keys.clone(), true);
        if keys.len() == 1 {
            // A single-key domain cannot give every GPU a partition.
            assert!(
                ClusterServer::new(cluster_cfg(4, true), r.clone()).is_err(),
                "sharding still rejects a single-key domain"
            );
        }
        let mut cluster = ClusterServer::new(cluster_cfg(4, false), r).unwrap();
        let trace: Vec<TimedRequest> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| TimedRequest {
                at_s: i as f64 * 1e-3,
                request: LookupRequest {
                    tenant: 0,
                    // One hit and one miss per request.
                    keys: vec![k, k + 1_000],
                    deadline: None,
                },
            })
            .collect();
        let outcome = cluster.run(&trace).unwrap();
        assert_eq!(outcome.report.shed, 0);
        assert_eq!(outcome.report.completed, keys.len());
        for (resp, &k) in outcome.responses.iter().zip(&keys) {
            let hits: Vec<u64> = resp.matches.iter().map(|&(key, _)| key).collect();
            assert_eq!(hits, vec![k], "exactly the resident key matches");
        }
    }
}

/// The same targeted loss under replicated placement fails over to a
/// surviving replica instead of re-sharding.
#[test]
fn replicated_cluster_fails_over_on_device_loss() {
    let r = relation(5);
    let trace = generate_trace(
        &TraceConfig {
            seed: 29,
            requests: 512,
            offered_load_rps: 8_000.0,
            deadline_s: None,
            ..TraceConfig::default()
        },
        &r,
    );
    let mut cluster = ClusterServer::new(cluster_cfg(4, false), r).unwrap();
    cluster
        .set_chaos_schedules(ChaosScenario::DeviceLoss.cluster_schedules(41, 4, 2))
        .unwrap();
    let outcome = cluster.run(&trace).unwrap();
    let rep = &outcome.report;
    assert_eq!(rep.alive_gpus, 3);
    assert!(rep.failovers >= 1, "replica absorbed the lost GPU's queue");
    assert_eq!(rep.reshards, 0, "replication never re-shards");
    assert!(rep.mttr_total_s.is_finite() && rep.mttr_total_s > 0.0);
    assert_eq!(rep.shed, 0);
    assert_eq!(rep.slo.availability, 1.0);
    assert!(rep
        .events
        .iter()
        .any(|e| matches!(e, ClusterEvent::FailedOver { gpu: 2, .. })));
}

/// Same seed ⇒ byte-identical serialized report and identical responses,
/// across freshly built clusters — including under chaos.
#[test]
fn cluster_reports_are_byte_deterministic() {
    let r = relation(7);
    let trace = trace_for(&r, 256, 31);
    let run = |chaos: bool| {
        let mut cluster = ClusterServer::new(cluster_cfg(4, true), r.clone()).unwrap();
        if chaos {
            cluster
                .set_chaos_schedules(ChaosScenario::DeviceLoss.cluster_schedules(40, 4, 1))
                .unwrap();
        }
        let outcome = cluster.run(&trace).unwrap();
        (
            serde_json::to_string(&outcome.report).unwrap(),
            render_cluster_openmetrics(&outcome.report),
            outcome.responses,
        )
    };
    for chaos in [false, true] {
        let (a_json, a_text, a_resp) = run(chaos);
        let (b_json, b_text, b_resp) = run(chaos);
        assert_eq!(a_json, b_json, "report bytes (chaos={chaos})");
        assert_eq!(a_text, b_text, "metrics bytes (chaos={chaos})");
        assert_eq!(a_resp.len(), b_resp.len());
        for (x, y) in a_resp.iter().zip(&b_resp) {
            assert_eq!(x.matches, y.matches);
            assert_eq!(x.completed_s, y.completed_s);
        }
    }
}

/// Aggregate throughput scales: more GPUs never slow the cluster down, and
/// 8 GPUs beat 1 by a real margin under saturating load.
#[test]
fn aggregate_throughput_scales_with_gpus() {
    let r = relation(13);
    let trace = generate_trace(
        &TraceConfig {
            seed: 37,
            requests: 384,
            offered_load_rps: 50_000.0,
            deadline_s: None,
            ..TraceConfig::default()
        },
        &r,
    );
    let mut rps = Vec::new();
    for gpus in [1usize, 2, 4, 8] {
        let mut cluster = ClusterServer::new(cluster_cfg(gpus, true), r.clone()).unwrap();
        let outcome = cluster.run(&trace).unwrap();
        assert_eq!(outcome.report.shed, 0);
        rps.push(outcome.report.completed_rps);
    }
    for w in rps.windows(2) {
        assert!(
            w[1] >= w[0] * 0.99,
            "throughput must not regress with more GPUs: {rps:?}"
        );
    }
    assert!(
        rps[3] > rps[0] * 1.5,
        "8 GPUs should clearly beat 1 under saturating load: {rps:?}"
    );
}
