//! Tenant-parallel determinism acceptance: the merged outcome — responses,
//! per-lane reports, span trees, and OpenMetrics text — must serialize
//! byte-identically for any worker-thread count, calm and under chaos,
//! for all three lane hosts (`Server`, `TunedServer`, `ClusterServer`).
//! A lane must also match a standalone server fed the same sub-trace, so
//! the parallel mode adds scheduling, never semantics.

use windex_serve::prelude::*;
use windex_sim::{ChaosKind, ChaosSchedule};

fn v100() -> GpuSpec {
    GpuSpec::v100_nvlink2(Scale::PAPER)
}

fn relation(seed: u64) -> Relation {
    Relation::unique_sorted(1 << 14, KeyDistribution::SparseUniform, seed)
}

fn trace_for(r: &Relation, requests: usize, tenants: u32, seed: u64) -> Vec<TimedRequest> {
    generate_trace(
        &TraceConfig {
            seed,
            requests,
            tenants,
            min_keys: 32,
            max_keys: 256,
            offered_load_rps: 4000.0,
            ..TraceConfig::default()
        },
        r,
    )
}

/// A device-loss window plus a link flap later in the trace: exercises
/// recovery (index rebuild) and the retry/backoff path on every lane.
fn chaos() -> ChaosSchedule {
    ChaosSchedule::seeded(99)
        .with_window(ChaosKind::DeviceLoss, 0.002, 0.004)
        .with_window(ChaosKind::LinkFlap, 0.008, 0.009)
}

#[test]
fn server_outcome_is_byte_identical_across_thread_counts() {
    let r = relation(11);
    let trace = trace_for(&r, 96, 4, 5);
    let run = |threads: usize| {
        let out = serve_tenant_parallel(&v100(), ServeConfig::default(), &r, &trace, threads, None)
            .unwrap();
        (
            serde_json::to_string(&out).unwrap(),
            render_parallel_openmetrics(&out),
        )
    };
    let (json1, om1) = run(1);
    for threads in [2, 4, 7] {
        let (json_n, om_n) = run(threads);
        assert_eq!(json1, json_n, "outcome diverged at {threads} threads");
        assert_eq!(om1, om_n, "OpenMetrics diverged at {threads} threads");
    }
    assert!(om1.ends_with("# EOF\n"));
}

#[test]
fn server_outcome_is_byte_identical_under_chaos() {
    let r = relation(13);
    let trace = trace_for(&r, 96, 4, 6);
    let run = |threads: usize| {
        let out = serve_tenant_parallel(
            &v100(),
            ServeConfig::default(),
            &r,
            &trace,
            threads,
            Some(&chaos()),
        )
        .unwrap();
        serde_json::to_string(&out).unwrap()
    };
    let json1 = run(1);
    assert_eq!(json1, run(4), "chaos outcome diverged at 4 threads");
    // The schedule actually bit: some lane recovered a device loss or
    // retried a dispatch (events serialize into the lane reports).
    assert!(
        json1.contains("DeviceLossRecovered")
            || json1.contains("DispatchRetried")
            || json1.contains("BatchAbandoned"),
        "chaos schedule produced no observable fault handling"
    );
}

#[test]
fn lane_report_matches_standalone_server_on_the_subtrace() {
    let r = relation(17);
    let trace = trace_for(&r, 64, 3, 8);
    let out = serve_tenant_parallel(&v100(), ServeConfig::default(), &r, &trace, 4, None).unwrap();
    for lane in &out.lanes {
        let sub: Vec<TimedRequest> = trace
            .iter()
            .filter(|t| t.request.tenant == lane.tenant)
            .cloned()
            .collect();
        let mut gpu = Gpu::new(v100());
        let mut server = Server::new(&mut gpu, ServeConfig::default(), r.clone()).unwrap();
        let standalone = server.run(&mut gpu, &sub).unwrap();
        assert_eq!(
            serde_json::to_string(&lane.report).unwrap(),
            serde_json::to_string(&standalone.report).unwrap(),
            "lane for tenant {} diverged from a standalone server",
            lane.tenant
        );
    }
}

#[test]
fn tuned_outcome_is_byte_identical_across_thread_counts_calm_and_chaotic() {
    let tenants: Vec<(TenantId, Relation)> =
        vec![(0, relation(21)), (1, relation(22)), (2, relation(23))];
    let merged = merge_traces(
        tenants
            .iter()
            .map(|(id, r)| {
                generate_tenant_trace(
                    &TraceConfig {
                        seed: 31 + *id as u64,
                        requests: 24,
                        min_keys: 64,
                        max_keys: 256,
                        offered_load_rps: 1000.0,
                        ..TraceConfig::default()
                    },
                    *id,
                    r,
                )
            })
            .collect(),
    );
    for schedule in [None, Some(chaos())] {
        let run = |threads: usize| {
            let out = serve_tuned_tenant_parallel(
                &v100(),
                TunedConfig::default(),
                &tenants,
                &merged,
                threads,
                schedule.as_ref(),
            )
            .unwrap();
            serde_json::to_string(&out).unwrap()
        };
        let json1 = run(1);
        assert_eq!(
            json1,
            run(4),
            "tuned outcome diverged at 4 threads (chaos={})",
            schedule.is_some()
        );
        assert_eq!(json1, run(3));
    }
}

#[test]
fn cluster_outcome_is_byte_identical_across_thread_counts() {
    let r = relation(41);
    let trace = trace_for(&r, 48, 3, 9);
    let cfg = ClusterConfig {
        serve: ServeConfig::default(),
        cluster: ClusterSpec::sharded(2, v100(), InterconnectSpec::nvlink4_peer()),
    };
    let run = |threads: usize| {
        let out = serve_cluster_tenant_parallel(&cfg, &r, &trace, threads, None).unwrap();
        serde_json::to_string(&out).unwrap()
    };
    let json1 = run(1);
    assert_eq!(json1, run(4), "cluster outcome diverged at 4 threads");
}

#[test]
fn summary_buckets_are_disjoint_and_total() {
    let r = relation(51);
    let trace = trace_for(&r, 80, 5, 10);
    let out = serve_tenant_parallel(&v100(), ServeConfig::default(), &r, &trace, 4, None).unwrap();
    let s = &out.summary;
    assert_eq!(s.lanes, out.lanes.len());
    assert_eq!(s.requests, trace.len());
    assert_eq!(s.completed + s.shed + s.deadline_missed, trace.len());
    assert_eq!(
        s.result_tuples,
        out.responses.iter().map(|r| r.matches.len()).sum::<usize>()
    );
    let lane_makespan = out
        .lanes
        .iter()
        .map(|l| l.report.virtual_makespan_s)
        .fold(0.0f64, f64::max);
    assert_eq!(s.virtual_makespan_s, lane_makespan);
}
