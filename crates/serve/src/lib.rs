//! # windex-serve — deterministic multi-tenant serving with cross-query window batching
//!
//! The paper's windowed operator (§5) restores TLB locality by partitioning
//! probe keys *inside tumbling windows*. A serving workload — many tenants
//! issuing small index lookups — leaves those windows nearly empty if each
//! request executes alone: the fixed window costs (partition + probe kernel
//! launches, per-window transfers) are paid per request instead of per
//! window. This crate adds the layer the paper stops short of: a
//! query server that **coalesces keys from concurrent requests into shared
//! windows**, so the batching amortizes exactly the costs the windowed
//! operator introduces.
//!
//! Everything runs in *virtual time*: the only clock is the cost model's
//! estimate of each dispatched window, so a served trace is a pure function
//! of (seed, configuration) — same inputs, byte-identical responses and
//! reports. That makes latency–throughput studies reproducible down to the
//! serialized report.
//!
//! Pieces:
//!
//! - [`LookupRequest`] / [`LookupResponse`] — the request model
//!   ([`request`]);
//! - [`generate_trace`] — seeded open-loop multi-tenant traces ([`trace`]);
//! - [`DrrScheduler`] — deficit round-robin tenant fairness ([`sched`]);
//! - [`MicroBatcher`] — rid-tagged cross-query batching with exact
//!   demultiplexing ([`batch`]);
//! - [`Server`] — the event loop: admission control, batching policies,
//!   the degradation ladder under memory pressure, and the
//!   [`ServerReport`] with virtual-time tail latencies ([`server`],
//!   [`report`]);
//! - [`serve_tenant_parallel`] (and the tuned/cluster variants) — the
//!   tenant-parallel axis: independent tenants on independent `Gpu`
//!   lanes, executed by a work-stealing pool, merged in fixed order so
//!   the outcome is byte-identical for any thread count ([`parallel`]);
//! - [`ClusterServer`] — the multi-GPU layer: [`ClusterSpec`] topologies,
//!   radix-sharded or replicated placement of R, shard-aware routing with
//!   deterministic fan-out/merge over a priced inter-GPU link, and
//!   failover/re-shard recovery from device loss ([`cluster`]).
//!
//! ```
//! use windex_serve::prelude::*;
//!
//! let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
//! let r = Relation::unique_sorted(1 << 14, KeyDistribution::SparseUniform, 1);
//! let trace = generate_trace(
//!     &TraceConfig { requests: 64, ..TraceConfig::default() },
//!     &r,
//! );
//! let mut server = Server::new(&mut gpu, ServeConfig::default(), r).unwrap();
//! let outcome = server.run(&mut gpu, &trace).unwrap();
//! assert_eq!(outcome.responses.len(), 64);
//! assert!(outcome.report.completed > 0);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cluster;
pub mod metrics;
pub mod parallel;
pub mod report;
pub mod request;
pub mod resilience;
pub mod sched;
pub mod server;
pub mod span;
pub mod trace;
pub mod tuned;

pub use batch::MicroBatcher;
pub use cluster::{
    ClusterConfig, ClusterEvent, ClusterOutcome, ClusterReport, ClusterServer, ClusterSpec,
    Placement, ShardLoad, ShardRouter,
};
pub use metrics::{
    render_cluster_openmetrics, render_openmetrics, render_parallel_openmetrics,
    render_tuner_openmetrics,
};
pub use parallel::{
    serve_cluster_tenant_parallel, serve_tenant_parallel, serve_tuned_tenant_parallel,
    shard_by_tenant, ParallelClusterOutcome, ParallelServeOutcome, ParallelSummary,
    ParallelTunedOutcome, TenantLane, TenantShard,
};
pub use report::{BatchSpan, LatencyHistogram, LatencyStats, ServeEvent, ServerReport, TenantLoad};
pub use request::{LookupRequest, LookupResponse, RequestOutcome, TenantId};
pub use resilience::{
    jittered_backoff_s, BreakerConfig, BreakerReport, BreakerState, CircuitBreaker,
    ResilienceConfig, RetryBudget, RetryConfig, RetryReport, SloConfig, SloReport, SloTracker,
    TenantBreaker,
};
pub use sched::DrrScheduler;
pub use server::{BatchPolicy, ServeConfig, ServeOutcome, Server};
pub use span::{
    sample_tail, trace_id_for, QueryCard, RequestContext, RequestTrace, ShardLeg, Span,
    StageBreakdown, StageLatencyStats, TailConfig, TailReport,
};
pub use trace::{generate_tenant_trace, generate_trace, merge_traces, TimedRequest, TraceConfig};
pub use tuned::{TunedConfig, TunedReport, TunedServeEvent, TunedServer, TunedTenantReport};

/// One-stop imports for downstream users.
pub mod prelude {
    pub use crate::batch::MicroBatcher;
    pub use crate::cluster::{
        ClusterConfig, ClusterEvent, ClusterOutcome, ClusterReport, ClusterServer, ClusterSpec,
        Placement, ShardLoad, ShardRouter,
    };
    pub use crate::metrics::{
        render_cluster_openmetrics, render_openmetrics, render_parallel_openmetrics,
        render_tuner_openmetrics,
    };
    pub use crate::parallel::{
        serve_cluster_tenant_parallel, serve_tenant_parallel, serve_tuned_tenant_parallel,
        ParallelClusterOutcome, ParallelServeOutcome, ParallelSummary, ParallelTunedOutcome,
        TenantLane, TenantShard,
    };
    pub use crate::report::{
        BatchSpan, LatencyHistogram, LatencyStats, ServeEvent, ServerReport, TenantLoad,
    };
    pub use crate::request::{LookupRequest, LookupResponse, RequestOutcome, TenantId};
    pub use crate::resilience::{
        BreakerConfig, BreakerReport, BreakerState, ResilienceConfig, RetryConfig, RetryReport,
        SloConfig, SloReport,
    };
    pub use crate::sched::DrrScheduler;
    pub use crate::server::{BatchPolicy, ServeConfig, ServeOutcome, Server};
    pub use crate::span::{
        sample_tail, QueryCard, RequestTrace, ShardLeg, Span, StageBreakdown, StageLatencyStats,
        TailConfig, TailReport,
    };
    pub use crate::trace::{
        generate_tenant_trace, generate_trace, merge_traces, TimedRequest, TraceConfig,
    };
    pub use crate::tuned::{
        TunedConfig, TunedReport, TunedServeEvent, TunedServer, TunedTenantReport,
    };
    pub use windex_index::IndexKind;
    pub use windex_sim::{ChaosSchedule, Gpu, GpuSpec, InterconnectSpec, MemLocation, Scale};
    pub use windex_workload::{KeyDistribution, Relation};
}
