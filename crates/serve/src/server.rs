//! The deterministic serving event loop.
//!
//! [`Server`] owns one indexed relation, one shared
//! [`StreamingWindowJoin`](windex_core::streams::StreamingWindowJoin), and
//! one result sink, and serves a seeded trace of multi-tenant lookup
//! requests entirely in *virtual time*: the only clock is the cost model's
//! estimate of each dispatched window, so the same trace and configuration
//! always produce byte-identical responses and reports — no threads, no
//! wall clock, no nondeterminism.
//!
//! # The loop
//!
//! 1. **Admit** every trace arrival due at the current virtual instant.
//!    Admission control sheds a request outright when accepting it would
//!    push the queued-key backlog past the backpressure bound.
//! 2. **Schedule**: deficit round-robin releases queued requests into the
//!    micro-batcher until the shared window is covered (or, under
//!    [`BatchPolicy::PerRequest`], exactly one request is staged).
//! 3. **Dispatch** when the window is full, the oldest staged key has
//!    waited `max_delay_s`, or the policy is per-request: the batch flows
//!    through the shared operator, virtual time advances by the cost
//!    model's estimate, and matches demultiplex back to their requests via
//!    the rid map.
//! 4. Otherwise **advance** the clock to the next arrival or flush
//!    deadline.
//!
//! Device-memory pressure mid-dispatch walks the serving analogue of the
//! query engine's degradation ladder — halve the shared window (down to
//! [`MIN_WINDOW_TUPLES`](windex_core::session::MIN_WINDOW_TUPLES)), spill
//! the sink to CPU memory, and finally shed the batch — so an overloaded
//! or faulty server sheds load instead of failing.

use crate::batch::MicroBatcher;
use crate::report::{
    BatchSpan, LatencyHistogram, LatencyStats, ServeEvent, ServerReport, TenantLoad,
};
use crate::request::{LookupResponse, RequestOutcome, TenantId};
use crate::resilience::{
    jittered_backoff_s, BreakerReport, CircuitBreaker, ResilienceConfig, RetryBudget, RetryReport,
    SloTracker, TenantBreaker,
};
use crate::sched::DrrScheduler;
use crate::span::{sample_tail, RequestContext, RequestTrace, StageLatencyStats, TailConfig};
use crate::trace::TimedRequest;
use std::collections::BTreeMap;
use std::rc::Rc;
use windex_core::query::QueryError;
use windex_core::session::{MAX_DEVICE_LOSS_RECOVERIES, MIN_WINDOW_TUPLES};
use windex_core::strategy::{BuiltIndex, IndexConfigs};
use windex_core::streams::StreamingWindowJoin;
use windex_core::window::WindowConfig;
use windex_core::{WindexError, WindowStats};
use windex_index::IndexKind;
use windex_join::{PartitionBits, ResultSink};
use windex_sim::{Buffer, CostModel, Gpu, MemLocation, PhaseRecorder};
use windex_workload::Relation;

/// When staged keys are dispatched through the shared operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// Cross-query batching (the point of the serving layer): keys from
    /// concurrent tenants share windows. A window dispatches when it fills
    /// or when its oldest key has waited `max_delay_s`, whichever comes
    /// first.
    Shared {
        /// Longest a staged key may wait for the window to fill, in
        /// virtual seconds.
        max_delay_s: f64,
    },
    /// The baseline the experiments compare against: every request is
    /// dispatched alone, immediately, through its own (mostly empty)
    /// window.
    PerRequest,
}

impl BatchPolicy {
    /// Stable label for reports.
    pub fn label(&self) -> String {
        match self {
            BatchPolicy::Shared { max_delay_s } => {
                format!("shared(max_delay={:.0}us)", max_delay_s * 1e6)
            }
            BatchPolicy::PerRequest => "per-request".to_string(),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Index probed by the shared operator.
    pub index: IndexKind,
    /// Shared-window capacity in keys.
    pub window_tuples: usize,
    /// Dispatch policy.
    pub policy: BatchPolicy,
    /// DRR quantum: key-credits granted per tenant visit.
    pub quantum_keys: usize,
    /// Backpressure bound: a request is shed at admission when queued +
    /// staged keys would exceed this.
    pub max_pending_keys: usize,
    /// Where the (per-dispatch) result sink lives. GPU placement falls
    /// back to CPU under memory pressure, recorded as
    /// [`ServeEvent::SinkSpilledToCpu`].
    pub result_location: MemLocation,
    /// Partition bit range; `None` applies the §4.2 selection rule.
    pub partition_bits: Option<PartitionBits>,
    /// Resilience knobs: retry budget, per-tenant circuit breaker, SLO
    /// latency budget.
    pub resilience: ResilienceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            index: IndexKind::RadixSpline,
            window_tuples: 1024,
            policy: BatchPolicy::Shared {
                max_delay_s: 200e-6,
            },
            quantum_keys: 256,
            max_pending_keys: 1 << 16,
            result_location: MemLocation::Gpu,
            partition_bits: None,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// A served trace: every response plus the aggregate report.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// One response per trace request, ordered by request id (arrival
    /// order).
    pub responses: Vec<LookupResponse>,
    /// Aggregate virtual-time metrics.
    pub report: ServerReport,
}

/// A request admitted but not yet fully answered.
#[derive(Debug)]
struct InFlight {
    tenant: TenantId,
    keys: Vec<u64>,
    deadline: Option<f64>,
    submitted_s: f64,
    /// Keys not yet probed through a dispatched window.
    remaining: usize,
    matches: Vec<(u64, u64)>,
    /// Span-tree builder following the request through the lifecycle.
    ctx: RequestContext,
}

/// The deterministic multi-tenant query server.
#[derive(Debug)]
pub struct Server {
    cfg: ServeConfig,
    r: Relation,
    /// The staged host-resident column — the checkpoint the index is
    /// rebuilt from after a device loss.
    col: Rc<Buffer<u64>>,
    index: BuiltIndex,
    bits: PartitionBits,
    min_key: u64,
    /// Current shared-window capacity (≤ configured after degradation;
    /// degradation persists across traces, like a real server's state).
    window_tuples: usize,
    op: StreamingWindowJoin,
    sink: ResultSink,
    sink_loc: MemLocation,
    cost: CostModel,
    /// Degradation applied during construction (e.g. the sink never fit on
    /// the device), replayed at the head of every report.
    setup_events: Vec<ServeEvent>,
    /// Dispatch-level retry token pool (persists across traces, like the
    /// window degradation).
    retry_budget: RetryBudget,
    /// Per-tenant circuit breakers, keyed by tenant id.
    breakers: BTreeMap<TenantId, CircuitBreaker>,
    /// Ordinal of the next backoff-jitter draw (resets per trace so runs
    /// replay identically).
    retry_seq: u64,
    /// Backoff charged to the virtual clock this trace, in seconds.
    run_backoff_s: f64,
}

impl Server {
    /// Build a server over the (sorted, duplicate-free) relation `r`:
    /// stages the column, builds the index, and allocates the shared
    /// operator and sink. A sink that cannot fit in device memory falls
    /// back to CPU placement instead of failing.
    pub fn new(gpu: &mut Gpu, cfg: ServeConfig, r: Relation) -> Result<Self, WindexError> {
        if cfg.window_tuples == 0 {
            return Err(WindexError::InvalidConfig(
                "serving window must hold at least one key",
            ));
        }
        if cfg.quantum_keys == 0 {
            return Err(WindexError::InvalidConfig("DRR quantum must be positive"));
        }
        if cfg.max_pending_keys == 0 {
            return Err(WindexError::InvalidConfig(
                "backpressure bound must admit at least one key",
            ));
        }
        if let BatchPolicy::Shared { max_delay_s } = cfg.policy {
            if !max_delay_s.is_finite() || max_delay_s <= 0.0 {
                return Err(WindexError::InvalidConfig(
                    "shared-batch max delay must be positive",
                ));
            }
        }
        if !r.is_sorted_unique() {
            return Err(QueryError::IndexedRelationNotSorted.into());
        }
        let col = Rc::new(gpu.alloc_host_shared(r.keys_shared()));
        let index = BuiltIndex::build(gpu, cfg.index, &col, &IndexConfigs::default());
        let bits = cfg.partition_bits.unwrap_or_else(|| {
            let domain = r.max_key().unwrap_or(0) - r.min_key().unwrap_or(0);
            PartitionBits::select(domain, r.len() as u64, gpu.spec(), 11)
        });
        let min_key = r.min_key().unwrap_or(0);
        let op = StreamingWindowJoin::new(
            gpu,
            WindowConfig {
                window_tuples: cfg.window_tuples,
                bits,
                min_key,
            },
        )?;
        let mut setup_events = Vec::new();
        let mut sink_loc = cfg.result_location;
        let sink = match ResultSink::with_capacity(gpu, cfg.window_tuples, sink_loc) {
            Ok(s) => s,
            Err(e) if WindexError::from(e.clone()).is_capacity() => {
                setup_events.push(ServeEvent::SinkSpilledToCpu);
                sink_loc = MemLocation::Cpu;
                ResultSink::with_capacity(gpu, cfg.window_tuples, sink_loc)?
            }
            Err(e) => return Err(e.into()),
        };
        let cost = CostModel::new(gpu.spec());
        Ok(Server {
            window_tuples: cfg.window_tuples,
            retry_budget: RetryBudget::new(&cfg.resilience.retry),
            cfg,
            r,
            col,
            index,
            bits,
            min_key,
            op,
            sink,
            sink_loc,
            cost,
            setup_events,
            breakers: BTreeMap::new(),
            retry_seq: 0,
            run_backoff_s: 0.0,
        })
    }

    /// The served relation.
    pub fn relation(&self) -> &Relation {
        &self.r
    }

    /// Current shared-window capacity (shrinks under memory pressure).
    pub fn effective_window_tuples(&self) -> usize {
        self.window_tuples
    }

    /// Serve a trace to completion and return every response plus the
    /// aggregate report. Arrivals must be sorted by time (as
    /// [`generate_trace`](crate::trace::generate_trace) produces them).
    pub fn run(
        &mut self,
        gpu: &mut Gpu,
        trace: &[TimedRequest],
    ) -> Result<ServeOutcome, WindexError> {
        debug_assert!(
            trace.windows(2).all(|w| w[0].at_s <= w[1].at_s),
            "trace must be sorted by arrival time"
        );
        let run_start = gpu.snapshot();
        // A fresh recorder per trace, anchored at the run-start snapshot so
        // the per-phase breakdown decomposes exactly the report's counter
        // delta. The operator owns it (it marks partition/lookup spans in
        // its flushes) and hands it back across degradation recreations.
        self.op.set_phase_recorder(Some(PhaseRecorder::start(gpu)));
        let mut batches: Vec<BatchSpan> = Vec::new();
        let mut clock = 0.0f64;
        let mut sched = DrrScheduler::new(self.cfg.quantum_keys)?;
        let mut batcher = MicroBatcher::new();
        let mut inflight: BTreeMap<u64, InFlight> = BTreeMap::new();
        let mut responses: Vec<LookupResponse> = Vec::with_capacity(trace.len());
        let mut traces: Vec<RequestTrace> = Vec::with_capacity(trace.len());
        let mut events = self.setup_events.clone();
        let mut next_arrival = 0usize;
        let mut max_queue_depth = 0usize;
        let mut keys_probed = 0usize;
        let mut windows_closed = 0usize;
        let mut matches_total = 0usize;
        let mut device_losses = 0usize;
        let retry_spent0 = self.retry_budget.spent();
        let retry_denied0 = self.retry_budget.denied();
        self.retry_seq = 0;
        self.run_backoff_s = 0.0;
        let breaker_cfg = self.cfg.resilience.breaker;
        // Each run restarts the virtual clock, so breaker timers from a
        // previous trace belong to a stale epoch; close them (counters
        // stay cumulative across the server's lifetime).
        for brk in self.breakers.values_mut() {
            brk.reset_for_epoch();
        }
        self.op.reset();
        self.sink.clear();
        // The serving clock IS the chaos clock: every trace starts at
        // virtual t = 0 so fault windows land on serving time.
        gpu.set_virtual_time(0.0);

        loop {
            // 1. Admit every arrival due now.
            while next_arrival < trace.len() && trace[next_arrival].at_s <= clock {
                let t = &trace[next_arrival];
                let id = next_arrival as u64;
                next_arrival += 1;
                let n = t.request.keys.len();
                if n == 0 {
                    // An empty request has nothing to probe: answer it at
                    // admission. Parking it in flight would hang the trace —
                    // no batch ever carries its (nonexistent) last key, so
                    // nothing would ever complete it.
                    let latency = clock - t.at_s;
                    let outcome = match t.request.deadline {
                        Some(d) if latency > d => RequestOutcome::DeadlineMissed,
                        _ => RequestOutcome::Completed,
                    };
                    responses.push(LookupResponse {
                        request: id,
                        tenant: t.request.tenant,
                        outcome,
                        matches: Vec::new(),
                        submitted_s: t.at_s,
                        completed_s: clock,
                        latency_s: latency,
                    });
                    traces.push(
                        RequestContext::new(id, t.request.tenant, t.at_s, 0)
                            .finish(clock, outcome, 0),
                    );
                    continue;
                }
                // Per-tenant circuit breaker: an open breaker fast-rejects
                // the arrival before backpressure is even consulted.
                let brk = self
                    .breakers
                    .entry(t.request.tenant)
                    .or_insert_with(|| CircuitBreaker::new(breaker_cfg));
                if !brk.allow(clock) {
                    events.push(ServeEvent::CircuitShed {
                        tenant: t.request.tenant,
                        request: id,
                    });
                    responses.push(shed_response(id, &t.request.tenant, t.at_s, clock));
                    let mut ctx = RequestContext::new(id, t.request.tenant, t.at_s, n);
                    ctx.fast_rejected();
                    traces.push(ctx.finish(clock, RequestOutcome::Shed, 0));
                    continue;
                }
                let backlog = sched.queued_keys() + batcher.pending();
                if backlog + n > self.cfg.max_pending_keys {
                    // The request passed the breaker but never reached the
                    // device; a half-open probe slot must not stay taken.
                    if let Some(brk) = self.breakers.get_mut(&t.request.tenant) {
                        brk.release_probe();
                    }
                    events.push(ServeEvent::LoadShed {
                        tenant: t.request.tenant,
                        request: id,
                        keys: n,
                    });
                    responses.push(shed_response(id, &t.request.tenant, t.at_s, clock));
                    traces.push(RequestContext::new(id, t.request.tenant, t.at_s, n).finish(
                        clock,
                        RequestOutcome::Shed,
                        0,
                    ));
                    continue;
                }
                inflight.insert(
                    id,
                    InFlight {
                        tenant: t.request.tenant,
                        keys: t.request.keys.clone(),
                        deadline: t.request.deadline,
                        submitted_s: t.at_s,
                        remaining: n,
                        matches: Vec::new(),
                        ctx: RequestContext::new(id, t.request.tenant, t.at_s, n),
                    },
                );
                sched.enqueue(t.request.tenant, id, n);
                max_queue_depth = max_queue_depth.max(sched.queued_keys() + batcher.pending());
            }

            // 2. Release queued requests into the batcher under DRR order.
            match self.cfg.policy {
                BatchPolicy::Shared { .. } => {
                    while batcher.pending() < self.window_tuples {
                        match sched.dequeue()? {
                            Some(id) => stage(&mut batcher, &mut inflight, id, clock)?,
                            None => break,
                        }
                    }
                }
                BatchPolicy::PerRequest => {
                    if batcher.pending() == 0 {
                        if let Some(id) = sched.dequeue()? {
                            stage(&mut batcher, &mut inflight, id, clock)?;
                        }
                    }
                }
            }

            // 3. Dispatch if the policy says so.
            let dispatch_now = match self.cfg.policy {
                BatchPolicy::PerRequest => batcher.pending() > 0,
                BatchPolicy::Shared { max_delay_s } => {
                    batcher.pending() >= self.window_tuples
                        || batcher
                            .oldest_since()
                            .is_some_and(|since| since + max_delay_s <= clock)
                }
            };
            if dispatch_now {
                let take = match self.cfg.policy {
                    // One request per dispatch, however many keys it has.
                    BatchPolicy::PerRequest => batcher.pending(),
                    BatchPolicy::Shared { .. } => self.window_tuples.min(batcher.pending()),
                };
                let batch = batcher.take(take, clock);
                keys_probed += batch.len();
                self.dispatch(
                    gpu,
                    &batch,
                    &mut batcher,
                    &mut inflight,
                    &mut responses,
                    &mut traces,
                    &mut events,
                    &mut clock,
                    &mut windows_closed,
                    &mut matches_total,
                    &mut batches,
                    &mut device_losses,
                )?;
                continue;
            }

            // 4. Advance the clock to the next event, or finish.
            let next_at = (next_arrival < trace.len()).then(|| trace[next_arrival].at_s);
            let flush_due = match self.cfg.policy {
                BatchPolicy::Shared { max_delay_s } => {
                    batcher.oldest_since().map(|s| s + max_delay_s)
                }
                BatchPolicy::PerRequest => None,
            };
            match (next_at, flush_due) {
                (Some(a), Some(f)) => clock = clock.max(a.min(f)),
                (Some(a), None) => clock = clock.max(a),
                (None, Some(f)) => clock = clock.max(f),
                (None, None) => {
                    // No arrivals and no flush timer: queued work would
                    // have been staged (and a timer set) in step 2, so the
                    // trace is fully answered.
                    debug_assert!(
                        sched.is_empty() && batcher.pending() == 0,
                        "event loop stalled with queued work"
                    );
                    break;
                }
            }
            // Keep the chaos clock in lockstep with the serving clock so
            // fault windows open and close on serving time.
            gpu.set_virtual_time(clock);
        }
        debug_assert!(inflight.is_empty(), "all admitted requests answered");

        responses.sort_by_key(|r| r.request);
        traces.sort_by_key(|t| t.request);
        debug_assert_eq!(traces.len(), responses.len(), "one trace per response");
        let stages = StageLatencyStats::from_traces(&traces);
        let tail = sample_tail(&traces, &TailConfig::default());
        let counters = gpu.snapshot() - run_start;
        let phases = self
            .op
            .take_phase_recorder()
            .map(|rec| rec.finish(gpu))
            .unwrap_or_default();
        let completed = responses
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Completed)
            .count();
        let shed = responses
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Shed)
            .count();
        let deadline_missed = responses
            .iter()
            .filter(|r| r.outcome == RequestOutcome::DeadlineMissed)
            .count();
        let samples: Vec<f64> = responses
            .iter()
            .filter(|r| r.outcome != RequestOutcome::Shed)
            .map(|r| r.latency_s)
            .collect();
        let latency_hist = LatencyHistogram::from_samples(&samples);
        let latency = LatencyStats::from_samples(samples);
        // `responses` is sorted by request id (= arrival ordinal), so it
        // zips 1:1 with the trace; keys come from the trace side because a
        // shed response no longer carries them.
        let per_tenant: Vec<TenantLoad> = {
            let mut by_tenant: BTreeMap<TenantId, TenantLoad> = BTreeMap::new();
            for (t, resp) in trace.iter().zip(&responses) {
                let e = by_tenant
                    .entry(t.request.tenant)
                    .or_insert_with(|| TenantLoad {
                        tenant: t.request.tenant,
                        ..TenantLoad::default()
                    });
                e.requests += 1;
                e.keys += t.request.keys.len();
                e.matches += resp.matches.len();
                match resp.outcome {
                    RequestOutcome::Completed => e.completed += 1,
                    RequestOutcome::Shed => e.shed += 1,
                    RequestOutcome::DeadlineMissed => e.deadline_missed += 1,
                }
            }
            by_tenant.into_values().collect()
        };
        let makespan = clock;
        let mut slo_tracker = SloTracker::new(&self.cfg.resilience.slo);
        for r in &responses {
            slo_tracker.observe(r.outcome != RequestOutcome::Shed, r.latency_s);
        }
        let slo = slo_tracker.finish(makespan);
        let breaker = BreakerReport {
            opens: self.breakers.values().map(CircuitBreaker::opens).sum(),
            fast_rejects: self
                .breakers
                .values()
                .map(CircuitBreaker::fast_rejects)
                .sum(),
            half_open_probes: self
                .breakers
                .values()
                .map(CircuitBreaker::half_open_probes)
                .sum(),
            // BTreeMap iteration is ascending by tenant id, fixing the
            // exposition order.
            tenants: self
                .breakers
                .iter()
                .map(|(t, b)| TenantBreaker {
                    tenant: *t,
                    state: b.state(),
                    opens: b.opens(),
                    fast_rejects: b.fast_rejects(),
                })
                .collect(),
        };
        let retry = RetryReport {
            attempts: self.retry_budget.spent() - retry_spent0,
            denied: self.retry_budget.denied() - retry_denied0,
            tokens_remaining: self.retry_budget.tokens(),
            backoff_s: self.run_backoff_s,
        };
        let report = ServerReport {
            policy: self.cfg.policy.label(),
            index: self.cfg.index,
            tenants: {
                let mut t: Vec<TenantId> = trace.iter().map(|t| t.request.tenant).collect();
                t.sort_unstable();
                t.dedup();
                t.len()
            },
            requests: trace.len(),
            completed,
            shed,
            deadline_missed,
            result_tuples: responses.iter().map(|r| r.matches.len()).sum(),
            keys_probed,
            window: WindowStats {
                windows: windows_closed,
                matches: matches_total,
            },
            mean_batch_keys: if windows_closed > 0 {
                keys_probed as f64 / windows_closed as f64
            } else {
                0.0
            },
            configured_window_tuples: self.cfg.window_tuples,
            effective_window_tuples: self.window_tuples,
            virtual_makespan_s: makespan,
            completed_rps: if makespan > 0.0 {
                completed as f64 / makespan
            } else {
                0.0
            },
            keys_per_second: if makespan > 0.0 {
                keys_probed as f64 / makespan
            } else {
                0.0
            },
            latency,
            latency_hist,
            per_tenant,
            max_queue_depth_keys: max_queue_depth,
            events,
            retries: counters.retries,
            counters,
            phases,
            batches,
            slo,
            breaker,
            retry,
            stages,
            traces,
            tail,
        };
        Ok(ServeOutcome { responses, report })
    }

    /// Push one batch through the shared operator, advancing virtual time
    /// by the cost model's estimate of the dispatch. Capacity pressure
    /// degrades (shrink window → spill sink → shed the batch); a transient
    /// fault retries under the budget with jittered backoff on the virtual
    /// clock; a device loss rebuilds index, operator, and sink after the
    /// outage clears; any error that survives all of that sheds the
    /// batch's requests rather than failing the server.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        gpu: &mut Gpu,
        batch: &[(u64, u64)],
        batcher: &mut MicroBatcher,
        inflight: &mut BTreeMap<u64, InFlight>,
        responses: &mut Vec<LookupResponse>,
        traces: &mut Vec<RequestTrace>,
        events: &mut Vec<ServeEvent>,
        clock: &mut f64,
        windows_closed: &mut usize,
        matches_total: &mut usize,
        batches: &mut Vec<BatchSpan>,
        device_losses: &mut usize,
    ) -> Result<(), WindexError> {
        // One timeline entry per dispatch, accumulating every attempt's
        // counter delta and virtual time (a batch retried after degradation
        // is still one dispatch).
        let mut span = BatchSpan {
            batch: batches.len(),
            at_s: *clock,
            keys: batch.len(),
            ..BatchSpan::default()
        };
        // The distinct requests riding this dispatch, in batch order: their
        // first dispatch milestone is now; retries below delay all of them.
        let mut members: Vec<u64> = Vec::new();
        for &(_, rid) in batch {
            let (req, _) = batcher.resolve(rid);
            if !members.contains(&req) {
                members.push(req);
            }
        }
        for req in &members {
            if let Some(inf) = inflight.get_mut(req) {
                inf.ctx.dispatched(*clock);
            }
        }
        let mut attempts = 0u32;
        loop {
            // A failed attempt leaves staged keys in the operator; start
            // each attempt from a clean window (the sink was already rolled
            // back by the operator itself).
            self.op.reset();
            let before = gpu.snapshot();
            let attempt = self
                .op
                .push(gpu, self.index.as_dyn(), batch, &mut self.sink)
                .and_then(|()| self.op.flush_now(gpu, self.index.as_dyn(), &mut self.sink));
            let delta = gpu.snapshot() - before;
            let est_s = self.cost.estimate(&delta, false).total_s;
            // Failed attempts consumed real device time too; virtual time
            // moves forward either way, keeping the clock monotone.
            *clock += est_s;
            gpu.set_virtual_time(*clock);
            span.counters = span.counters + delta;
            span.est_s += est_s;
            match attempt {
                Ok(_) => {
                    let stats = self.op.stats();
                    *windows_closed += stats.windows;
                    *matches_total += stats.matches;
                    span.windows = stats.windows;
                    span.completed = true;
                    batches.push(span);
                    self.retry_budget.on_success();
                    self.complete(batch, batcher, inflight, responses, traces, events, *clock)?;
                    return Ok(());
                }
                Err(e) if e.is_device_loss() => {
                    if *device_losses < MAX_DEVICE_LOSS_RECOVERIES {
                        *device_losses += 1;
                        let mttr_s = self.recover_device_loss(gpu, clock)?;
                        events.push(ServeEvent::DeviceLossRecovered { mttr_s });
                        continue;
                    }
                    batches.push(span);
                    self.abandon(batch, batcher, inflight, responses, traces, events, *clock);
                    return Ok(());
                }
                Err(e) if e.is_capacity() => {
                    if self.window_tuples > MIN_WINDOW_TUPLES {
                        let to = (self.window_tuples / 2).max(MIN_WINDOW_TUPLES);
                        events.push(ServeEvent::WindowShrunk {
                            from: self.window_tuples,
                            to,
                        });
                        self.window_tuples = to;
                        // Carry the phase recorder onto the replacement
                        // operator so the run's breakdown stays whole.
                        let rec = self.op.take_phase_recorder();
                        self.op = StreamingWindowJoin::new(
                            gpu,
                            WindowConfig {
                                window_tuples: to,
                                bits: self.bits,
                                min_key: self.min_key,
                            },
                        )?;
                        self.op.set_phase_recorder(rec);
                        continue;
                    }
                    if self.sink_loc == MemLocation::Gpu {
                        events.push(ServeEvent::SinkSpilledToCpu);
                        self.sink_loc = MemLocation::Cpu;
                        let old = std::mem::replace(
                            &mut self.sink,
                            ResultSink::with_capacity(gpu, self.window_tuples, MemLocation::Cpu)?,
                        );
                        old.free(gpu);
                        continue;
                    }
                    batches.push(span);
                    self.abandon(batch, batcher, inflight, responses, traces, events, *clock);
                    return Ok(());
                }
                Err(e)
                    if e.is_transient()
                        && attempts < self.cfg.resilience.retry.max_attempts_per_dispatch
                        && self.retry_budget.try_spend() =>
                {
                    // A transient fault outlasted the operator's own
                    // retries (e.g. a link-flap window): back off on the
                    // virtual clock and redrive the whole dispatch. The
                    // backoff doubles per attempt with deterministic
                    // jitter, so sustained flapping walks the clock past
                    // the fault window instead of hammering it.
                    let backoff_s =
                        jittered_backoff_s(&self.cfg.resilience.retry, attempts, self.retry_seq);
                    self.retry_seq += 1;
                    attempts += 1;
                    *clock += backoff_s;
                    gpu.set_virtual_time(*clock);
                    self.run_backoff_s += backoff_s;
                    events.push(ServeEvent::DispatchRetried {
                        attempt: attempts,
                        backoff_s,
                    });
                    for req in &members {
                        if let Some(inf) = inflight.get_mut(req) {
                            inf.ctx.retried();
                        }
                    }
                    continue;
                }
                Err(e) => {
                    // Fault outlasted its retries and budget (or another
                    // terminal operator error): shed the batch, keep
                    // serving.
                    if e.is_transient() {
                        events.push(ServeEvent::RetriesExhausted { keys: batch.len() });
                    }
                    batches.push(span);
                    self.abandon(batch, batcher, inflight, responses, traces, events, *clock);
                    return Ok(());
                }
            }
        }
    }

    /// Rebuild the device-dependent state after a whole-device loss: wait
    /// out the loss window on the virtual clock, flush the memory system
    /// (the replacement device starts cold), and rebuild index, operator,
    /// and sink from the host-resident column. Returns the MTTR in virtual
    /// seconds: outage wait plus the cost-model estimate of the rebuild.
    fn recover_device_loss(&mut self, gpu: &mut Gpu, clock: &mut f64) -> Result<f64, WindexError> {
        let lost_at_s = *clock;
        // Carry the phase recorder across the rebuild so the trace's
        // breakdown stays whole.
        let rec = self.op.take_phase_recorder();
        gpu.reset_memory_system();
        let clearance_s = gpu.chaos_clearance_s().max(lost_at_s);
        *clock = clearance_s;
        gpu.set_virtual_time(*clock);
        let before = gpu.snapshot();
        self.index = BuiltIndex::build(gpu, self.cfg.index, &self.col, &IndexConfigs::default());
        self.op = StreamingWindowJoin::new(
            gpu,
            WindowConfig {
                window_tuples: self.window_tuples,
                bits: self.bits,
                min_key: self.min_key,
            },
        )?;
        self.op.set_phase_recorder(rec);
        let old = std::mem::replace(
            &mut self.sink,
            ResultSink::with_capacity(gpu, self.window_tuples, self.sink_loc)?,
        );
        old.free(gpu);
        let delta = gpu.snapshot() - before;
        let rebuild_s = self.cost.estimate(&delta, false).total_s;
        *clock += rebuild_s;
        gpu.set_virtual_time(*clock);
        Ok((clearance_s - lost_at_s) + rebuild_s)
    }

    /// Demultiplex the sink's matches back to their requests and answer
    /// every request whose last key was just probed.
    #[allow(clippy::too_many_arguments)]
    fn complete(
        &mut self,
        batch: &[(u64, u64)],
        batcher: &mut MicroBatcher,
        inflight: &mut BTreeMap<u64, InFlight>,
        responses: &mut Vec<LookupResponse>,
        traces: &mut Vec<RequestTrace>,
        events: &mut Vec<ServeEvent>,
        now_s: f64,
    ) -> Result<(), WindexError> {
        for (rid, pos) in self.sink.host_pairs() {
            let (req, key_idx) = batcher.resolve(rid);
            if let Some(inf) = inflight.get_mut(&req) {
                inf.matches.push((inf.keys[key_idx as usize], pos));
            }
        }
        self.sink.clear();
        for &(_, rid) in batch {
            let (req, _) = batcher.resolve(rid);
            if let Some(inf) = inflight.get_mut(&req) {
                inf.remaining -= 1;
            }
        }
        // Answer finished requests in dispatch order (dedup preserves the
        // order their last keys went out).
        let mut done: Vec<u64> = Vec::new();
        for &(_, rid) in batch {
            let (req, _) = batcher.resolve(rid);
            if inflight.get(&req).is_some_and(|inf| inf.remaining == 0) && !done.contains(&req) {
                done.push(req);
            }
        }
        for req in done {
            let mut inf = inflight.remove(&req).ok_or(WindexError::InvalidState(
                "completed request vanished from the in-flight table",
            ))?;
            // An answered request is a breaker success for its tenant —
            // even past its deadline, the device did answer (deadline
            // attainment is the SLO tracker's concern, not the breaker's).
            if let Some(brk) = self.breakers.get_mut(&inf.tenant) {
                if brk.on_success() {
                    events.push(ServeEvent::CircuitClosed { tenant: inf.tenant });
                }
            }
            let latency = now_s - inf.submitted_s;
            let outcome = match inf.deadline {
                Some(d) if latency > d => RequestOutcome::DeadlineMissed,
                _ => RequestOutcome::Completed,
            };
            inf.ctx.first_result(now_s);
            inf.ctx.merged(now_s);
            traces.push(inf.ctx.finish(now_s, outcome, inf.matches.len()));
            responses.push(LookupResponse {
                request: req,
                tenant: inf.tenant,
                outcome,
                matches: inf.matches,
                submitted_s: inf.submitted_s,
                completed_s: now_s,
                latency_s: latency,
            });
        }
        Ok(())
    }

    /// Shed every request with a key in the failed batch: answer it
    /// [`RequestOutcome::Shed`] and drop its still-pending keys.
    #[allow(clippy::too_many_arguments)]
    fn abandon(
        &mut self,
        batch: &[(u64, u64)],
        batcher: &mut MicroBatcher,
        inflight: &mut BTreeMap<u64, InFlight>,
        responses: &mut Vec<LookupResponse>,
        traces: &mut Vec<RequestTrace>,
        events: &mut Vec<ServeEvent>,
        now_s: f64,
    ) {
        self.sink.clear();
        let mut victims: Vec<u64> = Vec::new();
        for &(_, rid) in batch {
            let (req, _) = batcher.resolve(rid);
            if !victims.contains(&req) {
                victims.push(req);
            }
        }
        events.push(ServeEvent::BatchAbandoned {
            keys: batch.len(),
            requests: victims.len(),
        });
        for req in victims {
            if let Some(inf) = inflight.remove(&req) {
                batcher.drop_request(req);
                // An abandoned batch is a hard failure for every tenant it
                // carried; enough of them in a row open the breaker.
                if let Some(brk) = self.breakers.get_mut(&inf.tenant) {
                    if brk.on_failure(now_s) {
                        events.push(ServeEvent::CircuitOpened {
                            tenant: inf.tenant,
                            until_s: brk.open_until_s(),
                        });
                    }
                }
                responses.push(shed_response(req, &inf.tenant, inf.submitted_s, now_s));
                traces.push(inf.ctx.finish(now_s, RequestOutcome::Shed, 0));
            }
        }
    }
}

/// Build a [`RequestOutcome::Shed`] response.
fn shed_response(id: u64, tenant: &TenantId, submitted_s: f64, now_s: f64) -> LookupResponse {
    LookupResponse {
        request: id,
        tenant: *tenant,
        outcome: RequestOutcome::Shed,
        matches: Vec::new(),
        submitted_s,
        completed_s: now_s,
        latency_s: now_s - submitted_s,
    }
}

/// Stage a released request's keys into the batcher. A scheduler release
/// for a request not in the in-flight table is an internal inconsistency;
/// it surfaces as a typed error instead of an index panic.
fn stage(
    batcher: &mut MicroBatcher,
    inflight: &mut BTreeMap<u64, InFlight>,
    id: u64,
    now_s: f64,
) -> Result<(), WindexError> {
    let inf = inflight.get_mut(&id).ok_or(WindexError::InvalidState(
        "scheduler released a request that is not in flight",
    ))?;
    inf.ctx.staged(now_s);
    batcher.stage(id, &inf.keys, now_s);
    Ok(())
}
