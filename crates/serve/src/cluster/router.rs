//! Shard-aware routing: key → radix partition → owning GPU.
//!
//! The router sits in front of the per-GPU DRR schedulers. Ownership is a
//! `partition → shard` table, initialized to balanced contiguous runs (the
//! first `partitions/shards` partitions to shard 0, and so on). Because
//! sharding uses top-of-domain bits, the partition index is monotone in the
//! key, so a contiguous partition run is a contiguous slice of sorted R —
//! which is what makes local→global position translation a single base-add
//! and re-sharding onto an adjacent survivor a contiguous merge.

use windex_core::WindexError;
use windex_join::PartitionBits;

/// Maps probe keys to the shard owning their radix partition.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    bits: PartitionBits,
    min_key: u64,
    /// Partition → owning shard.
    owners: Vec<usize>,
    shards: usize,
}

impl ShardRouter {
    /// Balanced contiguous ownership: partition `p` of `P` belongs to shard
    /// `p · shards / P`. Every shard owns at least one partition (requires
    /// `P ≥ shards`).
    pub fn contiguous(
        bits: PartitionBits,
        min_key: u64,
        shards: usize,
    ) -> Result<Self, WindexError> {
        if shards == 0 {
            return Err(WindexError::InvalidConfig(
                "router needs at least one shard",
            ));
        }
        let parts = bits.partitions();
        if parts < shards {
            return Err(WindexError::InvalidConfig(
                "fewer radix partitions than shards",
            ));
        }
        let owners = (0..parts).map(|p| p * shards / parts).collect();
        Ok(ShardRouter {
            bits,
            min_key,
            owners,
            shards,
        })
    }

    /// The radix in use.
    pub fn bits(&self) -> PartitionBits {
        self.bits
    }

    /// Minimum key of the routed domain.
    pub fn min_key(&self) -> u64 {
        self.min_key
    }

    /// Number of shards routed over (including dead ones; ownership of a
    /// dead shard's partitions is moved by [`reassign_all`](Self::reassign_all)).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Radix partition of `key`.
    #[inline]
    pub fn partition_of(&self, key: u64) -> usize {
        self.bits.partition_of(key, self.min_key)
    }

    /// Owner of partition `p`.
    #[inline]
    pub fn owner_of(&self, p: usize) -> usize {
        self.owners[p]
    }

    /// The shard that owns `key`'s partition.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        self.owners[self.partition_of(key)]
    }

    /// Clamp `key` into the routed domain `[min_key, min_key + 2^(shift+bits))`.
    /// `partition_of` masks `(key - min_key) >> shift`, so a key past the
    /// top partition would alias to an arbitrary shard (and a key below
    /// `min_key` would underflow the subtraction). Match sets are
    /// unaffected — out-of-range keys are absent everywhere — but routing
    /// and cross-shard accounting stay pinned to the edge shards.
    #[inline]
    pub fn clamp(&self, key: u64) -> u64 {
        let span = self.bits.shift + self.bits.bits;
        let top = if span >= 64 {
            u64::MAX
        } else {
            self.min_key.saturating_add((1u64 << span) - 1)
        };
        key.clamp(self.min_key, top)
    }

    /// Partitions currently owned by `shard`.
    pub fn partitions_owned(&self, shard: usize) -> usize {
        self.owners.iter().filter(|&&o| o == shard).count()
    }

    /// Move every partition owned by `from` to `to` (the re-shard rung of
    /// the degradation ladder). Returns how many partitions moved.
    pub fn reassign_all(&mut self, from: usize, to: usize) -> usize {
        let mut moved = 0;
        for o in &mut self.owners {
            if *o == from {
                *o = to;
                moved += 1;
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits() -> PartitionBits {
        // 64 partitions over a 2^17 domain.
        PartitionBits { shift: 11, bits: 6 }
    }

    #[test]
    fn contiguous_ownership_is_balanced_and_ordered() {
        let r = ShardRouter::contiguous(bits(), 0, 4).unwrap();
        assert_eq!(r.partitions_owned(0), 16);
        assert_eq!(r.partitions_owned(3), 16);
        // Ownership is monotone in the partition index.
        let owners: Vec<usize> = (0..64).map(|p| r.owner_of(p)).collect();
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(owners[0], 0);
        assert_eq!(owners[63], 3);
    }

    #[test]
    fn key_routes_to_partition_owner() {
        let r = ShardRouter::contiguous(bits(), 100, 4).unwrap();
        for key in (100u64..100 + (1 << 17)).step_by(997) {
            assert_eq!(r.shard_of(key), r.owner_of(r.partition_of(key)));
        }
    }

    #[test]
    fn reassign_moves_every_partition() {
        let mut r = ShardRouter::contiguous(bits(), 0, 4).unwrap();
        let moved = r.reassign_all(2, 1);
        assert_eq!(moved, 16);
        assert_eq!(r.partitions_owned(2), 0);
        assert_eq!(r.partitions_owned(1), 32);
        // Keys that used to route to shard 2 now route to shard 1.
        for p in 0..64 {
            assert_ne!(r.owner_of(p), 2);
        }
    }

    #[test]
    fn clamp_pins_out_of_range_keys_to_edge_shards() {
        let r = ShardRouter::contiguous(bits(), 100, 4).unwrap();
        let top = 100 + (1u64 << 17) - 1;
        assert_eq!(r.clamp(0), 100, "below-domain keys clamp to min_key");
        assert_eq!(r.clamp(u64::MAX), top, "above-domain keys clamp to top");
        assert_eq!(r.clamp(top), top, "in-domain keys pass through");
        assert_eq!(r.clamp(500), 500);
        assert_eq!(r.shard_of(r.clamp(u64::MAX)), 3);
        assert_eq!(r.shard_of(r.clamp(0)), 0);
        // Without the clamp the radix mask wraps: one past the top aliases
        // back to partition 0 — the inconsistency clamp() exists to avoid.
        assert_eq!(r.shard_of(top + 1), 0);
        // A full-width radix clamps only on the low side.
        let wide = ShardRouter::contiguous(PartitionBits { shift: 58, bits: 6 }, 7, 2).unwrap();
        assert_eq!(wide.clamp(u64::MAX), u64::MAX);
        assert_eq!(wide.clamp(0), 7);
    }

    #[test]
    fn rejects_more_shards_than_partitions() {
        let tiny = PartitionBits { shift: 0, bits: 1 };
        assert!(ShardRouter::contiguous(tiny, 0, 4).is_err());
        assert!(ShardRouter::contiguous(bits(), 0, 0).is_err());
    }
}
