//! # Multi-GPU sharded serving
//!
//! The paper scales one GPU's index to larger-than-HBM data over a fast
//! interconnect; this module scales *out* instead: N simulated GPUs behind
//! one shard-aware router. The inner relation R is radix-sharded by
//! top-of-domain partition bits — each GPU owns a contiguous run of
//! partitions, i.e. a contiguous slice of sorted R — or fully replicated
//! when R fits comfortably in one device's memory budget
//! ([`Placement::auto_for`]).
//!
//! - [`ClusterSpec`] — topology: instance count, per-device
//!   [`GpuSpec`](windex_sim::GpuSpec), placement, and the peer
//!   [`InterconnectSpec`](windex_sim::InterconnectSpec) that prices every
//!   inter-GPU edge (NVLink peer vs. host-staged PCI-e bounce);
//! - [`ShardRouter`] — key → radix partition → owning GPU, with a mutable
//!   ownership table so re-sharding is a table repoint;
//! - [`ClusterServer`] — the deterministic event loop: per-GPU DRR
//!   schedulers and micro-batchers behind the router, fan-out/merge of
//!   cross-shard requests on the virtual clock, and the cluster rungs of
//!   the degradation ladder (fail over to a replica, or re-shard a lost
//!   GPU's partitions onto an adjacent survivor);
//! - [`ClusterReport`] — aggregate Q/s, cross-shard traffic fractions and
//!   bytes, per-shard load, and recovery KPIs (failovers, re-shards,
//!   MTTR).
//!
//! Like the single-GPU server, everything is a pure function of
//! (seed, configuration): same trace, same cluster ⇒ byte-identical
//! responses and reports.

mod report;
mod router;
mod server;
mod spec;

pub use report::{ClusterEvent, ClusterReport, ShardLoad};
pub use router::ShardRouter;
pub use server::{ClusterConfig, ClusterOutcome, ClusterServer};
pub use spec::{
    ClusterSpec, Placement, BYTES_PER_TUPLE_ESTIMATE, MAX_CLUSTER_GPUS, REPLICATION_HBM_FRACTION,
};
