//! Cluster topology: how many GPUs, how R is placed on them, and how the
//! inter-GPU edges are priced.
//!
//! A [`ClusterSpec`] describes N simulated GPU instances — each its own
//! [`Gpu`](windex_sim::Gpu) with the full HBM budget, TLB, and cache
//! hierarchy of its [`GpuSpec`] — wired by a peer
//! [`InterconnectSpec`](windex_sim::InterconnectSpec). Two placements are
//! supported:
//!
//! - [`Placement::Sharded`] — the inner relation R is radix-sharded by the
//!   top-of-domain partition bits; each GPU owns a contiguous run of
//!   partitions (a contiguous slice of sorted R), so local index positions
//!   translate to global positions by adding the shard's base offset;
//! - [`Placement::Replicated`] — every GPU holds all of R; requests route
//!   whole to one device and never fan out.
//!
//! [`Placement::auto_for`] encodes the decision rule: replicate while R
//! (plus index overhead) fits comfortably inside a single device's memory
//! budget, shard once it does not.

use windex_core::WindexError;
use windex_join::PartitionBits;
use windex_sim::{GpuSpec, InterconnectSpec};
use windex_workload::Relation;

/// Upper bound on simulated cluster size. Generous — the experiments sweep
/// 1→8 — but bounded so a typo cannot allocate thousands of engines.
pub const MAX_CLUSTER_GPUS: usize = 64;

/// Fraction of one device's HBM budget that R (with index overhead) may
/// occupy before [`Placement::auto_for`] switches from replication to
/// sharding. Replicas need headroom for the operator, sink, and index
/// scratch, so "fits comfortably" means well under half the budget.
pub const REPLICATION_HBM_FRACTION: f64 = 0.5;

/// Estimated bytes of device state per indexed tuple: the 8-byte key column
/// plus roughly an equal share of index nodes and build scratch.
pub const BYTES_PER_TUPLE_ESTIMATE: u64 = 16;

/// How the inner relation R is laid out across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// R is radix-sharded: each GPU owns a contiguous run of partitions.
    /// Cross-shard requests fan out and merge over the peer link; a lost
    /// device re-shards its partitions onto an adjacent survivor.
    Sharded,
    /// Every GPU holds all of R. Requests route whole to one device; a
    /// lost device fails over to any surviving replica.
    Replicated,
}

impl Placement {
    /// Stable label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Placement::Sharded => "sharded",
            Placement::Replicated => "replicated",
        }
    }

    /// The sharding-vs-replication decision rule: replicate while R plus
    /// index overhead ([`BYTES_PER_TUPLE_ESTIMATE`] per tuple) fits within
    /// [`REPLICATION_HBM_FRACTION`] of one device's HBM budget; shard
    /// otherwise. A single-GPU cluster always replicates (sharding across
    /// one device is a no-op).
    pub fn auto_for(r: &Relation, gpu: &GpuSpec, gpus: usize) -> Placement {
        if gpus <= 1 {
            return Placement::Replicated;
        }
        let footprint = r.len() as u64 * BYTES_PER_TUPLE_ESTIMATE;
        if (footprint as f64) <= gpu.hbm_bytes as f64 * REPLICATION_HBM_FRACTION {
            Placement::Replicated
        } else {
            Placement::Sharded
        }
    }
}

/// A cluster of N simulated GPUs and the fabric between them.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of GPU instances (1..=[`MAX_CLUSTER_GPUS`]).
    pub gpus: usize,
    /// The device model every instance is built from.
    pub gpu: GpuSpec,
    /// The inter-GPU edge: fan-out key shipments and result merges are
    /// priced through this link (e.g.
    /// [`InterconnectSpec::nvlink4_peer`] for a peer fabric,
    /// [`InterconnectSpec::pcie4_host_staged`] for a host-bounced one).
    pub peer_link: InterconnectSpec,
    /// How R is placed across the instances.
    pub placement: Placement,
}

impl ClusterSpec {
    /// A sharded cluster of `gpus` devices wired by `peer_link`.
    pub fn sharded(gpus: usize, gpu: GpuSpec, peer_link: InterconnectSpec) -> Self {
        ClusterSpec {
            gpus,
            gpu,
            peer_link,
            placement: Placement::Sharded,
        }
    }

    /// A replicated cluster of `gpus` devices wired by `peer_link`.
    pub fn replicated(gpus: usize, gpu: GpuSpec, peer_link: InterconnectSpec) -> Self {
        ClusterSpec {
            gpus,
            gpu,
            peer_link,
            placement: Placement::Replicated,
        }
    }

    /// Validate the topology: a sane instance count, a valid device spec,
    /// and a peer link whose pricing cannot go infinite or NaN.
    pub fn validate(&self) -> Result<(), WindexError> {
        if self.gpus == 0 {
            return Err(WindexError::InvalidConfig(
                "a cluster needs at least one GPU",
            ));
        }
        if self.gpus > MAX_CLUSTER_GPUS {
            return Err(WindexError::InvalidConfig(
                "cluster size exceeds MAX_CLUSTER_GPUS",
            ));
        }
        self.gpu.validate()?;
        self.peer_link.validate()?;
        Ok(())
    }

    /// Choose the radix for sharding `r` across this cluster: enough
    /// top-of-domain bits that every GPU owns several partitions (so a
    /// re-shard moves partition runs, not whole shards), clamped to the
    /// paper's 11-bit ceiling. The bits always reach the domain's top bit,
    /// which keeps the partition index monotone in the key — each shard's
    /// partitions form a contiguous slice of sorted R.
    pub fn shard_bits(&self, r: &Relation) -> Result<PartitionBits, WindexError> {
        let (Some(min), Some(max)) = (r.min_key(), r.max_key()) else {
            return Err(WindexError::InvalidConfig("cannot shard an empty relation"));
        };
        let domain = max - min;
        if domain == 0 {
            return Err(WindexError::InvalidConfig(
                "cannot shard a single-key domain",
            ));
        }
        let domain_bits = 64 - domain.leading_zeros();
        let gpu_bits = usize::BITS - (self.gpus - 1).leading_zeros();
        // At least 4 partitions per GPU where the domain allows it.
        let want = (gpu_bits + 2).clamp(4, 11);
        let bits = want.min(domain_bits);
        let shift = domain_bits - bits;
        let bits = PartitionBits { shift, bits };
        if bits.partitions() < self.gpus {
            return Err(WindexError::InvalidConfig(
                "key domain too small to give every GPU a partition",
            ));
        }
        Ok(bits)
    }

    /// Choose the radix for a replicated cluster: the same top-of-domain
    /// selection as [`shard_bits`](Self::shard_bits) but with no
    /// partition-count floor — replication never routes by partition, so
    /// the bits only size each replica's window join. Degenerate domains
    /// (down to a single key) therefore get the minimal radix instead of
    /// an error.
    pub fn replica_bits(&self, r: &Relation) -> Result<PartitionBits, WindexError> {
        let (Some(min), Some(max)) = (r.min_key(), r.max_key()) else {
            return Err(WindexError::InvalidConfig(
                "cannot replicate an empty relation",
            ));
        };
        let domain = max - min;
        if domain == 0 {
            return Ok(PartitionBits { shift: 0, bits: 1 });
        }
        let domain_bits = 64 - domain.leading_zeros();
        let bits = domain_bits.min(4);
        Ok(PartitionBits {
            shift: domain_bits - bits,
            bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_sim::Scale;
    use windex_workload::KeyDistribution;

    fn v100() -> GpuSpec {
        GpuSpec::v100_nvlink2(Scale::PAPER)
    }

    #[test]
    fn validate_catches_bad_topologies() {
        let ok = ClusterSpec::sharded(4, v100(), InterconnectSpec::nvlink4_peer());
        assert!(ok.validate().is_ok());
        let zero = ClusterSpec::sharded(0, v100(), InterconnectSpec::nvlink4_peer());
        assert!(zero.validate().is_err());
        let huge = ClusterSpec::sharded(
            MAX_CLUSTER_GPUS + 1,
            v100(),
            InterconnectSpec::nvlink4_peer(),
        );
        assert!(huge.validate().is_err());
        let mut bad_link = ok.clone();
        bad_link.peer_link.effective_bandwidth_gbps = f64::NAN;
        assert!(bad_link.validate().is_err(), "NaN link bandwidth rejected");
    }

    #[test]
    fn shard_bits_reach_domain_top_and_cover_gpus() {
        let r = Relation::unique_sorted(1 << 17, KeyDistribution::Dense, 42);
        for gpus in [1usize, 2, 4, 8] {
            let spec = ClusterSpec::sharded(gpus, v100(), InterconnectSpec::nvlink4_peer());
            let bits = spec.shard_bits(&r).unwrap();
            let domain = r.max_key().unwrap() - r.min_key().unwrap();
            let domain_bits = 64 - domain.leading_zeros();
            assert_eq!(bits.shift + bits.bits, domain_bits, "top-of-domain bits");
            assert!(bits.partitions() >= gpus * 4 || bits.bits == 11);
        }
    }

    #[test]
    fn shard_bits_reject_degenerate_domains() {
        let spec = ClusterSpec::sharded(4, v100(), InterconnectSpec::nvlink4_peer());
        assert!(spec.shard_bits(&Relation::from_keys(vec![], true)).is_err());
        assert!(spec
            .shard_bits(&Relation::from_keys(vec![7], true))
            .is_err());
    }

    #[test]
    fn replica_bits_accept_domains_too_small_to_shard() {
        let spec = ClusterSpec::replicated(4, v100(), InterconnectSpec::nvlink4_peer());
        // Domains shard_bits rejects (single key, fewer partitions than
        // GPUs) still yield a valid window radix under replication.
        let single = Relation::from_keys(vec![7], true);
        assert!(spec.shard_bits(&single).is_err());
        let bits = spec.replica_bits(&single).unwrap();
        assert_eq!((bits.shift, bits.bits), (0, 1));
        let tiny = Relation::from_keys(vec![7, 8, 9], true);
        let bits = spec.replica_bits(&tiny).unwrap();
        assert_eq!(bits.shift + bits.bits, 2, "reaches the domain's top bit");
        // Wide domains match the shard selection's top-of-domain shape.
        let r = Relation::unique_sorted(1 << 14, KeyDistribution::SparseUniform, 3);
        let bits = spec.replica_bits(&r).unwrap();
        let domain = r.max_key().unwrap() - r.min_key().unwrap();
        assert_eq!(bits.shift + bits.bits, 64 - domain.leading_zeros());
        assert!(spec
            .replica_bits(&Relation::from_keys(vec![], true))
            .is_err());
    }

    #[test]
    fn auto_placement_switches_on_footprint() {
        let gpu = v100();
        let small = Relation::unique_sorted(1 << 10, KeyDistribution::Dense, 1);
        assert_eq!(
            Placement::auto_for(&small, &gpu, 4),
            Placement::Replicated,
            "small R replicates"
        );
        let tuples_over_budget = (gpu.hbm_bytes as f64 * REPLICATION_HBM_FRACTION
            / BYTES_PER_TUPLE_ESTIMATE as f64) as usize
            + 1024;
        let big = Relation::unique_sorted(tuples_over_budget, KeyDistribution::Dense, 1);
        assert_eq!(Placement::auto_for(&big, &gpu, 4), Placement::Sharded);
        assert_eq!(
            Placement::auto_for(&big, &gpu, 1),
            Placement::Replicated,
            "one GPU cannot shard"
        );
    }
}
