//! The deterministic multi-GPU serving event loop.
//!
//! [`ClusterServer`] generalizes the single-GPU [`Server`](crate::Server)
//! to N simulated devices. Each shard owns a slice of the inner relation
//! (or a full replica), its own index, shared
//! [`StreamingWindowJoin`](windex_core::streams::StreamingWindowJoin),
//! result sink, DRR scheduler, and micro-batcher. In front of the per-GPU
//! schedulers sits the [`ShardRouter`](super::ShardRouter): a request whose
//! keys all hash to one shard goes straight to the owner; a cross-shard
//! request fans out as per-shard sub-requests and its rid-tagged results
//! merge deterministically on the virtual clock.
//!
//! Time is a single global virtual clock. Shards dispatch independently —
//! a dispatch occupies its shard until the cost model's estimate elapses,
//! while other shards keep admitting and dispatching, which is where the
//! aggregate throughput scaling comes from. Inter-GPU edges are priced
//! through the cluster's peer [`InterconnectSpec`](windex_sim::InterconnectSpec):
//! a dispatch carrying keys for remote coordinators first gathers them over
//! the link, and matches produced for a remote coordinator pay a merge
//! transfer before the response can complete.
//!
//! The degradation ladder grows two cluster-level rungs above the per-GPU
//! ones (shrink window → spill sink → shed batch):
//!
//! 1. **fail over** — under replication, a `DeviceLost` GPU's queue moves
//!    to a surviving replica;
//! 2. **re-shard** — under sharding, the lost GPU's partitions merge into
//!    an adjacent survivor (contiguous slices stay contiguous), the
//!    survivor's index is rebuilt on the virtual clock, and the router is
//!    repointed.
//!
//! A single-GPU cluster falls back to the in-place rebuild recovery of the
//! single-GPU server. Every path reports MTTR in virtual seconds.

use super::report::{ClusterEvent, ClusterReport, ShardLoad};
use super::router::ShardRouter;
use super::spec::{ClusterSpec, Placement};
use crate::batch::MicroBatcher;
use crate::report::{LatencyHistogram, LatencyStats};
use crate::request::{LookupResponse, RequestOutcome, TenantId};
use crate::resilience::{jittered_backoff_s, RetryBudget, SloTracker};
use crate::sched::DrrScheduler;
use crate::server::{BatchPolicy, ServeConfig};
use crate::span::{sample_tail, RequestContext, RequestTrace, StageLatencyStats, TailConfig};
use crate::trace::TimedRequest;
use std::collections::BTreeMap;
use std::rc::Rc;
use windex_core::query::QueryError;
use windex_core::session::{MAX_DEVICE_LOSS_RECOVERIES, MIN_WINDOW_TUPLES};
use windex_core::strategy::{BuiltIndex, IndexConfigs};
use windex_core::streams::StreamingWindowJoin;
use windex_core::window::WindowConfig;
use windex_core::WindexError;
use windex_sim::{Buffer, ChaosSchedule, CostModel, Gpu, InterconnectSpec, MemLocation};
use windex_workload::Relation;

/// Bytes shipped over the peer link per fanned-out probe key.
const KEY_BYTES: u64 = 8;
/// Bytes shipped over the peer link per merged match pair.
const MATCH_BYTES: u64 = 16;

/// Cluster serving configuration: the per-shard serving knobs plus the
/// cluster topology.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-shard serving knobs (window, policy, DRR quantum, backpressure
    /// bound, sink placement, resilience). `partition_bits` of `None`
    /// applies [`ClusterSpec::shard_bits`] (sharded) or
    /// [`ClusterSpec::replica_bits`] (replicated); explicit bits under
    /// sharding must reach the domain's top bit so shard slices stay
    /// contiguous.
    pub serve: ServeConfig,
    /// The cluster topology and inter-GPU link.
    pub cluster: ClusterSpec,
}

/// A cluster-served trace: every response plus the aggregate report.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// One response per trace request, ordered by request id.
    pub responses: Vec<LookupResponse>,
    /// Aggregate cluster metrics.
    pub report: ClusterReport,
}

/// A per-shard leg of an admitted request.
#[derive(Debug)]
struct SubRequest {
    parent: u64,
    tenant: TenantId,
    keys: Vec<u64>,
}

/// An admitted request being assembled from its per-shard legs.
#[derive(Debug)]
struct Parent {
    tenant: TenantId,
    deadline: Option<f64>,
    submitted_s: f64,
    /// Keys not yet probed.
    remaining: usize,
    /// Shard the response is assembled on (owner of the first key).
    coordinator: usize,
    /// Sub-request ids of this parent, for shed cleanup.
    subs: Vec<u64>,
    matches: Vec<(u64, u64)>,
    /// Latest delivery instant across the legs merged so far.
    ready_s: f64,
    /// Span-tree builder for this request's trace.
    ctx: RequestContext,
}

/// A dispatch in flight on one shard: results are computed eagerly (the
/// simulation is deterministic) but delivered when the shard's virtual
/// busy-interval elapses.
#[derive(Debug)]
struct PendingDispatch {
    done_s: f64,
    /// The shard's base offset `lo` captured at dispatch time. A re-shard
    /// can grow the shard's slice downward while this dispatch is in
    /// flight (losing GPU 0 drops the absorbing survivor's `lo`), and the
    /// pairs below were computed against the old slice — translating them
    /// with the post-re-shard `lo` would shift every global position.
    base: u64,
    /// The `(key, rid)` batch, rids local to the shard's batcher.
    batch: Vec<(u64, u64)>,
    /// Sink output captured at dispatch: `(rid, local position)`.
    pairs: Vec<(u64, u64)>,
}

/// One GPU instance and its serving state.
#[derive(Debug)]
struct Shard {
    gpu: Gpu,
    alive: bool,
    /// Global tuple range `[lo, hi)` of the resident slice of sorted R.
    lo: usize,
    hi: usize,
    col: Rc<Buffer<u64>>,
    index: BuiltIndex,
    op: StreamingWindowJoin,
    sink: ResultSinkSlot,
    window_tuples: usize,
    sched: DrrScheduler,
    batcher: MicroBatcher,
    /// The shard is busy (dispatching or rebuilding) until this instant.
    busy_until_s: f64,
    inflight: Option<PendingDispatch>,
    device_losses: usize,
    // Per-trace metrics (reset each run).
    subrequests: usize,
    keys_probed: usize,
    dispatches: usize,
    matches: usize,
    max_queue_depth_keys: usize,
    busy_s: f64,
    cross_bytes: u64,
}

/// The shard's sink together with its current placement (GPU placement
/// falls back to CPU under memory pressure, like the single-GPU server).
#[derive(Debug)]
struct ResultSinkSlot {
    sink: windex_join::ResultSink,
    loc: MemLocation,
}

/// Mutable state of one `run()` invocation.
struct RunState {
    clock_s: f64,
    subs: Vec<SubRequest>,
    /// Sub-request id → shard currently holding it (failover moves these).
    sub_home: Vec<usize>,
    parents: BTreeMap<u64, Parent>,
    /// Leg index inside the parent's `RequestContext`, parallel to `subs`.
    leg_of_sub: Vec<usize>,
    responses: Vec<LookupResponse>,
    /// One finished span tree per answered request.
    traces: Vec<RequestTrace>,
    events: Vec<ClusterEvent>,
    cross_shard_bytes: u64,
    single_shard_requests: usize,
    cross_shard_requests: usize,
    failovers: usize,
    reshards: usize,
    recoveries: usize,
    mttr_total_s: f64,
}

/// The deterministic multi-GPU query server.
#[derive(Debug)]
pub struct ClusterServer {
    cfg: ClusterConfig,
    r: Relation,
    router: ShardRouter,
    shards: Vec<Shard>,
    cost: CostModel,
    link: InterconnectSpec,
    retry_budget: RetryBudget,
    retry_seq: u64,
}

impl ClusterServer {
    /// Build a cluster over the (sorted, duplicate-free) relation `r`:
    /// slices R per the placement, and on every GPU stages the slice,
    /// builds the index, and allocates the shared operator and sink.
    pub fn new(cfg: ClusterConfig, r: Relation) -> Result<Self, WindexError> {
        cfg.cluster.validate()?;
        let serve = &cfg.serve;
        if serve.window_tuples == 0 {
            return Err(WindexError::InvalidConfig(
                "serving window must hold at least one key",
            ));
        }
        if serve.quantum_keys == 0 {
            return Err(WindexError::InvalidConfig("DRR quantum must be positive"));
        }
        if serve.max_pending_keys == 0 {
            return Err(WindexError::InvalidConfig(
                "backpressure bound must admit at least one key",
            ));
        }
        if let BatchPolicy::Shared { max_delay_s } = serve.policy {
            if !max_delay_s.is_finite() || max_delay_s <= 0.0 {
                return Err(WindexError::InvalidConfig(
                    "shared-batch max delay must be positive",
                ));
            }
        }
        if !r.is_sorted_unique() {
            return Err(QueryError::IndexedRelationNotSorted.into());
        }
        if r.is_empty() {
            return Err(WindexError::InvalidConfig(
                "cluster serving needs a non-empty relation",
            ));
        }
        let replicated = cfg.cluster.placement == Placement::Replicated;
        let bits = match serve.partition_bits {
            Some(b) => b,
            None if replicated => cfg.cluster.replica_bits(&r)?,
            None => cfg.cluster.shard_bits(&r)?,
        };
        let min_key = r.min_key().unwrap_or(0);
        let max_key = r.max_key().unwrap_or(0);
        let domain = max_key - min_key;
        let domain_bits = if domain == 0 {
            1
        } else {
            64 - domain.leading_zeros()
        };
        if !replicated && bits.shift + bits.bits < domain_bits {
            return Err(WindexError::InvalidConfig(
                "partition bits must reach the domain's top bit for contiguous shards",
            ));
        }
        let n_gpus = cfg.cluster.gpus;
        // Replication never routes by partition, so it needs no
        // partitions-per-GPU floor: a single-owner table keeps the radix
        // and min_key available for window configs and reports while
        // letting replicated clusters form over arbitrarily small domains.
        let router_shards = if replicated { 1 } else { n_gpus };
        let router = ShardRouter::contiguous(bits, min_key, router_shards)?;
        let mut shards = Vec::with_capacity(n_gpus);
        for s in 0..n_gpus {
            let (lo, hi) = if replicated {
                (0, r.len())
            } else {
                owned_range(&router, &r, s)
            };
            let mut gpu = Gpu::try_new(cfg.cluster.gpu.clone()).map_err(WindexError::from)?;
            let col = Rc::new(gpu.alloc_host_from_vec(r.keys()[lo..hi].to_vec()));
            let index = BuiltIndex::build(&mut gpu, serve.index, &col, &IndexConfigs::default());
            let op = StreamingWindowJoin::new(
                &mut gpu,
                WindowConfig {
                    window_tuples: serve.window_tuples,
                    bits,
                    min_key,
                },
            )?;
            let mut loc = serve.result_location;
            let sink =
                match windex_join::ResultSink::with_capacity(&mut gpu, serve.window_tuples, loc) {
                    Ok(sk) => sk,
                    Err(e) if WindexError::from(e.clone()).is_capacity() => {
                        loc = MemLocation::Cpu;
                        windex_join::ResultSink::with_capacity(&mut gpu, serve.window_tuples, loc)?
                    }
                    Err(e) => return Err(e.into()),
                };
            shards.push(Shard {
                gpu,
                alive: true,
                lo,
                hi,
                col,
                index,
                op,
                sink: ResultSinkSlot { sink, loc },
                window_tuples: serve.window_tuples,
                sched: DrrScheduler::new(serve.quantum_keys)?,
                batcher: MicroBatcher::new(),
                busy_until_s: 0.0,
                inflight: None,
                device_losses: 0,
                subrequests: 0,
                keys_probed: 0,
                dispatches: 0,
                matches: 0,
                max_queue_depth_keys: 0,
                busy_s: 0.0,
                cross_bytes: 0,
            });
        }
        let cost = CostModel::new(&cfg.cluster.gpu);
        Ok(ClusterServer {
            link: cfg.cluster.peer_link.clone(),
            retry_budget: RetryBudget::new(&cfg.serve.resilience.retry),
            cfg,
            r,
            router,
            shards,
            cost,
            retry_seq: 0,
        })
    }

    /// The served relation.
    pub fn relation(&self) -> &Relation {
        &self.r
    }

    /// The shard router (for routing assertions in tests).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// GPU instances in the cluster.
    pub fn gpus(&self) -> usize {
        self.shards.len()
    }

    /// Mutable access to one shard's simulated GPU (e.g. to install a
    /// bounded sim-trace recorder before a run). Panics if `shard` is out
    /// of range.
    pub fn shard_gpu_mut(&mut self, shard: usize) -> &mut Gpu {
        &mut self.shards[shard].gpu
    }

    /// Install one chaos schedule per GPU (see
    /// [`ChaosScenario::cluster_schedules`](windex_sim::ChaosScenario::cluster_schedules)).
    pub fn set_chaos_schedules(
        &mut self,
        schedules: Vec<ChaosSchedule>,
    ) -> Result<(), WindexError> {
        if schedules.len() != self.shards.len() {
            return Err(WindexError::InvalidConfig(
                "need exactly one chaos schedule per GPU",
            ));
        }
        for (shard, schedule) in self.shards.iter_mut().zip(schedules) {
            shard.gpu.set_chaos_schedule(schedule)?;
        }
        Ok(())
    }

    /// Serve a trace to completion. Arrivals must be sorted by time.
    pub fn run(&mut self, trace: &[TimedRequest]) -> Result<ClusterOutcome, WindexError> {
        debug_assert!(
            trace.windows(2).all(|w| w[0].at_s <= w[1].at_s),
            "trace must be sorted by arrival time"
        );
        let mut st = RunState {
            clock_s: 0.0,
            subs: Vec::new(),
            sub_home: Vec::new(),
            parents: BTreeMap::new(),
            leg_of_sub: Vec::new(),
            responses: Vec::with_capacity(trace.len()),
            traces: Vec::with_capacity(trace.len()),
            events: Vec::new(),
            cross_shard_bytes: 0,
            single_shard_requests: 0,
            cross_shard_requests: 0,
            failovers: 0,
            reshards: 0,
            recoveries: 0,
            mttr_total_s: 0.0,
        };
        self.retry_seq = 0;
        for shard in &mut self.shards {
            shard.op.reset();
            shard.sink.sink.clear();
            shard.busy_until_s = 0.0;
            shard.inflight = None;
            shard.subrequests = 0;
            shard.keys_probed = 0;
            shard.dispatches = 0;
            shard.matches = 0;
            shard.max_queue_depth_keys = 0;
            shard.busy_s = 0.0;
            shard.cross_bytes = 0;
            // The serving clock IS the chaos clock on every device.
            shard.gpu.set_virtual_time(0.0);
        }
        let mut next_arrival = 0usize;

        loop {
            // 1. Deliver every dispatch whose busy-interval has elapsed,
            //    in shard-id order (deterministic tie-break).
            for s in 0..self.shards.len() {
                let due = self.shards[s]
                    .inflight
                    .as_ref()
                    .is_some_and(|pd| pd.done_s <= st.clock_s);
                if due {
                    let pd = self.shards[s].inflight.take().unwrap();
                    self.deliver(s, pd, &mut st);
                }
            }

            // 2. Admit every arrival due now.
            while next_arrival < trace.len() && trace[next_arrival].at_s <= st.clock_s {
                let t = &trace[next_arrival];
                let id = next_arrival as u64;
                next_arrival += 1;
                self.admit(id, t, &mut st);
            }

            // 3. Stage queued sub-requests under DRR and dispatch idle
            //    shards whose window is full or whose flush timer fired.
            for s in 0..self.shards.len() {
                if !self.shards[s].alive {
                    continue;
                }
                self.stage_shard(s, &mut st)?;
                let idle =
                    self.shards[s].inflight.is_none() && self.shards[s].busy_until_s <= st.clock_s;
                if idle && self.dispatch_due(s, st.clock_s) {
                    self.dispatch_shard(s, &mut st)?;
                }
            }

            // 4. Advance the clock to the next event, or finish.
            let mut next = f64::INFINITY;
            if next_arrival < trace.len() {
                next = next.min(trace[next_arrival].at_s);
            }
            for shard in &self.shards {
                if let Some(pd) = &shard.inflight {
                    next = next.min(pd.done_s);
                } else if shard.alive && shard.busy_until_s > st.clock_s {
                    next = next.min(shard.busy_until_s);
                }
            }
            if let BatchPolicy::Shared { max_delay_s } = self.cfg.serve.policy {
                for shard in &self.shards {
                    if shard.alive && shard.inflight.is_none() {
                        if let Some(since) = shard.batcher.oldest_since() {
                            next = next.min((since + max_delay_s).max(shard.busy_until_s));
                        }
                    }
                }
            }
            if next.is_finite() {
                st.clock_s = st.clock_s.max(next);
                for shard in &mut self.shards {
                    if shard.alive && shard.inflight.is_none() && shard.busy_until_s <= st.clock_s {
                        shard.gpu.set_virtual_time(st.clock_s);
                    }
                }
            } else {
                debug_assert!(
                    self.shards.iter().all(|sh| sh.inflight.is_none()
                        && (!sh.alive || (sh.batcher.pending() == 0 && sh.sched.is_empty()))),
                    "cluster event loop stalled with queued work"
                );
                break;
            }
        }
        debug_assert!(st.parents.is_empty(), "all admitted requests answered");
        self.finish(trace, st)
    }

    /// Route, backpressure-check, and enqueue one arrival.
    fn admit(&mut self, id: u64, t: &TimedRequest, st: &mut RunState) {
        let now = st.clock_s;
        let n = t.request.keys.len();
        if n == 0 {
            // Nothing to probe: answer at admission (as the single-GPU
            // server does) instead of parking an unfinishable parent.
            let latency = now - t.at_s;
            let outcome = match t.request.deadline {
                Some(d) if latency > d => RequestOutcome::DeadlineMissed,
                _ => RequestOutcome::Completed,
            };
            st.responses.push(LookupResponse {
                request: id,
                tenant: t.request.tenant,
                outcome,
                matches: Vec::new(),
                submitted_s: t.at_s,
                completed_s: now,
                latency_s: latency,
            });
            st.traces
                .push(RequestContext::new(id, t.request.tenant, t.at_s, 0).finish(now, outcome, 0));
            return;
        }
        // Route every key to the shard owning its partition (sharded), or
        // the whole request to one live replica (replicated).
        let mut legs: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        let coordinator = match self.cfg.cluster.placement {
            Placement::Sharded => {
                for &key in &t.request.keys {
                    let shard = self.router.shard_of(self.router.clamp(key));
                    legs.entry(shard).or_default().push(key);
                }
                self.router.shard_of(self.router.clamp(t.request.keys[0]))
            }
            Placement::Replicated => {
                let alive: Vec<usize> = (0..self.shards.len())
                    .filter(|&s| self.shards[s].alive)
                    .collect();
                let shard = alive[id as usize % alive.len()];
                legs.insert(shard, t.request.keys.clone());
                shard
            }
        };
        // Backpressure: shed the whole request if any target shard's
        // backlog would cross the bound.
        let over = legs.iter().any(|(&s, keys)| {
            let backlog = self.shards[s].sched.queued_keys() + self.shards[s].batcher.pending();
            backlog + keys.len() > self.cfg.serve.max_pending_keys
        });
        if over {
            st.events.push(ClusterEvent::LoadShed {
                tenant: t.request.tenant,
                request: id,
                keys: n,
            });
            st.responses
                .push(shed_response(id, t.request.tenant, t.at_s, now));
            st.traces
                .push(RequestContext::new(id, t.request.tenant, t.at_s, n).finish(
                    now,
                    RequestOutcome::Shed,
                    0,
                ));
            return;
        }
        if legs.len() > 1 {
            st.cross_shard_requests += 1;
        } else {
            st.single_shard_requests += 1;
        }
        let mut parent = Parent {
            tenant: t.request.tenant,
            deadline: t.request.deadline,
            submitted_s: t.at_s,
            remaining: n,
            coordinator,
            subs: Vec::with_capacity(legs.len()),
            matches: Vec::new(),
            ready_s: now,
            ctx: RequestContext::new(id, t.request.tenant, t.at_s, n),
        };
        for (shard, keys) in legs {
            let sub_id = st.subs.len() as u64;
            let n_keys = keys.len();
            parent.subs.push(sub_id);
            let leg = parent
                .ctx
                .leg_opened(shard, n_keys, now, shard != coordinator);
            st.leg_of_sub.push(leg);
            st.subs.push(SubRequest {
                parent: id,
                tenant: t.request.tenant,
                keys,
            });
            st.sub_home.push(shard);
            self.shards[shard]
                .sched
                .enqueue(t.request.tenant, sub_id, n_keys);
            self.shards[shard].subrequests += 1;
            let depth =
                self.shards[shard].sched.queued_keys() + self.shards[shard].batcher.pending();
            self.shards[shard].max_queue_depth_keys =
                self.shards[shard].max_queue_depth_keys.max(depth);
        }
        st.parents.insert(id, parent);
    }

    /// Release queued sub-requests into shard `s`'s batcher under DRR
    /// order, skipping legs whose parent was already shed.
    fn stage_shard(&mut self, s: usize, st: &mut RunState) -> Result<(), WindexError> {
        loop {
            let shard = &mut self.shards[s];
            let want = match self.cfg.serve.policy {
                BatchPolicy::Shared { .. } => shard.batcher.pending() < shard.window_tuples,
                BatchPolicy::PerRequest => shard.batcher.pending() == 0,
            };
            if !want {
                return Ok(());
            }
            match shard.sched.dequeue()? {
                Some(sub_id) => {
                    let sub = &st.subs[sub_id as usize];
                    if let Some(p) = st.parents.get_mut(&sub.parent) {
                        p.ctx.staged(st.clock_s);
                        shard.batcher.stage(sub_id, &sub.keys, st.clock_s);
                    }
                }
                None => return Ok(()),
            }
        }
    }

    /// Whether shard `s`'s staged keys are due for dispatch.
    fn dispatch_due(&self, s: usize, now: f64) -> bool {
        let shard = &self.shards[s];
        match self.cfg.serve.policy {
            BatchPolicy::PerRequest => shard.batcher.pending() > 0,
            BatchPolicy::Shared { max_delay_s } => {
                shard.batcher.pending() >= shard.window_tuples
                    || shard
                        .batcher
                        .oldest_since()
                        .is_some_and(|since| since + max_delay_s <= now)
            }
        }
    }

    /// Push one batch through shard `s`'s operator, walking the per-GPU
    /// degradation ladder and, on device loss, the cluster rungs.
    fn dispatch_shard(&mut self, s: usize, st: &mut RunState) -> Result<(), WindexError> {
        let take = match self.cfg.serve.policy {
            BatchPolicy::PerRequest => self.shards[s].batcher.pending(),
            BatchPolicy::Shared { .. } => self.shards[s]
                .window_tuples
                .min(self.shards[s].batcher.pending()),
        };
        let batch = self.shards[s].batcher.take(take, st.clock_s);
        if batch.is_empty() {
            return Ok(());
        }
        // Distinct sub-requests (and their parents) riding this dispatch,
        // in first-occurrence batch order, for span milestones.
        let mut member_subs: Vec<u64> = Vec::new();
        let mut member_parents: Vec<u64> = Vec::new();
        for &(_, rid) in &batch {
            let (sub_id, _) = self.shards[s].batcher.resolve(rid);
            if !member_subs.contains(&sub_id) {
                member_subs.push(sub_id);
            }
            let parent_id = st.subs[sub_id as usize].parent;
            if !member_parents.contains(&parent_id) {
                member_parents.push(parent_id);
            }
        }
        let mut backoff_total = 0.0f64;
        let mut est_total = 0.0f64;
        let mut attempts = 0u32;
        loop {
            self.shards[s]
                .gpu
                .set_virtual_time(st.clock_s + backoff_total);
            self.shards[s].op.reset();
            let before = self.shards[s].gpu.snapshot();
            let attempt = {
                let shard = &mut self.shards[s];
                shard
                    .op
                    .push(
                        &mut shard.gpu,
                        shard.index.as_dyn(),
                        &batch,
                        &mut shard.sink.sink,
                    )
                    .and_then(|()| {
                        shard.op.flush_now(
                            &mut shard.gpu,
                            shard.index.as_dyn(),
                            &mut shard.sink.sink,
                        )
                    })
            };
            let delta = self.shards[s].gpu.snapshot() - before;
            est_total += self.cost.estimate(&delta, false).total_s;
            match attempt {
                Ok(_) => {
                    let stats = self.shards[s].op.stats();
                    let pairs = self.shards[s].sink.sink.host_pairs();
                    self.shards[s].sink.sink.clear();
                    self.retry_budget.on_success();
                    // Gather-in: keys staged for a remote coordinator had
                    // to cross the peer link before this shard could probe
                    // them; the transfer extends the busy interval.
                    let mut in_bytes = 0u64;
                    for &(_, rid) in &batch {
                        let (sub_id, _) = self.shards[s].batcher.resolve(rid);
                        if let Some(p) = st.parents.get(&st.subs[sub_id as usize].parent) {
                            if p.coordinator != s {
                                in_bytes += KEY_BYTES;
                            }
                        }
                    }
                    let xfer_in_s = if in_bytes > 0 {
                        self.link.transfer_s(in_bytes)
                    } else {
                        0.0
                    };
                    st.cross_shard_bytes += in_bytes;
                    let done_s = st.clock_s + backoff_total + est_total + xfer_in_s;
                    // Milestones: the batch left the queue for the device
                    // at dispatch time (leg min-wins across split batches).
                    for &sub_id in &member_subs {
                        if let Some(p) = st.parents.get_mut(&st.subs[sub_id as usize].parent) {
                            p.ctx.dispatched(st.clock_s);
                            p.ctx
                                .leg_dispatched(st.leg_of_sub[sub_id as usize], st.clock_s);
                        }
                    }
                    let shard = &mut self.shards[s];
                    shard.cross_bytes += in_bytes;
                    shard.keys_probed += batch.len();
                    shard.dispatches += 1;
                    shard.matches += stats.matches;
                    shard.busy_s += done_s - st.clock_s;
                    shard.busy_until_s = done_s;
                    shard.inflight = Some(PendingDispatch {
                        done_s,
                        base: shard.lo as u64,
                        batch,
                        pairs,
                    });
                    return Ok(());
                }
                Err(e) if e.is_device_loss() => {
                    let has_survivor = self
                        .shards
                        .iter()
                        .enumerate()
                        .any(|(i, sh)| i != s && sh.alive);
                    if !has_survivor {
                        // Single-GPU rung: in-place rebuild (the PR 6
                        // recovery path), then redrive the dispatch.
                        if self.shards[s].device_losses < MAX_DEVICE_LOSS_RECOVERIES {
                            self.shards[s].device_losses += 1;
                            let mttr_s = self.recover_in_place(s, st.clock_s + backoff_total)?;
                            st.events
                                .push(ClusterEvent::DeviceRecovered { gpu: s, mttr_s });
                            st.recoveries += 1;
                            st.mttr_total_s += mttr_s;
                            backoff_total += mttr_s;
                            continue;
                        }
                        self.abandon(s, &batch, st);
                        return Ok(());
                    }
                    self.lose_shard(s, batch, st)?;
                    return Ok(());
                }
                Err(e) if e.is_capacity() => {
                    if self.shards[s].window_tuples > MIN_WINDOW_TUPLES {
                        let from = self.shards[s].window_tuples;
                        let to = (from / 2).max(MIN_WINDOW_TUPLES);
                        st.events
                            .push(ClusterEvent::ShardWindowShrunk { gpu: s, from, to });
                        let shard = &mut self.shards[s];
                        shard.window_tuples = to;
                        shard.op = StreamingWindowJoin::new(
                            &mut shard.gpu,
                            WindowConfig {
                                window_tuples: to,
                                bits: self.router.bits(),
                                min_key: self.router.min_key(),
                            },
                        )?;
                        continue;
                    }
                    if self.shards[s].sink.loc == MemLocation::Gpu {
                        st.events.push(ClusterEvent::ShardSinkSpilled { gpu: s });
                        let shard = &mut self.shards[s];
                        shard.sink.loc = MemLocation::Cpu;
                        let old = std::mem::replace(
                            &mut shard.sink.sink,
                            windex_join::ResultSink::with_capacity(
                                &mut shard.gpu,
                                shard.window_tuples,
                                MemLocation::Cpu,
                            )?,
                        );
                        old.free(&mut shard.gpu);
                        continue;
                    }
                    self.abandon(s, &batch, st);
                    return Ok(());
                }
                Err(e)
                    if e.is_transient()
                        && attempts < self.cfg.serve.resilience.retry.max_attempts_per_dispatch
                        && self.retry_budget.try_spend() =>
                {
                    let backoff_s = jittered_backoff_s(
                        &self.cfg.serve.resilience.retry,
                        attempts,
                        self.retry_seq,
                    );
                    self.retry_seq += 1;
                    attempts += 1;
                    backoff_total += backoff_s;
                    for &parent_id in &member_parents {
                        if let Some(p) = st.parents.get_mut(&parent_id) {
                            p.ctx.retried();
                        }
                    }
                    st.events.push(ClusterEvent::DispatchRetried {
                        gpu: s,
                        attempt: attempts,
                        backoff_s,
                    });
                    continue;
                }
                Err(e) => {
                    if e.is_transient() {
                        st.events.push(ClusterEvent::RetriesExhausted {
                            gpu: s,
                            keys: batch.len(),
                        });
                    }
                    self.abandon(s, &batch, st);
                    return Ok(());
                }
            }
        }
    }

    /// Demultiplex a finished dispatch's matches to their parents, price
    /// remote merges over the peer link, and answer parents whose last key
    /// was just probed.
    fn deliver(&mut self, s: usize, pd: PendingDispatch, st: &mut RunState) {
        // rid → key (rids are unique within a dispatch).
        let rid_key: BTreeMap<u64, u64> = pd.batch.iter().map(|&(k, rid)| (rid, k)).collect();
        // Per-parent keys probed and matches produced, in first-occurrence
        // batch order (deterministic merge order).
        let mut order: Vec<u64> = Vec::new();
        let mut keys_of: BTreeMap<u64, usize> = BTreeMap::new();
        let mut matches_of: BTreeMap<u64, u64> = BTreeMap::new();
        // Distinct sub-requests per parent (first-occurrence order) and
        // matches per sub, for per-leg span accounting.
        let mut subs_of: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut sub_matches: BTreeMap<u64, usize> = BTreeMap::new();
        for &(_, rid) in &pd.batch {
            let (sub_id, _) = self.shards[s].batcher.resolve(rid);
            let parent_id = st.subs[sub_id as usize].parent;
            if !keys_of.contains_key(&parent_id) {
                order.push(parent_id);
            }
            *keys_of.entry(parent_id).or_insert(0) += 1;
            let subs = subs_of.entry(parent_id).or_default();
            if !subs.contains(&sub_id) {
                subs.push(sub_id);
            }
        }
        let base = pd.base;
        for &(rid, pos) in &pd.pairs {
            let (sub_id, _) = self.shards[s].batcher.resolve(rid);
            let parent_id = st.subs[sub_id as usize].parent;
            if let Some(p) = st.parents.get_mut(&parent_id) {
                p.matches.push((rid_key[&rid], base + pos));
                *matches_of.entry(parent_id).or_insert(0) += 1;
                *sub_matches.entry(sub_id).or_insert(0) += 1;
            }
        }
        for parent_id in order {
            let Some(p) = st.parents.get_mut(&parent_id) else {
                continue; // parent shed while this dispatch was in flight
            };
            p.remaining -= keys_of[&parent_id];
            let delivery_s = if p.coordinator == s {
                pd.done_s
            } else {
                // Merge leg: matched pairs stream back to the coordinator.
                let out_bytes = matches_of.get(&parent_id).copied().unwrap_or(0) * MATCH_BYTES;
                st.cross_shard_bytes += out_bytes;
                self.shards[s].cross_bytes += out_bytes;
                pd.done_s + self.link.transfer_s(out_bytes)
            };
            p.ready_s = p.ready_s.max(delivery_s);
            p.ctx.first_result(delivery_s);
            for &sub_id in &subs_of[&parent_id] {
                p.ctx.leg_delivered(
                    st.leg_of_sub[sub_id as usize],
                    pd.done_s,
                    delivery_s,
                    sub_matches.get(&sub_id).copied().unwrap_or(0),
                );
            }
            if p.remaining == 0 {
                let mut p = st.parents.remove(&parent_id).expect("parent present");
                let latency = p.ready_s - p.submitted_s;
                let outcome = match p.deadline {
                    Some(d) if latency > d => RequestOutcome::DeadlineMissed,
                    _ => RequestOutcome::Completed,
                };
                p.ctx.merged(p.ready_s);
                st.traces
                    .push(p.ctx.finish(p.ready_s, outcome, p.matches.len()));
                st.responses.push(LookupResponse {
                    request: parent_id,
                    tenant: p.tenant,
                    outcome,
                    matches: p.matches,
                    submitted_s: p.submitted_s,
                    completed_s: p.ready_s,
                    latency_s: latency,
                });
            }
        }
    }

    /// The cluster rungs of the degradation ladder: shard `s` is gone.
    /// Replicated placement fails its queue over to a surviving replica;
    /// sharded placement merges its partitions into an adjacent survivor
    /// and rebuilds that survivor's index on the virtual clock. The failed
    /// batch and everything queued on the lost shard move to the target.
    fn lose_shard(
        &mut self,
        s: usize,
        failed_batch: Vec<(u64, u64)>,
        st: &mut RunState,
    ) -> Result<(), WindexError> {
        self.shards[s].alive = false;
        self.shards[s].device_losses += 1;
        let target = match self.cfg.cluster.placement {
            Placement::Replicated => {
                // First live replica after s in cyclic order.
                (1..self.shards.len())
                    .map(|d| (s + d) % self.shards.len())
                    .find(|&t| self.shards[t].alive)
                    .expect("lose_shard requires a survivor")
            }
            Placement::Sharded => {
                // Alive shards tile sorted R contiguously, so an adjacent
                // survivor always exists; merging into it keeps the
                // survivor's slice contiguous.
                let (lo, hi) = (self.shards[s].lo, self.shards[s].hi);
                (0..self.shards.len())
                    .find(|&t| {
                        t != s
                            && self.shards[t].alive
                            && (self.shards[t].hi == lo || self.shards[t].lo == hi)
                    })
                    .expect("alive shards tile R contiguously")
            }
        };

        // Move the failed batch and the lost shard's staged keys, in age
        // order, onto the target's batcher; then its still-queued legs
        // onto the target's scheduler.
        let pending_n = self.shards[s].batcher.pending();
        let pending = self.shards[s].batcher.take(pending_n, st.clock_s);
        let mut moved_subs = 0usize;
        for chunk in [failed_batch, pending] {
            for (sub_id, keys) in group_by_sub(&self.shards[s].batcher, &chunk) {
                if st.parents.contains_key(&st.subs[sub_id as usize].parent) {
                    self.shards[target].batcher.stage(sub_id, &keys, st.clock_s);
                    st.sub_home[sub_id as usize] = target;
                    moved_subs += 1;
                }
            }
        }
        while let Some(sub_id) = self.shards[s].sched.dequeue()? {
            let sub = &st.subs[sub_id as usize];
            if st.parents.contains_key(&sub.parent) {
                let (tenant, n_keys) = (sub.tenant, sub.keys.len());
                self.shards[target].sched.enqueue(tenant, sub_id, n_keys);
                st.sub_home[sub_id as usize] = target;
                moved_subs += 1;
            }
        }

        match self.cfg.cluster.placement {
            Placement::Replicated => {
                // The replica already holds all of R: recovery is just the
                // control-plane redirect, one link latency.
                let mttr_s = self.link.latency_ns * 1e-9;
                st.events.push(ClusterEvent::FailedOver {
                    gpu: s,
                    to: target,
                    subs_moved: moved_subs,
                    mttr_s,
                });
                st.failovers += 1;
                st.mttr_total_s += mttr_s;
            }
            Placement::Sharded => {
                // Merge the lost slice into the adjacent survivor and
                // rebuild its index; the rebuild queues behind whatever
                // the survivor is currently dispatching. The survivor does
                // not hold the lost tuples, so recovery first
                // re-materializes the slice over the fabric — that
                // transfer, priced by the configured link, usually
                // dominates the MTTR.
                let (lo, hi) = (self.shards[s].lo, self.shards[s].hi);
                let moved_tuples = hi - lo;
                let moved_bytes = moved_tuples as u64 * KEY_BYTES;
                let xfer_s = self.link.transfer_s(moved_bytes);
                let new_lo = self.shards[target].lo.min(lo);
                let new_hi = self.shards[target].hi.max(hi);
                let rebuild_at = st.clock_s.max(self.shards[target].busy_until_s) + xfer_s;
                let shard = &mut self.shards[target];
                shard.gpu.set_virtual_time(rebuild_at);
                let before = shard.gpu.snapshot();
                let col = Rc::new(
                    shard
                        .gpu
                        .alloc_host_from_vec(self.r.keys()[new_lo..new_hi].to_vec()),
                );
                let index = BuiltIndex::build(
                    &mut shard.gpu,
                    self.cfg.serve.index,
                    &col,
                    &IndexConfigs::default(),
                );
                let delta = shard.gpu.snapshot() - before;
                let rebuild_s = self.cost.estimate(&delta, false).total_s;
                shard.col = col;
                shard.index = index;
                shard.lo = new_lo;
                shard.hi = new_hi;
                shard.busy_until_s = rebuild_at + rebuild_s;
                shard.busy_s += xfer_s + rebuild_s;
                shard.cross_bytes += moved_bytes;
                st.cross_shard_bytes += moved_bytes;
                let partitions = self.router.reassign_all(s, target);
                let mttr_s = (rebuild_at + rebuild_s) - st.clock_s;
                st.events.push(ClusterEvent::ReSharded {
                    gpu: s,
                    to: target,
                    partitions,
                    tuples: moved_tuples,
                    mttr_s,
                });
                st.reshards += 1;
                st.mttr_total_s += mttr_s;
            }
        }
        Ok(())
    }

    /// In-place device recovery for a cluster with no survivor (one GPU):
    /// wait out the outage, rebuild index/operator/sink from the slice.
    /// Returns the MTTR relative to `now_s`.
    fn recover_in_place(&mut self, s: usize, now_s: f64) -> Result<f64, WindexError> {
        let shard = &mut self.shards[s];
        shard.gpu.reset_memory_system();
        let clearance_s = shard.gpu.chaos_clearance_s().max(now_s);
        shard.gpu.set_virtual_time(clearance_s);
        let before = shard.gpu.snapshot();
        shard.index = BuiltIndex::build(
            &mut shard.gpu,
            self.cfg.serve.index,
            &shard.col,
            &IndexConfigs::default(),
        );
        shard.op = StreamingWindowJoin::new(
            &mut shard.gpu,
            WindowConfig {
                window_tuples: shard.window_tuples,
                bits: self.router.bits(),
                min_key: self.router.min_key(),
            },
        )?;
        let old = std::mem::replace(
            &mut shard.sink.sink,
            windex_join::ResultSink::with_capacity(
                &mut shard.gpu,
                shard.window_tuples,
                shard.sink.loc,
            )?,
        );
        old.free(&mut shard.gpu);
        let delta = shard.gpu.snapshot() - before;
        let rebuild_s = self.cost.estimate(&delta, false).total_s;
        shard.busy_s += rebuild_s;
        Ok((clearance_s - now_s) + rebuild_s)
    }

    /// Shed every request with a key in shard `s`'s failed batch, dropping
    /// their still-pending legs from every shard.
    fn abandon(&mut self, s: usize, batch: &[(u64, u64)], st: &mut RunState) {
        self.shards[s].sink.sink.clear();
        let mut victims: Vec<u64> = Vec::new();
        for &(_, rid) in batch {
            let (sub_id, _) = self.shards[s].batcher.resolve(rid);
            let parent_id = st.subs[sub_id as usize].parent;
            if st.parents.contains_key(&parent_id) && !victims.contains(&parent_id) {
                victims.push(parent_id);
            }
        }
        st.events.push(ClusterEvent::BatchAbandoned {
            gpu: s,
            keys: batch.len(),
            requests: victims.len(),
        });
        for parent_id in victims {
            if let Some(p) = st.parents.remove(&parent_id) {
                for &sub_id in &p.subs {
                    let home = st.sub_home[sub_id as usize];
                    // Purge the leg wherever it sits: still queued under
                    // DRR (so queued_keys stops counting it toward the
                    // admission backlog) or already staged in the batcher.
                    let tenant = st.subs[sub_id as usize].tenant;
                    self.shards[home].sched.cancel(tenant, sub_id);
                    self.shards[home].batcher.drop_request(sub_id);
                }
                st.traces
                    .push(p.ctx.finish(st.clock_s, RequestOutcome::Shed, 0));
                st.responses.push(shed_response(
                    parent_id,
                    p.tenant,
                    p.submitted_s,
                    st.clock_s,
                ));
            }
        }
    }

    /// Assemble the [`ClusterReport`].
    fn finish(
        &mut self,
        trace: &[TimedRequest],
        mut st: RunState,
    ) -> Result<ClusterOutcome, WindexError> {
        st.responses.sort_by_key(|r| r.request);
        st.traces.sort_by_key(|t| t.request);
        debug_assert_eq!(
            st.traces.len(),
            st.responses.len(),
            "every response carries a span tree"
        );
        let stages = StageLatencyStats::from_traces(&st.traces);
        let tail = sample_tail(&st.traces, &TailConfig::default());
        let completed = st
            .responses
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Completed)
            .count();
        let shed = st
            .responses
            .iter()
            .filter(|r| r.outcome == RequestOutcome::Shed)
            .count();
        let deadline_missed = st
            .responses
            .iter()
            .filter(|r| r.outcome == RequestOutcome::DeadlineMissed)
            .count();
        let samples: Vec<f64> = st
            .responses
            .iter()
            .filter(|r| r.outcome != RequestOutcome::Shed)
            .map(|r| r.latency_s)
            .collect();
        let latency_hist = LatencyHistogram::from_samples(&samples);
        let latency = LatencyStats::from_samples(samples);
        // Merge transfers can outlast the final loop event, so the
        // makespan is the later of the clock and the last delivery.
        let makespan = st
            .responses
            .iter()
            .map(|r| r.completed_s)
            .fold(st.clock_s, f64::max);
        let mut slo_tracker = SloTracker::new(&self.cfg.serve.resilience.slo);
        for r in &st.responses {
            slo_tracker.observe(r.outcome != RequestOutcome::Shed, r.latency_s);
        }
        let slo = slo_tracker.finish(makespan);
        let keys_probed: usize = self.shards.iter().map(|sh| sh.keys_probed).sum();
        let per_shard: Vec<ShardLoad> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, sh)| ShardLoad {
                gpu: s,
                alive: sh.alive,
                partitions: if self.cfg.cluster.placement == Placement::Replicated {
                    if sh.alive {
                        self.router.bits().partitions()
                    } else {
                        0
                    }
                } else {
                    self.router.partitions_owned(s)
                },
                tuples: if sh.alive { sh.hi - sh.lo } else { 0 },
                subrequests: sh.subrequests,
                keys_probed: sh.keys_probed,
                dispatches: sh.dispatches,
                matches: sh.matches,
                max_queue_depth_keys: sh.max_queue_depth_keys,
                busy_s: sh.busy_s,
                cross_bytes: sh.cross_bytes,
            })
            .collect();
        let routed = st.single_shard_requests + st.cross_shard_requests;
        let report = ClusterReport {
            gpus: self.shards.len(),
            alive_gpus: self.shards.iter().filter(|sh| sh.alive).count(),
            placement: self.cfg.cluster.placement.name().to_string(),
            link: self.link.name.to_string(),
            policy: self.cfg.serve.policy.label(),
            index: self.cfg.serve.index,
            tenants: {
                let mut t: Vec<TenantId> = trace.iter().map(|t| t.request.tenant).collect();
                t.sort_unstable();
                t.dedup();
                t.len()
            },
            requests: trace.len(),
            completed,
            shed,
            deadline_missed,
            result_tuples: st.responses.iter().map(|r| r.matches.len()).sum(),
            keys_probed,
            single_shard_requests: st.single_shard_requests,
            cross_shard_requests: st.cross_shard_requests,
            cross_shard_fraction: if routed > 0 {
                st.cross_shard_requests as f64 / routed as f64
            } else {
                0.0
            },
            cross_shard_bytes: st.cross_shard_bytes,
            virtual_makespan_s: makespan,
            completed_rps: if makespan > 0.0 {
                completed as f64 / makespan
            } else {
                0.0
            },
            keys_per_second: if makespan > 0.0 {
                keys_probed as f64 / makespan
            } else {
                0.0
            },
            latency,
            latency_hist,
            per_shard,
            events: st.events,
            failovers: st.failovers,
            reshards: st.reshards,
            recoveries: st.recoveries,
            mttr_total_s: st.mttr_total_s,
            slo,
            stages,
            traces: st.traces,
            tail,
        };
        Ok(ClusterOutcome {
            responses: st.responses,
            report,
        })
    }
}

/// The contiguous slice of sorted `r` owned by `shard` under `router`'s
/// initial contiguous partition assignment.
fn owned_range(router: &ShardRouter, r: &Relation, shard: usize) -> (usize, usize) {
    let keys = r.keys();
    let lo = keys.partition_point(|&k| router.shard_of(k) < shard);
    let hi = keys.partition_point(|&k| router.shard_of(k) <= shard);
    (lo, hi)
}

/// Group a drained `(key, rid)` run back into per-sub-request key lists.
/// Staged keys of one sub are contiguous, so grouping consecutive rids by
/// their sub id preserves both membership and order.
fn group_by_sub(batcher: &MicroBatcher, chunk: &[(u64, u64)]) -> Vec<(u64, Vec<u64>)> {
    let mut out: Vec<(u64, Vec<u64>)> = Vec::new();
    for &(key, rid) in chunk {
        let (sub_id, _) = batcher.resolve(rid);
        match out.last_mut() {
            Some((last, keys)) if *last == sub_id => keys.push(key),
            _ => out.push((sub_id, vec![key])),
        }
    }
    out
}

/// Build a [`RequestOutcome::Shed`] response.
fn shed_response(id: u64, tenant: TenantId, submitted_s: f64, now_s: f64) -> LookupResponse {
    LookupResponse {
        request: id,
        tenant,
        outcome: RequestOutcome::Shed,
        matches: Vec::new(),
        submitted_s,
        completed_s: now_s,
        latency_s: now_s - submitted_s,
    }
}
