//! Cluster-level serving metrics: per-shard load, cross-shard traffic, and
//! the failover/re-shard event stream.

use crate::report::{LatencyHistogram, LatencyStats};
use crate::request::TenantId;
use crate::resilience::SloReport;
use crate::span::{RequestTrace, StageLatencyStats, TailReport};
use serde::Serialize;
use windex_index::IndexKind;

/// One notable cluster event during a served trace, in occurrence order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ClusterEvent {
    /// A lost GPU's traffic was redirected to a surviving replica
    /// (replicated placement, first cluster rung of the ladder).
    FailedOver {
        /// The lost GPU.
        gpu: usize,
        /// The replica that absorbed its queue.
        to: usize,
        /// Sub-requests moved off the lost device.
        subs_moved: usize,
        /// Virtual time from loss to the replica accepting work.
        mttr_s: f64,
    },
    /// A lost GPU's partitions were re-sharded onto an adjacent survivor
    /// (sharded placement, second cluster rung): the survivor's slice grew
    /// and its index was rebuilt on the virtual clock.
    ReSharded {
        /// The lost GPU.
        gpu: usize,
        /// The adjacent survivor that now owns its partitions.
        to: usize,
        /// Partitions that moved.
        partitions: usize,
        /// Tuples merged into the survivor's slice.
        tuples: usize,
        /// Virtual time from loss until the partitions were servable
        /// again (index rebuild on the survivor).
        mttr_s: f64,
    },
    /// A single-GPU cluster rebuilt its only device in place (the PR 6
    /// recovery path: wait out the outage, rebuild index/operator/sink).
    DeviceRecovered {
        /// The recovered GPU.
        gpu: usize,
        /// Outage wait plus rebuild estimate, in virtual seconds.
        mttr_s: f64,
    },
    /// A shard's shared window was halved under device-memory pressure.
    ShardWindowShrunk {
        /// The degraded GPU.
        gpu: usize,
        /// Window capacity before the shrink.
        from: usize,
        /// Window capacity after.
        to: usize,
    },
    /// A shard's result sink moved to CPU memory.
    ShardSinkSpilled {
        /// The degraded GPU.
        gpu: usize,
    },
    /// A request was refused at admission: a target shard's backlog would
    /// have crossed the backpressure bound.
    LoadShed {
        /// The refused tenant.
        tenant: TenantId,
        /// Trace ordinal of the refused request.
        request: u64,
        /// Keys the request carried.
        keys: usize,
    },
    /// A shard's dispatched batch could not complete even after
    /// degradation; every request with a key in it was shed.
    BatchAbandoned {
        /// The shedding GPU.
        gpu: usize,
        /// Keys in the abandoned batch.
        keys: usize,
        /// Requests shed with it.
        requests: usize,
    },
    /// A transient dispatch failure was redriven after jittered backoff.
    DispatchRetried {
        /// The retrying GPU.
        gpu: usize,
        /// 1-based retry ordinal within the dispatch.
        attempt: u32,
        /// Backoff charged to the shard's clock, in seconds.
        backoff_s: f64,
    },
    /// A batch exhausted its retry attempts or the cluster retry budget.
    RetriesExhausted {
        /// The GPU that gave up.
        gpu: usize,
        /// Keys in the shed batch.
        keys: usize,
    },
}

/// Per-GPU load accounting over one served trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ShardLoad {
    /// The GPU instance.
    pub gpu: usize,
    /// Whether the device was still alive at trace end.
    pub alive: bool,
    /// Radix partitions owned at trace end (0 after its partitions were
    /// re-sharded away; the full radix under replication).
    pub partitions: usize,
    /// Tuples resident in the shard's slice at trace end.
    pub tuples: usize,
    /// Sub-requests routed to this shard.
    pub subrequests: usize,
    /// Probe keys dispatched through this shard's windows.
    pub keys_probed: usize,
    /// Windows this shard dispatched.
    pub dispatches: usize,
    /// Join matches this shard produced.
    pub matches: usize,
    /// Largest queued-key backlog observed at any admission.
    pub max_queue_depth_keys: usize,
    /// Virtual time this shard spent busy (dispatching or rebuilding).
    pub busy_s: f64,
    /// Peer-link bytes this shard exchanged for remote-coordinator work
    /// (fan-out keys in, merged matches out).
    pub cross_bytes: u64,
}

/// Everything measured about one cluster-served trace. Serialized through
/// the workspace JSON path; same seed ⇒ byte-identical serialization.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterReport {
    /// GPU instances the cluster was built with.
    pub gpus: usize,
    /// Instances still alive at trace end.
    pub alive_gpus: usize,
    /// Placement label (`"sharded"` / `"replicated"`).
    pub placement: String,
    /// Peer-link name the inter-GPU edges were priced with.
    pub link: String,
    /// Dispatch-policy label.
    pub policy: String,
    /// Index kind probed on every shard.
    pub index: IndexKind,
    /// Distinct tenants that submitted requests.
    pub tenants: usize,
    /// Requests in the trace.
    pub requests: usize,
    /// Requests fully served within their deadline (or with none set).
    pub completed: usize,
    /// Requests shed by admission control or abandoned dispatches.
    pub shed: usize,
    /// Requests served but past their deadline.
    pub deadline_missed: usize,
    /// Total matches returned across all responses.
    pub result_tuples: usize,
    /// Probe keys dispatched through shard windows, cluster-wide.
    pub keys_probed: usize,
    /// Routed requests whose keys all landed on one shard.
    pub single_shard_requests: usize,
    /// Routed requests that fanned out across ≥ 2 shards.
    pub cross_shard_requests: usize,
    /// `cross_shard_requests / routed requests` (0 when none routed).
    pub cross_shard_fraction: f64,
    /// Total peer-link bytes moved (fan-out keys plus merged matches).
    pub cross_shard_bytes: u64,
    /// Virtual time from first arrival to last response delivery
    /// (including merge transfers on the peer link).
    pub virtual_makespan_s: f64,
    /// Completed requests per virtual second, aggregate over the cluster.
    pub completed_rps: f64,
    /// Probed keys per virtual second, aggregate.
    pub keys_per_second: f64,
    /// Latency distribution over served (non-shed) requests.
    pub latency: LatencyStats,
    /// Fixed-bucket latency histogram over the same samples.
    pub latency_hist: LatencyHistogram,
    /// Per-GPU accounting, ascending GPU id.
    pub per_shard: Vec<ShardLoad>,
    /// Cluster events, in order.
    pub events: Vec<ClusterEvent>,
    /// Device losses absorbed by failing over to a replica.
    pub failovers: usize,
    /// Device losses absorbed by re-sharding onto a survivor.
    pub reshards: usize,
    /// Device losses absorbed by in-place rebuild (single-GPU rung).
    pub recoveries: usize,
    /// Summed MTTR across all recovery events, in virtual seconds.
    pub mttr_total_s: f64,
    /// SLO attainment (availability, goodput, tail latency).
    pub slo: SloReport,
    /// Per-stage latency distributions (queue / batch / service /
    /// straggler-merge / other) over every request's span tree.
    pub stages: StageLatencyStats,
    /// One span tree per request, ordered by request id. Stage spans of
    /// each tree partition its admission→completion interval exactly.
    pub traces: Vec<RequestTrace>,
    /// Deterministic tail sample: exact top-K slowest plus a seeded
    /// uniform sample, as renderable query cards.
    pub tail: TailReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_with_fields() {
        let e = ClusterEvent::ReSharded {
            gpu: 1,
            to: 0,
            partitions: 16,
            tuples: 32768,
            mttr_s: 0.004,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("ReSharded"), "{json}");
        assert!(json.contains("\"partitions\":16"), "{json}");
        let f = ClusterEvent::FailedOver {
            gpu: 2,
            to: 3,
            subs_moved: 5,
            mttr_s: 5e-7,
        };
        assert!(serde_json::to_string(&f).unwrap().contains("FailedOver"));
    }
}
