//! The request model: what a tenant submits and what the server returns.
//!
//! A [`LookupRequest`] is one client's batch of probe keys against the
//! served relation — the serving-layer analogue of one tiny probe-side
//! stream in the paper's join (§5.1). Responses carry the per-request match
//! set plus virtual-time latency accounting, so latency–throughput curves
//! come straight out of a served trace.

use serde::Serialize;

/// Identifies one client/tenant of the server.
pub type TenantId = u32;

/// One client lookup: probe the served relation with `keys`.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupRequest {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Probe keys. Keys need not exist in the served relation; misses
    /// simply produce no match.
    pub keys: Vec<u64>,
    /// Optional latency budget in virtual seconds from submission.
    /// Responses completing later are marked
    /// [`RequestOutcome::DeadlineMissed`] (results are still returned).
    pub deadline: Option<f64>,
}

impl LookupRequest {
    /// A request with no deadline.
    pub fn new(tenant: TenantId, keys: Vec<u64>) -> Self {
        LookupRequest {
            tenant,
            keys,
            deadline: None,
        }
    }

    /// Attach a latency budget (virtual seconds from submission).
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline = Some(deadline_s);
        self
    }
}

/// How a request left the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RequestOutcome {
    /// All keys were probed and matches returned within the deadline (or no
    /// deadline was set).
    Completed,
    /// All keys were probed but completion came after the request's
    /// deadline; the match set is still valid.
    DeadlineMissed,
    /// The request was shed — by admission control (queue over the
    /// backpressure bound) or because its dispatch could not complete even
    /// after degradation. No matches are returned.
    Shed,
}

/// The server's answer to one [`LookupRequest`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LookupResponse {
    /// Server-assigned request id (arrival order over the whole trace).
    pub request: u64,
    /// The submitting tenant (echoed for demultiplexing checks).
    pub tenant: TenantId,
    /// How the request left the server.
    pub outcome: RequestOutcome,
    /// Matches as `(probe key, index position)` pairs, in probe order per
    /// dispatched window. Empty for shed requests and full misses.
    pub matches: Vec<(u64, u64)>,
    /// Virtual time the request arrived.
    pub submitted_s: f64,
    /// Virtual time the response was produced.
    pub completed_s: f64,
    /// `completed_s - submitted_s`: queueing delay (including deliberate
    /// batching delay) plus service time, in virtual seconds.
    pub latency_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_builder() {
        let r = LookupRequest::new(3, vec![1, 2]).with_deadline(0.5);
        assert_eq!(r.tenant, 3);
        assert_eq!(r.deadline, Some(0.5));
    }

    #[test]
    fn response_serializes() {
        let resp = LookupResponse {
            request: 1,
            tenant: 2,
            outcome: RequestOutcome::Completed,
            matches: vec![(10, 5)],
            submitted_s: 0.0,
            completed_s: 1.0,
            latency_s: 1.0,
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"outcome\":\"Completed\""), "{json}");
        assert!(json.contains("[[10,5]]"), "{json}");
    }
}
