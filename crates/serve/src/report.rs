//! Serving metrics: virtual-time latency distributions and the
//! [`ServerReport`] rendered through the workspace's JSON output path.

use crate::request::TenantId;
use crate::span::{RequestTrace, StageLatencyStats, TailReport};
use serde::Serialize;
use windex_core::WindowStats;
use windex_index::IndexKind;
use windex_sim::{Counters, PhaseBreakdown};

/// Latency distribution over completed requests, in virtual seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct LatencyStats {
    /// Requests the distribution covers (completed + deadline-missed).
    pub samples: usize,
    /// Mean latency.
    pub mean_s: f64,
    /// Median (nearest-rank).
    pub p50_s: f64,
    /// 95th percentile (nearest-rank).
    pub p95_s: f64,
    /// 99th percentile (nearest-rank).
    pub p99_s: f64,
    /// Slowest request.
    pub max_s: f64,
    /// Non-finite samples (NaN/∞) excluded from the distribution. Always
    /// 0 on healthy runs; non-zero flags a virtual-clock defect upstream
    /// instead of panicking the report.
    pub dropped: usize,
}

/// Fixed latency-histogram bucket upper bounds, in virtual seconds.
/// Log-spaced from 1 µs to 10 s; an implicit +∞ bucket catches the rest.
/// Fixed (rather than data-derived) bounds keep the OpenMetrics exposition
/// comparable across runs and byte-deterministic per seed.
pub const LATENCY_BUCKET_BOUNDS_S: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Fixed-bucket latency histogram over served requests, the shape the
/// OpenMetrics exposition needs (`le`-bucketed cumulative counts derive
/// from it). Counts here are *per-bucket*, not cumulative.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LatencyHistogram {
    /// Bucket upper bounds ([`LATENCY_BUCKET_BOUNDS_S`]), ascending.
    pub bounds_s: Vec<f64>,
    /// Per-bucket sample counts; one longer than `bounds_s` (the trailing
    /// entry is the +∞ overflow bucket).
    pub counts: Vec<u64>,
    /// Total finite samples observed.
    pub count: u64,
    /// Sum of finite samples, in virtual seconds.
    pub sum_s: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            bounds_s: LATENCY_BUCKET_BOUNDS_S.to_vec(),
            counts: vec![0; LATENCY_BUCKET_BOUNDS_S.len() + 1],
            count: 0,
            sum_s: 0.0,
        }
    }
}

impl LatencyHistogram {
    /// Bucket the samples against the fixed bounds. Non-finite samples are
    /// ignored (they are already accounted in [`LatencyStats::dropped`]).
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut h = LatencyHistogram::default();
        for &s in samples.iter().filter(|s| s.is_finite()) {
            let idx = h
                .bounds_s
                .iter()
                .position(|&b| s <= b)
                .unwrap_or(h.bounds_s.len());
            h.counts[idx] += 1;
            h.count += 1;
            h.sum_s += s;
        }
        h
    }

    /// Cumulative counts per bound (OpenMetrics `le` semantics); one entry
    /// per bound plus the trailing `+Inf` total.
    pub fn cumulative(&self) -> Vec<u64> {
        self.counts
            .iter()
            .scan(0u64, |acc, &c| {
                *acc += c;
                Some(*acc)
            })
            .collect()
    }
}

/// Per-tenant request accounting over one served trace, in ascending
/// tenant-id order (deterministic exposition order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct TenantLoad {
    /// The tenant.
    pub tenant: TenantId,
    /// Requests this tenant submitted (admitted or shed).
    pub requests: usize,
    /// Requests served within deadline (or with none set).
    pub completed: usize,
    /// Requests shed at admission or via abandoned batches.
    pub shed: usize,
    /// Requests served past their deadline.
    pub deadline_missed: usize,
    /// Probe keys across all of this tenant's requests.
    pub keys: usize,
    /// Join matches returned to this tenant.
    pub matches: usize,
}

impl LatencyStats {
    /// Compute the distribution from raw samples (order-insensitive).
    /// Non-finite samples are dropped and counted in `dropped` rather than
    /// poisoning the sort or the percentiles.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        let n_raw = samples.len();
        samples.retain(|s| s.is_finite());
        let dropped = n_raw - samples.len();
        if samples.is_empty() {
            return LatencyStats {
                dropped,
                ..LatencyStats::default()
            };
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let rank = |q: f64| samples[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        LatencyStats {
            samples: n,
            mean_s: samples.iter().sum::<f64>() / n as f64,
            p50_s: rank(0.50),
            p95_s: rank(0.95),
            p99_s: rank(0.99),
            max_s: samples[n - 1],
            dropped,
        }
    }
}

/// One entry in the server's per-dispatch timeline: a batch pushed through
/// the shared operator, with the counter events and virtual time it cost —
/// summed across degradation attempts (a batch retried after a window
/// shrink is still one dispatch).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct BatchSpan {
    /// Zero-based dispatch ordinal within the run.
    pub batch: usize,
    /// Virtual clock at dispatch start, in seconds — places the span on
    /// the served timeline (trace exporters consume this).
    pub at_s: f64,
    /// Probe keys the batch carried.
    pub keys: usize,
    /// Windows the successful attempt closed (0 for an abandoned batch).
    pub windows: usize,
    /// Whether the batch completed (false: shed after degradation).
    pub completed: bool,
    /// Counter events across all attempts of this dispatch.
    pub counters: Counters,
    /// Virtual time charged for this dispatch, in seconds.
    pub est_s: f64,
}

/// One notable event during a served trace, in occurrence order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ServeEvent {
    /// The shared window was halved to fit the device-memory headroom
    /// (the serving analogue of the query engine's degradation ladder).
    WindowShrunk {
        /// Window capacity (keys) before the shrink.
        from: usize,
        /// Window capacity after the shrink.
        to: usize,
    },
    /// The result sink was placed in (or moved to) CPU memory because the
    /// device budget could not hold it.
    SinkSpilledToCpu,
    /// A request was refused at admission: accepting it would have pushed
    /// the queued-key backlog past the backpressure bound.
    LoadShed {
        /// The refused tenant.
        tenant: TenantId,
        /// Server-assigned id of the refused request.
        request: u64,
        /// Keys the request carried.
        keys: usize,
    },
    /// A dispatched batch could not complete even after degradation (e.g.
    /// a fault outlasting its retries); its requests were shed.
    BatchAbandoned {
        /// Keys in the abandoned batch.
        keys: usize,
        /// Requests shed with it.
        requests: usize,
    },
    /// An open (or probing) circuit breaker fast-rejected a request at
    /// admission.
    CircuitShed {
        /// The rejected tenant.
        tenant: TenantId,
        /// Server-assigned id of the rejected request.
        request: u64,
    },
    /// A tenant's breaker tripped open after consecutive hard failures (or
    /// a failed half-open probe).
    CircuitOpened {
        /// The tenant whose breaker opened.
        tenant: TenantId,
        /// Virtual instant until which the breaker fast-rejects.
        until_s: f64,
    },
    /// A half-open probe succeeded and closed the tenant's breaker.
    CircuitClosed {
        /// The tenant whose breaker closed.
        tenant: TenantId,
    },
    /// A transient dispatch failure was redriven after deterministic
    /// jittered backoff on the virtual clock.
    DispatchRetried {
        /// 1-based retry ordinal within the dispatch.
        attempt: u32,
        /// Backoff charged to the virtual clock, in seconds.
        backoff_s: f64,
    },
    /// A batch exhausted its retry attempts (or the retry budget) on a
    /// transient fault and was shed.
    RetriesExhausted {
        /// Keys in the shed batch.
        keys: usize,
    },
    /// The device was lost and recovered: index, operator, and sink were
    /// rebuilt on the virtual clock after the outage cleared.
    DeviceLossRecovered {
        /// Mean-time-to-recovery in virtual seconds: outage wait plus the
        /// cost-model estimate of the rebuild.
        mttr_s: f64,
    },
}

/// Everything measured about one served trace. Serialized through the same
/// JSON path as [`QueryReport`](windex_core::QueryReport); same seed ⇒
/// byte-identical serialization.
#[derive(Debug, Clone, Serialize)]
pub struct ServerReport {
    /// Dispatch-policy label, e.g. `"shared(max_delay=200us)"`.
    pub policy: String,
    /// Index kind probed by the shared operator.
    pub index: IndexKind,
    /// Distinct tenants that submitted requests.
    pub tenants: usize,
    /// Requests admitted to the server (the whole trace).
    pub requests: usize,
    /// Requests fully served within their deadline (or with none set).
    pub completed: usize,
    /// Requests shed by admission control or abandoned dispatches.
    pub shed: usize,
    /// Requests served but past their deadline.
    pub deadline_missed: usize,
    /// Total matches returned across all responses.
    pub result_tuples: usize,
    /// Probe keys actually dispatched through shared windows.
    pub keys_probed: usize,
    /// Windows dispatched and total matches (windows ≡ dispatches: the
    /// server closes exactly one window per dispatch).
    pub window: WindowStats,
    /// Mean keys per dispatched window — the batching win in one number
    /// (per-request execution leaves windows nearly empty).
    pub mean_batch_keys: f64,
    /// Window capacity as configured.
    pub configured_window_tuples: usize,
    /// Window capacity after any degradation, at trace end.
    pub effective_window_tuples: usize,
    /// Virtual time from first arrival to last response.
    pub virtual_makespan_s: f64,
    /// Completed requests per virtual second.
    pub completed_rps: f64,
    /// Probed keys per virtual second.
    pub keys_per_second: f64,
    /// Latency distribution over served (non-shed) requests.
    pub latency: LatencyStats,
    /// Fixed-bucket latency histogram over the same samples (feeds the
    /// OpenMetrics exposition).
    pub latency_hist: LatencyHistogram,
    /// Per-tenant accounting, ascending tenant id.
    pub per_tenant: Vec<TenantLoad>,
    /// Largest queued-key backlog observed at any admission.
    pub max_queue_depth_keys: usize,
    /// Degradation / shed events, in order.
    pub events: Vec<ServeEvent>,
    /// Counter delta over the whole served trace.
    pub counters: Counters,
    /// Operator retries during the trace (priced into virtual time).
    pub retries: u64,
    /// Per-phase decomposition of the trace's counter delta (partition /
    /// lookup / other). The span-sum invariant holds:
    /// `phases.counter_sum()` equals `counters`.
    pub phases: PhaseBreakdown,
    /// Per-dispatch timeline: one entry per batch pushed through the
    /// shared operator, in dispatch order.
    pub batches: Vec<BatchSpan>,
    /// SLO attainment over the trace: availability, goodput, and tail
    /// latency against the configured budget.
    pub slo: crate::resilience::SloReport,
    /// Circuit-breaker summary: trips, fast-rejects, and per-tenant
    /// end-of-trace state.
    pub breaker: crate::resilience::BreakerReport,
    /// Retry-budget summary: retries granted/denied this trace and tokens
    /// remaining.
    pub retry: crate::resilience::RetryReport,
    /// Per-stage latency decomposition (queue / batch / service / merge /
    /// other) over every request in the trace.
    pub stages: StageLatencyStats,
    /// One span tree per request, ascending request id. Every trace
    /// satisfies [`RequestTrace::validate`]: stage spans partition the
    /// admission→completion interval and sum exactly to the latency.
    pub traces: Vec<RequestTrace>,
    /// Deterministic tail sample: the top-K slowest requests plus a seeded
    /// uniform sample, as EXPLAIN-ANALYZE-style query cards.
    pub tail: TailReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec as pvec;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Percentiles of any finite sample set are monotone
        /// (p50 <= p95 <= p99 <= max), the mean lies inside the sample
        /// range, and nothing is dropped.
        #[test]
        fn percentiles_are_monotone(samples in pvec(0.0f64..10.0, 1..64)) {
            let l = LatencyStats::from_samples(samples.clone());
            prop_assert_eq!(l.samples, samples.len());
            prop_assert_eq!(l.dropped, 0);
            prop_assert!(l.p50_s <= l.p95_s);
            prop_assert!(l.p95_s <= l.p99_s);
            prop_assert!(l.p99_s <= l.max_s);
            let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(l.mean_s >= min - 1e-12 && l.mean_s <= l.max_s + 1e-12);
            prop_assert_eq!(
                l.max_s,
                samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            );
        }

        /// The distribution is order-insensitive: reversing the samples
        /// yields identical stats.
        #[test]
        fn order_insensitive(samples in pvec(0.0f64..10.0, 0..64)) {
            let forward = LatencyStats::from_samples(samples.clone());
            let mut rev = samples;
            rev.reverse();
            prop_assert_eq!(forward, LatencyStats::from_samples(rev));
        }

        /// A constant sample set collapses every percentile onto the
        /// constant — singletons and duplicate runs alike.
        #[test]
        fn duplicates_collapse(value in 0.0f64..10.0, n in 1usize..32) {
            let l = LatencyStats::from_samples(vec![value; n]);
            prop_assert_eq!(l.samples, n);
            prop_assert_eq!(l.p50_s, value);
            prop_assert_eq!(l.p95_s, value);
            prop_assert_eq!(l.p99_s, value);
            prop_assert_eq!(l.max_s, value);
            // The mean accumulates n rounded additions, so allow an ulp-
            // scale slack; the percentiles above are exact picks.
            prop_assert!((l.mean_s - value).abs() <= 1e-12 * value.max(1.0));
        }

        /// Non-finite samples never poison the percentiles: they land in
        /// `dropped` and the stats equal those of the finite subset.
        #[test]
        fn non_finite_samples_only_move_dropped(
            finite in pvec(0.0f64..10.0, 0..32),
            nans in 0usize..4,
            infs in 0usize..4,
        ) {
            let mut mixed = finite.clone();
            mixed.extend(std::iter::repeat_n(f64::NAN, nans));
            mixed.extend(std::iter::repeat_n(f64::INFINITY, infs));
            let clean = LatencyStats::from_samples(finite);
            let dirty = LatencyStats::from_samples(mixed);
            prop_assert_eq!(dirty.dropped, nans + infs);
            prop_assert_eq!(
                dirty,
                LatencyStats { dropped: nans + infs, ..clean }
            );
        }
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let l = LatencyStats::from_samples(samples);
        assert_eq!(l.samples, 100);
        assert_eq!(l.p50_s, 50.0);
        assert_eq!(l.p95_s, 95.0);
        assert_eq!(l.p99_s, 99.0);
        assert_eq!(l.max_s, 100.0);
        assert!((l.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_is_zeroed() {
        let l = LatencyStats::from_samples(vec![]);
        assert_eq!(l, LatencyStats::default());
    }

    #[test]
    fn non_finite_samples_are_dropped_not_panicked() {
        // Regression: a single NaN latency used to panic the whole report
        // via `partial_cmp(..).expect(..)` after the serve run completed.
        let l = LatencyStats::from_samples(vec![2.0, f64::NAN, 1.0, f64::INFINITY, 3.0]);
        assert_eq!(l.samples, 3);
        assert_eq!(l.dropped, 2);
        assert_eq!(l.p50_s, 2.0);
        assert_eq!(l.max_s, 3.0);
        assert!((l.mean_s - 2.0).abs() < 1e-12);
        // All-NaN input degrades to an empty (flagged) distribution.
        let l = LatencyStats::from_samples(vec![f64::NAN, f64::NAN]);
        assert_eq!(l.samples, 0);
        assert_eq!(l.dropped, 2);
        assert_eq!(l.mean_s, 0.0);
    }

    #[test]
    fn single_sample() {
        let l = LatencyStats::from_samples(vec![0.25]);
        assert_eq!(l.p50_s, 0.25);
        assert_eq!(l.p99_s, 0.25);
        assert_eq!(l.max_s, 0.25);
    }

    #[test]
    fn histogram_buckets_and_cumulative_counts() {
        let h = LatencyHistogram::from_samples(&[5e-7, 5e-6, 5e-6, 2e-3, 100.0, f64::NAN]);
        assert_eq!(h.count, 5, "NaN ignored");
        assert_eq!(h.counts[0], 1); // ≤ 1 µs
        assert_eq!(h.counts[1], 2); // ≤ 10 µs
        assert_eq!(h.counts[3], 0); // ≤ 1 ms is empty
        assert_eq!(h.counts[4], 1); // ≤ 10 ms holds the 2 ms sample
        assert_eq!(*h.counts.last().unwrap(), 1); // +Inf overflow
        let cum = h.cumulative();
        assert_eq!(*cum.last().unwrap(), h.count);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]), "monotone: {cum:?}");
    }

    #[test]
    fn histogram_boundary_is_inclusive() {
        // OpenMetrics `le` semantics: a sample equal to a bound lands in
        // that bucket, not the next.
        let h = LatencyHistogram::from_samples(&[1e-3]);
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.counts[4], 0);
    }

    #[test]
    fn events_serialize_with_fields() {
        let e = ServeEvent::WindowShrunk { from: 64, to: 32 };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("WindowShrunk"), "{json}");
        assert!(json.contains("\"from\":64"), "{json}");
    }
}
