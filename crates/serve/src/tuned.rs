//! Auto-tuned multi-tenant serving: one [`OnlineTuner`] per tenant closes
//! the loop between the measurement layers and plan selection.
//!
//! The shared-operator [`Server`](crate::server::Server) serves one
//! relation under one fixed plan — right for studying batching, wrong for
//! the paper's central finding that the best plan is *regime-dependent*
//! (hash join in-core, windowed INLJ out-of-core). A [`TunedServer`] hosts
//! one [`QuerySession`] **per tenant**, each over its own relation (1 GiB
//! and 64 GiB tenants coexist), batches each tenant's queued requests into
//! whole-batch dispatches, and lets a per-tenant tuner pick
//! `{strategy, window, partition bits}` at every batch boundary from
//! observed KPIs.
//!
//! Time is the usual virtual clock: the server charges each dispatch the
//! cost model's estimate (plus any priced strategy-switch build), requests
//! complete at dispatch-end, and device-loss recoveries jump the clock
//! through the session's PR 6 checkpoint path. A dispatch that degrades
//! (ladder step or device loss) pins that tenant's tuner until healthy
//! batches pass. Everything is a pure function of (seed, trace): repeated
//! runs serialize byte-identically.

use crate::report::{LatencyHistogram, LatencyStats};
use crate::request::{RequestOutcome, TenantId};
use crate::span::{
    sample_tail, RequestContext, RequestTrace, StageLatencyStats, TailConfig, TailReport,
};
use crate::trace::TimedRequest;
use serde::Serialize;
use std::collections::VecDeque;
use windex_core::{
    candidate_prior_s_per_key, default_candidates, CandidatePlan, KpiSample, OnlineTuner,
    QueryExecutor, QuerySession, TuneEvent, TunerConfig, WindexError,
};
use windex_join::PartitionBits;
use windex_sim::{CostModel, Counters, Gpu, GpuSpec};
use windex_workload::Relation;

#[inline]
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Configuration of a tuned serving run.
#[derive(Debug, Clone, Copy)]
pub struct TunedConfig {
    /// Keys a tenant must queue before its batch dispatches (a batch also
    /// dispatches when its oldest request has waited `max_delay_s`). The
    /// regime contrast lives here: at ~32 Ki keys a hash join amortizes
    /// streaming a small R but not a large one.
    pub batch_keys: usize,
    /// Longest a queued request waits before forcing a (possibly small)
    /// dispatch, in virtual seconds.
    pub max_delay_s: f64,
    /// Tuner discipline template. Each tenant's tuner derives its seed as
    /// `tuner.seed ^ splitmix64(tenant + 1)` so tenants draw independent
    /// exploration streams from one configured seed.
    pub tuner: TunerConfig,
}

impl Default for TunedConfig {
    fn default() -> Self {
        TunedConfig {
            batch_keys: 32_768,
            max_delay_s: 0.05,
            tuner: TunerConfig::default(),
        }
    }
}

/// One tuner decision on the served timeline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TunedServeEvent {
    /// The tenant whose tuner decided.
    pub tenant: TenantId,
    /// Virtual instant of the decision (the dispatch boundary).
    pub at_s: f64,
    /// The decision itself.
    pub event: TuneEvent,
}

/// Per-tenant accounting over one tuned run, ascending tenant id.
#[derive(Debug, Clone, Serialize)]
pub struct TunedTenantReport {
    /// The tenant.
    pub tenant: TenantId,
    /// Paper-scale size of the tenant's relation in GiB.
    pub paper_r_gib: f64,
    /// Requests the tenant submitted (all are served; no shedding here).
    pub requests: usize,
    /// Requests completed.
    pub completed: usize,
    /// Probe keys across all requests.
    pub keys: usize,
    /// Join matches returned.
    pub matches: usize,
    /// Batches dispatched for this tenant.
    pub batches: usize,
    /// Virtual time this tenant's dispatches occupied the device.
    pub busy_s: f64,
    /// Plan label the tuner ended on.
    pub final_plan: String,
    /// Argmin strategy switches taken.
    pub switches: u64,
    /// Exploration batches taken.
    pub explorations: u64,
    /// Batches decided while degradation-pinned.
    pub pinned_batches: u64,
    /// Mean relative |estimated − realized| per-key cost error.
    pub est_cost_error: f64,
}

/// Everything measured about one tuned serving run. Same seed and trace ⇒
/// byte-identical serialization.
#[derive(Debug, Clone, Serialize)]
pub struct TunedReport {
    /// Policy label, e.g. `"tuned(batch_keys=32768, max_delay=50ms)"`.
    pub policy: String,
    /// Tenants served.
    pub tenants: usize,
    /// Requests across the whole trace.
    pub requests: usize,
    /// Requests completed (the tuned server sheds nothing; it queues).
    pub completed: usize,
    /// Requests completing past their deadline, if deadlines were set.
    pub deadline_missed: usize,
    /// Probe keys dispatched.
    pub keys_probed: usize,
    /// Join matches returned across all tenants.
    pub result_tuples: usize,
    /// Batches dispatched across all tenants.
    pub batches: usize,
    /// Argmin switches across all tenants.
    pub switches: u64,
    /// Exploration batches across all tenants.
    pub explorations: u64,
    /// Virtual time from trace start to the last completion.
    pub virtual_makespan_s: f64,
    /// Virtual time the device spent executing dispatches (excludes
    /// arrival idle gaps and outage waits).
    pub busy_s: f64,
    /// Completed requests per *busy* virtual second — the throughput the
    /// tuner optimizes, comparable across policies on the same trace.
    pub aggregate_qps: f64,
    /// Completed requests per makespan second (includes idle time).
    pub completed_rps: f64,
    /// Probe keys per busy virtual second.
    pub keys_per_second: f64,
    /// Latency distribution over completed requests.
    pub latency: LatencyStats,
    /// Fixed-bucket histogram over the same samples.
    pub latency_hist: LatencyHistogram,
    /// Per-tenant accounting, ascending tenant id.
    pub per_tenant: Vec<TunedTenantReport>,
    /// Tuner decisions on the served timeline, in dispatch order.
    pub tune_events: Vec<TunedServeEvent>,
    /// Counter delta summed over every dispatch.
    pub counters: Counters,
    /// Mean relative cost-model error across all tenants' batches.
    pub est_cost_error: f64,
    /// Per-stage latency distributions over every request's span tree.
    pub stages: StageLatencyStats,
    /// One span tree per request, ordered by request id.
    pub traces: Vec<RequestTrace>,
    /// Deterministic tail sample (top-K slowest + seeded uniform).
    pub tail: TailReport,
}

struct Queued {
    at_s: f64,
    keys: Vec<u64>,
    deadline: Option<f64>,
    ctx: RequestContext,
}

struct Tenant {
    id: TenantId,
    session: QuerySession,
    tuner: OnlineTuner,
    paper_r_gib: f64,
    r_domain: u64,
    r_tuples: u64,
    queue: VecDeque<Queued>,
    queued_keys: usize,
    events_seen: usize,
    /// The tuner's last decision was an exploration: the next batch this
    /// tenant dispatches is a probe batch.
    explore_next: bool,
    requests: usize,
    completed: usize,
    deadline_missed: usize,
    keys: usize,
    matches: usize,
    batches: usize,
    busy_s: f64,
}

/// The auto-tuned server: per-tenant sessions, queues, and tuners over one
/// simulated device.
pub struct TunedServer {
    gpu: Gpu,
    cfg: TunedConfig,
    tenants: Vec<Tenant>,
}

impl TunedServer {
    /// Stage one session per `(tenant, relation)` and seed its tuner with
    /// analytic priors over `candidates` (the
    /// [`default_candidates`] set if `None`). Tenants must have distinct
    /// ids; they are served in ascending-id order on ties.
    pub fn new(
        spec: GpuSpec,
        cfg: TunedConfig,
        tenants: Vec<(TenantId, Relation)>,
        candidates: Option<Vec<CandidatePlan>>,
    ) -> Result<Self, WindexError> {
        let mut gpu = Gpu::new(spec);
        let model = CostModel::new(gpu.spec());
        let candidates = candidates.unwrap_or_else(default_candidates);
        let mut staged = Vec::with_capacity(tenants.len());
        for (id, r) in tenants {
            let priors: Vec<f64> = candidates
                .iter()
                .map(|c| {
                    candidate_prior_s_per_key(&model, c, r.len() as u64, cfg.batch_keys as u64)
                })
                .collect();
            let tuner_cfg = TunerConfig {
                seed: cfg.tuner.seed ^ splitmix64(id as u64 + 1),
                ..cfg.tuner
            };
            let tuner = OnlineTuner::new(tuner_cfg, candidates.clone(), priors);
            let paper_r_gib = gpu.spec().scale.paper_gib_for_sim_tuples(r.len());
            let r_domain = r.max_key().unwrap_or(0) - r.min_key().unwrap_or(0);
            let r_tuples = r.len() as u64;
            // Probe keys arrive per request; the staged probe relation is
            // empty and every dispatch goes through `run_batch`.
            let empty_s = Relation::from_keys(Vec::new(), false);
            let session = QuerySession::new(&mut gpu, QueryExecutor::new(), r, empty_s)?;
            staged.push(Tenant {
                id,
                session,
                tuner,
                paper_r_gib,
                r_domain,
                r_tuples,
                queue: VecDeque::new(),
                queued_keys: 0,
                events_seen: 0,
                explore_next: false,
                requests: 0,
                completed: 0,
                deadline_missed: 0,
                keys: 0,
                matches: 0,
                batches: 0,
                busy_s: 0.0,
            });
        }
        staged.sort_by_key(|t| t.id);
        Ok(TunedServer {
            gpu,
            cfg,
            tenants: staged,
        })
    }

    /// The simulated device (e.g. to install a chaos schedule before
    /// replaying a trace).
    pub fn gpu_mut(&mut self) -> &mut Gpu {
        &mut self.gpu
    }

    fn tenant_index(&self, id: TenantId) -> Option<usize> {
        self.tenants.iter().position(|t| t.id == id)
    }

    /// Which tenant (index) should dispatch at `clock`, if any: a full
    /// batch first, else an expired `max_delay_s` wait; lowest tenant id
    /// wins ties. `drain` treats any non-empty queue as dispatchable (used
    /// once arrivals are exhausted).
    fn dispatchable(&self, clock: f64, drain: bool) -> Option<usize> {
        let full = self
            .tenants
            .iter()
            .position(|t| t.queued_keys >= self.cfg.batch_keys);
        if full.is_some() {
            return full;
        }
        // Same arithmetic as `next_delay_expiry`: the idle branch jumps the
        // clock to `at_s + max_delay_s`, and `(a + d) - a` can round below
        // `d` in f64 — comparing the sum avoids a livelock at the expiry
        // instant.
        self.tenants.iter().position(|t| {
            t.queue
                .front()
                .is_some_and(|q| drain || q.at_s + self.cfg.max_delay_s <= clock)
        })
    }

    /// Earliest future instant at which some queued request's batching
    /// delay expires.
    fn next_delay_expiry(&self) -> Option<f64> {
        self.tenants
            .iter()
            .filter_map(|t| t.queue.front().map(|q| q.at_s + self.cfg.max_delay_s))
            .min_by(f64::total_cmp)
    }

    fn dispatch(
        &mut self,
        ti: usize,
        clock: &mut f64,
        latencies: &mut Vec<f64>,
        totals: &mut Counters,
        events: &mut Vec<TunedServeEvent>,
        traces: &mut Vec<RequestTrace>,
    ) -> Result<(), WindexError> {
        let cfg = self.cfg;
        let t = &mut self.tenants[ti];
        // Pop whole requests until the batch threshold is met (≥ 1 always).
        let mut batch: Vec<Queued> = Vec::new();
        let mut batch_keys = 0usize;
        while let Some(q) = t.queue.front() {
            if !batch.is_empty() && batch_keys + q.keys.len() > cfg.batch_keys {
                break;
            }
            batch_keys += q.keys.len();
            t.queued_keys -= q.keys.len();
            let mut q = t.queue.pop_front().unwrap();
            q.ctx.staged(*clock);
            if t.explore_next {
                q.ctx.probe_batch();
            }
            batch.push(q);
            if batch_keys >= cfg.batch_keys {
                break;
            }
        }
        t.explore_next = false;
        let keys: Vec<u64> = batch.iter().flat_map(|q| q.keys.iter().copied()).collect();

        let plan = t.tuner.current();
        self.gpu.set_virtual_time(*clock);
        let build_s = t.session.prepare_strategy(&mut self.gpu, plan.strategy)?;
        t.session.set_partition_bits(PartitionBits::select(
            t.r_domain,
            t.r_tuples,
            self.gpu.spec(),
            plan.max_partition_bits.max(1),
        ));
        let rep = t.session.run_batch(&mut self.gpu, plan.strategy, &keys)?;

        // Device-loss recovery may have jumped the device clock past ours;
        // completion lands after the later of the two plus the service.
        let service_s = build_s + rep.time.total_s;
        let start_s = self.gpu.virtual_now_s().max(*clock);
        let end_s = start_s + service_s;
        t.busy_s += service_s;
        t.batches += 1;
        t.keys += keys.len();
        t.matches += rep.result_tuples;
        for mut q in batch {
            let latency = end_s - q.at_s;
            latencies.push(latency);
            t.completed += 1;
            let outcome = if q.deadline.is_some_and(|d| latency > d) {
                t.deadline_missed += 1;
                RequestOutcome::DeadlineMissed
            } else {
                RequestOutcome::Completed
            };
            q.ctx.dispatched(start_s);
            q.ctx.first_result(end_s);
            q.ctx.merged(end_s);
            // The batch path does not demultiplex matches per request, so
            // traces carry 0 here; per-tenant totals live on the report.
            traces.push(q.ctx.finish(end_s, outcome, 0));
        }
        *totals = *totals + rep.counters;
        *clock = end_s;

        t.tuner.observe(KpiSample::from_report(&rep));
        if !rep.degradations.is_empty() {
            t.tuner.pin();
        }
        t.tuner.decide();
        for e in &t.tuner.events()[t.events_seen..] {
            if e.reason == windex_core::TuneReason::Explore {
                t.explore_next = true;
            }
            events.push(TunedServeEvent {
                tenant: t.id,
                at_s: *clock,
                event: e.clone(),
            });
        }
        t.events_seen = t.tuner.events().len();
        Ok(())
    }

    /// Replay an arrival-ordered trace to completion and report. Requests
    /// for unknown tenants are rejected up front.
    pub fn run(&mut self, trace: &[TimedRequest]) -> Result<TunedReport, WindexError> {
        let mut clock = 0.0f64;
        let mut next = 0usize;
        let mut latencies: Vec<f64> = Vec::new();
        let mut totals = Counters::default();
        let mut events: Vec<TunedServeEvent> = Vec::new();
        let mut traces: Vec<RequestTrace> = Vec::with_capacity(trace.len());

        loop {
            // Admit everything that has arrived by `clock`.
            while next < trace.len() && trace[next].at_s <= clock {
                let tr = &trace[next];
                let ti = self
                    .tenant_index(tr.request.tenant)
                    .ok_or(WindexError::InvalidConfig(
                        "trace request for a tenant the server does not host",
                    ))?;
                let t = &mut self.tenants[ti];
                t.requests += 1;
                t.queued_keys += tr.request.keys.len();
                t.queue.push_back(Queued {
                    at_s: tr.at_s,
                    keys: tr.request.keys.clone(),
                    deadline: tr.request.deadline,
                    ctx: RequestContext::new(
                        next as u64,
                        tr.request.tenant,
                        tr.at_s,
                        tr.request.keys.len(),
                    ),
                });
                next += 1;
            }
            let drain = next >= trace.len();
            if let Some(ti) = self.dispatchable(clock, drain) {
                self.dispatch(
                    ti,
                    &mut clock,
                    &mut latencies,
                    &mut totals,
                    &mut events,
                    &mut traces,
                )?;
                continue;
            }
            if drain {
                break; // no arrivals left, no queued work: done
            }
            // Idle: jump to the next arrival or the next delay expiry,
            // whichever comes first.
            let mut wake = trace[next].at_s;
            if let Some(expiry) = self.next_delay_expiry() {
                wake = wake.min(expiry);
            }
            clock = clock.max(wake);
        }

        traces.sort_by_key(|t| t.request);
        let stages = StageLatencyStats::from_traces(&traces);
        let tail = sample_tail(&traces, &TailConfig::default());
        let busy_s: f64 = self.tenants.iter().map(|t| t.busy_s).sum();
        let completed: usize = self.tenants.iter().map(|t| t.completed).sum();
        let keys_probed: usize = self.tenants.iter().map(|t| t.keys).sum();
        let per_tenant: Vec<TunedTenantReport> = self
            .tenants
            .iter()
            .map(|t| TunedTenantReport {
                tenant: t.id,
                paper_r_gib: t.paper_r_gib,
                requests: t.requests,
                completed: t.completed,
                keys: t.keys,
                matches: t.matches,
                batches: t.batches,
                busy_s: t.busy_s,
                final_plan: t.tuner.current_label(),
                switches: t.tuner.switch_count(),
                explorations: t.tuner.exploration_count(),
                pinned_batches: t.tuner.pinned_batch_count(),
                est_cost_error: t.tuner.mean_cost_error(),
            })
            .collect();
        let batches: usize = per_tenant.iter().map(|t| t.batches).sum();
        let err_total: f64 = per_tenant
            .iter()
            .map(|t| t.est_cost_error * t.batches as f64)
            .sum();
        Ok(TunedReport {
            policy: format!(
                "tuned(batch_keys={}, max_delay={:.0}ms)",
                self.cfg.batch_keys,
                self.cfg.max_delay_s * 1e3
            ),
            tenants: self.tenants.len(),
            requests: self.tenants.iter().map(|t| t.requests).sum(),
            completed,
            deadline_missed: self.tenants.iter().map(|t| t.deadline_missed).sum(),
            keys_probed,
            result_tuples: self.tenants.iter().map(|t| t.matches).sum(),
            batches,
            switches: per_tenant.iter().map(|t| t.switches).sum(),
            explorations: per_tenant.iter().map(|t| t.explorations).sum(),
            virtual_makespan_s: clock,
            busy_s,
            aggregate_qps: if busy_s > 0.0 {
                completed as f64 / busy_s
            } else {
                0.0
            },
            completed_rps: if clock > 0.0 {
                completed as f64 / clock
            } else {
                0.0
            },
            keys_per_second: if busy_s > 0.0 {
                keys_probed as f64 / busy_s
            } else {
                0.0
            },
            latency: LatencyStats::from_samples(latencies.clone()),
            latency_hist: LatencyHistogram::from_samples(&latencies),
            per_tenant,
            tune_events: events,
            counters: totals,
            est_cost_error: if batches > 0 {
                err_total / batches as f64
            } else {
                0.0
            },
            stages,
            traces,
            tail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate_tenant_trace, merge_traces, TraceConfig};
    use windex_sim::Scale;
    use windex_workload::KeyDistribution;

    fn spec() -> GpuSpec {
        GpuSpec::v100_nvlink2(Scale::PAPER)
    }

    fn small_relation() -> Relation {
        Relation::unique_sorted(1 << 14, KeyDistribution::SparseUniform, 11)
    }

    fn mini_trace(r: &Relation, tenant: TenantId) -> Vec<TimedRequest> {
        generate_tenant_trace(
            &TraceConfig {
                requests: 12,
                min_keys: 64,
                max_keys: 256,
                offered_load_rps: 500.0,
                ..TraceConfig::default()
            },
            tenant,
            r,
        )
    }

    #[test]
    fn serves_every_request_and_reports_consistently() {
        let r = small_relation();
        let trace = mini_trace(&r, 0);
        let keys: usize = trace.iter().map(|t| t.request.keys.len()).sum();
        let mut srv = TunedServer::new(spec(), TunedConfig::default(), vec![(0, r)], None).unwrap();
        let rep = srv.run(&trace).unwrap();
        assert_eq!(rep.requests, trace.len());
        assert_eq!(rep.completed, trace.len());
        assert_eq!(rep.keys_probed, keys);
        // FK-valid probes against a unique build side: every key matches.
        assert_eq!(rep.result_tuples, keys);
        assert!(rep.busy_s > 0.0 && rep.aggregate_qps > 0.0);
        assert_eq!(rep.latency.samples, trace.len());
        assert_eq!(rep.per_tenant.len(), 1);
        assert_eq!(rep.per_tenant[0].batches, rep.batches);
    }

    #[test]
    fn two_tenant_run_is_byte_deterministic() {
        let run = || {
            let small = small_relation();
            let big = Relation::unique_sorted(1 << 16, KeyDistribution::SparseUniform, 12);
            let trace = merge_traces(vec![mini_trace(&small, 0), mini_trace(&big, 1)]);
            let mut srv = TunedServer::new(
                spec(),
                TunedConfig::default(),
                vec![(0, small), (1, big)],
                None,
            )
            .unwrap();
            serde_json::to_string(&srv.run(&trace).unwrap()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unknown_tenant_is_rejected() {
        let r = small_relation();
        let trace = mini_trace(&r, 3); // tenant 3 was never staged
        let mut srv = TunedServer::new(spec(), TunedConfig::default(), vec![(0, r)], None).unwrap();
        assert!(srv.run(&trace).is_err());
    }
}
