//! Serving resilience under chaos: retry budgets with deterministic
//! jittered backoff, per-tenant circuit breakers on the virtual clock, and
//! SLO tracking.
//!
//! Everything here is a pure function of the server's configuration and the
//! virtual clock — no wall time, no entropy — so a served trace stays
//! byte-deterministic even while faults are injected:
//!
//! - [`RetryBudget`] — a token pool bounding how many dispatch-level
//!   retries the server may spend across a trace. Each retry consumes one
//!   token; each completed dispatch refills a configurable fraction, so
//!   sustained failure exhausts the budget instead of retrying forever.
//! - [`jittered_backoff_s`] — exponential backoff with deterministic
//!   jitter: the delay for retry *n* is `base · 2ⁿ · j` where `j ∈
//!   (0.5, 1.5]` comes from a counter-indexed splitmix64 draw (the same
//!   construction the trace generator uses), so backoff schedules never
//!   synchronize across dispatches yet replay identically per seed.
//! - [`CircuitBreaker`] — per-tenant closed → open → half-open breaker
//!   driven by hard dispatch failures. An open breaker fast-rejects the
//!   tenant's arrivals until a cooldown elapses on the virtual clock, then
//!   admits one half-open probe; the probe's outcome closes or re-opens it.
//! - [`SloTracker`] — folds served responses into the operator-facing
//!   service-level objectives: availability (answered / submitted), goodput
//!   (answered within the latency budget, per virtual second), and tail
//!   latency under chaos.

use crate::request::TenantId;
use serde::Serialize;

/// Retry-budget and backoff parameters.
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Most dispatch-level retries of one batch before it is abandoned.
    pub max_attempts_per_dispatch: u32,
    /// Token-pool capacity: total retries the budget holds when full.
    pub budget_tokens: f64,
    /// Tokens returned to the pool per completed dispatch (capped at
    /// capacity).
    pub refill_per_success: f64,
    /// Backoff before the first retry, in virtual seconds; doubles per
    /// attempt.
    pub base_backoff_s: f64,
    /// Seed of the deterministic jitter draws.
    pub jitter_seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts_per_dispatch: 12,
            budget_tokens: 64.0,
            refill_per_success: 0.25,
            base_backoff_s: 100e-6,
            jitter_seed: 0x0072_6574_7279,
        }
    }
}

/// Circuit-breaker parameters.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive hard failures (abandoned batches) that open a tenant's
    /// breaker.
    pub failure_threshold: u32,
    /// How long an open breaker fast-rejects before admitting a half-open
    /// probe, in virtual seconds.
    pub cooldown_s: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_s: 5e-3,
        }
    }
}

/// Service-level-objective parameters.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Latency budget a response must meet to count as goodput, in virtual
    /// seconds.
    pub deadline_budget_s: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            deadline_budget_s: 5e-3,
        }
    }
}

/// All resilience knobs, grouped so [`ServeConfig`](crate::ServeConfig)
/// stays `Copy`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResilienceConfig {
    /// Retry budget and backoff.
    pub retry: RetryConfig,
    /// Per-tenant circuit breaker.
    pub breaker: BreakerConfig,
    /// Service-level objectives.
    pub slo: SloConfig,
}

#[inline]
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

const SALT_BACKOFF: u64 = 0x0062_6163_6b6f_6666; // "backoff"

/// Deterministic jittered exponential backoff for retry `attempt`
/// (0-based): `base · 2^attempt · j` with `j ∈ (0.5, 1.5]` drawn from
/// `(jitter_seed, seq)`. The exponent saturates at 2²⁰ so the delay stays
/// finite for any attempt count.
pub fn jittered_backoff_s(cfg: &RetryConfig, attempt: u32, seq: u64) -> f64 {
    let h = splitmix64(cfg.jitter_seed ^ SALT_BACKOFF.wrapping_mul(0x9e3779b97f4a7c15) ^ seq);
    let unit = ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let exp = (1u64 << attempt.min(20)) as f64;
    cfg.base_backoff_s * exp * (0.5 + unit)
}

/// A token pool bounding dispatch-level retries across a served trace.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    capacity: f64,
    tokens: f64,
    refill: f64,
    spent: u64,
    denied: u64,
}

impl RetryBudget {
    /// A full budget with the given capacity and per-success refill.
    pub fn new(cfg: &RetryConfig) -> Self {
        RetryBudget {
            capacity: cfg.budget_tokens.max(0.0),
            tokens: cfg.budget_tokens.max(0.0),
            refill: cfg.refill_per_success.max(0.0),
            spent: 0,
            denied: 0,
        }
    }

    /// Consume one token if available. A denied spend is counted.
    pub fn try_spend(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.spent += 1;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Return the per-success refill to the pool (capped at capacity).
    pub fn on_success(&mut self) {
        self.tokens = (self.tokens + self.refill).min(self.capacity);
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Retries granted so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Retries denied because the pool was empty.
    pub fn denied(&self) -> u64 {
        self.denied
    }
}

/// Circuit-breaker state, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are fast-rejected until the cooldown elapses.
    Open,
    /// One probe request is in flight; its outcome decides the next state.
    HalfOpen,
}

impl BreakerState {
    /// Numeric encoding for gauges: closed 0, half-open 1, open 2.
    pub fn as_gauge(&self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// A per-tenant circuit breaker driven by the virtual clock.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until_s: f64,
    /// Whether the half-open probe slot is taken.
    probe_inflight: bool,
    opens: u64,
    fast_rejects: u64,
    half_open_probes: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until_s: 0.0,
            probe_inflight: false,
            opens: 0,
            fast_rejects: 0,
            half_open_probes: 0,
        }
    }

    /// Whether a request may be admitted at virtual instant `now_s`.
    /// Transitions open → half-open when the cooldown has elapsed; in
    /// half-open, exactly one probe is admitted until it resolves.
    pub fn allow(&mut self, now_s: f64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_s >= self.open_until_s {
                    self.state = BreakerState::HalfOpen;
                    self.probe_inflight = true;
                    self.half_open_probes += 1;
                    true
                } else {
                    self.fast_rejects += 1;
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_inflight {
                    self.fast_rejects += 1;
                    false
                } else {
                    self.probe_inflight = true;
                    self.half_open_probes += 1;
                    true
                }
            }
        }
    }

    /// Record an answered request. Returns `true` when this closed a
    /// half-open breaker.
    pub fn on_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        self.probe_inflight = false;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            true
        } else {
            false
        }
    }

    /// Record a hard failure (abandoned batch) at `now_s`. Returns `true`
    /// when this opened the breaker (from closed past the threshold, or a
    /// failed half-open probe).
    pub fn on_failure(&mut self, now_s: f64) -> bool {
        self.probe_inflight = false;
        self.consecutive_failures += 1;
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.cfg.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.open_until_s = now_s + self.cfg.cooldown_s;
            self.consecutive_failures = 0;
            self.opens += 1;
        }
        trip
    }

    /// Release the half-open probe slot without resolving it — for a
    /// request admitted through the breaker but shed before it reached the
    /// device (e.g. by backpressure). The breaker stays half-open and the
    /// next arrival becomes the probe.
    pub fn release_probe(&mut self) {
        self.probe_inflight = false;
    }

    /// Reset temporal state for a fresh virtual-clock epoch. Each served
    /// trace restarts the virtual clock at zero, so an `open_until_s` from
    /// a previous run would be compared against the wrong timeline; close
    /// the breaker and clear timers while keeping cumulative counters.
    pub fn reset_for_epoch(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.open_until_s = 0.0;
        self.probe_inflight = false;
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Virtual instant until which an open breaker fast-rejects.
    pub fn open_until_s(&self) -> f64 {
        self.open_until_s
    }

    /// Times the breaker tripped open.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Requests fast-rejected while open (or while a probe was in flight).
    pub fn fast_rejects(&self) -> u64 {
        self.fast_rejects
    }

    /// Half-open probes admitted.
    pub fn half_open_probes(&self) -> u64 {
        self.half_open_probes
    }
}

/// One tenant's breaker state at trace end (report/exposition row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TenantBreaker {
    /// The tenant.
    pub tenant: TenantId,
    /// Breaker state at trace end.
    pub state: BreakerState,
    /// Times this tenant's breaker tripped open during the trace.
    pub opens: u64,
    /// This tenant's fast-rejected requests.
    pub fast_rejects: u64,
}

/// Aggregate circuit-breaker summary over one served trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct BreakerReport {
    /// Total breaker trips across tenants.
    pub opens: u64,
    /// Total fast-rejected requests across tenants.
    pub fast_rejects: u64,
    /// Total half-open probes admitted across tenants.
    pub half_open_probes: u64,
    /// Per-tenant end-of-trace state, ascending tenant id.
    pub tenants: Vec<TenantBreaker>,
}

/// Retry-budget summary over one served trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct RetryReport {
    /// Dispatch-level retries granted.
    pub attempts: u64,
    /// Retries denied because the budget was exhausted.
    pub denied: u64,
    /// Tokens left in the pool at trace end.
    pub tokens_remaining: f64,
    /// Total backoff charged to the virtual clock, in seconds.
    pub backoff_s: f64,
}

/// SLO attainment over one served trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct SloReport {
    /// Latency budget a response must meet to count as goodput.
    pub deadline_budget_s: f64,
    /// Responses answered (completed or deadline-missed; not shed).
    pub answered: usize,
    /// Answered responses within the latency budget.
    pub within_budget: usize,
    /// Answered / submitted — the availability under chaos.
    pub availability: f64,
    /// Within-budget responses per virtual second of makespan.
    pub goodput_rps: f64,
    /// Within-budget share of all submitted requests.
    pub good_share: f64,
    /// 99th-percentile latency over answered responses, in virtual
    /// seconds.
    pub p99_s: f64,
}

/// Folds response outcomes into the [`SloReport`].
#[derive(Debug, Clone)]
pub struct SloTracker {
    budget_s: f64,
    submitted: usize,
    answered: usize,
    within_budget: usize,
    latencies: Vec<f64>,
}

impl SloTracker {
    /// An empty tracker with the given latency budget.
    pub fn new(cfg: &SloConfig) -> Self {
        SloTracker {
            budget_s: cfg.deadline_budget_s,
            submitted: 0,
            answered: 0,
            within_budget: 0,
            latencies: Vec::new(),
        }
    }

    /// Observe one response: `answered` is false for shed requests;
    /// `latency_s` is ignored for them.
    pub fn observe(&mut self, answered: bool, latency_s: f64) {
        self.submitted += 1;
        if answered {
            self.answered += 1;
            if latency_s.is_finite() {
                self.latencies.push(latency_s);
                if latency_s <= self.budget_s {
                    self.within_budget += 1;
                }
            }
        }
    }

    /// Close the tracker over a trace of `makespan_s` virtual seconds.
    pub fn finish(mut self, makespan_s: f64) -> SloReport {
        let p99_s = if self.latencies.is_empty() {
            0.0
        } else {
            self.latencies.sort_by(f64::total_cmp);
            let n = self.latencies.len();
            self.latencies[((0.99 * n as f64).ceil() as usize).clamp(1, n) - 1]
        };
        SloReport {
            deadline_budget_s: self.budget_s,
            answered: self.answered,
            within_budget: self.within_budget,
            availability: if self.submitted > 0 {
                self.answered as f64 / self.submitted as f64
            } else {
                1.0
            },
            goodput_rps: if makespan_s > 0.0 {
                self.within_budget as f64 / makespan_s
            } else {
                0.0
            },
            good_share: if self.submitted > 0 {
                self.within_budget as f64 / self.submitted as f64
            } else {
                1.0
            },
            p99_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_with_bounded_jitter_and_replays() {
        let cfg = RetryConfig::default();
        for attempt in 0..10u32 {
            let base = cfg.base_backoff_s * (1u64 << attempt) as f64;
            let b = jittered_backoff_s(&cfg, attempt, 42);
            assert!(b > 0.5 * base && b <= 1.5 * base, "attempt {attempt}: {b}");
            assert_eq!(b, jittered_backoff_s(&cfg, attempt, 42), "deterministic");
        }
        // Different sequence numbers de-synchronize the jitter.
        assert_ne!(
            jittered_backoff_s(&cfg, 3, 0),
            jittered_backoff_s(&cfg, 3, 1)
        );
        // The exponent saturates instead of overflowing.
        let big = jittered_backoff_s(&cfg, u32::MAX, 0);
        assert!(big.is_finite());
    }

    #[test]
    fn retry_budget_spends_denies_and_refills() {
        let cfg = RetryConfig {
            budget_tokens: 2.0,
            refill_per_success: 0.5,
            ..RetryConfig::default()
        };
        let mut b = RetryBudget::new(&cfg);
        assert!(b.try_spend() && b.try_spend());
        assert!(!b.try_spend(), "empty pool must deny");
        assert_eq!((b.spent(), b.denied()), (2, 1));
        b.on_success();
        b.on_success();
        assert!(b.try_spend(), "two refills add a token");
        // Refill never exceeds capacity.
        let mut full = RetryBudget::new(&cfg);
        full.on_success();
        assert_eq!(full.tokens(), 2.0);
    }

    #[test]
    fn breaker_walks_closed_open_half_open() {
        let cfg = BreakerConfig {
            failure_threshold: 2,
            cooldown_s: 1.0,
        };
        let mut b = CircuitBreaker::new(cfg);
        assert!(b.allow(0.0));
        assert!(!b.on_failure(0.0), "below threshold");
        assert!(b.on_failure(0.1), "threshold trips the breaker");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(0.5), "open fast-rejects before cooldown");
        assert_eq!(b.fast_rejects(), 1);
        assert!(b.allow(1.2), "cooldown elapsed: half-open probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(1.3), "one probe at a time");
        assert!(b.on_success(), "probe success closes the breaker");
        assert_eq!(b.state(), BreakerState::Closed);
        // A failed probe re-opens immediately.
        b.on_failure(2.0);
        b.on_failure(2.0);
        assert!(b.allow(3.5));
        assert!(b.on_failure(3.6), "failed probe re-opens");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 3);
    }

    #[test]
    fn slo_tracker_computes_availability_goodput_and_p99() {
        let mut t = SloTracker::new(&SloConfig {
            deadline_budget_s: 1e-3,
        });
        for i in 0..98 {
            t.observe(true, if i < 90 { 5e-4 } else { 2e-3 });
        }
        t.observe(false, 0.0);
        t.observe(false, 0.0);
        let r = t.finish(2.0);
        assert_eq!(r.answered, 98);
        assert_eq!(r.within_budget, 90);
        assert!((r.availability - 0.98).abs() < 1e-12);
        assert!((r.goodput_rps - 45.0).abs() < 1e-12);
        assert!((r.good_share - 0.90).abs() < 1e-12);
        assert_eq!(r.p99_s, 2e-3);
        // Empty tracker degrades to perfect availability, zero goodput.
        let r = SloTracker::new(&SloConfig::default()).finish(0.0);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.goodput_rps, 0.0);
    }
}
