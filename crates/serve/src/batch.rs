//! The micro-batcher: coalesces keys from many requests into shared
//! windows and demultiplexes matches back to their requests.
//!
//! Every staged key is tagged with a fresh *rid* (a monotone sequence
//! number) before it enters the shared
//! [`StreamingWindowJoin`](windex_core::StreamingWindowJoin); the join
//! carries rids through partitioning (§4.2's scatter kernel relabels pairs
//! for free), so each match `(rid, index position)` maps straight back to
//! `(request, key index)` — no cross-tenant leakage is possible as long as
//! the rid map is correct, which the integration tests verify.

use std::collections::VecDeque;

/// Pending keys tagged for shared-window dispatch.
#[derive(Debug, Default)]
pub struct MicroBatcher {
    /// Staged `(key, rid)` tuples awaiting dispatch, in schedule order.
    pending: VecDeque<(u64, u64)>,
    /// Virtual instant the oldest currently-pending key was staged.
    oldest_since_s: Option<f64>,
    /// rid → (request id, key index within the request).
    rid_map: Vec<(u64, u32)>,
}

impl MicroBatcher {
    /// An empty batcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keys currently staged.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Virtual instant the oldest pending key was staged, if any — the
    /// anchor of the max-delay dispatch policy.
    pub fn oldest_since(&self) -> Option<f64> {
        self.oldest_since_s
    }

    /// Stage all keys of request `id`, tagging each with a fresh rid.
    pub fn stage(&mut self, id: u64, keys: &[u64], now_s: f64) {
        if keys.is_empty() {
            return;
        }
        if self.pending.is_empty() {
            self.oldest_since_s = Some(now_s);
        }
        for (i, &key) in keys.iter().enumerate() {
            let rid = self.rid_map.len() as u64;
            self.rid_map.push((id, i as u32));
            self.pending.push_back((key, rid));
        }
    }

    /// Take up to `n` staged `(key, rid)` tuples for dispatch, oldest
    /// first. Resets the age anchor when the batcher drains.
    pub fn take(&mut self, n: usize, now_s: f64) -> Vec<(u64, u64)> {
        let n = n.min(self.pending.len());
        let out: Vec<(u64, u64)> = self.pending.drain(..n).collect();
        self.oldest_since_s = if self.pending.is_empty() {
            None
        } else {
            // Remaining keys were staged no later than `now`; the precise
            // staging instant of the new head is not tracked per key, so
            // the conservative anchor is "now" (they waited already, the
            // next max-delay countdown restarts).
            Some(now_s)
        };
        out
    }

    /// Resolve a rid back to `(request id, key index)`.
    pub fn resolve(&self, rid: u64) -> (u64, u32) {
        self.rid_map[rid as usize]
    }

    /// Drop all still-pending keys of request `id` (used when a request is
    /// shed after some of its keys were already dispatched).
    pub fn drop_request(&mut self, id: u64) {
        let map = &self.rid_map;
        self.pending.retain(|&(_, rid)| map[rid as usize].0 != id);
        if self.pending.is_empty() {
            self.oldest_since_s = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_take_resolve_roundtrip() {
        let mut b = MicroBatcher::new();
        b.stage(7, &[100, 200], 0.5);
        b.stage(8, &[300], 0.6);
        assert_eq!(b.pending(), 3);
        assert_eq!(b.oldest_since(), Some(0.5));
        let batch = b.take(2, 0.7);
        assert_eq!(batch, vec![(100, 0), (200, 1)]);
        assert_eq!(b.resolve(0), (7, 0));
        assert_eq!(b.resolve(1), (7, 1));
        assert_eq!(b.resolve(2), (8, 0));
        assert_eq!(b.oldest_since(), Some(0.7), "anchor restarts");
        let rest = b.take(10, 0.8);
        assert_eq!(rest, vec![(300, 2)]);
        assert_eq!(b.oldest_since(), None);
    }

    #[test]
    fn drop_request_filters_pending() {
        let mut b = MicroBatcher::new();
        b.stage(1, &[10, 11], 0.0);
        b.stage(2, &[20], 0.0);
        b.drop_request(1);
        assert_eq!(b.pending(), 1);
        let batch = b.take(4, 0.1);
        assert_eq!(batch.len(), 1);
        assert_eq!(b.resolve(batch[0].1), (2, 0));
    }

    #[test]
    fn empty_stage_keeps_no_anchor() {
        let mut b = MicroBatcher::new();
        b.stage(1, &[], 1.0);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.oldest_since(), None);
    }
}
