//! Per-request distributed tracing: causal span trees from admission to
//! cross-shard merge.
//!
//! Aggregate latency distributions say *that* a tail exists; a span tree
//! says *where one request's latency went*. Every request served by
//! [`Server`](crate::Server), [`ClusterServer`](crate::ClusterServer), or
//! [`TunedServer`](crate::TunedServer) carries a [`RequestContext`] from
//! admission to completion and yields a [`RequestTrace`]: a Dapper-style
//! span tree whose *stage spans* partition the admission→completion
//! interval into queue / batch / service / merge, with any residual
//! attributed to `other` — the same telescoping-delta rule the phase
//! breakdown uses, so the stages reconcile exactly with the end-to-end
//! latency.
//!
//! # Determinism
//!
//! There is no randomness anywhere: trace ids derive from the server-
//! assigned request id via counter-indexed splitmix64 (the workspace's
//! standard construction), span ids from the trace id and a per-trace
//! counter. Same seed ⇒ byte-identical traces, reports, and exports.
//!
//! # Invariants ([`RequestTrace::validate`])
//!
//! - every child span nests inside its parent (`start ≥ parent.start`,
//!   `end ≤ parent.end`), and every span is well-formed (`start ≤ end`);
//! - the stage spans tile `[submitted_s, completed_s]` exactly: each
//!   starts where the previous ended, the first at submission, the last
//!   at completion;
//! - the [`StageBreakdown`] sums exactly (bitwise, not approximately) to
//!   `completed_s - submitted_s`;
//! - shard legs are causally ordered
//!   (`enqueued ≤ dispatched ≤ done ≤ delivered`) and the critical leg is
//!   the one whose delivery is latest.

use crate::report::LatencyStats;
use crate::request::{RequestOutcome, TenantId};
use serde::Serialize;

/// Seed folded into every trace id so request-trace ids live in their own
/// stream, disjoint from the workload/trace generators.
const TRACE_ID_SEED: u64 = 0x7370616e74726565; // "spantree"

#[inline]
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Derive the deterministic trace id of a server-assigned request id.
pub fn trace_id_for(request: u64) -> u64 {
    splitmix64(TRACE_ID_SEED ^ splitmix64(request.wrapping_add(1)))
}

/// One node of a request's span tree, in virtual seconds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Span {
    /// Span id, unique within the trace (splitmix64 of the trace id and a
    /// per-trace counter).
    pub id: u64,
    /// Parent span id; `None` for the root span.
    pub parent: Option<u64>,
    /// Stage or leg name (`request`, `queue`, `batch`, `service`, `merge`,
    /// `other`, or `shard<N>`).
    pub name: String,
    /// Virtual start instant, seconds.
    pub start_s: f64,
    /// Virtual end instant, seconds (`end_s ≥ start_s`).
    pub end_s: f64,
}

/// One shard leg of a cluster request's fan-out: the lifecycle of this
/// request's keys on one shard, from routing to merged delivery.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardLeg {
    /// Span id of this leg in the trace's span tree.
    pub span_id: u64,
    /// Shard (GPU) the leg ran on.
    pub shard: usize,
    /// Probe keys routed to this shard.
    pub keys: usize,
    /// Matches this leg returned.
    pub matches: usize,
    /// Virtual instant the leg was enqueued on the shard's scheduler.
    pub enqueued_s: f64,
    /// Virtual instant the first batch carrying this leg dispatched.
    pub dispatched_s: f64,
    /// Virtual instant the last batch carrying this leg finished on-GPU.
    pub done_s: f64,
    /// Virtual instant the leg's matches reached the coordinator (equal to
    /// `done_s` on the coordinator's own leg; later on remote legs, which
    /// pay the merge transfer over the interconnect).
    pub delivered_s: f64,
    /// Whether the leg ran on a shard other than the coordinator.
    pub remote: bool,
}

/// Exact decomposition of one request's end-to-end latency into lifecycle
/// stages, in virtual seconds. `queue + batch + service + merge + other`
/// reconstructs `completed_s - submitted_s` exactly: `other` is defined as
/// the residual of that subtraction (the telescoping-delta rule), so the
/// sum telescopes bitwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct StageBreakdown {
    /// Admission → staged into a micro-batch (scheduler queue wait).
    pub queue_s: f64,
    /// Staged → first dispatch (deliberate batching delay).
    pub batch_s: f64,
    /// First dispatch → first result (GPU service, including retry
    /// backoff and degradation rebuilds charged to the virtual clock).
    pub service_s: f64,
    /// First result → last shard leg delivered (cross-shard merge /
    /// straggler wait; zero on single-GPU paths).
    pub merge_s: f64,
    /// Residual between the stage sum and the end-to-end latency
    /// (response assembly; the whole latency for shed requests that never
    /// reached a stage).
    pub other_s: f64,
}

impl StageBreakdown {
    /// The stage sum, in the canonical fold order. Equals
    /// `completed_s - submitted_s` bitwise for every trace the servers
    /// produce (enforced by [`RequestTrace::validate`]).
    pub fn total_s(&self) -> f64 {
        (((self.queue_s + self.batch_s) + self.service_s) + self.merge_s) + self.other_s
    }
}

/// The span tree of one served request: every virtual-time milestone from
/// admission to completion, with the exact stage decomposition and (for
/// cluster requests) the per-shard fan-out legs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestTrace {
    /// Deterministic trace id ([`trace_id_for`] of the request id).
    pub trace_id: u64,
    /// Server-assigned request id (arrival order).
    pub request: u64,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Virtual arrival instant, seconds.
    pub submitted_s: f64,
    /// Virtual completion instant, seconds.
    pub completed_s: f64,
    /// How the request left the server.
    pub outcome: RequestOutcome,
    /// Exact stage decomposition of `completed_s - submitted_s`.
    pub stages: StageBreakdown,
    /// The span tree: root first, then the stage spans in lifecycle order,
    /// then one span per shard leg.
    pub spans: Vec<Span>,
    /// Cluster fan-out legs, in shard order (empty on single-GPU paths).
    pub legs: Vec<ShardLeg>,
    /// Index into `legs` of the critical-path leg (latest delivery);
    /// `None` when there are no legs.
    pub critical_leg: Option<usize>,
    /// Dispatch retries this request's batches went through.
    pub retries: usize,
    /// Whether an open circuit breaker fast-rejected the request.
    pub breaker_rejected: bool,
    /// Whether the request was served by a tuner exploration probe batch.
    pub probe: bool,
    /// Probe keys the request carried.
    pub keys: usize,
    /// Matches returned.
    pub matches: usize,
}

impl RequestTrace {
    /// End-to-end latency, seconds.
    pub fn latency_s(&self) -> f64 {
        self.completed_s - self.submitted_s
    }

    /// Check every span-tree invariant (see the module docs). Returns the
    /// first violation as a human-readable message.
    pub fn validate(&self) -> Result<(), String> {
        let r = self.request;
        if self.completed_s < self.submitted_s {
            return Err(format!("request {r}: completed before submitted"));
        }
        let root = self
            .spans
            .first()
            .ok_or_else(|| format!("request {r}: no root span"))?;
        if root.parent.is_some() {
            return Err(format!("request {r}: first span is not a root"));
        }
        if root.start_s != self.submitted_s || root.end_s != self.completed_s {
            return Err(format!(
                "request {r}: root span [{}, {}] != [{}, {}]",
                root.start_s, root.end_s, self.submitted_s, self.completed_s
            ));
        }
        for s in &self.spans {
            if !(s.start_s.is_finite() && s.end_s.is_finite()) || s.end_s < s.start_s {
                return Err(format!("request {r}: malformed span '{}'", s.name));
            }
            if let Some(pid) = s.parent {
                let p = self
                    .spans
                    .iter()
                    .find(|c| c.id == pid)
                    .ok_or_else(|| format!("request {r}: span '{}' orphaned", s.name))?;
                if s.start_s < p.start_s || s.end_s > p.end_s {
                    return Err(format!(
                        "request {r}: span '{}' [{}, {}] escapes parent '{}' [{}, {}]",
                        s.name, s.start_s, s.end_s, p.name, p.start_s, p.end_s
                    ));
                }
            }
        }
        // Stage spans tile [submitted, completed] with shared boundaries.
        let stage_spans: Vec<&Span> = self
            .spans
            .iter()
            .filter(|s| {
                matches!(
                    s.name.as_str(),
                    "queue" | "batch" | "service" | "merge" | "other"
                )
            })
            .collect();
        if stage_spans.len() != 5 {
            return Err(format!(
                "request {r}: expected 5 stage spans, found {}",
                stage_spans.len()
            ));
        }
        let mut cursor = self.submitted_s;
        for s in &stage_spans {
            if s.start_s != cursor {
                return Err(format!(
                    "request {r}: stage '{}' starts at {} but previous stage ended at {cursor}",
                    s.name, s.start_s
                ));
            }
            cursor = s.end_s;
        }
        if cursor != self.completed_s {
            return Err(format!(
                "request {r}: stage spans end at {cursor}, not completion {}",
                self.completed_s
            ));
        }
        // The breakdown sums exactly to the end-to-end latency.
        let (sum, latency) = (self.stages.total_s(), self.latency_s());
        if sum != latency {
            return Err(format!("request {r}: stage sum {sum} != latency {latency}"));
        }
        for (name, v) in [
            ("queue", self.stages.queue_s),
            ("batch", self.stages.batch_s),
            ("service", self.stages.service_s),
            ("merge", self.stages.merge_s),
            ("other", self.stages.other_s),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("request {r}: stage '{name}' is {v}"));
            }
        }
        // Legs are causally ordered and inside the request interval.
        for l in &self.legs {
            if !(l.enqueued_s <= l.dispatched_s
                && l.dispatched_s <= l.done_s
                && l.done_s <= l.delivered_s)
            {
                return Err(format!(
                    "request {r}: leg on shard {} out of order",
                    l.shard
                ));
            }
            if l.enqueued_s < self.submitted_s || l.delivered_s > self.completed_s {
                return Err(format!(
                    "request {r}: leg on shard {} escapes the request interval",
                    l.shard
                ));
            }
        }
        match self.critical_leg {
            None if !self.legs.is_empty() => {
                return Err(format!("request {r}: legs present but no critical leg"));
            }
            Some(i) => {
                let crit = self
                    .legs
                    .get(i)
                    .ok_or_else(|| format!("request {r}: critical leg {i} out of range"))?;
                if self.legs.iter().any(|l| l.delivered_s > crit.delivered_s) {
                    return Err(format!(
                        "request {r}: critical leg {i} is not the latest delivery"
                    ));
                }
            }
            None => {}
        }
        Ok(())
    }
}

/// In-flight builder of one request's [`RequestTrace`]. The servers record
/// lifecycle milestones as they happen; `finish` clamps them into a
/// monotone chain and materializes the span tree.
///
/// Milestone semantics are first-wins / min-wins where a request's keys can
/// split across micro-batches: the stage boundaries are the *first* time
/// each lifecycle transition happened, and leg completion is the *last*.
#[derive(Debug, Clone)]
pub struct RequestContext {
    trace_id: u64,
    request: u64,
    tenant: TenantId,
    submitted_s: f64,
    keys: usize,
    staged_s: Option<f64>,
    dispatched_s: Option<f64>,
    first_result_s: Option<f64>,
    merged_s: Option<f64>,
    retries: usize,
    breaker_rejected: bool,
    probe: bool,
    legs: Vec<ShardLeg>,
    span_seq: u64,
}

impl RequestContext {
    /// Open a context at admission.
    pub fn new(request: u64, tenant: TenantId, submitted_s: f64, keys: usize) -> Self {
        RequestContext {
            trace_id: trace_id_for(request),
            request,
            tenant,
            submitted_s,
            keys,
            staged_s: None,
            dispatched_s: None,
            first_result_s: None,
            merged_s: None,
            retries: 0,
            breaker_rejected: false,
            probe: false,
            legs: Vec::new(),
            span_seq: 0,
        }
    }

    /// This request's deterministic trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    fn next_span_id(&mut self) -> u64 {
        self.span_seq += 1;
        splitmix64(self.trace_id ^ self.span_seq)
    }

    /// Record the instant the request's keys were (first) staged into a
    /// micro-batch. First call wins.
    pub fn staged(&mut self, now_s: f64) {
        self.staged_s.get_or_insert(now_s);
    }

    /// Record the instant a batch carrying this request (first) dispatched.
    /// First call wins.
    pub fn dispatched(&mut self, now_s: f64) {
        self.dispatched_s.get_or_insert(now_s);
    }

    /// Record the instant the request's first results materialized (batch
    /// completion on single-GPU paths; first leg delivery on clusters).
    /// First call wins.
    pub fn first_result(&mut self, now_s: f64) {
        self.first_result_s.get_or_insert(now_s);
    }

    /// Record the instant the last outstanding piece merged (last leg
    /// delivery / last batch completion). Max-wins.
    pub fn merged(&mut self, now_s: f64) {
        self.merged_s = Some(self.merged_s.map_or(now_s, |m: f64| m.max(now_s)));
    }

    /// Count one dispatch retry that delayed this request.
    pub fn retried(&mut self) {
        self.retries += 1;
    }

    /// Mark the request as fast-rejected by an open circuit breaker.
    pub fn fast_rejected(&mut self) {
        self.breaker_rejected = true;
    }

    /// Mark the request as served by a tuner exploration probe batch.
    pub fn probe_batch(&mut self) {
        self.probe = true;
    }

    /// Open a shard leg at fan-out time; returns its index for later
    /// milestone updates.
    pub fn leg_opened(
        &mut self,
        shard: usize,
        keys: usize,
        enqueued_s: f64,
        remote: bool,
    ) -> usize {
        let span_id = self.next_span_id();
        self.legs.push(ShardLeg {
            span_id,
            shard,
            keys,
            matches: 0,
            enqueued_s,
            dispatched_s: enqueued_s,
            done_s: enqueued_s,
            delivered_s: enqueued_s,
            remote,
        });
        self.legs.len() - 1
    }

    /// Record a leg's first dispatch (min-wins across split batches).
    pub fn leg_dispatched(&mut self, leg: usize, now_s: f64) {
        let l = &mut self.legs[leg];
        if l.done_s == l.enqueued_s && l.dispatched_s == l.enqueued_s {
            l.dispatched_s = now_s;
        } else {
            l.dispatched_s = l.dispatched_s.min(now_s);
        }
        self.dispatched(now_s);
    }

    /// Record a leg's batch finishing on-GPU and its merged delivery at
    /// the coordinator (max-wins across split batches), accumulating the
    /// leg's matches.
    pub fn leg_delivered(&mut self, leg: usize, done_s: f64, delivered_s: f64, matches: usize) {
        let l = &mut self.legs[leg];
        l.done_s = l.done_s.max(done_s);
        l.delivered_s = l.delivered_s.max(delivered_s);
        l.matches += matches;
        self.first_result(delivered_s);
        self.merged(delivered_s);
    }

    /// Close the context and materialize the span tree.
    ///
    /// Raw milestones are clamped into a monotone chain inside
    /// `[submitted_s, completed_s]` — a milestone that never happened
    /// inherits the previous one, producing a zero-length stage — and
    /// `other` takes the exact residual so the breakdown telescopes to the
    /// end-to-end latency.
    pub fn finish(
        mut self,
        completed_s: f64,
        outcome: RequestOutcome,
        matches: usize,
    ) -> RequestTrace {
        let submitted = self.submitted_s;
        let clamp =
            |raw: Option<f64>, prev: f64| raw.unwrap_or(prev).clamp(prev, completed_s.max(prev));
        let staged = clamp(self.staged_s, submitted);
        let dispatched = clamp(self.dispatched_s, staged);
        let first_result = clamp(self.first_result_s, dispatched);
        let merged = clamp(self.merged_s, first_result);

        let mut four = [
            staged - submitted,
            dispatched - staged,
            first_result - dispatched,
            merged - first_result,
        ];
        let fold4 = |f: &[f64; 4]| ((f[0] + f[1]) + f[2]) + f[3];
        let latency = completed_s - submitted;
        let mut other_s = latency - fold4(&four);
        // FP non-associativity can push the four-stage fold an ulp past the
        // end-to-end latency, leaving a negative residual. Shave the
        // overshoot off the largest stage (repeating if rounding re-exposes
        // it) so every stage stays >= 0 and the fold still telescopes
        // bitwise to `latency`.
        while other_s < 0.0 {
            let widest = (0..4)
                .max_by(|&a, &b| four[a].total_cmp(&four[b]))
                .expect("four stages");
            if four[widest] == 0.0 {
                break;
            }
            four[widest] = (four[widest] + other_s).max(0.0);
            other_s = latency - fold4(&four);
        }
        let stages = StageBreakdown {
            queue_s: four[0],
            batch_s: four[1],
            service_s: four[2],
            merge_s: four[3],
            other_s,
        };

        let root_id = self.next_span_id();
        let mut spans = vec![Span {
            id: root_id,
            parent: None,
            name: "request".to_string(),
            start_s: submitted,
            end_s: completed_s,
        }];
        for (name, start, end) in [
            ("queue", submitted, staged),
            ("batch", staged, dispatched),
            ("service", dispatched, first_result),
            ("merge", first_result, merged),
            ("other", merged, completed_s),
        ] {
            let id = self.next_span_id();
            spans.push(Span {
                id,
                parent: Some(root_id),
                name: name.to_string(),
                start_s: start,
                end_s: end.max(start),
            });
        }
        // Clamp leg milestones into the request interval (a leg enqueued at
        // admission time can carry the admission instant itself) and emit
        // one child span per leg.
        for l in &mut self.legs {
            l.enqueued_s = l.enqueued_s.clamp(submitted, completed_s);
            l.dispatched_s = l.dispatched_s.clamp(l.enqueued_s, completed_s);
            l.done_s = l.done_s.clamp(l.dispatched_s, completed_s);
            l.delivered_s = l.delivered_s.clamp(l.done_s, completed_s);
            spans.push(Span {
                id: l.span_id,
                parent: Some(root_id),
                name: format!("shard{}", l.shard),
                start_s: l.enqueued_s,
                end_s: l.delivered_s,
            });
        }
        let critical_leg = self
            .legs
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.delivered_s.total_cmp(&b.delivered_s).then(ib.cmp(ia)) // first of equals wins
            })
            .map(|(i, _)| i);
        RequestTrace {
            trace_id: self.trace_id,
            request: self.request,
            tenant: self.tenant,
            submitted_s: submitted,
            completed_s,
            outcome,
            stages,
            spans,
            legs: self.legs,
            critical_leg,
            retries: self.retries,
            breaker_rejected: self.breaker_rejected,
            probe: self.probe,
            keys: self.keys,
            matches,
        }
    }
}

/// Per-stage latency distributions over a set of request traces: one
/// [`LatencyStats`] per lifecycle stage, aggregated over all finished
/// requests (shed included — their latency is real even when their service
/// never happened).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StageLatencyStats {
    /// Queue-wait distribution.
    pub queue: LatencyStats,
    /// Batching-delay distribution.
    pub batch: LatencyStats,
    /// Service-time distribution.
    pub service: LatencyStats,
    /// Merge / straggler-wait distribution.
    pub merge: LatencyStats,
    /// Residual distribution.
    pub other: LatencyStats,
}

impl StageLatencyStats {
    /// Aggregate the stage distributions of `traces`.
    pub fn from_traces(traces: &[RequestTrace]) -> Self {
        let pick = |f: fn(&StageBreakdown) -> f64| {
            LatencyStats::from_samples(traces.iter().map(|t| f(&t.stages)).collect())
        };
        StageLatencyStats {
            queue: pick(|s| s.queue_s),
            batch: pick(|s| s.batch_s),
            service: pick(|s| s.service_s),
            merge: pick(|s| s.merge_s),
            other: pick(|s| s.other_s),
        }
    }
}

/// Configuration of the deterministic tail sampler.
#[derive(Debug, Clone, Copy)]
pub struct TailConfig {
    /// Exact top-K slowest requests to card.
    pub top_k: usize,
    /// Seeded uniform sample size (deduplicated against itself; cards
    /// already in the top-K are kept distinct by request id).
    pub sample: usize,
    /// Seed of the uniform draw.
    pub seed: u64,
}

impl Default for TailConfig {
    fn default() -> Self {
        TailConfig {
            top_k: 8,
            sample: 8,
            seed: 0x7461696c, // "tail"
        }
    }
}

/// An EXPLAIN-ANALYZE-style per-request breakdown: everything needed to
/// answer "where did this request's latency go?" without the full trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QueryCard {
    /// Deterministic trace id.
    pub trace_id: u64,
    /// Server-assigned request id.
    pub request: u64,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// How the request left the server.
    pub outcome: RequestOutcome,
    /// End-to-end latency, seconds.
    pub latency_s: f64,
    /// Exact stage decomposition.
    pub stages: StageBreakdown,
    /// Probe keys carried.
    pub keys: usize,
    /// Matches returned.
    pub matches: usize,
    /// Dispatch retries suffered.
    pub retries: usize,
    /// Shard legs fanned out to (0 on single-GPU paths).
    pub fanout: usize,
    /// Shard of the critical-path leg (latest delivery), if any.
    pub critical_shard: Option<usize>,
    /// The critical leg's share of the latency spent waiting after the
    /// first leg delivered (straggler wait), seconds.
    pub straggler_wait_s: f64,
}

impl QueryCard {
    /// Build the card of one trace.
    pub fn from_trace(t: &RequestTrace) -> Self {
        QueryCard {
            trace_id: t.trace_id,
            request: t.request,
            tenant: t.tenant,
            outcome: t.outcome,
            latency_s: t.latency_s(),
            stages: t.stages,
            keys: t.keys,
            matches: t.matches,
            retries: t.retries,
            fanout: t.legs.len(),
            critical_shard: t.critical_leg.map(|i| t.legs[i].shard),
            straggler_wait_s: t.stages.merge_s,
        }
    }

    /// Render the card as fixed-width text (the serving analogue of
    /// `EXPLAIN ANALYZE` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "query card — request {} (trace 0x{:016x}, tenant {})\n",
            self.request, self.trace_id, self.tenant
        ));
        out.push_str(&format!(
            "  outcome {:?}; {} keys -> {} matches; latency {:.3} ms\n",
            self.outcome,
            self.keys,
            self.matches,
            self.latency_s * 1e3
        ));
        let lat = self.latency_s.max(f64::MIN_POSITIVE);
        for (name, v) in [
            ("queue", self.stages.queue_s),
            ("batch", self.stages.batch_s),
            ("service", self.stages.service_s),
            ("merge", self.stages.merge_s),
            ("other", self.stages.other_s),
        ] {
            out.push_str(&format!(
                "    {name:<8} {:>10.3} ms  {:>5.1}%\n",
                v * 1e3,
                v / lat * 100.0
            ));
        }
        if self.retries > 0 {
            out.push_str(&format!("  retries: {}\n", self.retries));
        }
        if let Some(shard) = self.critical_shard {
            out.push_str(&format!(
                "  fan-out: {} legs; critical path: shard {} (straggler wait {:.3} ms)\n",
                self.fanout,
                shard,
                self.straggler_wait_s * 1e3
            ));
        }
        out
    }
}

/// The deterministic tail sample of one run: the exact top-K slowest
/// requests plus a seeded uniform sample, as [`QueryCard`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TailReport {
    /// The K slowest requests, slowest first (ties broken by ascending
    /// request id).
    pub slowest: Vec<QueryCard>,
    /// Seeded uniform sample in ascending request-id order, deduplicated.
    pub sampled: Vec<QueryCard>,
}

/// Sample the tail of `traces` deterministically: exact top-K by latency
/// (descending, ties by ascending request id) plus a seeded uniform sample
/// of indices drawn with counter-indexed splitmix64.
pub fn sample_tail(traces: &[RequestTrace], cfg: &TailConfig) -> TailReport {
    let mut order: Vec<usize> = (0..traces.len()).collect();
    order.sort_by(|&a, &b| {
        traces[b]
            .latency_s()
            .total_cmp(&traces[a].latency_s())
            .then(traces[a].request.cmp(&traces[b].request))
    });
    let slowest = order
        .iter()
        .take(cfg.top_k)
        .map(|&i| QueryCard::from_trace(&traces[i]))
        .collect();
    let mut picks: Vec<usize> = if traces.is_empty() {
        Vec::new()
    } else {
        (0..cfg.sample as u64)
            .map(|i| (splitmix64(cfg.seed ^ (i + 1)) % traces.len() as u64) as usize)
            .collect()
    };
    picks.sort_unstable();
    picks.dedup();
    TailReport {
        slowest,
        sampled: picks
            .into_iter()
            .map(|i| QueryCard::from_trace(&traces[i]))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_trace(request: u64, submitted: f64, completed: f64) -> RequestTrace {
        let mut ctx = RequestContext::new(request, 0, submitted, 16);
        ctx.staged(submitted + 0.001);
        ctx.dispatched(submitted + 0.002);
        ctx.first_result(completed - 0.0005);
        ctx.merged(completed - 0.0005);
        ctx.finish(completed, RequestOutcome::Completed, 3)
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        assert_eq!(trace_id_for(0), trace_id_for(0));
        assert_ne!(trace_id_for(0), trace_id_for(1));
        let a = simple_trace(7, 0.0, 0.01);
        let b = simple_trace(7, 0.0, 0.01);
        assert_eq!(a, b);
    }

    #[test]
    fn stage_sum_reconstructs_latency_exactly() {
        // Awkward magnitudes on purpose: the residual rule must absorb
        // floating-point rounding, not approximately but exactly.
        for (s, c) in [(0.0, 0.01), (1.0 / 3.0, 2.0 / 3.0), (123.456, 123.789)] {
            let t = simple_trace(1, s, c);
            assert_eq!(t.stages.total_s(), t.latency_s());
            t.validate().expect("valid trace");
        }
    }

    #[test]
    fn unstaged_shed_request_is_all_other() {
        let ctx = RequestContext::new(2, 1, 5.0, 8);
        let t = ctx.finish(5.0, RequestOutcome::Shed, 0);
        assert_eq!(t.stages.queue_s, 0.0);
        assert_eq!(t.stages.service_s, 0.0);
        assert_eq!(t.stages.total_s(), 0.0);
        t.validate().expect("zero-length trace is valid");
    }

    #[test]
    fn out_of_order_milestones_are_clamped_monotone() {
        let mut ctx = RequestContext::new(3, 0, 1.0, 4);
        ctx.dispatched(1.5); // dispatched recorded before staged
        ctx.staged(1.7); // raw staged later than dispatched
        let t = ctx.finish(2.0, RequestOutcome::Completed, 0);
        t.validate().expect("clamped chain stays monotone");
        assert!(t.stages.queue_s >= 0.0 && t.stages.batch_s >= 0.0);
    }

    #[test]
    fn legs_make_a_critical_path() {
        let mut ctx = RequestContext::new(4, 2, 0.0, 32);
        ctx.staged(0.001);
        let a = ctx.leg_opened(0, 16, 0.001, false);
        let b = ctx.leg_opened(3, 16, 0.001, true);
        ctx.leg_dispatched(a, 0.002);
        ctx.leg_dispatched(b, 0.003);
        ctx.leg_delivered(a, 0.004, 0.004, 5);
        ctx.leg_delivered(b, 0.005, 0.006, 7);
        let t = ctx.finish(0.006, RequestOutcome::Completed, 12);
        t.validate().expect("leg trace validates");
        assert_eq!(t.legs.len(), 2);
        assert_eq!(t.critical_leg, Some(1));
        assert_eq!(t.legs[1].shard, 3);
        assert!(t.legs[1].remote);
        assert!(t.stages.merge_s > 0.0, "straggler wait attributed to merge");
        let card = QueryCard::from_trace(&t);
        assert_eq!(card.critical_shard, Some(3));
        assert!(card.render().contains("critical path: shard 3"));
    }

    #[test]
    fn split_batches_use_min_dispatch_max_delivery() {
        let mut ctx = RequestContext::new(5, 0, 0.0, 64);
        let a = ctx.leg_opened(1, 64, 0.0, true);
        ctx.leg_dispatched(a, 0.004);
        ctx.leg_dispatched(a, 0.002); // an earlier split batch
        ctx.leg_delivered(a, 0.005, 0.006, 1);
        ctx.leg_delivered(a, 0.003, 0.003, 2); // earlier delivery must not regress
        let t = ctx.finish(0.006, RequestOutcome::Completed, 3);
        assert_eq!(t.legs[0].dispatched_s, 0.002);
        assert_eq!(t.legs[0].delivered_s, 0.006);
        assert_eq!(t.legs[0].matches, 3);
        t.validate().expect("split-batch leg validates");
    }

    #[test]
    fn validate_rejects_broken_trees() {
        let mut t = simple_trace(6, 0.0, 0.01);
        t.spans[1].start_s = -1.0; // escape the root
        assert!(t.validate().is_err());
        let mut t2 = simple_trace(6, 0.0, 0.01);
        t2.stages.other_s += 0.001; // break the exact sum
        assert!(t2.validate().is_err());
    }

    #[test]
    fn tail_sampler_is_deterministic_and_exact_topk() {
        let traces: Vec<RequestTrace> = (0..32)
            .map(|i| simple_trace(i, 0.0, 0.01 + (i % 7) as f64 * 1e-3))
            .collect();
        let cfg = TailConfig::default();
        let a = sample_tail(&traces, &cfg);
        let b = sample_tail(&traces, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.slowest.len(), 8);
        // Slowest-first with ascending-id tiebreak.
        for w in a.slowest.windows(2) {
            assert!(
                w[0].latency_s > w[1].latency_s
                    || (w[0].latency_s == w[1].latency_s && w[0].request < w[1].request)
            );
        }
        let max = traces.iter().map(|t| t.latency_s()).fold(0.0, f64::max);
        assert_eq!(a.slowest[0].latency_s, max);
        // Sampled ids ascend and are unique.
        for w in a.sampled.windows(2) {
            assert!(w[0].request < w[1].request);
        }
        assert!(sample_tail(&[], &cfg).slowest.is_empty());
    }

    #[test]
    fn stage_stats_aggregate_per_stage() {
        let traces: Vec<RequestTrace> = (0..10).map(|i| simple_trace(i, 0.0, 0.01)).collect();
        let s = StageLatencyStats::from_traces(&traces);
        assert_eq!(s.queue.samples, 10);
        assert!((s.queue.p50_s - 0.001).abs() < 1e-12);
        assert!(s.service.mean_s > 0.0);
    }
}
