//! Tenant-parallel serving: independent tenants on independent `Gpu`
//! lanes, executed by a work-stealing thread pool, merged in fixed order.
//!
//! The shared-window [`Server`](crate::server::Server) interleaves every
//! tenant on one device — right for studying cross-query batching, but it
//! serializes tenants that share nothing: each tenant probes the same
//! read-only relation through its own requests, and the virtual clock of
//! one tenant's dispatches never needs to see another's. This module
//! exploits that independence as a second parallel axis (the first being
//! the engine's batched drain): the trace is partitioned by tenant, each
//! tenant's sub-trace is served on its **own** freshly built `Gpu` lane,
//! and the per-lane reports are merged in ascending-tenant order.
//!
//! # Determinism argument
//!
//! The output is byte-identical for any worker-thread count because
//!
//! 1. **Lanes share no mutable state.** Each lane builds its own `Gpu`
//!    (sessions hold `Rc`s, so a lane is constructed *inside* the worker
//!    thread that runs it), its own server, and its own chaos schedule
//!    clone. The only shared inputs are immutable: the relation's
//!    `Arc<[u64]>` column, the config, and the sub-traces.
//! 2. **A lane's result is a pure function of its inputs.** Virtual time
//!    restarts at zero per lane; fault windows, retry jitter, and tuner
//!    exploration draws are all seeded per tenant, not per thread. The
//!    thread-local generator/fit caches a lane may hit only change wall
//!    time — their outputs are accounting-identical by construction.
//! 3. **The merge order is fixed before any thread runs.** Lanes are
//!    ascending tenant id; worker threads claim lane *indices* from an
//!    atomic counter and write results into that lane's pre-allocated
//!    slot, so which thread ran a lane is unobservable in the output.
//!    Responses are re-keyed to their global (whole-trace) request ids and
//!    merged by that id.
//!
//! Against the serial shared-window server the *semantics* differ — there
//! is no cross-tenant batching, and each tenant sees a dedicated device —
//! so this is an opt-in mode, not a drop-in replacement. Within the mode,
//! `threads = 1` and `threads = N` serialize byte-identically; the CI
//! byte-diff and `crates/serve/tests/parallel.rs` hold that line.

use crate::cluster::{ClusterConfig, ClusterReport, ClusterServer};
use crate::report::{LatencyHistogram, LatencyStats, ServerReport};
use crate::request::{LookupResponse, RequestOutcome, TenantId};
use crate::server::{ServeConfig, Server};
use crate::trace::TimedRequest;
use crate::tuned::{TunedConfig, TunedReport, TunedServer};
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use windex_core::WindexError;
use windex_sim::{ChaosSchedule, Gpu, GpuSpec};
use windex_workload::Relation;

/// One tenant's slice of a trace, plus the mapping back to global ids.
#[derive(Debug, Clone)]
pub struct TenantShard {
    /// The tenant every request in `trace` belongs to.
    pub tenant: TenantId,
    /// The tenant's requests in arrival order, original `at_s` preserved.
    pub trace: Vec<TimedRequest>,
    /// `global_ids[i]` is the whole-trace request id of `trace[i]` (lane
    /// servers assign ids by sub-trace ordinal; this maps them back).
    pub global_ids: Vec<u64>,
}

/// Partition an arrival-ordered trace by tenant. Shards come back in
/// ascending tenant id — the fixed lane (and merge) order — and each
/// shard's sub-trace preserves the original arrival order and timestamps.
pub fn shard_by_tenant(trace: &[TimedRequest]) -> Vec<TenantShard> {
    let mut shards: Vec<TenantShard> = Vec::new();
    for (gid, t) in trace.iter().enumerate() {
        let tenant = t.request.tenant;
        let shard = match shards.iter_mut().find(|s| s.tenant == tenant) {
            Some(s) => s,
            None => {
                shards.push(TenantShard {
                    tenant,
                    trace: Vec::new(),
                    global_ids: Vec::new(),
                });
                shards.last_mut().unwrap()
            }
        };
        shard.trace.push(t.clone());
        shard.global_ids.push(gid as u64);
    }
    shards.sort_by_key(|s| s.tenant);
    shards
}

/// Run `lane` over every shard on up to `threads` workers and return the
/// results in shard order. Workers claim shard *indices* from an atomic
/// counter and write into that index's slot, so the result vector — and
/// therefore everything merged from it — is independent of the thread
/// count and of which worker ran which lane. Errors propagate by lane
/// order (the lowest-tenant failure wins), again thread-count independent.
fn run_lanes<T, F>(shards: &[TenantShard], threads: usize, lane: F) -> Result<Vec<T>, WindexError>
where
    T: Send,
    F: Fn(&TenantShard) -> Result<T, WindexError> + Sync,
{
    let threads = threads.max(1).min(shards.len().max(1));
    let slots: Vec<Mutex<Option<Result<T, WindexError>>>> =
        (0..shards.len()).map(|_| Mutex::new(None)).collect();
    if threads == 1 {
        // Serial reference path: same claim order a single worker would
        // take, without spawning.
        for (shard, slot) in shards.iter().zip(&slots) {
            *slot.lock().unwrap() = Some(lane(shard));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(shard) = shards.get(i) else { break };
                    *slots[i].lock().unwrap() = Some(lane(shard));
                });
            }
        });
    }
    let mut out = Vec::with_capacity(shards.len());
    for slot in slots {
        out.push(
            slot.into_inner()
                .map_err(|_| WindexError::InvalidState("tenant lane worker panicked"))?
                .ok_or(WindexError::InvalidState("tenant lane never ran"))??,
        );
    }
    Ok(out)
}

/// One tenant lane's report. The report's internal request ids are
/// *lane-local* (sub-trace ordinals); the outcome's merged `responses`
/// carry the global ids.
#[derive(Debug, Clone)]
pub struct TenantLane<R> {
    /// The tenant this lane served.
    pub tenant: TenantId,
    /// Requests in the tenant's sub-trace.
    pub requests: usize,
    /// The lane server's full report.
    pub report: R,
}

// Hand-rolled: the derive shim does not handle generic types.
impl<R: Serialize> Serialize for TenantLane<R> {
    fn to_ser_value(&self) -> serde::SerValue {
        serde::SerValue::Map(vec![
            ("tenant".to_string(), self.tenant.to_ser_value()),
            ("requests".to_string(), self.requests.to_ser_value()),
            ("report".to_string(), self.report.to_ser_value()),
        ])
    }
}

/// Cross-lane aggregate of a tenant-parallel run. Deliberately excludes
/// the worker-thread count: the summary describes the *result*, which is
/// identical for any thread count, not the execution.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelSummary {
    /// Always `"tenant-parallel"`.
    pub mode: String,
    /// Tenant lanes (== distinct tenants in the trace).
    pub lanes: usize,
    /// Requests across all lanes.
    pub requests: usize,
    /// Requests completed within deadline (or with none set).
    pub completed: usize,
    /// Requests shed.
    pub shed: usize,
    /// Requests served past their deadline.
    pub deadline_missed: usize,
    /// Join matches returned across all lanes.
    pub result_tuples: usize,
    /// Probe keys dispatched across all lanes.
    pub keys_probed: usize,
    /// Slowest lane's virtual makespan — lanes run concurrently in
    /// virtual time (each tenant has a dedicated device), so the run ends
    /// when the slowest lane does.
    pub virtual_makespan_s: f64,
    /// Completed requests per virtual second of the aggregate makespan.
    pub completed_rps: f64,
    /// Latency distribution over all non-shed requests, all lanes.
    pub latency: LatencyStats,
    /// Fixed-bucket histogram over the same samples.
    pub latency_hist: LatencyHistogram,
}

impl ParallelSummary {
    fn new(
        lanes: usize,
        requests: usize,
        counts: (usize, usize, usize),
        result_tuples: usize,
        keys_probed: usize,
        makespan_s: f64,
        samples: Vec<f64>,
    ) -> Self {
        let (completed, shed, deadline_missed) = counts;
        ParallelSummary {
            mode: "tenant-parallel".to_string(),
            lanes,
            requests,
            completed,
            shed,
            deadline_missed,
            result_tuples,
            keys_probed,
            virtual_makespan_s: makespan_s,
            completed_rps: if makespan_s > 0.0 {
                completed as f64 / makespan_s
            } else {
                0.0
            },
            latency_hist: LatencyHistogram::from_samples(&samples),
            latency: LatencyStats::from_samples(samples),
        }
    }
}

/// Outcome of [`serve_tenant_parallel`].
#[derive(Debug, Clone, Serialize)]
pub struct ParallelServeOutcome {
    /// Every response, re-keyed to global request ids and merged by id.
    pub responses: Vec<LookupResponse>,
    /// Per-tenant lane reports, ascending tenant id.
    pub lanes: Vec<TenantLane<ServerReport>>,
    /// Cross-lane aggregate.
    pub summary: ParallelSummary,
}

/// Outcome of [`serve_tuned_tenant_parallel`].
#[derive(Debug, Clone, Serialize)]
pub struct ParallelTunedOutcome {
    /// Per-tenant lane reports, ascending tenant id.
    pub lanes: Vec<TenantLane<TunedReport>>,
    /// Cross-lane aggregate.
    pub summary: ParallelSummary,
}

/// Outcome of [`serve_cluster_tenant_parallel`].
#[derive(Debug, Clone, Serialize)]
pub struct ParallelClusterOutcome {
    /// Every response, re-keyed to global request ids and merged by id.
    pub responses: Vec<LookupResponse>,
    /// Per-tenant lane reports, ascending tenant id.
    pub lanes: Vec<TenantLane<ClusterReport>>,
    /// Cross-lane aggregate.
    pub summary: ParallelSummary,
}

/// Re-key a lane's responses to global ids and fold them into `merged`.
fn merge_responses(
    merged: &mut Vec<LookupResponse>,
    shard: &TenantShard,
    mut responses: Vec<LookupResponse>,
) {
    for r in &mut responses {
        r.request = shard.global_ids[r.request as usize];
    }
    merged.extend(responses);
}

/// Outcome tallies over merged responses: (completed, shed,
/// deadline-missed) counts, total matches, and non-shed latency samples.
fn response_tallies(responses: &[LookupResponse]) -> ((usize, usize, usize), usize, Vec<f64>) {
    let mut counts = (0usize, 0usize, 0usize);
    let mut matches = 0usize;
    let mut samples = Vec::new();
    for r in responses {
        matches += r.matches.len();
        match r.outcome {
            RequestOutcome::Completed => counts.0 += 1,
            RequestOutcome::Shed => counts.1 += 1,
            RequestOutcome::DeadlineMissed => counts.2 += 1,
        }
        if r.outcome != RequestOutcome::Shed {
            samples.push(r.latency_s);
        }
    }
    (counts, matches, samples)
}

/// Serve `trace` with one shared-window [`Server`] per tenant, each on its
/// own fresh `Gpu` lane, using up to `threads` workers. `chaos` (if any)
/// is installed on **every** lane, so each tenant's device replays the
/// same fault windows. Same inputs ⇒ byte-identical outcome for any
/// `threads`.
pub fn serve_tenant_parallel(
    spec: &GpuSpec,
    cfg: ServeConfig,
    r: &Relation,
    trace: &[TimedRequest],
    threads: usize,
    chaos: Option<&ChaosSchedule>,
) -> Result<ParallelServeOutcome, WindexError> {
    let shards = shard_by_tenant(trace);
    let outcomes = run_lanes(&shards, threads, |shard| {
        let mut gpu = Gpu::new(spec.clone());
        if let Some(schedule) = chaos {
            gpu.set_chaos_schedule(schedule.clone())?;
        }
        let mut server = Server::new(&mut gpu, cfg, r.clone())?;
        server.run(&mut gpu, &shard.trace)
    })?;
    let mut responses = Vec::with_capacity(trace.len());
    let mut lanes = Vec::with_capacity(shards.len());
    let mut keys_probed = 0usize;
    let mut makespan_s = 0.0f64;
    for (shard, outcome) in shards.iter().zip(outcomes) {
        merge_responses(&mut responses, shard, outcome.responses);
        keys_probed += outcome.report.keys_probed;
        makespan_s = makespan_s.max(outcome.report.virtual_makespan_s);
        lanes.push(TenantLane {
            tenant: shard.tenant,
            requests: shard.trace.len(),
            report: outcome.report,
        });
    }
    responses.sort_by_key(|r| r.request);
    let (counts, matches, samples) = response_tallies(&responses);
    let summary = ParallelSummary::new(
        lanes.len(),
        trace.len(),
        counts,
        matches,
        keys_probed,
        makespan_s,
        samples,
    );
    Ok(ParallelServeOutcome {
        responses,
        lanes,
        summary,
    })
}

/// Serve `trace` with one single-tenant [`TunedServer`] per tenant, each
/// on its own fresh `Gpu` lane. `tenants` maps each tenant to its
/// relation (exactly as [`TunedServer::new`] takes them); a trace request
/// for an unmapped tenant fails the run. Per-tenant tuner seeds derive
/// from the tenant id, so a lane's tuner draws the same exploration
/// stream it would in the shared-device server.
pub fn serve_tuned_tenant_parallel(
    spec: &GpuSpec,
    cfg: TunedConfig,
    tenants: &[(TenantId, Relation)],
    trace: &[TimedRequest],
    threads: usize,
    chaos: Option<&ChaosSchedule>,
) -> Result<ParallelTunedOutcome, WindexError> {
    let shards = shard_by_tenant(trace);
    let reports = run_lanes(&shards, threads, |shard| {
        let r = tenants
            .iter()
            .find(|(id, _)| *id == shard.tenant)
            .map(|(_, r)| r.clone())
            .ok_or(WindexError::InvalidConfig(
                "trace request for a tenant the server does not host",
            ))?;
        let mut server = TunedServer::new(spec.clone(), cfg, vec![(shard.tenant, r)], None)?;
        if let Some(schedule) = chaos {
            server.gpu_mut().set_chaos_schedule(schedule.clone())?;
        }
        server.run(&shard.trace)
    })?;
    let mut lanes = Vec::with_capacity(shards.len());
    let mut counts = (0usize, 0usize, 0usize);
    let mut matches = 0usize;
    let mut keys_probed = 0usize;
    let mut makespan_s = 0.0f64;
    let mut samples = Vec::new();
    for (shard, report) in shards.iter().zip(reports) {
        counts.0 += report.completed;
        counts.2 += report.deadline_missed;
        matches += report.result_tuples;
        keys_probed += report.keys_probed;
        makespan_s = makespan_s.max(report.virtual_makespan_s);
        // The tuned server queues instead of shedding, so every span tree
        // carries a served latency.
        samples.extend(report.traces.iter().map(|t| t.completed_s - t.submitted_s));
        lanes.push(TenantLane {
            tenant: shard.tenant,
            requests: shard.trace.len(),
            report,
        });
    }
    // `completed` counts deadline-missed requests too in TunedReport
    // (they were served); mirror the Server-side convention where the
    // buckets are disjoint.
    counts.0 -= counts.2;
    let requests = trace.len();
    let summary = ParallelSummary::new(
        lanes.len(),
        requests,
        counts,
        matches,
        keys_probed,
        makespan_s,
        samples,
    );
    Ok(ParallelTunedOutcome { lanes, summary })
}

/// Serve `trace` with one [`ClusterServer`] per tenant — every tenant gets
/// a dedicated multi-GPU cluster lane built from the same `ClusterConfig`
/// and relation. `chaos` (if any) must hold one schedule per cluster GPU
/// and is installed on every lane's cluster.
pub fn serve_cluster_tenant_parallel(
    cfg: &ClusterConfig,
    r: &Relation,
    trace: &[TimedRequest],
    threads: usize,
    chaos: Option<&[ChaosSchedule]>,
) -> Result<ParallelClusterOutcome, WindexError> {
    let shards = shard_by_tenant(trace);
    let outcomes = run_lanes(&shards, threads, |shard| {
        let mut server = ClusterServer::new(cfg.clone(), r.clone())?;
        if let Some(schedules) = chaos {
            server.set_chaos_schedules(schedules.to_vec())?;
        }
        server.run(&shard.trace)
    })?;
    let mut responses = Vec::with_capacity(trace.len());
    let mut lanes = Vec::with_capacity(shards.len());
    let mut keys_probed = 0usize;
    let mut makespan_s = 0.0f64;
    for (shard, outcome) in shards.iter().zip(outcomes) {
        merge_responses(&mut responses, shard, outcome.responses);
        keys_probed += outcome.report.keys_probed;
        makespan_s = makespan_s.max(outcome.report.virtual_makespan_s);
        lanes.push(TenantLane {
            tenant: shard.tenant,
            requests: shard.trace.len(),
            report: outcome.report,
        });
    }
    responses.sort_by_key(|r| r.request);
    let (counts, matches, samples) = response_tallies(&responses);
    let summary = ParallelSummary::new(
        lanes.len(),
        trace.len(),
        counts,
        matches,
        keys_probed,
        makespan_s,
        samples,
    );
    Ok(ParallelClusterOutcome {
        responses,
        lanes,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate_trace, TraceConfig};
    use windex_sim::Scale;
    use windex_workload::KeyDistribution;

    fn spec() -> GpuSpec {
        GpuSpec::v100_nvlink2(Scale::PAPER)
    }

    fn relation() -> Relation {
        Relation::unique_sorted(1 << 14, KeyDistribution::SparseUniform, 7)
    }

    fn trace(r: &Relation) -> Vec<TimedRequest> {
        generate_trace(
            &TraceConfig {
                requests: 48,
                tenants: 3,
                min_keys: 32,
                max_keys: 128,
                offered_load_rps: 2000.0,
                ..TraceConfig::default()
            },
            r,
        )
    }

    #[test]
    fn shards_partition_the_trace_in_order() {
        let r = relation();
        let t = trace(&r);
        let shards = shard_by_tenant(&t);
        assert_eq!(shards.iter().map(|s| s.trace.len()).sum::<usize>(), t.len());
        assert!(shards.windows(2).all(|w| w[0].tenant < w[1].tenant));
        for s in &shards {
            assert!(s.trace.iter().all(|q| q.request.tenant == s.tenant));
            assert!(s.trace.windows(2).all(|w| w[0].at_s <= w[1].at_s));
            assert!(s.global_ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn responses_cover_every_global_id() {
        let r = relation();
        let t = trace(&r);
        let out = serve_tenant_parallel(&spec(), ServeConfig::default(), &r, &t, 2, None).unwrap();
        assert_eq!(out.responses.len(), t.len());
        for (i, resp) in out.responses.iter().enumerate() {
            assert_eq!(resp.request, i as u64);
            assert_eq!(resp.tenant, t[i].request.tenant);
        }
        assert_eq!(out.summary.requests, t.len());
        assert_eq!(
            out.summary.completed + out.summary.shed + out.summary.deadline_missed,
            t.len()
        );
    }
}
