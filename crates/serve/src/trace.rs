//! Seeded multi-tenant request traces.
//!
//! The serving experiments need *open-loop* arrival processes (requests
//! arrive on their own schedule, queueing when the server falls behind, as
//! in any latency–throughput study) that are perfectly reproducible. A
//! [`TraceConfig`] derives every arrival instant, tenant assignment, and
//! probe key from counter-indexed draws of a splitmix64 stream — the same
//! construction the simulator's [`FaultPlan`](windex_sim::FaultPlan) uses —
//! so one seed always produces byte-identical traces.

use crate::request::{LookupRequest, TenantId};
use windex_core::WindexError;
use windex_workload::Relation;

/// One scheduled arrival of a served trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRequest {
    /// Virtual arrival instant in seconds from trace start.
    pub at_s: f64,
    /// The request itself.
    pub request: LookupRequest,
}

/// Parameters of a seeded trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Seed of all deterministic draws.
    pub seed: u64,
    /// Number of tenants issuing requests (assigned per-request from the
    /// seeded stream, so all tenants stay active throughout).
    pub tenants: u32,
    /// Total requests in the trace.
    pub requests: usize,
    /// Minimum probe keys per request (inclusive).
    pub min_keys: usize,
    /// Maximum probe keys per request (inclusive).
    pub max_keys: usize,
    /// Offered load in requests per virtual second: arrivals follow a
    /// Poisson process of this rate (deterministic inverse-CDF draws).
    pub offered_load_rps: f64,
    /// Optional per-request latency budget (virtual seconds).
    pub deadline_s: Option<f64>,
}

impl TraceConfig {
    /// Check the configuration for internal consistency. Returns a typed
    /// [`WindexError::InvalidConfig`] naming the first violation, so
    /// callers can surface it without a panic.
    pub fn validate(&self) -> Result<(), WindexError> {
        if self.tenants == 0 {
            return Err(WindexError::InvalidConfig(
                "trace needs at least one tenant",
            ));
        }
        if self.min_keys < 1 || self.min_keys > self.max_keys {
            return Err(WindexError::InvalidConfig(
                "key-count range must be non-empty (1 <= min_keys <= max_keys)",
            ));
        }
        if !self.offered_load_rps.is_finite() || self.offered_load_rps <= 0.0 {
            return Err(WindexError::InvalidConfig(
                "offered load must be finite and positive",
            ));
        }
        if let Some(d) = self.deadline_s {
            if !d.is_finite() || d <= 0.0 {
                return Err(WindexError::InvalidConfig(
                    "deadline must be finite and positive when set",
                ));
            }
        }
        Ok(())
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            seed: 7,
            tenants: 4,
            requests: 256,
            min_keys: 4,
            max_keys: 64,
            offered_load_rps: 2_000.0,
            deadline_s: None,
        }
    }
}

#[inline]
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform f64 in `(0, 1]` from one hash draw (never 0, so `ln` is finite).
#[inline]
fn unit(seed: u64, salt: u64, seq: u64) -> f64 {
    let h = splitmix64(seed ^ salt.wrapping_mul(0x9e3779b97f4a7c15) ^ seq);
    ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

const SALT_ARRIVAL: u64 = 0x61727269;
const SALT_TENANT: u64 = 0x74656e61;
const SALT_NKEYS: u64 = 0x6e6b6579;
const SALT_KEY: u64 = 0x6b657921;

/// Generate the trace: `cfg.requests` arrivals sorted by time, with probe
/// keys sampled uniformly from the served relation `r` (foreign-key-valid
/// probes, as in the paper's workloads §3.2). Same config ⇒ identical trace.
pub fn generate_trace(cfg: &TraceConfig, r: &Relation) -> Vec<TimedRequest> {
    cfg.validate().expect("trace config must be valid");
    assert!(!r.keys().is_empty(), "served relation must not be empty");

    let mut out = Vec::with_capacity(cfg.requests);
    let mut clock = 0.0f64;
    let mut key_seq = 0u64;
    for i in 0..cfg.requests as u64 {
        // Exponential inter-arrival (Poisson process) via inverse CDF.
        clock += -unit(cfg.seed, SALT_ARRIVAL, i).ln() / cfg.offered_load_rps;
        let tenant = (splitmix64(cfg.seed ^ SALT_TENANT.wrapping_mul(31) ^ i) % cfg.tenants as u64)
            as TenantId;
        let span = (cfg.max_keys - cfg.min_keys + 1) as u64;
        let n_keys =
            cfg.min_keys + (splitmix64(cfg.seed ^ SALT_NKEYS.wrapping_mul(31) ^ i) % span) as usize;
        let mut keys = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            let pick = splitmix64(cfg.seed ^ SALT_KEY.wrapping_mul(31) ^ key_seq) as usize
                % r.keys().len();
            keys.push(r.keys()[pick]);
            key_seq += 1;
        }
        out.push(TimedRequest {
            at_s: clock,
            request: LookupRequest {
                tenant,
                keys,
                deadline: cfg.deadline_s,
            },
        });
    }
    out
}

/// Generate a trace whose every request belongs to `tenant`, with probe
/// keys drawn from that tenant's own relation `r`. The per-tenant seed is
/// derived as `cfg.seed ^ splitmix64(tenant)`, so tenants draw independent
/// streams from one configured seed. Used by the tuner experiments, where
/// tenants serve differently-sized relations and a shared key pool would
/// be meaningless.
pub fn generate_tenant_trace(
    cfg: &TraceConfig,
    tenant: TenantId,
    r: &Relation,
) -> Vec<TimedRequest> {
    let per_tenant = TraceConfig {
        seed: cfg.seed ^ splitmix64(tenant as u64 + 1),
        tenants: 1,
        ..*cfg
    };
    let mut trace = generate_trace(&per_tenant, r);
    for t in &mut trace {
        t.request.tenant = tenant;
    }
    trace
}

/// Merge per-tenant traces into one arrival-ordered trace. Ordering is
/// total and deterministic: by arrival instant, then tenant id (arrival
/// instants are seeded f64 draws, so cross-tenant ties are practically
/// impossible — the tenant tiebreak just makes determinism unconditional).
pub fn merge_traces(traces: Vec<Vec<TimedRequest>>) -> Vec<TimedRequest> {
    let mut all: Vec<TimedRequest> = traces.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        a.at_s
            .total_cmp(&b.at_s)
            .then(a.request.tenant.cmp(&b.request.tenant))
    });
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use windex_workload::KeyDistribution;

    fn relation() -> Relation {
        Relation::unique_sorted(4096, KeyDistribution::SparseUniform, 1)
    }

    #[test]
    fn validate_rejects_inconsistent_configs() {
        use windex_core::WindexError;
        let ok = TraceConfig::default();
        assert!(ok.validate().is_ok());
        let cases = [
            TraceConfig { tenants: 0, ..ok },
            TraceConfig {
                min_keys: 65,
                max_keys: 64,
                ..ok
            },
            TraceConfig { min_keys: 0, ..ok },
            TraceConfig {
                offered_load_rps: 0.0,
                ..ok
            },
            TraceConfig {
                offered_load_rps: -100.0,
                ..ok
            },
            TraceConfig {
                offered_load_rps: f64::NAN,
                ..ok
            },
            TraceConfig {
                offered_load_rps: f64::INFINITY,
                ..ok
            },
            TraceConfig {
                deadline_s: Some(0.0),
                ..ok
            },
            TraceConfig {
                deadline_s: Some(f64::NAN),
                ..ok
            },
        ];
        for bad in cases {
            match bad.validate() {
                Err(WindexError::InvalidConfig(msg)) => {
                    assert!(!msg.is_empty(), "message must name the violation")
                }
                other => panic!("expected InvalidConfig for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "trace config must be valid")]
    fn generate_trace_rejects_invalid_config() {
        let cfg = TraceConfig {
            min_keys: 8,
            max_keys: 4,
            ..TraceConfig::default()
        };
        generate_trace(&cfg, &relation());
    }

    #[test]
    fn traces_are_deterministic() {
        let cfg = TraceConfig::default();
        let r = relation();
        let a = generate_trace(&cfg, &r);
        let b = generate_trace(&cfg, &r);
        assert_eq!(a, b);
        let other = generate_trace(&TraceConfig { seed: 8, ..cfg }, &r);
        assert_ne!(a, other, "different seeds must differ");
    }

    #[test]
    fn arrivals_are_sorted_and_rate_shaped() {
        let cfg = TraceConfig {
            requests: 2000,
            offered_load_rps: 1000.0,
            ..TraceConfig::default()
        };
        let trace = generate_trace(&cfg, &relation());
        assert!(trace.windows(2).all(|w| w[0].at_s <= w[1].at_s));
        let span = trace.last().unwrap().at_s;
        // 2000 arrivals at 1000 rps ≈ 2 s ± generous slack.
        assert!((1.5..2.5).contains(&span), "span {span}");
    }

    #[test]
    fn keys_come_from_the_relation_and_tenants_spread() {
        let cfg = TraceConfig {
            tenants: 3,
            ..TraceConfig::default()
        };
        let r = relation();
        let trace = generate_trace(&cfg, &r);
        let mut seen = [false; 3];
        for t in &trace {
            seen[t.request.tenant as usize] = true;
            assert!(!t.request.keys.is_empty());
            assert!((cfg.min_keys..=cfg.max_keys).contains(&t.request.keys.len()));
            for k in &t.request.keys {
                assert!(r.keys().binary_search(k).is_ok());
            }
        }
        assert!(seen.iter().all(|&s| s), "all tenants must appear");
    }

    #[test]
    fn tenant_traces_pin_tenant_and_merge_ordered() {
        let cfg = TraceConfig {
            requests: 64,
            ..TraceConfig::default()
        };
        let small = relation();
        let big = Relation::unique_sorted(8192, KeyDistribution::SparseUniform, 2);
        let t0 = generate_tenant_trace(&cfg, 0, &small);
        let t1 = generate_tenant_trace(&cfg, 1, &big);
        assert!(t0.iter().all(|t| t.request.tenant == 0));
        assert!(t1.iter().all(|t| t.request.tenant == 1));
        // Tenants draw independent streams from one seed.
        assert_ne!(
            t0.iter().map(|t| t.at_s).collect::<Vec<_>>(),
            t1.iter().map(|t| t.at_s).collect::<Vec<_>>()
        );
        // Keys come from each tenant's own relation.
        for t in &t1 {
            for k in &t.request.keys {
                assert!(big.keys().binary_search(k).is_ok());
            }
        }
        let merged = merge_traces(vec![t0.clone(), t1.clone()]);
        assert_eq!(merged.len(), t0.len() + t1.len());
        assert!(merged.windows(2).all(|w| w[0].at_s <= w[1].at_s));
        // Merge is deterministic regardless of input order.
        assert_eq!(merged, merge_traces(vec![t1, t0]));
    }
}
