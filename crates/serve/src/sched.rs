//! Per-tenant fair scheduling: deficit round-robin over tenant queues.
//!
//! Shared-window batching puts every tenant's keys through one operator, so
//! without scheduling a tenant issuing huge requests would monopolize every
//! window and starve small interactive tenants. Deficit round-robin (DRR)
//! fixes this with O(1) work per decision: tenants take turns, each visit
//! adds a `quantum` of key-credits to the tenant's deficit counter, and a
//! queued request is released only when the tenant has accumulated enough
//! credit to pay for its keys. Large requests therefore wait several rounds
//! while small tenants keep flowing.
//!
//! All state lives in ordered structures (`BTreeMap` + explicit rotation
//! ring), so scheduling decisions are a pure function of the enqueue
//! sequence — determinism is preserved end to end.

use crate::request::TenantId;
use std::collections::{BTreeMap, VecDeque};
use windex_core::WindexError;

/// A queued request, by server-assigned id and its key count (the DRR
/// "packet length").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Queued {
    id: u64,
    n_keys: usize,
}

#[derive(Debug, Default)]
struct TenantQueue {
    queue: VecDeque<Queued>,
    /// Key-credits accumulated across visits; reset when the queue drains
    /// (classic DRR: an idle tenant must not hoard credit).
    deficit: usize,
    /// Whether the next visit should grant a fresh quantum.
    fresh_visit: bool,
}

/// Deficit round-robin scheduler over per-tenant FIFO queues.
#[derive(Debug)]
pub struct DrrScheduler {
    quantum: usize,
    tenants: BTreeMap<TenantId, TenantQueue>,
    /// Rotation order of tenants with queued work.
    ring: VecDeque<TenantId>,
    queued_keys: usize,
}

impl DrrScheduler {
    /// Create a scheduler granting `quantum` key-credits per tenant visit.
    /// A zero quantum would never release any request, so it is a typed
    /// configuration error, not a panic.
    pub fn new(quantum: usize) -> Result<Self, WindexError> {
        if quantum == 0 {
            return Err(WindexError::InvalidConfig("DRR quantum must be positive"));
        }
        Ok(DrrScheduler {
            quantum,
            tenants: BTreeMap::new(),
            ring: VecDeque::new(),
            queued_keys: 0,
        })
    }

    /// Total keys waiting across all tenant queues.
    pub fn queued_keys(&self) -> usize {
        self.queued_keys
    }

    /// Whether any request is queued.
    pub fn is_empty(&self) -> bool {
        self.queued_keys == 0 && self.ring.is_empty()
    }

    /// Queue request `id` with `n_keys` keys for `tenant`.
    pub fn enqueue(&mut self, tenant: TenantId, id: u64, n_keys: usize) {
        let tq = self.tenants.entry(tenant).or_default();
        if tq.queue.is_empty() {
            // (Re-)activate the tenant at the back of the rotation.
            self.ring.push_back(tenant);
            tq.fresh_visit = true;
        }
        tq.queue.push_back(Queued { id, n_keys });
        self.queued_keys += n_keys;
    }

    /// Remove queued request `id` of `tenant`, returning whether anything
    /// was removed. Keeps `queued_keys` exact when a request is shed after
    /// admission: without this, dead legs inflate the backlog that
    /// admission backpressure reads until they reach the head of their
    /// queue and are skipped. A tenant whose queue drains here is lazily
    /// deactivated on its next `dequeue` visit, exactly as when it drains
    /// normally.
    pub fn cancel(&mut self, tenant: TenantId, id: u64) -> bool {
        let Some(tq) = self.tenants.get_mut(&tenant) else {
            return false;
        };
        let Some(pos) = tq.queue.iter().position(|q| q.id == id) else {
            return false;
        };
        let q = tq.queue.remove(pos).expect("position just located");
        self.queued_keys -= q.n_keys;
        true
    }

    /// Release the next request under DRR order, if any tenant has queued
    /// work. Returns the request id, or `Ok(None)` when every queue is
    /// empty. Internal ring/queue inconsistency — impossible through this
    /// API, but conceivable after a future refactor — surfaces as a typed
    /// [`WindexError::InvalidState`] instead of a scheduler panic taking
    /// the whole server down mid-trace.
    pub fn dequeue(&mut self) -> Result<Option<u64>, WindexError> {
        loop {
            let Some(&tenant) = self.ring.front() else {
                return Ok(None);
            };
            let tq = self
                .tenants
                .get_mut(&tenant)
                .ok_or(WindexError::InvalidState(
                    "DRR ring names a tenant with no queue",
                ))?;
            if tq.queue.is_empty() {
                // Tenant drained since its last visit: drop the credit and
                // deactivate (it re-enters the ring on its next enqueue).
                tq.deficit = 0;
                self.ring.pop_front();
                continue;
            }
            if tq.fresh_visit {
                tq.deficit += self.quantum;
                tq.fresh_visit = false;
            }
            let head = *tq.queue.front().ok_or(WindexError::InvalidState(
                "DRR tenant queue emptied mid-visit",
            ))?;
            if head.n_keys <= tq.deficit {
                tq.deficit -= head.n_keys;
                tq.queue.pop_front();
                self.queued_keys -= head.n_keys;
                if tq.queue.is_empty() {
                    tq.deficit = 0;
                    self.ring.pop_front();
                }
                return Ok(Some(head.id));
            }
            // Not enough credit: rotate to the next tenant; this tenant's
            // next visit grants another quantum.
            tq.fresh_visit = true;
            let t = self
                .ring
                .pop_front()
                .ok_or(WindexError::InvalidState("DRR ring emptied mid-rotation"))?;
            self.ring.push_back(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_quantum_is_a_typed_error_not_a_panic() {
        let err = DrrScheduler::new(0).unwrap_err();
        assert_eq!(
            err,
            WindexError::InvalidConfig("DRR quantum must be positive")
        );
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut s = DrrScheduler::new(8).unwrap();
        s.enqueue(0, 10, 3);
        s.enqueue(0, 11, 3);
        s.enqueue(0, 12, 3);
        assert_eq!(s.queued_keys(), 9);
        assert_eq!(s.dequeue(), Ok(Some(10)));
        assert_eq!(s.dequeue(), Ok(Some(11)));
        assert_eq!(s.dequeue(), Ok(Some(12)));
        assert_eq!(s.dequeue(), Ok(None));
        assert!(s.is_empty());
    }

    #[test]
    fn small_tenant_interleaves_with_heavy_tenant() {
        let mut s = DrrScheduler::new(4).unwrap();
        // Tenant 0 queues four 8-key requests, tenant 1 four 1-key requests.
        for i in 0..4 {
            s.enqueue(0, i, 8);
        }
        for i in 0..4 {
            s.enqueue(1, 100 + i, 1);
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue().unwrap()).collect();
        // The heavy tenant needs two visits of credit per request, so the
        // light tenant's requests are all released before the heavy queue
        // finishes.
        let light_last = order.iter().position(|&id| id == 103).unwrap();
        let heavy_last = order.iter().position(|&id| id == 3).unwrap();
        assert!(
            light_last < heavy_last,
            "light tenant starved: order {order:?}"
        );
        assert_eq!(order.len(), 8);
    }

    #[test]
    fn oversized_requests_accumulate_credit_and_progress() {
        let mut s = DrrScheduler::new(2).unwrap();
        s.enqueue(5, 1, 9); // needs 5 visits of quantum 2
        s.enqueue(6, 2, 1);
        assert_eq!(s.dequeue(), Ok(Some(2)), "small request goes first");
        assert_eq!(s.dequeue(), Ok(Some(1)), "big request eventually released");
        assert_eq!(s.dequeue(), Ok(None));
    }

    #[test]
    fn cancel_removes_queued_keys_immediately() {
        let mut s = DrrScheduler::new(8).unwrap();
        s.enqueue(0, 10, 3);
        s.enqueue(0, 11, 5);
        s.enqueue(1, 20, 2);
        assert_eq!(s.queued_keys(), 10);
        // Cancel mid-queue: the backlog drops at once, not at dequeue time.
        assert!(s.cancel(0, 11));
        assert_eq!(s.queued_keys(), 5);
        // Unknown ids and wrong tenants are no-ops.
        assert!(!s.cancel(0, 11), "already cancelled");
        assert!(!s.cancel(1, 10), "wrong tenant");
        assert!(!s.cancel(9, 99), "unknown tenant");
        assert_eq!(s.dequeue(), Ok(Some(10)));
        assert_eq!(s.dequeue(), Ok(Some(20)));
        assert_eq!(s.dequeue(), Ok(None));
        assert!(s.is_empty());
        // Cancelling a tenant's whole queue leaves the scheduler sane.
        s.enqueue(2, 30, 4);
        assert!(s.cancel(2, 30));
        assert_eq!(s.queued_keys(), 0);
        assert_eq!(s.dequeue(), Ok(None));
        assert!(s.is_empty());
    }

    #[test]
    fn idle_tenants_do_not_hoard_credit() {
        let mut s = DrrScheduler::new(100).unwrap();
        s.enqueue(0, 1, 1);
        assert_eq!(s.dequeue(), Ok(Some(1)));
        // Tenant 0 drained; its deficit must have been reset.
        s.enqueue(0, 2, 150);
        s.enqueue(1, 3, 1);
        // 150 > one quantum: tenant 0 must wait a rotation even though it
        // "saved" 99 credits earlier.
        assert_eq!(s.dequeue(), Ok(Some(3)));
        assert_eq!(s.dequeue(), Ok(Some(2)));
    }
}
