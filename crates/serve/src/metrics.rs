//! OpenMetrics text exposition for [`ServerReport`].
//!
//! A real serving deployment scrapes its query servers; this module gives
//! the simulated server the same surface. [`render_openmetrics`] renders a
//! [`ServerReport`] as an OpenMetrics text snapshot — per-tenant request
//! counters, a fixed-bucket latency histogram, degradation/shed counters,
//! and capacity gauges — terminated by the mandatory `# EOF` marker.
//!
//! Determinism is part of the contract: families render in a fixed order,
//! tenants in ascending id order, and every number through Rust's default
//! (shortest-round-trip) float formatting, so the same seed produces a
//! byte-identical snapshot. The exporter-determinism tests in windex-bench
//! pin this.

use crate::cluster::ClusterReport;
use crate::report::{ServeEvent, ServerReport};
use crate::span::{RequestTrace, StageLatencyStats};
use std::fmt::Write as _;

/// The fixed stage order used by every per-stage family.
const STAGE_NAMES: [&str; 5] = ["queue", "batch", "service", "merge", "other"];

/// Write the per-stage latency families shared by all three exporters:
/// a p99 gauge and a summed-seconds counter per stage, labelled
/// `stage="queue|batch|service|merge|other"` under `<prefix>_stage_*`.
fn stage_families(
    o: &mut String,
    prefix: &str,
    stages: &StageLatencyStats,
    traces: &[RequestTrace],
) {
    let p99s = [
        stages.queue.p99_s,
        stages.batch.p99_s,
        stages.service.p99_s,
        stages.merge.p99_s,
        stages.other.p99_s,
    ];
    family(
        o,
        &format!("{prefix}_stage_p99_seconds"),
        "gauge",
        "p99 per-stage latency over all span trees, in virtual seconds.",
    );
    for (name, p99) in STAGE_NAMES.iter().zip(p99s) {
        let _ = writeln!(o, "{prefix}_stage_p99_seconds{{stage=\"{name}\"}} {p99}");
    }
    let mut totals = [0.0f64; 5];
    for t in traces {
        totals[0] += t.stages.queue_s;
        totals[1] += t.stages.batch_s;
        totals[2] += t.stages.service_s;
        totals[3] += t.stages.merge_s;
        totals[4] += t.stages.other_s;
    }
    family(
        o,
        &format!("{prefix}_stage_seconds"),
        "counter",
        "Virtual time attributed to each stage, summed over all span trees.",
    );
    for (name, total) in STAGE_NAMES.iter().zip(totals) {
        let _ = writeln!(
            o,
            "{prefix}_stage_seconds_total{{stage=\"{name}\"}} {total}"
        );
    }
}

/// Render `report` as an OpenMetrics text snapshot (ending in `# EOF`).
pub fn render_openmetrics(report: &ServerReport) -> String {
    let mut o = String::new();

    // Identity: policy and index as an info-style gauge (labels carry the
    // strings; the value is always 1).
    family(&mut o, "windex_server", "gauge", "Server identity.");
    let _ = writeln!(
        o,
        "windex_server{{policy=\"{}\",index=\"{:?}\"}} 1",
        escape(&report.policy),
        report.index,
    );

    // Per-tenant request accounting. `per_tenant` is already in ascending
    // tenant-id order, which fixes the exposition order.
    family(
        &mut o,
        "windex_requests",
        "counter",
        "Requests submitted, by tenant.",
    );
    for t in &report.per_tenant {
        let _ = writeln!(
            o,
            "windex_requests_total{{tenant=\"{}\"}} {}",
            t.tenant, t.requests
        );
    }
    family(
        &mut o,
        "windex_requests_completed",
        "counter",
        "Requests served within deadline, by tenant.",
    );
    for t in &report.per_tenant {
        let _ = writeln!(
            o,
            "windex_requests_completed_total{{tenant=\"{}\"}} {}",
            t.tenant, t.completed
        );
    }
    family(
        &mut o,
        "windex_requests_shed",
        "counter",
        "Requests shed by admission control or abandoned batches, by tenant.",
    );
    for t in &report.per_tenant {
        let _ = writeln!(
            o,
            "windex_requests_shed_total{{tenant=\"{}\"}} {}",
            t.tenant, t.shed
        );
    }
    family(
        &mut o,
        "windex_requests_deadline_missed",
        "counter",
        "Requests served past their deadline, by tenant.",
    );
    for t in &report.per_tenant {
        let _ = writeln!(
            o,
            "windex_requests_deadline_missed_total{{tenant=\"{}\"}} {}",
            t.tenant, t.deadline_missed
        );
    }
    family(
        &mut o,
        "windex_request_keys",
        "counter",
        "Probe keys submitted, by tenant.",
    );
    for t in &report.per_tenant {
        let _ = writeln!(
            o,
            "windex_request_keys_total{{tenant=\"{}\"}} {}",
            t.tenant, t.keys
        );
    }
    family(
        &mut o,
        "windex_result_tuples",
        "counter",
        "Join matches returned, by tenant.",
    );
    for t in &report.per_tenant {
        let _ = writeln!(
            o,
            "windex_result_tuples_total{{tenant=\"{}\"}} {}",
            t.tenant, t.matches
        );
    }

    // Latency histogram over served (non-shed) requests, virtual seconds.
    family(
        &mut o,
        "windex_request_latency_seconds",
        "histogram",
        "Request latency over served requests, in virtual seconds.",
    );
    let h = &report.latency_hist;
    let cumulative = h.cumulative();
    for (bound, cum) in h.bounds_s.iter().zip(&cumulative) {
        let _ = writeln!(
            o,
            "windex_request_latency_seconds_bucket{{le=\"{bound}\"}} {cum}"
        );
    }
    let _ = writeln!(
        o,
        "windex_request_latency_seconds_bucket{{le=\"+Inf\"}} {}",
        h.count
    );
    let _ = writeln!(o, "windex_request_latency_seconds_count {}", h.count);
    let _ = writeln!(o, "windex_request_latency_seconds_sum {}", h.sum_s);

    // Degradation / shed events over the trace.
    let (mut shrinks, mut spills, mut sheds, mut abandoned) = (0u64, 0u64, 0u64, 0u64);
    let (mut circuit_sheds, mut dispatch_retries, mut retries_exhausted) = (0u64, 0u64, 0u64);
    let mut loss_recoveries = 0u64;
    let mut mttr_sum_s = 0.0f64;
    for e in &report.events {
        match e {
            ServeEvent::WindowShrunk { .. } => shrinks += 1,
            ServeEvent::SinkSpilledToCpu => spills += 1,
            ServeEvent::LoadShed { .. } => sheds += 1,
            ServeEvent::BatchAbandoned { .. } => abandoned += 1,
            ServeEvent::CircuitShed { .. } => circuit_sheds += 1,
            ServeEvent::CircuitOpened { .. } | ServeEvent::CircuitClosed { .. } => {}
            ServeEvent::DispatchRetried { .. } => dispatch_retries += 1,
            ServeEvent::RetriesExhausted { .. } => retries_exhausted += 1,
            ServeEvent::DeviceLossRecovered { mttr_s } => {
                loss_recoveries += 1;
                mttr_sum_s += mttr_s;
            }
        }
    }
    family(
        &mut o,
        "windex_window_shrinks",
        "counter",
        "Shared-window halvings under device-memory pressure.",
    );
    let _ = writeln!(o, "windex_window_shrinks_total {shrinks}");
    family(
        &mut o,
        "windex_sink_spills",
        "counter",
        "Result-sink spills to CPU memory.",
    );
    let _ = writeln!(o, "windex_sink_spills_total {spills}");
    family(
        &mut o,
        "windex_load_sheds",
        "counter",
        "Requests refused at admission by backpressure.",
    );
    let _ = writeln!(o, "windex_load_sheds_total {sheds}");
    family(
        &mut o,
        "windex_batches_abandoned",
        "counter",
        "Dispatched batches shed after exhausting degradation.",
    );
    let _ = writeln!(o, "windex_batches_abandoned_total {abandoned}");
    family(
        &mut o,
        "windex_operator_retries",
        "counter",
        "Operator retries priced into virtual time.",
    );
    let _ = writeln!(o, "windex_operator_retries_total {}", report.retries);
    family(
        &mut o,
        "windex_windows_dispatched",
        "counter",
        "Shared windows pushed through the operator.",
    );
    let _ = writeln!(
        o,
        "windex_windows_dispatched_total {}",
        report.window.windows
    );
    family(
        &mut o,
        "windex_keys_probed",
        "counter",
        "Probe keys dispatched through shared windows.",
    );
    let _ = writeln!(o, "windex_keys_probed_total {}", report.keys_probed);

    // Resilience: circuit breakers, retry budget, device-loss recovery, SLOs.
    family(
        &mut o,
        "windex_circuit_state",
        "gauge",
        "Circuit-breaker state at trace end, by tenant (0=closed, 1=half-open, 2=open).",
    );
    for t in &report.breaker.tenants {
        let _ = writeln!(
            o,
            "windex_circuit_state{{tenant=\"{}\"}} {}",
            t.tenant,
            t.state.as_gauge()
        );
    }
    family(
        &mut o,
        "windex_circuit_opens",
        "counter",
        "Circuit-breaker trips from closed or half-open to open.",
    );
    let _ = writeln!(o, "windex_circuit_opens_total {}", report.breaker.opens);
    family(
        &mut o,
        "windex_circuit_fast_rejects",
        "counter",
        "Requests rejected at admission by an open circuit breaker.",
    );
    let _ = writeln!(
        o,
        "windex_circuit_fast_rejects_total {}",
        report.breaker.fast_rejects
    );
    family(
        &mut o,
        "windex_circuit_sheds",
        "counter",
        "Requests shed by circuit breakers over this trace.",
    );
    let _ = writeln!(o, "windex_circuit_sheds_total {circuit_sheds}");
    family(
        &mut o,
        "windex_dispatch_retries",
        "counter",
        "Transient dispatch failures retried with jittered backoff.",
    );
    let _ = writeln!(o, "windex_dispatch_retries_total {dispatch_retries}");
    family(
        &mut o,
        "windex_retries_exhausted",
        "counter",
        "Batches abandoned after the retry budget or attempt cap ran out.",
    );
    let _ = writeln!(o, "windex_retries_exhausted_total {retries_exhausted}");
    family(
        &mut o,
        "windex_retry_tokens",
        "gauge",
        "Retry-budget tokens remaining at trace end.",
    );
    let _ = writeln!(o, "windex_retry_tokens {}", report.retry.tokens_remaining);
    family(
        &mut o,
        "windex_retry_backoff_seconds",
        "gauge",
        "Total virtual time spent in retry backoff over this trace.",
    );
    let _ = writeln!(o, "windex_retry_backoff_seconds {}", report.retry.backoff_s);
    family(
        &mut o,
        "windex_device_loss_recoveries",
        "counter",
        "Device-loss events recovered by rebuilding device state.",
    );
    let _ = writeln!(o, "windex_device_loss_recoveries_total {loss_recoveries}");
    family(
        &mut o,
        "windex_device_loss_mttr_seconds",
        "gauge",
        "Total virtual mean-time-to-recovery across device losses.",
    );
    let _ = writeln!(o, "windex_device_loss_mttr_seconds {mttr_sum_s}");
    family(
        &mut o,
        "windex_slo_availability",
        "gauge",
        "Fraction of submitted requests answered (not shed).",
    );
    let _ = writeln!(o, "windex_slo_availability {}", report.slo.availability);
    family(
        &mut o,
        "windex_slo_goodput_rps",
        "gauge",
        "Requests answered within the deadline budget per virtual second.",
    );
    let _ = writeln!(o, "windex_slo_goodput_rps {}", report.slo.goodput_rps);
    family(
        &mut o,
        "windex_slo_p99_seconds",
        "gauge",
        "p99 latency over answered requests, in virtual seconds.",
    );
    let _ = writeln!(o, "windex_slo_p99_seconds {}", report.slo.p99_s);

    // Per-stage latency attribution from the span trees.
    stage_families(&mut o, "windex", &report.stages, &report.traces);

    // Capacity and utilization gauges.
    family(
        &mut o,
        "windex_configured_window_tuples",
        "gauge",
        "Shared-window capacity as configured.",
    );
    let _ = writeln!(
        o,
        "windex_configured_window_tuples {}",
        report.configured_window_tuples
    );
    family(
        &mut o,
        "windex_effective_window_tuples",
        "gauge",
        "Shared-window capacity after degradation, at trace end.",
    );
    let _ = writeln!(
        o,
        "windex_effective_window_tuples {}",
        report.effective_window_tuples
    );
    family(
        &mut o,
        "windex_max_queue_depth_keys",
        "gauge",
        "Largest queued-key backlog observed at any admission.",
    );
    let _ = writeln!(
        o,
        "windex_max_queue_depth_keys {}",
        report.max_queue_depth_keys
    );
    family(
        &mut o,
        "windex_mean_batch_keys",
        "gauge",
        "Mean keys per dispatched window.",
    );
    let _ = writeln!(o, "windex_mean_batch_keys {}", report.mean_batch_keys);
    family(
        &mut o,
        "windex_virtual_makespan_seconds",
        "gauge",
        "Virtual time from first arrival to last response.",
    );
    let _ = writeln!(
        o,
        "windex_virtual_makespan_seconds {}",
        report.virtual_makespan_s
    );

    o.push_str("# EOF\n");
    o
}

/// Render a [`ClusterReport`] as an OpenMetrics text snapshot (ending in
/// `# EOF`). Per-GPU series carry a `gpu` label and render in ascending
/// GPU-id order; like [`render_openmetrics`], the same report always
/// renders byte-identically.
pub fn render_cluster_openmetrics(report: &ClusterReport) -> String {
    let mut o = String::new();

    // Identity: topology, placement, link, and policy as an info gauge.
    family(&mut o, "windex_cluster", "gauge", "Cluster identity.");
    let _ = writeln!(
        o,
        "windex_cluster{{placement=\"{}\",link=\"{}\",policy=\"{}\",index=\"{:?}\"}} 1",
        escape(&report.placement),
        escape(&report.link),
        escape(&report.policy),
        report.index,
    );
    family(
        &mut o,
        "windex_cluster_gpus",
        "gauge",
        "GPU instances the cluster was built with.",
    );
    let _ = writeln!(o, "windex_cluster_gpus {}", report.gpus);
    family(
        &mut o,
        "windex_cluster_alive_gpus",
        "gauge",
        "GPU instances still alive at trace end.",
    );
    let _ = writeln!(o, "windex_cluster_alive_gpus {}", report.alive_gpus);

    // Per-GPU shard load. `per_shard` is in ascending GPU-id order.
    family(
        &mut o,
        "windex_shard_alive",
        "gauge",
        "Whether the shard's device was alive at trace end.",
    );
    for s in &report.per_shard {
        let _ = writeln!(
            o,
            "windex_shard_alive{{gpu=\"{}\"}} {}",
            s.gpu,
            u8::from(s.alive)
        );
    }
    family(
        &mut o,
        "windex_shard_partitions",
        "gauge",
        "Radix partitions owned by the shard at trace end.",
    );
    for s in &report.per_shard {
        let _ = writeln!(
            o,
            "windex_shard_partitions{{gpu=\"{}\"}} {}",
            s.gpu, s.partitions
        );
    }
    family(
        &mut o,
        "windex_shard_tuples",
        "gauge",
        "Tuples resident in the shard's slice at trace end.",
    );
    for s in &report.per_shard {
        let _ = writeln!(o, "windex_shard_tuples{{gpu=\"{}\"}} {}", s.gpu, s.tuples);
    }
    family(
        &mut o,
        "windex_shard_subrequests",
        "counter",
        "Sub-requests routed to the shard.",
    );
    for s in &report.per_shard {
        let _ = writeln!(
            o,
            "windex_shard_subrequests_total{{gpu=\"{}\"}} {}",
            s.gpu, s.subrequests
        );
    }
    family(
        &mut o,
        "windex_shard_keys_probed",
        "counter",
        "Probe keys dispatched through the shard's windows.",
    );
    for s in &report.per_shard {
        let _ = writeln!(
            o,
            "windex_shard_keys_probed_total{{gpu=\"{}\"}} {}",
            s.gpu, s.keys_probed
        );
    }
    family(
        &mut o,
        "windex_shard_dispatches",
        "counter",
        "Windows the shard dispatched.",
    );
    for s in &report.per_shard {
        let _ = writeln!(
            o,
            "windex_shard_dispatches_total{{gpu=\"{}\"}} {}",
            s.gpu, s.dispatches
        );
    }
    family(
        &mut o,
        "windex_shard_matches",
        "counter",
        "Join matches the shard produced.",
    );
    for s in &report.per_shard {
        let _ = writeln!(
            o,
            "windex_shard_matches_total{{gpu=\"{}\"}} {}",
            s.gpu, s.matches
        );
    }
    family(
        &mut o,
        "windex_shard_queue_depth_keys",
        "gauge",
        "Largest queued-key backlog observed on the shard at any admission.",
    );
    for s in &report.per_shard {
        let _ = writeln!(
            o,
            "windex_shard_queue_depth_keys{{gpu=\"{}\"}} {}",
            s.gpu, s.max_queue_depth_keys
        );
    }
    family(
        &mut o,
        "windex_shard_busy_seconds",
        "counter",
        "Virtual time the shard spent dispatching or rebuilding.",
    );
    for s in &report.per_shard {
        let _ = writeln!(
            o,
            "windex_shard_busy_seconds_total{{gpu=\"{}\"}} {}",
            s.gpu, s.busy_s
        );
    }
    family(
        &mut o,
        "windex_shard_cross_bytes",
        "counter",
        "Peer-link bytes the shard exchanged for remote-coordinator work.",
    );
    for s in &report.per_shard {
        let _ = writeln!(
            o,
            "windex_shard_cross_bytes_total{{gpu=\"{}\"}} {}",
            s.gpu, s.cross_bytes
        );
    }

    // Cluster-level routing and traffic.
    family(
        &mut o,
        "windex_cluster_requests",
        "counter",
        "Requests submitted to the cluster.",
    );
    let _ = writeln!(o, "windex_cluster_requests_total {}", report.requests);
    family(
        &mut o,
        "windex_cluster_requests_completed",
        "counter",
        "Requests served within deadline cluster-wide.",
    );
    let _ = writeln!(
        o,
        "windex_cluster_requests_completed_total {}",
        report.completed
    );
    family(
        &mut o,
        "windex_cluster_requests_shed",
        "counter",
        "Requests shed by admission control or abandoned dispatches.",
    );
    let _ = writeln!(o, "windex_cluster_requests_shed_total {}", report.shed);
    family(
        &mut o,
        "windex_single_shard_requests",
        "counter",
        "Routed requests whose keys all landed on one shard.",
    );
    let _ = writeln!(
        o,
        "windex_single_shard_requests_total {}",
        report.single_shard_requests
    );
    family(
        &mut o,
        "windex_cross_shard_requests",
        "counter",
        "Routed requests that fanned out across two or more shards.",
    );
    let _ = writeln!(
        o,
        "windex_cross_shard_requests_total {}",
        report.cross_shard_requests
    );
    family(
        &mut o,
        "windex_cross_shard_fraction",
        "gauge",
        "Fraction of routed requests that fanned out.",
    );
    let _ = writeln!(
        o,
        "windex_cross_shard_fraction {}",
        report.cross_shard_fraction
    );
    family(
        &mut o,
        "windex_cross_shard_bytes",
        "counter",
        "Peer-link bytes moved cluster-wide (fan-out keys plus merges).",
    );
    let _ = writeln!(
        o,
        "windex_cross_shard_bytes_total {}",
        report.cross_shard_bytes
    );

    // Recovery KPIs: the cluster rungs of the degradation ladder.
    family(
        &mut o,
        "windex_cluster_failovers",
        "counter",
        "Device losses absorbed by failing over to a replica.",
    );
    let _ = writeln!(o, "windex_cluster_failovers_total {}", report.failovers);
    family(
        &mut o,
        "windex_cluster_reshards",
        "counter",
        "Device losses absorbed by re-sharding onto a survivor.",
    );
    let _ = writeln!(o, "windex_cluster_reshards_total {}", report.reshards);
    family(
        &mut o,
        "windex_cluster_recoveries",
        "counter",
        "Device losses absorbed by in-place rebuild (single-GPU rung).",
    );
    let _ = writeln!(o, "windex_cluster_recoveries_total {}", report.recoveries);
    family(
        &mut o,
        "windex_cluster_mttr_seconds",
        "gauge",
        "Summed virtual mean-time-to-recovery across recovery events.",
    );
    let _ = writeln!(o, "windex_cluster_mttr_seconds {}", report.mttr_total_s);

    // Aggregate throughput, latency, and SLO attainment.
    family(
        &mut o,
        "windex_cluster_completed_rps",
        "gauge",
        "Completed requests per virtual second, aggregate over the cluster.",
    );
    let _ = writeln!(o, "windex_cluster_completed_rps {}", report.completed_rps);
    family(
        &mut o,
        "windex_cluster_keys_per_second",
        "gauge",
        "Probed keys per virtual second, aggregate over the cluster.",
    );
    let _ = writeln!(
        o,
        "windex_cluster_keys_per_second {}",
        report.keys_per_second
    );
    family(
        &mut o,
        "windex_cluster_latency_seconds",
        "histogram",
        "Request latency over served requests, in virtual seconds.",
    );
    let h = &report.latency_hist;
    let cumulative = h.cumulative();
    for (bound, cum) in h.bounds_s.iter().zip(&cumulative) {
        let _ = writeln!(
            o,
            "windex_cluster_latency_seconds_bucket{{le=\"{bound}\"}} {cum}"
        );
    }
    let _ = writeln!(
        o,
        "windex_cluster_latency_seconds_bucket{{le=\"+Inf\"}} {}",
        h.count
    );
    let _ = writeln!(o, "windex_cluster_latency_seconds_count {}", h.count);
    let _ = writeln!(o, "windex_cluster_latency_seconds_sum {}", h.sum_s);
    family(
        &mut o,
        "windex_cluster_slo_availability",
        "gauge",
        "Fraction of submitted requests answered (not shed), cluster-wide.",
    );
    let _ = writeln!(
        o,
        "windex_cluster_slo_availability {}",
        report.slo.availability
    );

    // Per-stage latency attribution and critical-path shard counts from
    // the span trees.
    stage_families(&mut o, "windex_cluster", &report.stages, &report.traces);
    family(
        &mut o,
        "windex_critical_leg",
        "counter",
        "Requests whose critical-path (last-delivered) leg ran on this shard.",
    );
    let mut crit = vec![0u64; report.gpus];
    for t in &report.traces {
        if let Some(i) = t.critical_leg {
            let shard = t.legs[i].shard;
            if shard < crit.len() {
                crit[shard] += 1;
            }
        }
    }
    for (g, c) in crit.iter().enumerate() {
        let _ = writeln!(o, "windex_critical_leg_total{{gpu=\"{g}\"}} {c}");
    }

    family(
        &mut o,
        "windex_cluster_virtual_makespan_seconds",
        "gauge",
        "Virtual time from first arrival to last response delivery.",
    );
    let _ = writeln!(
        o,
        "windex_cluster_virtual_makespan_seconds {}",
        report.virtual_makespan_s
    );

    o.push_str("# EOF\n");
    o
}

/// Render a [`TunedReport`] as an OpenMetrics text snapshot (ending in
/// `# EOF`). Per-tenant series render in ascending tenant-id order; like
/// the other exporters, the same report always renders byte-identically.
pub fn render_tuner_openmetrics(report: &crate::tuned::TunedReport) -> String {
    use windex_core::TuneReason;

    let mut o = String::new();

    family(&mut o, "windex_tuned", "gauge", "Tuned-server identity.");
    let _ = writeln!(o, "windex_tuned{{policy=\"{}\"}} 1", escape(&report.policy));

    // Per-tenant plan state at trace end.
    family(
        &mut o,
        "windex_tuner_strategy_info",
        "gauge",
        "Current plan per tenant (labels carry the plan; value is 1).",
    );
    for t in &report.per_tenant {
        let _ = writeln!(
            o,
            "windex_tuner_strategy_info{{tenant=\"{}\",plan=\"{}\"}} 1",
            t.tenant,
            escape(&t.final_plan)
        );
    }
    family(
        &mut o,
        "windex_tuner_window_tuples",
        "gauge",
        "Window capacity of the tenant's current plan (0 for non-windowed plans).",
    );
    for t in &report.per_tenant {
        // The window size is embedded in the plan label as `w=<n>`; parse
        // it back out so dashboards get a numeric gauge.
        let w = t
            .final_plan
            .split("w=")
            .nth(1)
            .and_then(|s| {
                s.split(|c: char| !c.is_ascii_digit())
                    .next()?
                    .parse::<u64>()
                    .ok()
            })
            .unwrap_or(0);
        let _ = writeln!(
            o,
            "windex_tuner_window_tuples{{tenant=\"{}\"}} {w}",
            t.tenant
        );
    }
    family(
        &mut o,
        "windex_tuner_switches",
        "counter",
        "Argmin strategy switches, by tenant.",
    );
    for t in &report.per_tenant {
        let _ = writeln!(
            o,
            "windex_tuner_switches_total{{tenant=\"{}\"}} {}",
            t.tenant, t.switches
        );
    }
    family(
        &mut o,
        "windex_tuner_explorations",
        "counter",
        "Epsilon-greedy exploration batches, by tenant.",
    );
    for t in &report.per_tenant {
        let _ = writeln!(
            o,
            "windex_tuner_explorations_total{{tenant=\"{}\"}} {}",
            t.tenant, t.explorations
        );
    }
    family(
        &mut o,
        "windex_tuner_pinned_batches",
        "counter",
        "Batches decided while degradation-pinned, by tenant.",
    );
    for t in &report.per_tenant {
        let _ = writeln!(
            o,
            "windex_tuner_pinned_batches_total{{tenant=\"{}\"}} {}",
            t.tenant, t.pinned_batches
        );
    }
    family(
        &mut o,
        "windex_tuner_cost_error_ratio",
        "gauge",
        "Mean relative |estimated - realized| per-key cost error, by tenant.",
    );
    for t in &report.per_tenant {
        let _ = writeln!(
            o,
            "windex_tuner_cost_error_ratio{{tenant=\"{}\"}} {}",
            t.tenant, t.est_cost_error
        );
    }
    family(
        &mut o,
        "windex_tuner_tenant_busy_seconds",
        "counter",
        "Virtual device time spent on the tenant's dispatches.",
    );
    for t in &report.per_tenant {
        let _ = writeln!(
            o,
            "windex_tuner_tenant_busy_seconds_total{{tenant=\"{}\"}} {}",
            t.tenant, t.busy_s
        );
    }

    // Decision-stream counters (pin/unpin are events, not per-tenant state).
    let pins = report
        .tune_events
        .iter()
        .filter(|e| e.event.reason == TuneReason::Pinned)
        .count();
    family(
        &mut o,
        "windex_tuner_pins",
        "counter",
        "Degradation pins applied across all tenants.",
    );
    let _ = writeln!(o, "windex_tuner_pins_total {pins}");

    // Aggregates.
    family(
        &mut o,
        "windex_tuner_requests_completed",
        "counter",
        "Requests completed across all tenants.",
    );
    let _ = writeln!(
        o,
        "windex_tuner_requests_completed_total {}",
        report.completed
    );
    family(
        &mut o,
        "windex_tuner_batches",
        "counter",
        "Batches dispatched across all tenants.",
    );
    let _ = writeln!(o, "windex_tuner_batches_total {}", report.batches);
    family(
        &mut o,
        "windex_tuner_aggregate_qps",
        "gauge",
        "Completed requests per busy virtual second.",
    );
    let _ = writeln!(o, "windex_tuner_aggregate_qps {}", report.aggregate_qps);
    family(
        &mut o,
        "windex_tuner_keys_per_second",
        "gauge",
        "Probed keys per busy virtual second.",
    );
    let _ = writeln!(o, "windex_tuner_keys_per_second {}", report.keys_per_second);
    family(
        &mut o,
        "windex_tuner_busy_seconds",
        "gauge",
        "Virtual device time spent executing dispatches.",
    );
    let _ = writeln!(o, "windex_tuner_busy_seconds {}", report.busy_s);
    family(
        &mut o,
        "windex_tuner_virtual_makespan_seconds",
        "gauge",
        "Virtual time from trace start to the last completion.",
    );
    let _ = writeln!(
        o,
        "windex_tuner_virtual_makespan_seconds {}",
        report.virtual_makespan_s
    );

    // Latency histogram over completed requests.
    family(
        &mut o,
        "windex_tuner_latency_seconds",
        "histogram",
        "Request latency over completed requests, in virtual seconds.",
    );
    let h = &report.latency_hist;
    let cumulative = h.cumulative();
    for (bound, cum) in h.bounds_s.iter().zip(&cumulative) {
        let _ = writeln!(
            o,
            "windex_tuner_latency_seconds_bucket{{le=\"{bound}\"}} {cum}"
        );
    }
    let _ = writeln!(
        o,
        "windex_tuner_latency_seconds_bucket{{le=\"+Inf\"}} {}",
        h.count
    );
    let _ = writeln!(o, "windex_tuner_latency_seconds_count {}", h.count);
    let _ = writeln!(o, "windex_tuner_latency_seconds_sum {}", h.sum_s);

    // Per-stage latency attribution from the span trees.
    stage_families(&mut o, "windex_tuner", &report.stages, &report.traces);

    o.push_str("# EOF\n");
    o
}

/// Render a tenant-parallel outcome as an OpenMetrics text snapshot
/// (ending in `# EOF`). Lane series carry a `tenant` label and render in
/// ascending tenant-id order — the outcome's fixed merge order — so the
/// snapshot, like the outcome itself, is byte-identical for any
/// worker-thread count.
pub fn render_parallel_openmetrics(outcome: &crate::parallel::ParallelServeOutcome) -> String {
    let mut o = String::new();
    let s = &outcome.summary;

    family(
        &mut o,
        "windex_parallel",
        "gauge",
        "Tenant-parallel identity.",
    );
    let _ = writeln!(
        o,
        "windex_parallel{{mode=\"{}\",lanes=\"{}\"}} 1",
        escape(&s.mode),
        s.lanes,
    );

    // Aggregate request accounting (disjoint outcome buckets).
    family(
        &mut o,
        "windex_parallel_requests",
        "counter",
        "Requests across all tenant lanes, by outcome.",
    );
    for (outcome_label, n) in [
        ("completed", s.completed),
        ("shed", s.shed),
        ("deadline_missed", s.deadline_missed),
    ] {
        let _ = writeln!(
            o,
            "windex_parallel_requests_total{{outcome=\"{outcome_label}\"}} {n}"
        );
    }
    family(
        &mut o,
        "windex_parallel_keys_probed",
        "counter",
        "Probe keys dispatched across all tenant lanes.",
    );
    let _ = writeln!(o, "windex_parallel_keys_probed_total {}", s.keys_probed);
    family(
        &mut o,
        "windex_parallel_result_tuples",
        "counter",
        "Join matches returned across all tenant lanes.",
    );
    let _ = writeln!(o, "windex_parallel_result_tuples_total {}", s.result_tuples);

    // Makespan: lanes run concurrently in virtual time, so the aggregate
    // makespan is the slowest lane's.
    family(
        &mut o,
        "windex_parallel_makespan_seconds",
        "gauge",
        "Slowest lane's virtual makespan, in virtual seconds.",
    );
    let _ = writeln!(
        o,
        "windex_parallel_makespan_seconds {}",
        s.virtual_makespan_s
    );

    // Per-lane accounting, ascending tenant id (the fixed merge order).
    family(
        &mut o,
        "windex_parallel_lane_requests",
        "counter",
        "Requests served by each tenant lane.",
    );
    for lane in &outcome.lanes {
        let _ = writeln!(
            o,
            "windex_parallel_lane_requests_total{{tenant=\"{}\"}} {}",
            lane.tenant, lane.requests
        );
    }
    family(
        &mut o,
        "windex_parallel_lane_completed",
        "counter",
        "Requests completed by each tenant lane.",
    );
    for lane in &outcome.lanes {
        let _ = writeln!(
            o,
            "windex_parallel_lane_completed_total{{tenant=\"{}\"}} {}",
            lane.tenant, lane.report.completed
        );
    }
    family(
        &mut o,
        "windex_parallel_lane_makespan_seconds",
        "gauge",
        "Each tenant lane's virtual makespan.",
    );
    for lane in &outcome.lanes {
        let _ = writeln!(
            o,
            "windex_parallel_lane_makespan_seconds{{tenant=\"{}\"}} {}",
            lane.tenant, lane.report.virtual_makespan_s
        );
    }

    // Merged latency histogram over all non-shed requests, all lanes.
    family(
        &mut o,
        "windex_parallel_latency_seconds",
        "histogram",
        "Request latency over served requests, all lanes, in virtual seconds.",
    );
    let h = &s.latency_hist;
    let cumulative = h.cumulative();
    for (bound, cum) in h.bounds_s.iter().zip(&cumulative) {
        let _ = writeln!(
            o,
            "windex_parallel_latency_seconds_bucket{{le=\"{bound}\"}} {cum}"
        );
    }
    let _ = writeln!(
        o,
        "windex_parallel_latency_seconds_bucket{{le=\"+Inf\"}} {}",
        h.count
    );
    let _ = writeln!(o, "windex_parallel_latency_seconds_count {}", h.count);
    let _ = writeln!(o, "windex_parallel_latency_seconds_sum {}", h.sum_s);

    o.push_str("# EOF\n");
    o
}

/// Write a family's `# HELP` / `# TYPE` header.
fn family(o: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(o, "# HELP {name} {help}");
    let _ = writeln!(o, "# TYPE {name} {kind}");
}

/// Escape a label value per the OpenMetrics text format.
fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{LatencyHistogram, LatencyStats, TenantLoad};
    use crate::resilience::{BreakerReport, BreakerState, RetryReport, SloReport, TenantBreaker};
    use windex_core::WindowStats;
    use windex_index::IndexKind;
    use windex_sim::Counters;

    fn report() -> ServerReport {
        ServerReport {
            policy: "shared(max_delay=200us)".to_string(),
            index: IndexKind::RadixSpline,
            tenants: 2,
            requests: 10,
            completed: 8,
            shed: 1,
            deadline_missed: 1,
            result_tuples: 42,
            keys_probed: 640,
            window: WindowStats {
                windows: 5,
                matches: 42,
            },
            mean_batch_keys: 128.0,
            configured_window_tuples: 1024,
            effective_window_tuples: 512,
            virtual_makespan_s: 0.25,
            completed_rps: 32.0,
            keys_per_second: 2560.0,
            latency: LatencyStats::from_samples(vec![1e-4, 2e-4, 5e-3]),
            latency_hist: LatencyHistogram::from_samples(&[1e-4, 2e-4, 5e-3]),
            per_tenant: vec![
                TenantLoad {
                    tenant: 0,
                    requests: 6,
                    completed: 5,
                    shed: 0,
                    deadline_missed: 1,
                    keys: 400,
                    matches: 30,
                },
                TenantLoad {
                    tenant: 1,
                    requests: 4,
                    completed: 3,
                    shed: 1,
                    deadline_missed: 0,
                    keys: 240,
                    matches: 12,
                },
            ],
            max_queue_depth_keys: 300,
            events: vec![
                ServeEvent::WindowShrunk {
                    from: 1024,
                    to: 512,
                },
                ServeEvent::LoadShed {
                    tenant: 1,
                    request: 7,
                    keys: 64,
                },
            ],
            counters: Counters::default(),
            retries: 3,
            phases: Default::default(),
            batches: Vec::new(),
            slo: SloReport {
                deadline_budget_s: 5e-3,
                answered: 9,
                within_budget: 8,
                availability: 0.9,
                goodput_rps: 32.0,
                good_share: 8.0 / 9.0,
                p99_s: 5e-3,
            },
            breaker: BreakerReport {
                opens: 1,
                fast_rejects: 2,
                half_open_probes: 1,
                tenants: vec![
                    TenantBreaker {
                        tenant: 0,
                        state: BreakerState::Closed,
                        opens: 0,
                        fast_rejects: 0,
                    },
                    TenantBreaker {
                        tenant: 1,
                        state: BreakerState::Open,
                        opens: 1,
                        fast_rejects: 2,
                    },
                ],
            },
            retry: RetryReport {
                attempts: 2,
                denied: 0,
                tokens_remaining: 62.5,
                backoff_s: 4.5e-4,
            },
            stages: crate::span::StageLatencyStats::default(),
            traces: Vec::new(),
            tail: crate::span::TailReport::default(),
        }
    }

    #[test]
    fn snapshot_is_terminated_and_deterministic() {
        let r = report();
        let text = render_openmetrics(&r);
        assert!(text.ends_with("# EOF\n"));
        assert_eq!(text, render_openmetrics(&r));
        // Exactly one EOF marker, at the end.
        assert_eq!(text.matches("# EOF").count(), 1);
    }

    #[test]
    fn tenant_series_are_ascending_and_complete() {
        let text = render_openmetrics(&report());
        let t0 = text.find("windex_requests_total{tenant=\"0\"} 6").unwrap();
        let t1 = text.find("windex_requests_total{tenant=\"1\"} 4").unwrap();
        assert!(t0 < t1);
        assert!(text.contains("windex_requests_shed_total{tenant=\"1\"} 1"));
        assert!(text.contains("windex_result_tuples_total{tenant=\"0\"} 30"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_to_count() {
        let text = render_openmetrics(&report());
        assert!(text.contains("windex_request_latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("windex_request_latency_seconds_count 3"));
        // 1e-4 and 2e-4 are both ≤ 1e-3; 5e-3 lands in the 1e-2 bucket.
        assert!(text.contains("windex_request_latency_seconds_bucket{le=\"0.001\"} 2"));
        assert!(text.contains("windex_request_latency_seconds_bucket{le=\"0.01\"} 3"));
    }

    #[test]
    fn degradation_counters_reflect_events() {
        let text = render_openmetrics(&report());
        assert!(text.contains("windex_window_shrinks_total 1"));
        assert!(text.contains("windex_load_sheds_total 1"));
        assert!(text.contains("windex_sink_spills_total 0"));
        assert!(text.contains("windex_operator_retries_total 3"));
    }

    #[test]
    fn resilience_families_render_from_report_and_events() {
        let mut r = report();
        r.events.push(ServeEvent::DispatchRetried {
            attempt: 1,
            backoff_s: 1.5e-4,
        });
        r.events.push(ServeEvent::DispatchRetried {
            attempt: 2,
            backoff_s: 3e-4,
        });
        r.events.push(ServeEvent::CircuitShed {
            tenant: 1,
            request: 9,
        });
        r.events
            .push(ServeEvent::DeviceLossRecovered { mttr_s: 0.015 });
        let text = render_openmetrics(&r);
        assert!(text.contains("windex_circuit_state{tenant=\"0\"} 0"));
        assert!(text.contains("windex_circuit_state{tenant=\"1\"} 2"));
        assert!(text.contains("windex_circuit_opens_total 1"));
        assert!(text.contains("windex_circuit_fast_rejects_total 2"));
        assert!(text.contains("windex_circuit_sheds_total 1"));
        assert!(text.contains("windex_dispatch_retries_total 2"));
        assert!(text.contains("windex_retries_exhausted_total 0"));
        assert!(text.contains("windex_retry_tokens 62.5"));
        assert!(text.contains("windex_device_loss_recoveries_total 1"));
        assert!(text.contains("windex_device_loss_mttr_seconds 0.015"));
        assert!(text.contains("windex_slo_availability 0.9"));
        assert!(text.contains("windex_slo_p99_seconds 0.005"));
        // Still deterministic and well-terminated with the new families.
        assert_eq!(text, render_openmetrics(&r));
        assert!(text.ends_with("# EOF\n"));
    }

    fn cluster_report() -> ClusterReport {
        use crate::cluster::{ClusterEvent, ShardLoad};
        ClusterReport {
            gpus: 2,
            alive_gpus: 1,
            placement: "sharded".to_string(),
            link: "NVLink 4 peer".to_string(),
            policy: "shared(max_delay=200us)".to_string(),
            index: IndexKind::RadixSpline,
            tenants: 2,
            requests: 10,
            completed: 9,
            shed: 1,
            deadline_missed: 0,
            result_tuples: 40,
            keys_probed: 600,
            single_shard_requests: 6,
            cross_shard_requests: 3,
            cross_shard_fraction: 3.0 / 9.0,
            cross_shard_bytes: 1024,
            virtual_makespan_s: 0.125,
            completed_rps: 72.0,
            keys_per_second: 4800.0,
            latency: LatencyStats::from_samples(vec![1e-4, 2e-4]),
            latency_hist: LatencyHistogram::from_samples(&[1e-4, 2e-4]),
            per_shard: vec![
                ShardLoad {
                    gpu: 0,
                    alive: true,
                    partitions: 32,
                    tuples: 4096,
                    subrequests: 8,
                    keys_probed: 500,
                    dispatches: 4,
                    matches: 30,
                    max_queue_depth_keys: 200,
                    busy_s: 0.01,
                    cross_bytes: 768,
                },
                ShardLoad {
                    gpu: 1,
                    alive: false,
                    partitions: 0,
                    tuples: 0,
                    subrequests: 3,
                    keys_probed: 100,
                    dispatches: 1,
                    matches: 10,
                    max_queue_depth_keys: 64,
                    busy_s: 0.002,
                    cross_bytes: 256,
                },
            ],
            events: vec![ClusterEvent::ReSharded {
                gpu: 1,
                to: 0,
                partitions: 16,
                tuples: 2048,
                mttr_s: 0.004,
            }],
            failovers: 0,
            reshards: 1,
            recoveries: 0,
            mttr_total_s: 0.004,
            slo: SloReport {
                deadline_budget_s: 5e-3,
                answered: 9,
                within_budget: 9,
                availability: 0.9,
                goodput_rps: 72.0,
                good_share: 1.0,
                p99_s: 2e-4,
            },
            stages: crate::span::StageLatencyStats::default(),
            traces: Vec::new(),
            tail: crate::span::TailReport::default(),
        }
    }

    #[test]
    fn cluster_snapshot_is_terminated_and_deterministic() {
        let r = cluster_report();
        let text = render_cluster_openmetrics(&r);
        assert!(text.ends_with("# EOF\n"));
        assert_eq!(text.matches("# EOF").count(), 1);
        assert_eq!(text, render_cluster_openmetrics(&r));
    }

    #[test]
    fn cluster_per_gpu_series_render_in_gpu_order() {
        let text = render_cluster_openmetrics(&cluster_report());
        let q0 = text
            .find("windex_shard_queue_depth_keys{gpu=\"0\"} 200")
            .unwrap();
        let q1 = text
            .find("windex_shard_queue_depth_keys{gpu=\"1\"} 64")
            .unwrap();
        assert!(q0 < q1);
        assert!(text.contains("windex_shard_alive{gpu=\"1\"} 0"));
        assert!(text.contains("windex_shard_cross_bytes_total{gpu=\"0\"} 768"));
        assert!(text.contains("windex_cross_shard_bytes_total 1024"));
        assert!(text.contains("windex_cluster_failovers_total 0"));
        assert!(text.contains("windex_cluster_reshards_total 1"));
        assert!(text.contains("windex_cluster_mttr_seconds 0.004"));
    }

    #[test]
    fn cluster_sample_lines_all_have_type_headers() {
        let text = render_cluster_openmetrics(&cluster_report());
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap();
            let fam = name
                .strip_suffix("_total")
                .or_else(|| name.strip_suffix("_bucket"))
                .or_else(|| name.strip_suffix("_count"))
                .or_else(|| name.strip_suffix("_sum"))
                .unwrap_or(name);
            assert!(
                text.contains(&format!("# TYPE {fam} ")),
                "no TYPE header for {name}"
            );
        }
    }

    #[test]
    fn tuner_snapshot_renders_families_deterministically() {
        use crate::trace::{generate_tenant_trace, TraceConfig};
        use crate::tuned::{TunedConfig, TunedServer};
        use windex_sim::{GpuSpec, Scale};
        use windex_workload::{KeyDistribution, Relation};

        let r = Relation::unique_sorted(1 << 13, KeyDistribution::SparseUniform, 5);
        let trace = generate_tenant_trace(
            &TraceConfig {
                requests: 8,
                min_keys: 32,
                max_keys: 128,
                offered_load_rps: 400.0,
                ..TraceConfig::default()
            },
            0,
            &r,
        );
        let mut srv = TunedServer::new(
            GpuSpec::v100_nvlink2(Scale::PAPER),
            TunedConfig::default(),
            vec![(0, r)],
            None,
        )
        .unwrap();
        let rep = srv.run(&trace).unwrap();
        let text = render_tuner_openmetrics(&rep);
        assert!(text.ends_with("# EOF\n"));
        assert_eq!(text.matches("# EOF").count(), 1);
        assert_eq!(text, render_tuner_openmetrics(&rep));
        assert!(text.contains("windex_tuner_strategy_info{tenant=\"0\",plan="));
        assert!(text.contains("windex_tuner_window_tuples{tenant=\"0\"}"));
        assert!(text.contains("windex_tuner_switches_total{tenant=\"0\"}"));
        assert!(text.contains("windex_tuner_cost_error_ratio{tenant=\"0\"}"));
        assert!(text.contains("windex_tuner_aggregate_qps "));
        // Every sample line has a TYPE header, like the other exporters.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap();
            let fam = name
                .strip_suffix("_total")
                .or_else(|| name.strip_suffix("_bucket"))
                .or_else(|| name.strip_suffix("_count"))
                .or_else(|| name.strip_suffix("_sum"))
                .unwrap_or(name);
            assert!(
                text.contains(&format!("# TYPE {fam} ")),
                "no TYPE header for {name}"
            );
        }
    }

    #[test]
    fn every_sample_line_has_a_type_header() {
        let text = render_openmetrics(&report());
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap();
            // A sample `x_total`/`x_bucket`/`x_count`/`x_sum` belongs to
            // family `x`; plain gauges are their own family.
            let fam = name
                .strip_suffix("_total")
                .or_else(|| name.strip_suffix("_bucket"))
                .or_else(|| name.strip_suffix("_count"))
                .or_else(|| name.strip_suffix("_sum"))
                .unwrap_or(name);
            assert!(
                text.contains(&format!("# TYPE {fam} ")),
                "no TYPE header for {name}"
            );
        }
    }
}
