//! TPC-H-flavoured workload: the queries that motivate the paper.
//!
//! "Our workload is inspired by queries such as TPC-H Q4 and Q12, which
//! have a large input to a single join with a low join selectivity" (§3.2).
//! This module makes that inspiration concrete: a miniature ORDERS ⋈
//! LINEITEM schema where probe-side predicates (Q4's quarter +
//! late-commit filter, Q12's ship-mode + date filter) carve a selective
//! foreign-key stream out of LINEITEM, which then joins against the
//! ORDERS key column — exactly the access pattern the paper's index joins
//! accelerate.

use crate::relation::{KeyDistribution, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ship modes of the Q12 predicate.
pub const SHIP_MODES: [&str; 7] = ["MAIL", "SHIP", "AIR", "RAIL", "TRUCK", "FOB", "REG AIR"];

/// Quarters in the date domain (TPC-H spans seven years).
pub const QUARTERS: u8 = 28;

/// A miniature two-table instance: ORDERS (unique key column) and LINEITEM
/// (foreign keys plus the predicate columns Q4/Q12 filter on).
#[derive(Debug, Clone)]
pub struct TpchLite {
    /// ORDERS primary keys: dense, sorted, unique.
    orders: Relation,
    /// LINEITEM → ORDERS foreign keys (multiple lineitems per order).
    fk: Vec<u64>,
    /// Receipt quarter per lineitem, 0‥28 — seven years of quarters, the
    /// TPC-H date domain (Q4 keeps a single quarter ≈ 3.6 % of lineitems).
    quarter: Vec<u8>,
    /// Whether `l_commitdate < l_receiptdate` (the Q4/Q12 lateness filter).
    late: Vec<bool>,
    /// Ship-mode id per lineitem, indexing [`SHIP_MODES`].
    ship_mode: Vec<u8>,
}

impl TpchLite {
    /// Generate an instance with `orders_n` orders and roughly
    /// `lineitems_per_order` lineitems each (TPC-H averages 4).
    pub fn generate(orders_n: usize, lineitems_per_order: usize, seed: u64) -> Self {
        assert!(orders_n > 0 && lineitems_per_order > 0);
        let orders = Relation::unique_sorted(orders_n, KeyDistribution::Dense, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x007C_4A11);
        let n = orders_n * lineitems_per_order;
        let mut fk = Vec::with_capacity(n);
        let mut quarter = Vec::with_capacity(n);
        let mut late = Vec::with_capacity(n);
        let mut ship_mode = Vec::with_capacity(n);
        for _ in 0..n {
            fk.push(orders.keys()[rng.random_range(0..orders_n)]);
            quarter.push(rng.random_range(0..QUARTERS));
            // TPC-H: roughly 63 % of lineitems have commitdate < receiptdate.
            late.push(rng.random_range(0..100) < 63);
            ship_mode.push(rng.random_range(0..SHIP_MODES.len() as u8));
        }
        TpchLite {
            orders,
            fk,
            quarter,
            late,
            ship_mode,
        }
    }

    /// The ORDERS key column (the indexed relation).
    pub fn orders(&self) -> &Relation {
        &self.orders
    }

    /// Total lineitems.
    pub fn lineitems(&self) -> usize {
        self.fk.len()
    }

    /// Q4-style probe stream: lineitems of one receipt quarter whose commit
    /// date precedes the receipt date. Selectivity vs ORDERS ≈
    /// `lineitems_per_order × 0.63 / 28` ≈ 9 % at the TPC-H average of four
    /// lineitems per order — the selective single-join regime the paper
    /// targets.
    pub fn q4_probe(&self, quarter: u8) -> Relation {
        assert!(quarter < QUARTERS);
        let keys = self
            .fk
            .iter()
            .zip(&self.quarter)
            .zip(&self.late)
            .filter(|((_, &q), &l)| q == quarter && l)
            .map(|((&k, _), _)| k)
            .collect();
        Relation::from_keys(keys, false)
    }

    /// Q12-style probe stream: late lineitems of one receipt *year* shipped
    /// by one of the given modes (Q12 picks two of the seven modes and a
    /// single year).
    pub fn q12_probe(&self, modes: &[u8], year: u8) -> Relation {
        assert!(modes.iter().all(|&m| (m as usize) < SHIP_MODES.len()));
        assert!(year < QUARTERS / 4);
        let q_range = (year * 4)..(year * 4 + 4);
        let keys = self
            .fk
            .iter()
            .zip(&self.ship_mode)
            .zip(&self.quarter)
            .zip(&self.late)
            .filter(|(((_, m), q), &l)| l && modes.contains(m) && q_range.contains(q))
            .map(|(((&k, _), _), _)| k)
            .collect();
        Relation::from_keys(keys, false)
    }

    /// Drill-down probe: one quarter *and* one ship mode (an analyst
    /// narrowing Q4/Q12 interactively) — ≈ 1.3 % selectivity vs ORDERS,
    /// deep inside the index join's winning regime.
    pub fn drilldown_probe(&self, quarter: u8, mode: u8) -> Relation {
        assert!(quarter < QUARTERS && (mode as usize) < SHIP_MODES.len());
        let keys = self
            .fk
            .iter()
            .zip(&self.ship_mode)
            .zip(&self.quarter)
            .zip(&self.late)
            .filter(|(((_, &m), &q), &l)| l && m == mode && q == quarter)
            .map(|(((&k, _), _), _)| k)
            .collect();
        Relation::from_keys(keys, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::join_selectivity;

    #[test]
    fn generation_is_deterministic() {
        let a = TpchLite::generate(1000, 4, 9);
        let b = TpchLite::generate(1000, 4, 9);
        assert_eq!(a.fk, b.fk);
        assert_eq!(a.quarter, b.quarter);
        let c = TpchLite::generate(1000, 4, 10);
        assert_ne!(a.fk, c.fk);
    }

    #[test]
    fn q4_probe_selectivity_and_integrity() {
        let t = TpchLite::generate(10_000, 4, 1);
        let probe = t.q4_probe(2);
        // Expect ~ 4 * 0.63 / 28 ≈ 0.09 selectivity vs ORDERS, within noise.
        let sel = join_selectivity(t.orders(), &probe);
        assert!((0.06..0.13).contains(&sel), "selectivity {sel}");
        for k in probe.keys() {
            assert!(t.orders().keys().binary_search(k).is_ok());
        }
    }

    #[test]
    fn q12_two_modes_one_year_are_selective() {
        let t = TpchLite::generate(10_000, 4, 2);
        let probe = t.q12_probe(&[0, 1], 3); // MAIL, SHIP — the Q12 pair
                                             // 2/7 modes × 63 % late × 1/7 years × 4 per order ≈ 0.10 of ORDERS.
        let sel = join_selectivity(t.orders(), &probe);
        assert!((0.06..0.15).contains(&sel), "selectivity {sel}");
        // Disjoint mode sets partition that year's late lineitems.
        let rest = t.q12_probe(&[2, 3, 4, 5, 6], 3);
        let year_late = t
            .late
            .iter()
            .zip(&t.quarter)
            .filter(|(&l, &q)| l && (12..16).contains(&q))
            .count();
        assert_eq!(probe.len() + rest.len(), year_late);
    }

    #[test]
    fn quarters_partition_the_late_lineitems() {
        let t = TpchLite::generate(5000, 3, 3);
        let total: usize = (0..QUARTERS).map(|q| t.q4_probe(q).len()).sum();
        let late = t.late.iter().filter(|&&l| l).count();
        assert_eq!(total, late);
    }

    #[test]
    fn drilldown_is_highly_selective() {
        let t = TpchLite::generate(20_000, 4, 5);
        let probe = t.drilldown_probe(7, 2);
        let sel = join_selectivity(t.orders(), &probe);
        assert!((0.005..0.025).contains(&sel), "selectivity {sel}");
        // The drill-down is a subset of the quarter's Q4 stream.
        let q4: std::collections::HashSet<u64> = t.q4_probe(7).into_keys().into_iter().collect();
        assert!(probe.keys().iter().all(|k| q4.contains(k)));
    }

    #[test]
    #[should_panic]
    fn invalid_quarter_rejected() {
        let t = TpchLite::generate(10, 1, 0);
        let _ = t.q4_probe(QUARTERS);
    }
}
