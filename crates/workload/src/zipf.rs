//! Zipf-distributed rank sampler.
//!
//! Used for the skewed-lookup-key experiment (paper §5.2.2, Fig. 8), which
//! draws probe keys with Zipf exponents 0–1.75. The implementation is the
//! rejection-inversion method of Hörmann & Derflinger (1996), the same
//! algorithm production samplers use: O(1) per sample for any exponent,
//! no precomputed tables, exact distribution.

use rand::Rng;

/// Samples ranks `1..=n` with probability ∝ `1 / rank^exponent`.
///
/// `exponent == 0` degenerates to the uniform distribution over `1..=n`,
/// matching the paper's x-axis which starts at Zipf exponent 0.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    exponent: f64,
    /// `H(x1)` where `x1 = 1.5` shifted by p(1): upper bound of the
    /// inversion domain.
    h_x1: f64,
    /// `H(n + 0.5)`: lower bound of the inversion domain.
    h_n: f64,
    /// Acceptance shortcut threshold.
    s_cut: f64,
}

impl ZipfSampler {
    /// Create a sampler over ranks `1..=n` with the given exponent ≥ 0.
    pub fn new(n: u64, exponent: f64) -> Self {
        assert!(n >= 1, "domain must be non-empty");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "exponent must be finite and non-negative"
        );
        let mut z = ZipfSampler {
            n,
            exponent,
            h_x1: 0.0,
            h_n: 0.0,
            s_cut: 0.0,
        };
        z.h_x1 = z.h(1.5) - 1.0;
        z.h_n = z.h(n as f64 + 0.5);
        z.s_cut = 1.0 - z.h_inv(z.h(2.5) - 2.0f64.powf(-exponent));
        z
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The Zipf exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// `H(x) = ∫ x^-e dx`, the antiderivative used by rejection-inversion.
    fn h(&self, x: f64) -> f64 {
        let e = self.exponent;
        if (e - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            x.powf(1.0 - e) / (1.0 - e)
        }
    }

    /// Inverse of `h`.
    fn h_inv(&self, x: f64) -> f64 {
        let e = self.exponent;
        if (e - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            (x * (1.0 - e)).powf(1.0 / (1.0 - e))
        }
    }

    /// Draw one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 1;
        }
        // Uniform exponent: plain integer sampling is exact and faster.
        if self.exponent == 0.0 {
            return rng.random_range(1..=self.n);
        }
        loop {
            let u = self.h_n + rng.random::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = x.round().clamp(1.0, self.n as f64);
            if k - x <= self.s_cut || u >= self.h(k + 0.5) - (-k.ln() * self.exponent).exp() {
                return k as u64;
            }
        }
    }

    /// Exact probability of rank `k` (for tests and diagnostics).
    /// O(n); intended for small domains only.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!((1..=self.n).contains(&k));
        let z: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.exponent)).sum();
        (k as f64).powf(-self.exponent) / z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(n: u64, exponent: f64, samples: usize) -> Vec<u64> {
        let z = ZipfSampler::new(n, exponent);
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut h = vec![0u64; n as usize];
        for _ in 0..samples {
            let k = z.sample(&mut rng);
            h[(k - 1) as usize] += 1;
        }
        h
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn matches_exact_pmf_small_domain() {
        for &e in &[0.5, 1.0, 1.5] {
            let n = 16;
            let samples = 200_000;
            let h = histogram(n, e, samples);
            let z = ZipfSampler::new(n, e);
            for k in 1..=n {
                let expect = z.pmf(k) * samples as f64;
                let got = h[(k - 1) as usize] as f64;
                // 5 sigma of a binomial with p = pmf.
                let sigma = (expect * (1.0 - z.pmf(k))).sqrt();
                assert!(
                    (got - expect).abs() < 5.0 * sigma + 5.0,
                    "e={e} k={k}: got {got}, expected {expect}±{sigma}"
                );
            }
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let n = 32;
        let samples = 320_000;
        let h = histogram(n, 0.0, samples);
        let expect = samples as f64 / n as f64;
        for (k, &c) in h.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 0.05 * expect,
                "rank {}: {c} vs {expect}",
                k + 1
            );
        }
    }

    #[test]
    fn high_exponent_concentrates_on_rank_one() {
        let h = histogram(1000, 1.75, 100_000);
        // Rank 1 should receive the plurality of samples by a wide margin;
        // p(1)/p(2) = 2^1.75 ≈ 3.36.
        assert!(h[0] > 40_000, "rank-1 count {}", h[0]);
        assert!(h[0] as f64 > 3.0 * h[1] as f64);
        assert!((h[0] as f64) < 3.8 * h[1] as f64);
    }

    #[test]
    fn rank_frequencies_decrease() {
        let h = histogram(64, 1.0, 400_000);
        // Spot-check monotonicity over well-separated ranks.
        assert!(h[0] > h[3] && h[3] > h[15] && h[15] > h[63]);
    }

    #[test]
    fn single_element_domain() {
        let z = ZipfSampler::new(1, 1.3);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 1);
    }
}
