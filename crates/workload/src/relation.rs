//! Join relations and their generators.
//!
//! The paper's workload (§3.2): relation *R* holds unique, sorted 8-byte
//! keys; relation *S* holds foreign keys drawn from *R* (uniformly, or
//! Zipf-skewed in §5.2.2). Each relation is a single 8-byte integer column
//! "to maximize the tree height of indexes". *S* stays fixed while *R*
//! scales, so join selectivity |S|/|R| ranges from 100 % down to 0.4 %.

use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::sync::Arc;

/// Generator memo: [`Relation::unique_sorted`] is a pure function of its
/// arguments, and the benchmark harnesses regenerate the same handful of
/// columns over and over (every `simperf` repetition, every served tenant
/// staging the same R). Remembering the last few columns per thread turns
/// those rebuilds into an `Arc` clone — and, because the column keeps its
/// allocation identity, downstream identity-keyed caches (the RadixSpline
/// fit memo) stay warm across repetitions too.
const GEN_MEMO_CAP: usize = 8;

thread_local! {
    #[allow(clippy::type_complexity)]
    static GEN_MEMO: RefCell<Vec<((usize, KeyDistribution, u64), Arc<[u64]>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Key-space shape for the unique sorted build side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDistribution {
    /// Keys `0, 1, 2, …, n-1`. Degenerate for learned indexes (a perfect
    /// line); mainly useful in tests.
    Dense,
    /// Unique sorted keys with pseudo-random gaps (average gap ≈ 16), the
    /// realistic case for a learned index like the RadixSpline.
    SparseUniform,
}

/// A single-column relation of 8-byte integer keys.
///
/// The column is held behind an `Arc`, so cloning a relation (or handing a
/// copy to a query session, a served tenant, or a worker thread) shares the
/// storage instead of duplicating a potentially multi-megabyte column.
#[derive(Debug, Clone)]
pub struct Relation {
    keys: Arc<[u64]>,
    sorted_unique: bool,
}

impl Relation {
    /// Wrap an existing column. `sorted_unique` must be declared truthfully;
    /// it is verified in debug builds.
    pub fn from_keys(keys: Vec<u64>, sorted_unique: bool) -> Self {
        debug_assert!(
            !sorted_unique || keys.windows(2).all(|w| w[0] < w[1]),
            "keys declared sorted+unique but are not"
        );
        Relation {
            keys: keys.into(),
            sorted_unique,
        }
    }

    /// Generate `n` unique sorted keys (the indexed relation *R*).
    ///
    /// Deterministic in `(n, dist, seed)`; repeated calls with the same
    /// arguments on one thread share the previously generated column (an
    /// `Arc` clone, no regeneration and no copy).
    pub fn unique_sorted(n: usize, dist: KeyDistribution, seed: u64) -> Self {
        let memo_key = (n, dist, seed);
        let cached = GEN_MEMO.with(|m| {
            let mut memo = m.borrow_mut();
            let hit = memo.iter().position(|(k, _)| *k == memo_key)?;
            // Move-to-front so the working set of a benchmark loop stays in.
            let entry = memo.remove(hit);
            let col = Arc::clone(&entry.1);
            memo.insert(0, entry);
            Some(col)
        });
        if let Some(keys) = cached {
            return Relation {
                keys,
                sorted_unique: true,
            };
        }
        let keys = Self::generate_unique_sorted(n, dist, seed);
        GEN_MEMO.with(|m| {
            let mut memo = m.borrow_mut();
            memo.insert(0, (memo_key, Arc::clone(&keys)));
            memo.truncate(GEN_MEMO_CAP);
        });
        Relation {
            keys,
            sorted_unique: true,
        }
    }

    /// The uncached generator body behind [`Relation::unique_sorted`].
    fn generate_unique_sorted(n: usize, dist: KeyDistribution, seed: u64) -> Arc<[u64]> {
        match dist {
            // Range is `TrustedLen`, so collecting straight into the `Arc`
            // writes the shared allocation once — no staging `Vec`, no copy.
            KeyDistribution::Dense => (0..n as u64).collect(),
            KeyDistribution::SparseUniform => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut k: u64 = 0;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    // Gap in [1, 31], average 16: keeps the key domain ~16×
                    // larger than the relation, so interpolation (RadixSpline)
                    // has real prediction error to absorb.
                    k += rng.random_range(1..32u64);
                    keys.push(k);
                }
                keys.into()
            }
        }
    }

    /// Generate `n` foreign keys drawn uniformly from `r` (the probe
    /// relation *S*). Every key matches exactly one *R* tuple.
    ///
    /// An empty `r` has no keys to draw from: the result is the trivial
    /// empty relation (regardless of `n`) rather than a panic — the join
    /// of anything against an empty build side is empty anyway.
    pub fn foreign_keys_uniform(r: &Relation, n: usize, seed: u64) -> Self {
        if r.is_empty() {
            return Relation::from_keys(Vec::new(), false);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let keys: Vec<u64> = (0..n)
            .map(|_| r.keys[rng.random_range(0..r.len())])
            .collect();
        Relation {
            keys: keys.into(),
            sorted_unique: false,
        }
    }

    /// Generate `n` foreign keys drawn from `r` with Zipf-skewed popularity
    /// (§5.2.2). Hot ranks are scattered across the key domain by a fixed
    /// coprime multiplier, so skew does not coincide with key order.
    ///
    /// An empty `r` yields the trivial empty relation, exactly like
    /// [`foreign_keys_uniform`](Self::foreign_keys_uniform) — the modulo
    /// scatter (`rank·scatter % |r|`) would otherwise divide by zero.
    pub fn foreign_keys_zipf(r: &Relation, n: usize, exponent: f64, seed: u64) -> Self {
        if r.is_empty() {
            return Relation::from_keys(Vec::new(), false);
        }
        let sampler = ZipfSampler::new(r.len() as u64, exponent);
        let mut rng = StdRng::seed_from_u64(seed);
        let scatter = scatter_multiplier(r.len() as u64);
        let keys: Vec<u64> = (0..n)
            .map(|_| {
                let rank = sampler.sample(&mut rng) - 1;
                let idx = (rank.wrapping_mul(scatter) % r.len() as u64) as usize;
                r.keys[idx]
            })
            .collect();
        Relation {
            keys: keys.into(),
            sorted_unique: false,
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key column.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The key column's shared storage (an `Arc` clone: no copy). Lets a
    /// staged device buffer alias the relation's column directly.
    pub fn keys_shared(&self) -> Arc<[u64]> {
        Arc::clone(&self.keys)
    }

    /// Consume into the key column (copies when the column is shared).
    pub fn into_keys(self) -> Vec<u64> {
        self.keys.to_vec()
    }

    /// Whether the column is sorted and duplicate-free (required of the
    /// indexed relation).
    pub fn is_sorted_unique(&self) -> bool {
        self.sorted_unique
    }

    /// Size of the single 8-byte column in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.keys.len() as u64 * 8
    }

    /// Smallest key, if any.
    pub fn min_key(&self) -> Option<u64> {
        if self.sorted_unique {
            self.keys.first().copied()
        } else {
            self.keys.iter().min().copied()
        }
    }

    /// Largest key, if any.
    pub fn max_key(&self) -> Option<u64> {
        if self.sorted_unique {
            self.keys.last().copied()
        } else {
            self.keys.iter().max().copied()
        }
    }
}

/// Join selectivity of probing `r` with `s`, defined as in the paper (§3.2):
/// the fraction of the indexed relation touched, |S| / |R|.
pub fn join_selectivity(r: &Relation, s: &Relation) -> f64 {
    if r.is_empty() {
        0.0
    } else {
        s.len() as f64 / r.len() as f64
    }
}

/// Find a multiplier coprime with `n` to scatter Zipf ranks over positions.
fn scatter_multiplier(n: u64) -> u64 {
    const CANDIDATES: [u64; 6] = [
        0x9E37_79B9_7F4A_7C15, // 2^64 / φ, odd
        0xC2B2_AE3D_27D4_EB4F,
        0xFF51_AFD7_ED55_8CCD,
        104_729, // primes
        15_485_863,
        2_147_483_647,
    ];
    for &c in &CANDIDATES {
        if gcd(c, n) == 1 {
            return c;
        }
    }
    1
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_sorted_invariants() {
        for dist in [KeyDistribution::Dense, KeyDistribution::SparseUniform] {
            let r = Relation::unique_sorted(10_000, dist, 7);
            assert_eq!(r.len(), 10_000);
            assert!(r.is_sorted_unique());
            assert!(r.keys().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sparse_keys_have_gaps() {
        let r = Relation::unique_sorted(10_000, KeyDistribution::SparseUniform, 7);
        let span = r.max_key().unwrap() - r.min_key().unwrap();
        assert!(span > 8 * r.len() as u64, "span {span} too dense");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Relation::unique_sorted(1000, KeyDistribution::SparseUniform, 9);
        let b = Relation::unique_sorted(1000, KeyDistribution::SparseUniform, 9);
        assert_eq!(a.keys(), b.keys());
        let c = Relation::unique_sorted(1000, KeyDistribution::SparseUniform, 10);
        assert_ne!(a.keys(), c.keys());
    }

    #[test]
    fn foreign_keys_all_match() {
        let r = Relation::unique_sorted(5000, KeyDistribution::SparseUniform, 1);
        let s = Relation::foreign_keys_uniform(&r, 2000, 2);
        assert_eq!(s.len(), 2000);
        for k in s.keys() {
            assert!(r.keys().binary_search(k).is_ok());
        }
    }

    #[test]
    fn zipf_foreign_keys_match_and_skew() {
        let r = Relation::unique_sorted(1000, KeyDistribution::SparseUniform, 1);
        let s = Relation::foreign_keys_zipf(&r, 50_000, 1.5, 3);
        for k in s.keys() {
            assert!(r.keys().binary_search(k).is_ok());
        }
        // The hottest key should dominate under heavy skew.
        let mut counts = std::collections::HashMap::new();
        for k in s.keys() {
            *counts.entry(*k).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > s.len() as u64 / 10, "hottest key count {max}");
    }

    #[test]
    fn empty_relation_yields_empty_foreign_keys_not_panic() {
        // Regression: `foreign_keys_zipf` divided by `r.len() == 0` in the
        // rank-scatter modulo (and `foreign_keys_uniform` asserted) on an
        // empty build side.
        let empty = Relation::from_keys(Vec::new(), true);
        let s = Relation::foreign_keys_zipf(&empty, 100, 1.5, 3);
        assert!(s.is_empty());
        let s = Relation::foreign_keys_uniform(&empty, 100, 3);
        assert!(s.is_empty());
        // n = 0 against a non-empty relation also stays well-formed.
        let r = Relation::unique_sorted(16, KeyDistribution::Dense, 1);
        assert!(Relation::foreign_keys_zipf(&r, 0, 1.0, 1).is_empty());
    }

    #[test]
    fn selectivity_matches_paper_definition() {
        let r = Relation::unique_sorted(1 << 12, KeyDistribution::Dense, 0);
        let s = Relation::foreign_keys_uniform(&r, 1 << 10, 0);
        assert!((join_selectivity(&r, &s) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn scatter_is_coprime() {
        for n in [2u64, 1000, 104_729, 1 << 16, (1 << 16) + 1] {
            assert_eq!(gcd(scatter_multiplier(n), n), 1);
        }
    }
}
