//! # windex-workload — join workload generators
//!
//! Generates the paper's workload (§3.2): an indexed relation *R* of unique
//! sorted 8-byte keys and a probe relation *S* of foreign keys into *R*,
//! drawn uniformly or with Zipf skew (§5.2.2). All generators are seeded and
//! deterministic so every experiment is exactly reproducible.
//!
//! ```
//! use windex_workload::{join_selectivity, KeyDistribution, Relation};
//!
//! let r = Relation::unique_sorted(1 << 14, KeyDistribution::SparseUniform, 42);
//! let s = Relation::foreign_keys_uniform(&r, 1 << 10, 7);
//! assert!((join_selectivity(&r, &s) - 1.0 / 16.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod relation;
pub mod tpch;
pub mod zipf;

pub use relation::{join_selectivity, KeyDistribution, Relation};
pub use tpch::TpchLite;
pub use zipf::ZipfSampler;
