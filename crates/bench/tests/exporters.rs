//! Exporter-determinism tests: the observability artifacts are pure
//! functions of the seed. Two fresh same-seed runs must serialize to
//! byte-identical Chrome trace JSON, OpenMetrics text, and heatmap CSV —
//! and the exported JSON must actually parse.

use serde_json::Value;
use windex_bench::export::{chrome_trace_json, query_chrome_trace, server_chrome_trace};
use windex_core::prelude::*;
use windex_serve::prelude::{
    generate_trace, render_openmetrics, BatchPolicy, ServeConfig, Server, ServerReport, TraceConfig,
};
use windex_sim::{l2_heatmap, tlb_heatmap, Trace, TraceMode};

/// A small instrumented query run (8 paper-GiB, windowed INLJ) — enough to
/// exercise phases, windows, and the trace recorder without the full
/// observe-scale cost.
fn run_query() -> (QueryReport, Trace, GpuSpec) {
    let scale = Scale::PAPER;
    let spec = GpuSpec::v100_nvlink2(scale);
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(8.0),
        KeyDistribution::Dense,
        42,
    );
    let s = Relation::foreign_keys_uniform(&r, 1 << 12, 7);
    let mut gpu = Gpu::new(spec.clone());
    gpu.start_bounded_trace();
    let report = QueryExecutor::new()
        .run(
            &mut gpu,
            &r,
            &s,
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: 1 << 11,
            },
        )
        .expect("query must succeed");
    let trace = gpu.stop_trace();
    (report, trace, spec)
}

/// A seeded serving run.
fn run_server() -> ServerReport {
    let scale = Scale::PAPER;
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(1.0),
        KeyDistribution::Dense,
        42,
    );
    let trace = generate_trace(
        &TraceConfig {
            seed: 7,
            tenants: 4,
            requests: 96,
            min_keys: 4,
            max_keys: 64,
            offered_load_rps: 10_000.0,
            deadline_s: None,
        },
        &r,
    );
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(scale));
    let mut server = Server::new(
        &mut gpu,
        ServeConfig {
            policy: BatchPolicy::Shared {
                max_delay_s: 200e-6,
            },
            window_tuples: 1024,
            ..ServeConfig::default()
        },
        r,
    )
    .expect("server must construct");
    server
        .run(&mut gpu, &trace)
        .expect("trace must complete")
        .report
}

#[test]
fn query_chrome_trace_is_byte_identical_across_runs_and_parses() {
    let (report_a, trace_a, _) = run_query();
    let (report_b, trace_b, _) = run_query();
    let json_a = chrome_trace_json(&query_chrome_trace(&report_a, &trace_a));
    let json_b = chrome_trace_json(&query_chrome_trace(&report_b, &trace_b));
    assert_eq!(json_a, json_b, "same seed must export identical bytes");

    // The export must be loadable: well-formed JSON with a traceEvents
    // array of ph-tagged events.
    let parsed = serde_json::from_str(&json_a).expect("export must parse");
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph field");
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph}");
        if ph == "X" {
            assert!(ev.get("ts").and_then(Value::as_u64).is_some());
            assert!(ev.get("dur").and_then(Value::as_u64).is_some());
        }
    }
    // A windowed run exports its window timeline and phase spans.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    assert!(names.iter().any(|n| n.starts_with("window ")));
    assert!(names.contains(&"partition") && names.contains(&"lookup"));
}

#[test]
fn heatmap_exports_are_byte_identical_and_reconcile() {
    let (_, trace_a, spec) = run_query();
    let (_, trace_b, _) = run_query();
    let tlb_a = tlb_heatmap(&spec, &trace_a, 32);
    let tlb_b = tlb_heatmap(&spec, &trace_b, 32);
    assert_eq!(tlb_a.to_csv(), tlb_b.to_csv());
    assert_eq!(
        serde_json::to_string_pretty(&tlb_a).unwrap(),
        serde_json::to_string_pretty(&tlb_b).unwrap()
    );
    // Exact reconciliation against the engine's own totals.
    assert_eq!(tlb_a.total_accesses(), trace_a.recorded().tlb_accesses);
    assert_eq!(tlb_a.total_misses(), trace_a.recorded().tlb_misses);
    assert_eq!(tlb_a.offered_accesses, trace_a.offered().tlb_accesses);
    let l2 = l2_heatmap(&spec, &trace_a, 32);
    assert_eq!(l2.total_accesses(), trace_a.recorded().l2_accesses);
    assert_eq!(l2.total_misses(), trace_a.recorded().l2_misses);
}

#[test]
fn heatmap_reconciles_exactly_under_sampling() {
    // Replay one run's recorded events through a sampling trace: the
    // recorded side thins, the offered side keeps the full-run truth.
    let (_, full, spec) = run_query();
    let mut sampled = Trace::new(full.capacity(), TraceMode::SampleEveryNth(5));
    for &ev in full.events() {
        sampled.record(ev);
    }
    let hm = tlb_heatmap(&spec, &sampled, 16);
    assert_eq!(hm.total_accesses(), sampled.recorded().tlb_accesses);
    assert_eq!(hm.total_misses(), sampled.recorded().tlb_misses);
    assert_eq!(hm.offered_accesses, full.recorded().tlb_accesses);
    assert_eq!(hm.offered_misses, full.recorded().tlb_misses);
    assert!(hm.total_accesses() < hm.offered_accesses);
    assert!(sampled.dropped_events() > 0);
}

#[test]
fn openmetrics_snapshot_is_byte_identical_and_well_formed() {
    let a = render_openmetrics(&run_server());
    let b = render_openmetrics(&run_server());
    assert_eq!(a, b, "same seed must expose identical metrics bytes");
    assert!(a.ends_with("# EOF\n"));
    // Histogram count must equal the +Inf bucket.
    let inf = a
        .lines()
        .find(|l| l.contains("le=\"+Inf\""))
        .and_then(|l| l.rsplit(' ').next())
        .expect("+Inf bucket present");
    let count = a
        .lines()
        .find(|l| l.starts_with("windex_request_latency_seconds_count"))
        .and_then(|l| l.rsplit(' ').next())
        .expect("count present");
    assert_eq!(inf, count);
    // Per-tenant series exist for every configured tenant.
    for tenant in 0..4 {
        assert!(
            a.contains(&format!("windex_requests_total{{tenant=\"{tenant}\"}}")),
            "missing tenant {tenant}"
        );
    }
}

#[test]
fn server_chrome_trace_is_byte_identical_and_places_batches() {
    let json_a = chrome_trace_json(&server_chrome_trace(&run_server()));
    let json_b = chrome_trace_json(&server_chrome_trace(&run_server()));
    assert_eq!(json_a, json_b);
    let parsed = serde_json::from_str(&json_a).expect("export must parse");
    let events = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
    // Batch spans carry real virtual-clock timestamps: monotone ts order.
    let batch_ts: Vec<u64> = events
        .iter()
        .filter(|e| e.get("cat").and_then(Value::as_str) == Some("batch"))
        .map(|e| e.get("ts").and_then(Value::as_u64).unwrap())
        .collect();
    assert!(!batch_ts.is_empty());
    assert!(
        batch_ts.windows(2).all(|w| w[0] <= w[1]),
        "batch dispatch order must be time order: {batch_ts:?}"
    );
}
