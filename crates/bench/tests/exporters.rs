//! Exporter-determinism tests: the observability artifacts are pure
//! functions of the seed. Two fresh same-seed runs must serialize to
//! byte-identical Chrome trace JSON, OpenMetrics text, and heatmap CSV —
//! and the exported JSON must actually parse.

use serde_json::Value;
use windex_bench::experiments::observe::observed_cluster;
use windex_bench::export::{
    chrome_trace_json, cluster_request_chrome_trace, query_chrome_trace, server_chrome_trace,
};
use windex_core::prelude::*;
use windex_serve::prelude::{
    generate_trace, render_cluster_openmetrics, render_openmetrics, BatchPolicy, ServeConfig,
    Server, ServerReport, TraceConfig,
};
use windex_sim::{l2_heatmap, tlb_heatmap, Trace, TraceMode};

/// Every sample line's metric family must carry `# HELP` and `# TYPE`
/// metadata (OpenMetrics requires exposition metadata per family).
fn assert_families_have_metadata(text: &str) {
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let metric = line.split(['{', ' ']).next().expect("metric name");
        // Suffixes share their parent family's metadata.
        let family = metric
            .trim_end_matches("_total")
            .trim_end_matches("_bucket")
            .trim_end_matches("_count")
            .trim_end_matches("_sum");
        let has = |prefix: &str, fam: &str| {
            text.lines().any(|l| {
                l.strip_prefix(prefix)
                    .and_then(|rest| rest.split(' ').next())
                    .is_some_and(|f| f == fam)
            })
        };
        assert!(
            has("# HELP ", family) || has("# HELP ", metric),
            "sample '{metric}' has no # HELP metadata"
        );
        assert!(
            has("# TYPE ", family) || has("# TYPE ", metric),
            "sample '{metric}' has no # TYPE metadata"
        );
    }
}

/// A small instrumented query run (8 paper-GiB, windowed INLJ) — enough to
/// exercise phases, windows, and the trace recorder without the full
/// observe-scale cost.
fn run_query() -> (QueryReport, Trace, GpuSpec) {
    let scale = Scale::PAPER;
    let spec = GpuSpec::v100_nvlink2(scale);
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(8.0),
        KeyDistribution::Dense,
        42,
    );
    let s = Relation::foreign_keys_uniform(&r, 1 << 12, 7);
    let mut gpu = Gpu::new(spec.clone());
    gpu.start_bounded_trace();
    let report = QueryExecutor::new()
        .run(
            &mut gpu,
            &r,
            &s,
            JoinStrategy::WindowedInlj {
                index: IndexKind::RadixSpline,
                window_tuples: 1 << 11,
            },
        )
        .expect("query must succeed");
    let trace = gpu.stop_trace();
    (report, trace, spec)
}

/// A seeded serving run.
fn run_server() -> ServerReport {
    let scale = Scale::PAPER;
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(1.0),
        KeyDistribution::Dense,
        42,
    );
    let trace = generate_trace(
        &TraceConfig {
            seed: 7,
            tenants: 4,
            requests: 96,
            min_keys: 4,
            max_keys: 64,
            offered_load_rps: 10_000.0,
            deadline_s: None,
        },
        &r,
    );
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(scale));
    let mut server = Server::new(
        &mut gpu,
        ServeConfig {
            policy: BatchPolicy::Shared {
                max_delay_s: 200e-6,
            },
            window_tuples: 1024,
            ..ServeConfig::default()
        },
        r,
    )
    .expect("server must construct");
    server
        .run(&mut gpu, &trace)
        .expect("trace must complete")
        .report
}

#[test]
fn query_chrome_trace_is_byte_identical_across_runs_and_parses() {
    let (report_a, trace_a, _) = run_query();
    let (report_b, trace_b, _) = run_query();
    let json_a = chrome_trace_json(&query_chrome_trace(&report_a, &trace_a));
    let json_b = chrome_trace_json(&query_chrome_trace(&report_b, &trace_b));
    assert_eq!(json_a, json_b, "same seed must export identical bytes");

    // The export must be loadable: well-formed JSON with a traceEvents
    // array of ph-tagged events.
    let parsed = serde_json::from_str(&json_a).expect("export must parse");
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph field");
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph}");
        if ph == "X" {
            assert!(ev.get("ts").and_then(Value::as_u64).is_some());
            assert!(ev.get("dur").and_then(Value::as_u64).is_some());
        }
    }
    // A windowed run exports its window timeline and phase spans.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    assert!(names.iter().any(|n| n.starts_with("window ")));
    assert!(names.contains(&"partition") && names.contains(&"lookup"));
}

#[test]
fn heatmap_exports_are_byte_identical_and_reconcile() {
    let (_, trace_a, spec) = run_query();
    let (_, trace_b, _) = run_query();
    let tlb_a = tlb_heatmap(&spec, &trace_a, 32);
    let tlb_b = tlb_heatmap(&spec, &trace_b, 32);
    assert_eq!(tlb_a.to_csv(), tlb_b.to_csv());
    assert_eq!(
        serde_json::to_string_pretty(&tlb_a).unwrap(),
        serde_json::to_string_pretty(&tlb_b).unwrap()
    );
    // Exact reconciliation against the engine's own totals.
    assert_eq!(tlb_a.total_accesses(), trace_a.recorded().tlb_accesses);
    assert_eq!(tlb_a.total_misses(), trace_a.recorded().tlb_misses);
    assert_eq!(tlb_a.offered_accesses, trace_a.offered().tlb_accesses);
    let l2 = l2_heatmap(&spec, &trace_a, 32);
    assert_eq!(l2.total_accesses(), trace_a.recorded().l2_accesses);
    assert_eq!(l2.total_misses(), trace_a.recorded().l2_misses);
}

#[test]
fn heatmap_reconciles_exactly_under_sampling() {
    // Replay one run's recorded events through a sampling trace: the
    // recorded side thins, the offered side keeps the full-run truth.
    let (_, full, spec) = run_query();
    let mut sampled = Trace::new(full.capacity(), TraceMode::SampleEveryNth(5));
    for &ev in full.events() {
        sampled.record(ev);
    }
    let hm = tlb_heatmap(&spec, &sampled, 16);
    assert_eq!(hm.total_accesses(), sampled.recorded().tlb_accesses);
    assert_eq!(hm.total_misses(), sampled.recorded().tlb_misses);
    assert_eq!(hm.offered_accesses, full.recorded().tlb_accesses);
    assert_eq!(hm.offered_misses, full.recorded().tlb_misses);
    assert!(hm.total_accesses() < hm.offered_accesses);
    assert!(sampled.dropped_events() > 0);
}

#[test]
fn openmetrics_snapshot_is_byte_identical_and_well_formed() {
    let a = render_openmetrics(&run_server());
    let b = render_openmetrics(&run_server());
    assert_eq!(a, b, "same seed must expose identical metrics bytes");
    assert!(a.ends_with("# EOF\n"));
    // Histogram count must equal the +Inf bucket.
    let inf = a
        .lines()
        .find(|l| l.contains("le=\"+Inf\""))
        .and_then(|l| l.rsplit(' ').next())
        .expect("+Inf bucket present");
    let count = a
        .lines()
        .find(|l| l.starts_with("windex_request_latency_seconds_count"))
        .and_then(|l| l.rsplit(' ').next())
        .expect("count present");
    assert_eq!(inf, count);
    // Per-tenant series exist for every configured tenant.
    for tenant in 0..4 {
        assert!(
            a.contains(&format!("windex_requests_total{{tenant=\"{tenant}\"}}")),
            "missing tenant {tenant}"
        );
    }
    // Every family carries exposition metadata, including the span-tree
    // stage families.
    assert_families_have_metadata(&a);
    assert!(a.contains("# TYPE windex_stage_p99_seconds gauge"));
    assert!(a.contains("# TYPE windex_stage_seconds counter"));
    for stage in ["queue", "batch", "service", "merge", "other"] {
        assert!(
            a.contains(&format!("windex_stage_p99_seconds{{stage=\"{stage}\"}}")),
            "missing stage series {stage}"
        );
        assert!(
            a.contains(&format!("windex_stage_seconds_total{{stage=\"{stage}\"}}")),
            "missing stage total {stage}"
        );
    }
}

#[test]
fn cluster_openmetrics_exposes_stage_and_critical_leg_families() {
    let report = observed_cluster();
    let a = render_cluster_openmetrics(&report);
    let b = render_cluster_openmetrics(&observed_cluster());
    assert_eq!(a, b, "same seed must expose identical cluster metrics");
    assert!(a.ends_with("# EOF\n"));
    assert_families_have_metadata(&a);
    assert!(a.contains("# TYPE windex_cluster_stage_p99_seconds gauge"));
    assert!(a.contains("# TYPE windex_critical_leg counter"));
    // Critical-leg attribution covers every GPU label and sums to the
    // number of fanned-out traces.
    let critical: u64 = (0..report.gpus)
        .map(|g| {
            a.lines()
                .find(|l| l.starts_with(&format!("windex_critical_leg_total{{gpu=\"{g}\"}}")))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("missing critical-leg series for gpu {g}"))
        })
        .sum();
    let fanned = report
        .traces
        .iter()
        .filter(|t| t.critical_leg.is_some())
        .count() as u64;
    assert_eq!(critical, fanned, "critical legs must reconcile with traces");
    assert!(fanned > 0, "cluster run must fan out");
}

#[test]
fn cluster_request_chrome_trace_flow_links_legs() {
    let report = observed_cluster();
    let json_a = chrome_trace_json(&cluster_request_chrome_trace(&report));
    let json_b = chrome_trace_json(&cluster_request_chrome_trace(&observed_cluster()));
    assert_eq!(json_a, json_b, "same seed must export identical bytes");
    let parsed: Value = serde_json::from_str(&json_a).expect("export must parse");
    let events = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
    let ph_of = |e: &Value| e.get("ph").and_then(Value::as_str).unwrap().to_string();
    for ev in events {
        let ph = ph_of(ev);
        assert!(
            matches!(ph.as_str(), "X" | "i" | "M" | "b" | "e" | "s" | "t" | "f"),
            "unexpected phase {ph}"
        );
    }
    // Async request spans pair begin/end on the same (cat, id, name).
    let key = |e: &Value| {
        (
            e.get("cat").and_then(Value::as_str).unwrap().to_string(),
            e.get("id").and_then(Value::as_str).unwrap().to_string(),
            e.get("name").and_then(Value::as_str).unwrap().to_string(),
        )
    };
    let begins: Vec<_> = events.iter().filter(|e| ph_of(e) == "b").map(key).collect();
    let mut ends: Vec<_> = events.iter().filter(|e| ph_of(e) == "e").map(key).collect();
    assert_eq!(
        begins.len(),
        report.traces.len(),
        "one async span per request"
    );
    for k in &begins {
        let i = ends
            .iter()
            .position(|e| e == k)
            .unwrap_or_else(|| panic!("unmatched async begin {k:?}"));
        ends.swap_remove(i);
    }
    assert!(ends.is_empty(), "unmatched async ends: {ends:?}");
    // Flow arrows: one s/t/f triple per shard leg, and every finish step
    // binds to the enclosing slice ("bp": "e").
    let legs: usize = report.traces.iter().map(|t| t.legs.len()).sum();
    for ph in ["s", "t", "f"] {
        let n = events.iter().filter(|e| ph_of(e) == *ph).count();
        assert_eq!(n, legs, "expected one '{ph}' flow event per leg");
    }
    for ev in events.iter().filter(|e| ph_of(e) == "f") {
        assert_eq!(
            ev.get("bp").and_then(Value::as_str),
            Some("e"),
            "flow finish must bind to enclosing slice"
        );
    }
}

#[test]
fn tail_artifacts_are_deterministic_and_name_the_critical_shard() {
    let a = observed_cluster();
    let b = observed_cluster();
    let tail_a = serde_json::to_string_pretty(&a.tail).unwrap();
    let tail_b = serde_json::to_string_pretty(&b.tail).unwrap();
    assert_eq!(tail_a, tail_b, "tail sample must be deterministic");
    let cards_a: String = a.tail.slowest.iter().map(|c| c.render()).collect();
    let cards_b: String = b.tail.slowest.iter().map(|c| c.render()).collect();
    assert_eq!(cards_a, cards_b, "query cards must be deterministic");
    assert!(!a.tail.slowest.is_empty(), "tail must sample the slowest");
    // The slowest card is a cross-shard request whose card names its
    // critical-path leg.
    let top = &a.tail.slowest[0];
    assert!(top.critical_shard.is_some(), "slowest request must fan out");
    assert!(cards_a.contains("critical path: shard"), "{cards_a}");
    // Slowest cards are ordered by descending latency.
    for w in a.tail.slowest.windows(2) {
        assert!(w[0].latency_s >= w[1].latency_s);
    }
}

#[test]
fn server_chrome_trace_is_byte_identical_and_places_batches() {
    let json_a = chrome_trace_json(&server_chrome_trace(&run_server()));
    let json_b = chrome_trace_json(&server_chrome_trace(&run_server()));
    assert_eq!(json_a, json_b);
    let parsed = serde_json::from_str(&json_a).expect("export must parse");
    let events = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
    // Batch spans carry real virtual-clock timestamps: monotone ts order.
    let batch_ts: Vec<u64> = events
        .iter()
        .filter(|e| e.get("cat").and_then(Value::as_str) == Some("batch"))
        .map(|e| e.get("ts").and_then(Value::as_u64).unwrap())
        .collect();
    assert!(!batch_ts.is_empty());
    assert!(
        batch_ts.windows(2).all(|w| w[0] <= w[1]),
        "batch dispatch order must be time order: {batch_ts:?}"
    );
}
