//! Criterion micro-bench: the engine's per-access hot path.
//!
//! Measures raw simulator speed (wall clock per simulated access) for the
//! immediate scalar path (`Buffer::read`) against the warp-batched issue
//! path (`read_issued` + `access_lines`), on a hit-heavy stream (a
//! cache-resident working set — dominated by the MRU way-0 fast hit and
//! the `last_line` short-circuit), a miss-heavy stream (one page per
//! access — dominated by LRU insertion and the page-stamp table), and a
//! mixed stream (hot/cold interleaved 3:1 — the divergent-warp shape that
//! stresses the classifier's hit/miss lane split within one batch).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use windex_sim::{Gpu, GpuSpec, Scale, WARP_SIZE};

/// Accesses per measured iteration.
const ACCESSES: usize = 4096;

/// Hit-heavy: 8 hot lines, far smaller than L1.
fn hot_indices(line_elems: usize) -> Vec<usize> {
    (0..ACCESSES).map(|k| (k % 8) * line_elems).collect()
}

/// Miss-heavy: stride a page per access across a large buffer.
fn cold_indices(page_elems: usize, len: usize) -> Vec<usize> {
    (0..ACCESSES)
        .map(|k| (k * page_elems * 7 + k) % (len - 1))
        .collect()
}

/// Mixed: hot and cold interleaved 3:1 — the divergent-warp shape where the
/// branchless classifier's lane split (hit lanes vs miss lanes in one
/// batch) matters most.
fn mixed_indices(line_elems: usize, page_elems: usize, len: usize) -> Vec<usize> {
    (0..ACCESSES)
        .map(|k| {
            if k % 4 == 3 {
                (k * page_elems * 7 + k) % (len - 1)
            } else {
                (k % 8) * line_elems
            }
        })
        .collect()
}

fn bench_engine_access(c: &mut Criterion) {
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    let line_elems = gpu.spec().cacheline_bytes as usize / 8;
    let page_elems = gpu.spec().page_bytes as usize / 8;
    let buf = gpu.alloc_host_from_vec(vec![1u64; 1 << 20]);

    let mut group = c.benchmark_group("engine_access");
    group.throughput(Throughput::Elements(ACCESSES as u64));
    for (stream, indices) in [
        ("hit_heavy", hot_indices(line_elems)),
        ("miss_heavy", cold_indices(page_elems, buf.len())),
        ("mixed", mixed_indices(line_elems, page_elems, buf.len())),
    ] {
        group.bench_function(format!("scalar/{stream}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &i in &indices {
                    acc = acc.wrapping_add(buf.read(&mut gpu, i));
                }
                black_box(acc)
            })
        });
        group.bench_function(format!("batched/{stream}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                // Issue warp-sized batches, draining once per warp — the
                // shape `lockstep` produces.
                for warp in indices.chunks(WARP_SIZE) {
                    for &i in warp {
                        acc = acc.wrapping_add(buf.read_issued(&mut gpu, i));
                    }
                    gpu.access_lines();
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine_access
}
criterion_main!(benches);
