//! Criterion micro-bench: multi-value hash table build and probe.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use windex_join::{HashTableConfig, MultiValueHashTable};
use windex_sim::{Gpu, GpuSpec, Scale};
use windex_workload::{KeyDistribution, Relation};

fn bench_hash_table(c: &mut Criterion) {
    let n = 1 << 13;
    let r = Relation::unique_sorted(1 << 18, KeyDistribution::SparseUniform, 1);
    let s = Relation::foreign_keys_uniform(&r, n, 2);

    let mut group = c.benchmark_group("multi_value_hash_table");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("build", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
            let mut t = MultiValueHashTable::new(&mut gpu, n, HashTableConfig::default()).unwrap();
            for (i, &k) in s.keys().iter().enumerate() {
                t.insert(&mut gpu, k, i as u64).unwrap();
            }
            black_box(t.len())
        })
    });

    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    let mut t = MultiValueHashTable::new(&mut gpu, n, HashTableConfig::default()).unwrap();
    for (i, &k) in s.keys().iter().enumerate() {
        t.insert(&mut gpu, k, i as u64).unwrap();
    }
    group.bench_function("probe", |b| {
        b.iter(|| {
            let mut matches = 0usize;
            for &k in s.keys() {
                matches += t.count(&mut gpu, k);
            }
            black_box(matches)
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hash_table
}
criterion_main!(benches);
