//! Criterion micro-bench: the streaming operator's push path and the
//! serving layer's micro-batch dispatch loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::rc::Rc;
use windex_core::prelude::*;
use windex_core::streams::StreamingWindowJoin;
use windex_serve::prelude::{generate_trace, BatchPolicy, ServeConfig, Server, TraceConfig};
use windex_sim::MemLocation;

fn setup(n_r: usize) -> (Gpu, BuiltIndex, Relation, PartitionBits) {
    let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
    let r = Relation::unique_sorted(n_r, KeyDistribution::Dense, 1);
    let col = Rc::new(gpu.alloc_host_from_vec(r.keys().to_vec()));
    let idx = BuiltIndex::build(
        &mut gpu,
        IndexKind::RadixSpline,
        &col,
        &IndexConfigs::default(),
    );
    let bits = QueryExecutor::new().resolve_bits(&gpu, &r);
    (gpu, idx, r, bits)
}

fn bench_streaming_push(c: &mut Criterion) {
    let (mut gpu, idx, r, bits) = setup(1 << 16);
    let s = Relation::foreign_keys_uniform(&r, 1 << 12, 2);
    let tuples: Vec<(u64, u64)> = s
        .keys()
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();

    let mut group = c.benchmark_group("streaming_push");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    for window_pow in [8usize, 10, 12] {
        group.bench_function(format!("window_2e{window_pow}"), |b| {
            b.iter(|| {
                let cfg = WindowConfig {
                    window_tuples: 1 << window_pow,
                    bits,
                    min_key: 0,
                };
                let mut op = StreamingWindowJoin::new(&mut gpu, cfg).unwrap();
                let mut sink = windex_join::ResultSink::with_capacity(
                    &mut gpu,
                    tuples.len(),
                    MemLocation::Cpu,
                )
                .unwrap();
                for chunk in tuples.chunks(331) {
                    op.push(&mut gpu, idx.as_dyn(), chunk, &mut sink).unwrap();
                }
                let stats = op.finish(&mut gpu, idx.as_dyn(), &mut sink).unwrap();
                sink.free(&mut gpu);
                black_box(stats.matches)
            })
        });
    }
    group.finish();
}

fn bench_serve_dispatch(c: &mut Criterion) {
    let r = Relation::unique_sorted(1 << 14, KeyDistribution::SparseUniform, 1);
    let trace = generate_trace(
        &TraceConfig {
            requests: 128,
            offered_load_rps: 50_000.0,
            ..TraceConfig::default()
        },
        &r,
    );
    let total_keys: u64 = trace.iter().map(|t| t.request.keys.len() as u64).sum();

    let mut group = c.benchmark_group("serve_dispatch");
    group.throughput(Throughput::Elements(total_keys));
    for (name, policy) in [
        ("per_request", BatchPolicy::PerRequest),
        (
            "shared_200us",
            BatchPolicy::Shared {
                max_delay_s: 200e-6,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
                let mut server = Server::new(
                    &mut gpu,
                    ServeConfig {
                        policy,
                        ..ServeConfig::default()
                    },
                    r.clone(),
                )
                .unwrap();
                let outcome = server.run(&mut gpu, &trace).unwrap();
                black_box(outcome.report.completed)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_streaming_push, bench_serve_dispatch
}
criterion_main!(benches);
