//! Criterion micro-bench: end-to-end windowed INLJ at several window sizes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use windex_core::prelude::*;

fn bench_window_join(c: &mut Criterion) {
    let scale = Scale::PAPER;
    let r = Relation::unique_sorted(
        scale.sim_tuples_for_paper_gib(16.0),
        KeyDistribution::Dense,
        1,
    );
    let s = Relation::foreign_keys_uniform(&r, 1 << 12, 2);
    let ex = QueryExecutor::new();

    let mut group = c.benchmark_group("windowed_inlj");
    group.throughput(Throughput::Elements(s.len() as u64));
    for window_pow in [9usize, 11, 12] {
        group.bench_function(format!("window_2e{window_pow}"), |b| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(scale));
                let report = ex
                    .run(
                        &mut gpu,
                        &r,
                        &s,
                        JoinStrategy::WindowedInlj {
                            index: IndexKind::RadixSpline,
                            window_tuples: 1 << window_pow,
                        },
                    )
                    .unwrap();
                black_box(report.result_tuples)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_window_join
}
criterion_main!(benches);
