//! `cargo bench` entry point that regenerates every table and figure in
//! quick mode (harness = false). The full-resolution run is
//! `cargo run --release -p windex-bench --bin experiments -- all`.

use windex_bench::experiments::{
    ablations, fig1, fig7, fig8, fig9, figs34, figs56, summary, table1, whatif,
};
use windex_bench::ExpConfig;

fn main() {
    // Criterion-style filter arguments are ignored; this harness always
    // regenerates the full figure set in quick mode.
    let cfg = {
        let mut c = ExpConfig::quick();
        c.out_dir = std::path::PathBuf::from("results-quick");
        c
    };
    println!(
        "regenerating all paper figures (quick mode) into {:?}",
        cfg.out_dir
    );

    let mut experiments = vec![table1::table1(), fig1::fig1(&cfg)];
    let unpart = figs34::unpartitioned_sweep(&cfg);
    experiments.push(figs34::fig3_from(&unpart));
    experiments.push(figs34::fig4_from(&unpart));
    let part = figs56::partitioned_sweep(&cfg);
    experiments.extend(figs56::figs56_from(&unpart, &part));
    experiments.push(fig7::fig7(&cfg));
    experiments.push(fig8::fig8(&cfg));
    experiments.push(fig9::fig9(&cfg));
    experiments.extend(ablations::all(&cfg));
    experiments.push(whatif::whatif_gh200(&cfg));
    experiments.push(summary::summary(&cfg));

    for exp in experiments {
        print!("{}", exp.render_text());
        println!();
        if let Err(e) = exp.write(&cfg.out_dir) {
            eprintln!("warning: could not write {}: {e}", exp.id);
        }
    }
}
