//! Criterion micro-bench: SWWC radix partitioner throughput across fanouts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use windex_join::{PartitionBits, RadixPartitioner};
use windex_sim::{Gpu, GpuSpec, Scale};
use windex_workload::{KeyDistribution, Relation};

fn bench_partition(c: &mut Criterion) {
    let n = 1 << 14;
    let r = Relation::unique_sorted(1 << 20, KeyDistribution::Dense, 1);
    let s = Relation::foreign_keys_uniform(&r, n, 2);

    let mut group = c.benchmark_group("radix_partition");
    group.throughput(Throughput::Elements(n as u64));
    for bits in [4u32, 8, 11] {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let buf = gpu.alloc_host_from_vec(s.keys().to_vec());
        let part = RadixPartitioner::new(PartitionBits { shift: 4, bits }, 0);
        group.bench_function(format!("{}_partitions", 1 << bits), |b| {
            b.iter(|| {
                let out = part.partition_stream(&mut gpu, &buf, 0..n).unwrap();
                black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_partition
}
criterion_main!(benches);
