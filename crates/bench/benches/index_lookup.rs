//! Criterion micro-bench: warp-cooperative lookup throughput of each index
//! structure (simulator-side performance; complements the modeled Q/s of
//! the figure harness).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use std::rc::Rc;
use windex_core::strategy::{BuiltIndex, IndexConfigs};
use windex_index::IndexKind;
use windex_sim::{Gpu, GpuSpec, Scale, WARP_SIZE};
use windex_workload::{KeyDistribution, Relation};

fn bench_lookups(c: &mut Criterion) {
    let n = 1 << 18;
    let probes = 1 << 10;
    let r = Relation::unique_sorted(n, KeyDistribution::SparseUniform, 1);
    let s = Relation::foreign_keys_uniform(&r, probes, 2);

    let mut group = c.benchmark_group("index_lookup_warp");
    group.throughput(Throughput::Elements(probes as u64));
    for kind in IndexKind::all() {
        let mut gpu = Gpu::new(GpuSpec::v100_nvlink2(Scale::PAPER));
        let col = Rc::new(gpu.alloc_host_from_vec(r.keys().to_vec()));
        let idx = BuiltIndex::build(&mut gpu, kind, &col, &IndexConfigs::default());
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || s.keys().to_vec(),
                |keys| {
                    let mut out = [None; WARP_SIZE];
                    for warp in keys.chunks(WARP_SIZE) {
                        idx.as_dyn().lookup_warp(&mut gpu, warp, &mut out);
                        black_box(&out);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lookups
}
criterion_main!(benches);
