//! ASCII line charts for experiment series.
//!
//! The figure harness prints each experiment as an aligned table; this
//! module adds a compact log-log plot so the *shape* — the cliff at the
//! TLB range, the crossover, the skew ramp — is visible directly in the
//! terminal, like the paper's figures.

use crate::output::Experiment;
use serde_json::Value;
use std::fmt::Write as _;

/// Plot dimensions.
const WIDTH: usize = 72;
const HEIGHT: usize = 18;

/// Series glyphs, assigned to columns in order.
const GLYPHS: &[char] = &['o', '+', 'x', '*', '#', '@', '%', '&'];

fn log_pos(v: f64, lo: f64, hi: f64, cells: usize) -> usize {
    if hi <= lo {
        return 0;
    }
    let t = (v.ln() - lo.ln()) / (hi.ln() - lo.ln());
    ((t * (cells - 1) as f64).round() as isize).clamp(0, cells as isize - 1) as usize
}

/// Render a log-log chart of an experiment whose first column is a numeric
/// x axis and whose remaining columns are numeric series. Returns `None`
/// when the experiment has no plottable data (non-numeric x, a single row,
/// or no positive values).
pub fn render_chart(exp: &Experiment) -> Option<String> {
    let xs: Vec<f64> = exp
        .rows
        .iter()
        .map(|r| r.first().and_then(Value::as_f64))
        .collect::<Option<Vec<_>>>()?;
    if xs.len() < 2 || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let n_series = exp.columns.len() - 1;
    let mut ys: Vec<Vec<Option<f64>>> = vec![Vec::new(); n_series];
    for row in &exp.rows {
        for (si, cell) in row[1..].iter().enumerate() {
            ys[si].push(cell.as_f64().filter(|v| *v > 0.0));
        }
    }
    let flat: Vec<f64> = ys.iter().flatten().flatten().copied().collect();
    if flat.is_empty() {
        return None;
    }
    let (y_lo, y_hi) = flat.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &v| {
        (lo.min(v), hi.max(v))
    });
    let (x_lo, x_hi) = (xs[0], *xs.last()?);
    if y_hi <= 0.0 || x_hi <= x_lo {
        return None;
    }
    let y_lo = y_lo.min(y_hi / 2.0); // avoid a degenerate flat axis

    let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
    for (si, series) in ys.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (xi, maybe_y) in series.iter().enumerate() {
            let Some(y) = maybe_y else { continue };
            let col = log_pos(xs[xi], x_lo, x_hi, WIDTH);
            let row = HEIGHT - 1 - log_pos(*y, y_lo, y_hi, HEIGHT);
            grid[row][col] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:>9.3} ┤{}",
        y_hi,
        grid[0].iter().collect::<String>()
    );
    for line in &grid[1..HEIGHT - 1] {
        let _ = writeln!(out, "  {:>9} │{}", "", line.iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "  {:>9.3} ┤{}",
        y_lo,
        grid[HEIGHT - 1].iter().collect::<String>()
    );
    let _ = writeln!(out, "  {:>9} └{}", "", "─".repeat(WIDTH));
    let _ = writeln!(
        out,
        "  {:>9}  {:<10}{:>x_pad$}",
        "",
        format!("{x_lo}"),
        format!("{x_hi}  (log-log)"),
        x_pad = WIDTH.saturating_sub(10)
    );
    for (si, col) in exp.columns[1..].iter().enumerate() {
        let _ = writeln!(out, "      {} {}", GLYPHS[si % GLYPHS.len()], col);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn exp(rows: Vec<Vec<Value>>) -> Experiment {
        Experiment {
            id: "t".into(),
            title: "t".into(),
            columns: vec!["x".into(), "a".into(), "b".into()],
            rows,
            notes: vec![],
        }
    }

    #[test]
    fn renders_two_series() {
        let e = exp(vec![
            vec![json!(1.0), json!(10.0), json!(1.0)],
            vec![json!(10.0), json!(5.0), json!(1.0)],
            vec![json!(100.0), json!(1.0), json!(1.0)],
        ]);
        let chart = render_chart(&e).unwrap();
        assert!(chart.contains('o'));
        assert!(chart.contains('+'));
        assert!(chart.contains("a"));
        assert!(chart.contains("log-log"));
    }

    #[test]
    fn skips_non_numeric_x() {
        let e = exp(vec![vec![json!("dense"), json!(1.0), json!(2.0)]]);
        assert!(render_chart(&e).is_none());
    }

    #[test]
    fn skips_single_row() {
        let e = exp(vec![vec![json!(1.0), json!(1.0), json!(2.0)]]);
        assert!(render_chart(&e).is_none());
    }

    #[test]
    fn handles_nulls_in_series() {
        let e = exp(vec![
            vec![json!(1.0), json!(10.0), Value::Null],
            vec![json!(10.0), json!(5.0), Value::Null],
        ]);
        let chart = render_chart(&e).unwrap();
        assert!(chart.contains('o'));
    }

    #[test]
    fn cliff_shape_is_visible() {
        // A series that collapses by 10x must occupy distinct chart rows.
        // (The second series sits elsewhere: later glyphs overprint
        // earlier ones at shared positions.)
        let e = exp(vec![
            vec![json!(8.0), json!(2.0), json!(4.0)],
            vec![json!(32.0), json!(2.0), json!(4.0)],
            vec![json!(64.0), json!(0.2), json!(4.0)],
        ]);
        let chart = render_chart(&e).unwrap();
        let lines: Vec<&str> = chart.lines().collect();
        let first_o = lines.iter().position(|l| l.contains('o')).unwrap();
        let last_o = lines.iter().rposition(|l| l.contains('o')).unwrap();
        assert!(last_o > first_o + 5, "cliff not visible: {chart}");
    }
}
