//! The `tuner` target: online auto-tuning vs every static plan on a
//! mixed-regime tenant trace, with a CI tolerance gate.
//!
//! The paper's central finding is that the best join plan is
//! *regime-dependent*: a hash join wins while R fits GPU memory, the
//! windowed INLJ wins once it does not (§5, Fig. 7). A server hosting
//! both regimes at once — here two 1 GiB tenants and two 64 GiB tenants —
//! therefore cannot be well served by any single static plan. This target
//! replays one seeded mixed trace under the online tuner and under each
//! static candidate plan, and requires the tuned run to beat **every**
//! static run on aggregate Q/s (completed requests per busy virtual
//! second).
//!
//! Everything is a pure function of the seeds: relations, traces, tuner
//! exploration draws, and the virtual clock are all counter-indexed, and
//! policy points are independent simulations merged in fixed order — so
//! the report and `BENCH_tuner.json` are byte-identical across runs and
//! for any `--jobs` count.
//!
//! When a committed `BENCH_tuner.json` exists (override the path with
//! `WINDEX_TUNER`), the fresh KPIs are gated against it: discrete
//! outcomes (completed, batches, switches, explorations, final plans)
//! must match exactly; continuous ones (busy time, aggregate Q/s, keys/s,
//! p99, cost-model error) get a 2% relative band for benign cost-model
//! churn. A missing committed file is a warning — the recording run.

use crate::config::ExpConfig;
use crate::output::{num, num6, Experiment};
use serde::Serialize;
use serde_json::{json, Value};
use windex_core::{default_candidates, CandidatePlan, TunerConfig};
use windex_serve::prelude::*;

/// Format-version marker for `BENCH_tuner.json`.
pub(crate) const SCHEMA_VERSION: u32 = 1;

/// Seed of the tuner's exploration stream (per-tenant seeds derive from
/// it inside [`TunedServer`]).
const TUNER_SEED: u64 = 7;

/// Seed of the per-tenant request traces.
const TRACE_SEED: u64 = 7;

/// Requests per tenant. Fixed (not `--quick`-dependent): 40 requests of
/// 2–6 Ki keys give each tenant ~5 full 32 Ki-key batches — enough for
/// the tuner to observe, switch once, and settle.
const TENANT_REQUESTS: usize = 40;

/// Relative tolerance for continuous KPIs against the committed file.
const REL_TOL: f64 = 0.02;

/// Where the committed reference lives unless `WINDEX_TUNER` overrides.
const DEFAULT_TUNER_PATH: &str = "BENCH_tuner.json";

/// Paper-scale relation sizes per tenant id: two in-core tenants, two
/// out-of-core (the V100 holds ~26 paper-GiB of R after overheads).
const TENANT_GIB: [f64; 4] = [1.0, 64.0, 1.0, 64.0];

/// One policy's serving KPIs on the mixed trace.
#[derive(Debug, Clone, Serialize)]
struct TunerPoint {
    /// `"tuned"` or the pinned static plan's label.
    policy: String,
    completed: usize,
    batches: usize,
    /// Argmin strategy switches across all tenants.
    switches: u64,
    /// Exploration batches across all tenants.
    explorations: u64,
    /// Virtual time the device spent executing dispatches, seconds.
    busy_s: f64,
    /// Completed requests per busy virtual second — the gated metric.
    aggregate_qps: f64,
    /// Probe keys per busy virtual second.
    keys_per_second: f64,
    /// p99 latency over completed requests, virtual seconds.
    p99_s: f64,
    /// Mean relative |estimated − realized| per-key cost error.
    est_cost_error: f64,
    /// Plan each tenant ended on, ascending tenant id.
    final_plans: Vec<String>,
}

/// The `BENCH_tuner.json` payload.
#[derive(Debug, Clone, Serialize)]
struct TunerBench {
    schema: u32,
    tuner_seed: u64,
    trace_seed: u64,
    tenant_requests: usize,
    tenant_gib: Vec<f64>,
    /// `tuned aggregate_qps / best static aggregate_qps` (> 1 by gate).
    tuned_speedup_vs_best_static: f64,
    policies: Vec<TunerPoint>,
}

/// Round to 6 decimals: canonical on-disk float form, keeps the gate from
/// chasing last-bit jitter from benign refactors.
fn r6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

/// The tenants: dense sorted R at paper scale, sizes from [`TENANT_GIB`].
fn tuner_tenants() -> Vec<(TenantId, Relation)> {
    TENANT_GIB
        .iter()
        .enumerate()
        .map(|(id, &gib)| {
            let n = Scale::PAPER.sim_tuples_for_paper_gib(gib);
            (
                id as TenantId,
                Relation::unique_sorted(n, KeyDistribution::Dense, 42 + id as u64),
            )
        })
        .collect()
}

/// The mixed trace every policy replays: one seeded per-tenant stream
/// each (keys drawn from that tenant's own relation), merged in arrival
/// order. ~160 req/s per tenant at 2–6 Ki keys keeps every tenant's queue
/// saturated, so batches fill to `batch_keys` and the regime contrast is
/// maximal.
fn tuner_trace(tenants: &[(TenantId, Relation)]) -> Vec<TimedRequest> {
    let cfg = TraceConfig {
        seed: TRACE_SEED,
        tenants: 1,
        requests: TENANT_REQUESTS,
        min_keys: 2_048,
        max_keys: 6_144,
        offered_load_rps: 160.0,
        deadline_s: None,
    };
    merge_traces(
        tenants
            .iter()
            .map(|(id, r)| generate_tenant_trace(&cfg, *id, r))
            .collect(),
    )
}

/// Replay the trace under one policy: the full candidate set with the
/// default tuner discipline (`pin` = `None`), or one pinned static plan
/// (a single-candidate tuner with exploration off never moves).
fn run_policy(
    tenants: &[(TenantId, Relation)],
    trace: &[TimedRequest],
    pin: Option<CandidatePlan>,
) -> TunerPoint {
    let (label, candidates, tuner) = match pin {
        None => (
            "tuned".to_string(),
            None,
            TunerConfig {
                seed: TUNER_SEED,
                ..TunerConfig::default()
            },
        ),
        Some(plan) => (
            plan.label(),
            Some(vec![plan]),
            TunerConfig {
                seed: TUNER_SEED,
                epsilon: 0.0,
                ..TunerConfig::default()
            },
        ),
    };
    let cfg = TunedConfig {
        tuner,
        ..TunedConfig::default()
    };
    let mut srv = TunedServer::new(
        GpuSpec::v100_nvlink2(Scale::PAPER),
        cfg,
        tenants.to_vec(),
        candidates,
    )
    .expect("tuner experiment server must construct");
    let rep = srv.run(trace).expect("tuner trace must complete");
    TunerPoint {
        policy: label,
        completed: rep.completed,
        batches: rep.batches,
        switches: rep.switches,
        explorations: rep.explorations,
        busy_s: r6(rep.busy_s),
        aggregate_qps: r6(rep.aggregate_qps),
        keys_per_second: r6(rep.keys_per_second),
        p99_s: r6(rep.latency.p99_s),
        est_cost_error: r6(rep.est_cost_error),
        final_plans: rep
            .per_tenant
            .iter()
            .map(|t| t.final_plan.clone())
            .collect(),
    }
}

/// Compute all policy points with `jobs` workers, merged in fixed order
/// (tuned first, then [`default_candidates`] order). Workers only decide
/// *when* a policy runs, never *what* it computes, so any job count
/// merges identically.
fn compute(jobs: usize) -> TunerBench {
    let tenants = tuner_tenants();
    let trace = tuner_trace(&tenants);
    let mut policies: Vec<Option<CandidatePlan>> = vec![None];
    policies.extend(default_candidates().into_iter().map(Some));

    let mut points: Vec<Option<TunerPoint>> = if jobs <= 1 {
        policies
            .iter()
            .map(|p| Some(run_policy(&tenants, &trace, *p)))
            .collect()
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<TunerPoint>> = vec![None; policies.len()];
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= policies.len() {
                                break;
                            }
                            mine.push((i, run_policy(&tenants, &trace, policies[i])));
                        }
                        mine
                    })
                })
                .collect();
            for w in workers {
                for (i, p) in w.join().expect("tuner worker panicked") {
                    slots[i] = Some(p);
                }
            }
        });
        slots
    };
    let points: Vec<TunerPoint> = points
        .iter_mut()
        .map(|p| p.take().expect("policy ran"))
        .collect();
    let best_static = points[1..]
        .iter()
        .map(|p| p.aggregate_qps)
        .fold(0.0f64, f64::max);
    TunerBench {
        schema: SCHEMA_VERSION,
        tuner_seed: TUNER_SEED,
        trace_seed: TRACE_SEED,
        tenant_requests: TENANT_REQUESTS,
        tenant_gib: TENANT_GIB.to_vec(),
        tuned_speedup_vs_best_static: if best_static > 0.0 {
            r6(points[0].aggregate_qps / best_static)
        } else {
            0.0
        },
        policies: points,
    }
}

/// Invariants that hold regardless of any committed reference: every
/// policy serves the whole trace, and the tuned run strictly beats every
/// static plan on aggregate Q/s.
fn check_invariants(bench: &TunerBench) -> Result<(), String> {
    let requests = TENANT_REQUESTS * TENANT_GIB.len();
    let tuned = &bench.policies[0];
    if tuned.policy != "tuned" {
        return Err("first policy row must be the tuned run".into());
    }
    for p in &bench.policies {
        if p.completed != requests {
            return Err(format!(
                "policy '{}' completed {}/{requests} requests",
                p.policy, p.completed
            ));
        }
        if !p.aggregate_qps.is_finite()
            || !p.busy_s.is_finite()
            || !p.p99_s.is_finite()
            || !p.est_cost_error.is_finite()
        {
            return Err(format!("policy '{}' produced non-finite KPIs", p.policy));
        }
    }
    for p in &bench.policies[1..] {
        if tuned.aggregate_qps <= p.aggregate_qps {
            return Err(format!(
                "tuned aggregate Q/s {} must strictly beat static '{}' at {}",
                tuned.aggregate_qps, p.policy, p.aggregate_qps
            ));
        }
    }
    Ok(())
}

fn field<'v>(entry: &'v Value, key: &str) -> Result<&'v Value, String> {
    entry
        .get(key)
        .ok_or_else(|| format!("tuner entry missing field '{key}'"))
}

fn f64_field(entry: &Value, key: &str) -> Result<f64, String> {
    field(entry, key)?
        .as_f64()
        .ok_or_else(|| format!("tuner field '{key}' is not a number"))
}

fn u64_field(entry: &Value, key: &str) -> Result<u64, String> {
    field(entry, key)?
        .as_u64()
        .ok_or_else(|| format!("tuner field '{key}' is not an unsigned integer"))
}

/// Whether `fresh` is within `tol` of `committed`, relatively.
fn rel_close(fresh: f64, committed: f64, tol: f64) -> bool {
    if committed == 0.0 {
        fresh == 0.0
    } else {
        ((fresh - committed) / committed).abs() <= tol
    }
}

/// Diff one fresh point against its committed counterpart; returns the
/// violated metrics as human-readable strings.
fn diff_point(fresh: &TunerPoint, committed: &Value) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut exact_u64 = |key: &str, have: u64| -> Result<(), String> {
        let want = u64_field(committed, key)?;
        if have != want {
            out.push(format!("{key}: committed {want}, fresh {have}"));
        }
        Ok(())
    };
    exact_u64("completed", fresh.completed as u64)?;
    exact_u64("batches", fresh.batches as u64)?;
    exact_u64("switches", fresh.switches)?;
    exact_u64("explorations", fresh.explorations)?;
    let plans: Vec<String> = field(committed, "final_plans")?
        .as_array()
        .ok_or("tuner field 'final_plans' is not an array")?
        .iter()
        .map(|v| v.as_str().unwrap_or_default().to_string())
        .collect();
    if plans != fresh.final_plans {
        out.push(format!(
            "final_plans: committed {plans:?}, fresh {:?}",
            fresh.final_plans
        ));
    }
    for (key, have) in [
        ("busy_s", fresh.busy_s),
        ("aggregate_qps", fresh.aggregate_qps),
        ("keys_per_second", fresh.keys_per_second),
        ("p99_s", fresh.p99_s),
        ("est_cost_error", fresh.est_cost_error),
    ] {
        let want = f64_field(committed, key)?;
        if !rel_close(have, want, REL_TOL) {
            out.push(format!(
                "{key}: committed {want}, fresh {have} (>{:.0}% off)",
                REL_TOL * 100.0
            ));
        }
    }
    Ok(out)
}

/// Gate the fresh bench against a committed file, if one exists.
fn gate(fresh: &TunerBench, path: &str) -> Result<String, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            return Ok(format!(
                "no committed reference at '{path}'; gate skipped (recording run)"
            ))
        }
    };
    let root: Value =
        serde_json::from_str(&text).map_err(|e| format!("'{path}' is not JSON: {e}"))?;
    let schema = u64_field(&root, "schema")?;
    if schema != u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "tuner schema v{schema} != expected v{SCHEMA_VERSION}; \
             regenerate with `experiments tuner`"
        ));
    }
    let committed = field(&root, "policies")?
        .as_array()
        .ok_or("tuner 'policies' is not an array")?;
    if committed.len() != fresh.policies.len() {
        return Err(format!(
            "committed file has {} policies, fresh run has {}",
            committed.len(),
            fresh.policies.len()
        ));
    }
    let mut violations = Vec::new();
    for (f, c) in fresh.policies.iter().zip(committed) {
        let name = field(c, "policy")?
            .as_str()
            .ok_or("tuner field 'policy' is not a string")?;
        if name != f.policy {
            return Err(format!(
                "policy order mismatch: committed '{name}', fresh '{}'",
                f.policy
            ));
        }
        for v in diff_point(f, c)? {
            violations.push(format!("[{}] {v}", f.policy));
        }
    }
    if violations.is_empty() {
        Ok(format!(
            "gate: {} policies within tolerance of '{path}' — ok",
            fresh.policies.len()
        ))
    } else {
        Err(format!(
            "tuner KPI drift vs '{path}':\n  {}",
            violations.join("\n  ")
        ))
    }
}

/// The `tuner` target. `Err` (→ nonzero exit) on invariant or gate
/// violations.
pub fn tuner(cfg: &ExpConfig) -> Result<Experiment, String> {
    let bench = compute(cfg.jobs);
    check_invariants(&bench)?;

    let path = std::env::var("WINDEX_TUNER").unwrap_or_else(|_| DEFAULT_TUNER_PATH.to_string());
    let gate_note = gate(&bench, &path)?;

    let out_path = cfg.out_dir.join("BENCH_tuner.json");
    let mut text = serde_json::to_string_pretty(&bench).expect("tuner bench serializes");
    text.push('\n');
    let write =
        std::fs::create_dir_all(&cfg.out_dir).and_then(|()| std::fs::write(&out_path, text));
    if let Err(e) = write {
        eprintln!("warning: could not write {}: {e}", out_path.display());
    }

    let rows = bench
        .policies
        .iter()
        .map(|p| {
            vec![
                json!(p.policy.clone()),
                json!(p.completed),
                json!(p.batches),
                json!(p.switches),
                json!(p.explorations),
                num6(p.busy_s),
                num(p.aggregate_qps),
                num(p.keys_per_second),
                num6(p.p99_s * 1e3),
                num6(p.est_cost_error),
            ]
        })
        .collect();
    Ok(Experiment {
        id: "tuner".into(),
        title: "Tuner: online plan selection vs every static plan, mixed 1/64 GiB tenants".into(),
        columns: vec![
            "policy".into(),
            "completed".into(),
            "batches".into(),
            "switches".into(),
            "explorations".into(),
            "busy_s".into(),
            "aggregate_qps".into(),
            "keys_per_s".into(),
            "p99_ms".into(),
            "cost_err".into(),
        ],
        rows,
        notes: vec![
            format!(
                "{TENANT_REQUESTS} requests × {} tenants (R = {:?} paper-GiB), one seeded \
                 trace replayed per policy; virtual-clock KPIs, byte-identical across runs \
                 and --jobs counts",
                TENANT_GIB.len(),
                TENANT_GIB
            ),
            format!(
                "tuned beats the best static plan {:.3}× on aggregate Q/s: no single plan \
                 serves both regimes (hash join in-core, windowed INLJ out-of-core)",
                bench.tuned_speedup_vs_best_static
            ),
            gate_note,
            "also written as BENCH_tuner.json (gated against the committed copy)".into(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> TunerBench {
        compute(1)
    }

    #[test]
    fn policies_sweep_in_fixed_order_and_hold_invariants() {
        let b = bench();
        assert_eq!(b.policies.len(), default_candidates().len() + 1);
        assert_eq!(b.policies[0].policy, "tuned");
        let labels: Vec<String> = b.policies[1..].iter().map(|p| p.policy.clone()).collect();
        let expected: Vec<String> = default_candidates().iter().map(|c| c.label()).collect();
        assert_eq!(labels, expected);
        check_invariants(&b).expect("invariants hold");
        assert!(
            b.tuned_speedup_vs_best_static > 1.0,
            "tuned speedup {}",
            b.tuned_speedup_vs_best_static
        );
    }

    #[test]
    fn tuned_run_splits_plans_by_regime() {
        let b = bench();
        let tuned = &b.policies[0];
        // In-core tenants (ids 0, 2) end on the hash join; out-of-core
        // tenants (ids 1, 3) end on a windowed INLJ.
        assert!(
            tuned.final_plans[0].contains("hash"),
            "{:?}",
            tuned.final_plans
        );
        assert!(
            tuned.final_plans[2].contains("hash"),
            "{:?}",
            tuned.final_plans
        );
        assert!(
            tuned.final_plans[1].contains("windowed"),
            "{:?}",
            tuned.final_plans
        );
        assert!(
            tuned.final_plans[3].contains("windowed"),
            "{:?}",
            tuned.final_plans
        );
        // Static rows never switch or explore.
        for p in &b.policies[1..] {
            assert_eq!((p.switches, p.explorations), (0, 0), "{}", p.policy);
        }
    }

    #[test]
    fn jobs_counts_merge_byte_identically() {
        let a = serde_json::to_string(&compute(1)).unwrap();
        let b = serde_json::to_string(&compute(4)).unwrap();
        assert_eq!(a, b, "--jobs must not change BENCH_tuner.json");
    }

    #[test]
    fn gate_flags_drift_and_accepts_self() {
        let b = bench();
        let dir = std::env::temp_dir().join("windex-tuner-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tuner.json");
        let text = serde_json::to_string_pretty(&b).unwrap();
        std::fs::write(&path, &text).unwrap();
        // Self-comparison passes.
        gate(&b, path.to_str().unwrap()).expect("self gate passes");
        // A perturbed discrete KPI fails.
        let mut drifted = b.clone();
        drifted.policies[0].switches += 1;
        std::fs::write(&path, serde_json::to_string_pretty(&drifted).unwrap()).unwrap();
        let err = gate(&b, path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("switches"), "{err}");
        // Missing file is a recording run, not a failure.
        let note = gate(&b, "/nonexistent/tuner.json").unwrap();
        assert!(note.contains("recording run"));
    }
}
