//! Ablations of the design choices DESIGN.md calls out.

use super::{make_r, make_s, run_point, run_point_with, v100};
use crate::config::ExpConfig;
use crate::output::{num, num6, Experiment};
use serde_json::json;
use windex_core::prelude::*;
use windex_index::BPlusTreeConfig;
use windex_workload::KeyDistribution;

/// §4.2 bit-range selection vs naive alternatives, at the fixed R size.
pub fn ablation_bits(cfg: &ExpConfig) -> Experiment {
    let spec = v100(cfg);
    let r = make_r(cfg, cfg.fixed_r_gib);
    let s = make_s(cfg, &r);
    let strategy = JoinStrategy::WindowedInlj {
        index: IndexKind::RadixSpline,
        window_tuples: cfg.window_tuples,
    };
    let auto = QueryExecutor::new().resolve_bits(&Gpu::new(spec.clone()), &r);
    let variants: Vec<(String, Option<PartitionBits>)> = vec![
        (
            format!("§4.2 rule (shift {}, {} bits)", auto.shift, auto.bits),
            None,
        ),
        (
            "paper fixed (shift 4, 11 bits)".into(),
            Some(PartitionBits { shift: 4, bits: 11 }),
        ),
        (
            "low bits (shift 0, 11 bits)".into(),
            Some(PartitionBits { shift: 0, bits: 11 }),
        ),
        (
            "too-high bits (shift 40, 11 bits)".into(),
            Some(PartitionBits {
                shift: 40,
                bits: 11,
            }),
        ),
    ];
    let rows = variants
        .into_iter()
        .map(|(name, bits)| {
            let mut ex = QueryExecutor::new();
            ex.partition_bits = bits;
            let rep = run_point_with(&spec, &r, &s, strategy, &ex);
            vec![
                json!(name),
                num(rep.queries_per_second()),
                num6(rep.translations_per_lookup()),
            ]
        })
        .collect();
    Experiment {
        id: "ablation-bits".into(),
        title: format!(
            "Partition bit-range selection (windowed RadixSpline, R = {:.0} GiB)",
            cfg.fixed_r_gib
        ),
        columns: vec!["bit range".into(), "Q/s".into(), "tx/lookup".into()],
        rows,
        notes: vec![
            "The §4.2 rule (root-split bit down to the page bit) should \
             dominate: bits above the domain are constant, bits inside one \
             page add no locality."
                .into(),
        ],
    }
}

/// Concurrent kernel execution (two streams) on vs off (§5.1).
pub fn ablation_overlap(cfg: &ExpConfig) -> Experiment {
    let spec = v100(cfg);
    let r = make_r(cfg, cfg.fixed_r_gib);
    let s = make_s(cfg, &r);
    let mut rows = Vec::new();
    for index in IndexKind::all() {
        let strategy = JoinStrategy::WindowedInlj {
            index,
            window_tuples: cfg.window_tuples,
        };
        let mut on = QueryExecutor::new();
        on.overlap = true;
        let mut off = QueryExecutor::new();
        off.overlap = false;
        let q_on = run_point_with(&spec, &r, &s, strategy, &on).queries_per_second();
        let q_off = run_point_with(&spec, &r, &s, strategy, &off).queries_per_second();
        rows.push(vec![
            json!(index.name()),
            num(q_on),
            num(q_off),
            num(q_on / q_off),
        ]);
    }
    Experiment {
        id: "ablation-overlap".into(),
        title: format!(
            "Concurrent kernel execution (windowed INLJ, R = {:.0} GiB)",
            cfg.fixed_r_gib
        ),
        columns: vec![
            "index".into(),
            "Q/s overlap".into(),
            "Q/s serial".into(),
            "speedup".into(),
        ],
        rows,
        notes: vec!["Transfer/compute overlap on two CUDA streams keeps the \
             interconnect busy while GPU-side kernels run (§5.1)."
            .into()],
    }
}

/// Huge-page size: 1 GiB vs 2 MiB pages (§3.2), windowed INLJ.
pub fn ablation_pages(cfg: &ExpConfig) -> Experiment {
    let r = make_r(cfg, cfg.fixed_r_gib);
    let s = make_s(cfg, &r);
    let mut rows = Vec::new();
    for (name, paper_page) in [("1 GiB pages", 1u64 << 30), ("2 MiB pages", 2 << 20)] {
        let spec = v100(cfg).with_paper_page_size(paper_page);
        let mut row = vec![json!(name), json!(spec.tlb_entries)];
        for index in [IndexKind::Harmonia, IndexKind::RadixSpline] {
            let windowed = run_point(
                &spec,
                &r,
                &s,
                JoinStrategy::WindowedInlj {
                    index,
                    window_tuples: cfg.window_tuples,
                },
            );
            row.push(num(windowed.queries_per_second()));
            row.push(num6(windowed.translations_per_lookup()));
        }
        rows.push(row);
    }
    Experiment {
        id: "ablation-pages".into(),
        title: format!(
            "Huge-page size (windowed INLJ, R = {:.0} GiB; 32 GiB TLB range held)",
            cfg.fixed_r_gib
        ),
        columns: vec![
            "pages".into(),
            "TLB entries".into(),
            "Q/s harmonia".into(),
            "tx/lookup harmonia".into(),
            "Q/s radix-spline".into(),
            "tx/lookup radix-spline".into(),
        ],
        rows,
        notes: vec![
            "§3.2 observes approximately equal performance for 1 GiB vs \
             2 MiB huge pages (1 GiB improved repetition accuracy). With \
             the TLB's covered range held constant, the partitioned window \
             keeps the hit rate high under either page size."
                .into(),
            "The unpartitioned INLJ is omitted at 2 MiB pages: at the \
             reproduction scale the lookup count is far below the page \
             count, so thrashing re-misses cannot manifest (EXPERIMENTS.md)."
                .into(),
        ],
    }
}

/// B+tree node size: height vs per-node cachelines (§3.1 discussion).
pub fn ablation_node_size(cfg: &ExpConfig) -> Experiment {
    let spec = v100(cfg);
    let r = make_r(cfg, cfg.fixed_r_gib);
    let s = make_s(cfg, &r);
    let strategy = JoinStrategy::WindowedInlj {
        index: IndexKind::BPlusTree,
        window_tuples: cfg.window_tuples,
    };
    let rows = [512usize, 1024, 4096, 16384]
        .into_iter()
        .map(|node_bytes| {
            let mut ex = QueryExecutor::new();
            ex.index_configs.btree = BPlusTreeConfig {
                node_bytes,
                ..Default::default()
            };
            let rep = run_point_with(&spec, &r, &s, strategy, &ex);
            vec![
                json!(format!("{} B", node_bytes)),
                num(rep.queries_per_second()),
                num((rep.counters.ic_bytes_random / rep.counters.lookups.max(1)) as f64),
            ]
        })
        .collect();
    Experiment {
        id: "ablation-node-size".into(),
        title: format!(
            "B+tree node size (windowed INLJ, R = {:.0} GiB)",
            cfg.fixed_r_gib
        ),
        columns: vec!["node size".into(), "Q/s".into(), "random B/lookup".into()],
        rows,
        notes: vec![
            "§3.1: small nodes deepen the tree (more levels), large nodes \
             span many cachelines searched randomly within the node."
                .into(),
        ],
    }
}

/// Partition fanout: maximum radix bits for the §4.2 rule.
pub fn ablation_fanout(cfg: &ExpConfig) -> Experiment {
    let spec = v100(cfg);
    let r = make_r(cfg, cfg.fixed_r_gib);
    let s = make_s(cfg, &r);
    let strategy = JoinStrategy::WindowedInlj {
        index: IndexKind::RadixSpline,
        window_tuples: cfg.window_tuples,
    };
    let domain = r.max_key().unwrap() - r.min_key().unwrap();
    let rows = [3u32, 5, 7, 9, 11, 13]
        .into_iter()
        .map(|max_bits| {
            let bits = PartitionBits::select(domain, r.len() as u64, &spec, max_bits);
            let mut ex = QueryExecutor::new();
            ex.partition_bits = Some(bits);
            let rep = run_point_with(&spec, &r, &s, strategy, &ex);
            vec![
                json!(format!("≤{} bits ({} parts)", max_bits, bits.partitions())),
                num(rep.queries_per_second()),
                num6(rep.translations_per_lookup()),
            ]
        })
        .collect();
    Experiment {
        id: "ablation-fanout".into(),
        title: format!(
            "Partition fanout (windowed RadixSpline, R = {:.0} GiB)",
            cfg.fixed_r_gib
        ),
        columns: vec!["fanout".into(), "Q/s".into(), "tx/lookup".into()],
        rows,
        notes: vec![
            "The paper uses 2048 partitions (§4.3.1); fewer partitions give \
             coarser key ranges and worse TLB locality."
                .into(),
        ],
    }
}

/// Key distribution: dense (0‥n) vs sparse-uniform keys. Learned indexes
/// depend on how well the key→position function interpolates; tree and
/// search structures do not.
pub fn ablation_keydist(cfg: &ExpConfig) -> Experiment {
    let spec = v100(cfg);
    let n = cfg.scale.sim_tuples_for_paper_gib(cfg.fixed_r_gib);
    let mut rows = Vec::new();
    for (name, dist) in [
        ("dense (0..n)", KeyDistribution::Dense),
        (
            "sparse uniform (avg gap 16)",
            KeyDistribution::SparseUniform,
        ),
    ] {
        let r = Relation::unique_sorted(n, dist, 42);
        let s = Relation::foreign_keys_uniform(&r, cfg.s_tuples, 7);
        let mut row = vec![serde_json::json!(name)];
        for index in [IndexKind::RadixSpline, IndexKind::Harmonia] {
            let rep = run_point(
                &spec,
                &r,
                &s,
                JoinStrategy::WindowedInlj {
                    index,
                    window_tuples: cfg.window_tuples,
                },
            );
            row.push(num(rep.queries_per_second()));
        }
        rows.push(row);
    }
    Experiment {
        id: "ablation-keydist".into(),
        title: format!(
            "Key distribution sensitivity (windowed INLJ, R = {:.0} GiB)",
            cfg.fixed_r_gib
        ),
        columns: vec![
            "key distribution".into(),
            "Q/s radix-spline".into(),
            "Q/s harmonia".into(),
        ],
        rows,
        notes: vec![
            "The RadixSpline interpolates dense keys exactly (observed error \
             0 → one-line bounded search) but pays a wider search window on \
             sparse keys; Harmonia is insensitive. This brackets the paper's \
             1.1-1.8x RadixSpline-over-Harmonia band (§6)."
                .into(),
        ],
    }
}

/// Cold vs warm memory system: the paper measures each query cold; warm
/// repetitions keep TLB entries and cached index levels.
pub fn ablation_warm(cfg: &ExpConfig) -> Experiment {
    let spec = v100(cfg);
    let mut rows = Vec::new();
    for gib in [8.0, cfg.fixed_r_gib] {
        let r = make_r(cfg, gib);
        let s = make_s(cfg, &r);
        let st = JoinStrategy::WindowedInlj {
            index: IndexKind::RadixSpline,
            window_tuples: cfg.window_tuples,
        };
        // A session keeps the staged buffers (and their addresses) alive,
        // so the warm rerun genuinely reuses TLB and cache state.
        let mut gpu = Gpu::new(spec.clone());
        let mut sess =
            QuerySession::new(&mut gpu, QueryExecutor::new(), r.clone(), s.clone()).unwrap();
        let cold = sess.run(&mut gpu, st).unwrap();
        sess.executor_mut().cold_start = false;
        let warm = sess.run(&mut gpu, st).unwrap();
        rows.push(vec![
            json!(format!("{gib:.0} GiB")),
            num(cold.queries_per_second()),
            num(warm.queries_per_second()),
            json!(cold.counters.tlb_misses),
            json!(warm.counters.tlb_misses),
        ]);
    }
    Experiment {
        id: "ablation-warm".into(),
        title: "Cold vs warm memory system (windowed RadixSpline)".into(),
        columns: vec![
            "R".into(),
            "Q/s cold".into(),
            "Q/s warm".into(),
            "TLB misses cold".into(),
            "TLB misses warm".into(),
        ],
        rows,
        notes: vec![
            "Warm repetitions skip the compulsory per-page TLB misses (the \
             count columns), but those are page-count events priced at \
             microseconds — so throughput is essentially unchanged. This is \
             the §3.2 repetition-accuracy point: with 1 GiB pages there are \
             so few pages that cold/warm variance disappears."
                .into(),
        ],
    }
}

/// Result materialization target: GPU memory (paper default) vs spilling
/// to CPU memory (§3.2 footnote: "Large results could be spilled").
pub fn ablation_spill(cfg: &ExpConfig) -> Experiment {
    let spec = v100(cfg);
    let r = make_r(cfg, cfg.fixed_r_gib);
    let s = make_s(cfg, &r);
    let st = JoinStrategy::WindowedInlj {
        index: IndexKind::RadixSpline,
        window_tuples: cfg.window_tuples,
    };
    let mut rows = Vec::new();
    for (name, loc) in [
        ("GPU memory", MemLocation::Gpu),
        ("CPU spill", MemLocation::Cpu),
    ] {
        let mut ex = QueryExecutor::new();
        ex.result_location = loc;
        let rep = run_point_with(&spec, &r, &s, st, &ex);
        rows.push(vec![
            json!(name),
            num(rep.queries_per_second()),
            num(rep.transfer_volume_paper_bytes as f64 / (1u64 << 30) as f64),
        ]);
    }
    Experiment {
        id: "ablation-spill".into(),
        title: format!(
            "Result materialization target (windowed RadixSpline, R = {:.0} GiB)",
            cfg.fixed_r_gib
        ),
        columns: vec![
            "target".into(),
            "Q/s".into(),
            "interconnect transfer (GiB)".into(),
        ],
        rows,
        notes: vec!["Spilling writes the (rid, position) pairs back across the \
             interconnect — 1 GiB for the 2^26-tuple result — a modest cost \
             that frees GPU memory for larger results (§3.2 footnote)."
            .into()],
    }
}

/// Harmonia sub-warp width (lanes cooperating per key).
pub fn ablation_subwarp(cfg: &ExpConfig) -> Experiment {
    let spec = v100(cfg);
    let r = make_r(cfg, cfg.fixed_r_gib);
    let s = make_s(cfg, &r);
    let rows = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|lanes| {
            let mut ex = QueryExecutor::new();
            ex.index_configs.harmonia = windex_index::HarmoniaConfig {
                keys_per_node: 32,
                lanes_per_key: lanes,
            };
            let rep = run_point_with(
                &spec,
                &r,
                &s,
                JoinStrategy::WindowedInlj {
                    index: IndexKind::Harmonia,
                    window_tuples: cfg.window_tuples,
                },
                &ex,
            );
            vec![
                json!(format!("{lanes} lanes/key")),
                num(rep.queries_per_second()),
                num(rep.counters.compute_ops as f64 / rep.counters.lookups.max(1) as f64),
            ]
        })
        .collect();
    Experiment {
        id: "ablation-subwarp".into(),
        title: format!(
            "Harmonia sub-warp width (windowed INLJ, R = {:.0} GiB)",
            cfg.fixed_r_gib
        ),
        columns: vec!["sub-warp".into(), "Q/s".into(), "warp ops/lookup".into()],
        rows,
        notes: vec![
            "In the out-of-core regime the traversal is memory-bound: the \
             sub-warp width moves compute-side cost only, so throughput is \
             largely insensitive — consistent with the paper treating the \
             width as an internal Harmonia detail rather than a knob."
                .into(),
        ],
    }
}

/// All ablations.
pub fn all(cfg: &ExpConfig) -> Vec<Experiment> {
    vec![
        ablation_bits(cfg),
        ablation_overlap(cfg),
        ablation_pages(cfg),
        ablation_node_size(cfg),
        ablation_fanout(cfg),
        ablation_keydist(cfg),
        ablation_warm(cfg),
        ablation_spill(cfg),
        ablation_subwarp(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        let mut cfg = ExpConfig::quick();
        cfg.s_tuples = 1 << 10;
        cfg.fixed_r_gib = 48.0;
        cfg
    }

    #[test]
    fn windowed_inlj_robust_to_page_size() {
        let exp = ablation_pages(&tiny());
        // RadixSpline Q/s for 1 GiB vs 2 MiB pages stay within a small band
        // (§3.2: "performance is approximately equal").
        let q_win_1g = exp.rows[0][4].as_f64().unwrap();
        let q_win_2m = exp.rows[1][4].as_f64().unwrap();
        let ratio = (q_win_1g / q_win_2m).max(q_win_2m / q_win_1g);
        assert!(ratio < 2.0, "windowed should be robust, ratio {ratio}");
        // Entry counts reflect the constant coverage.
        assert_eq!(exp.rows[0][1], 32);
        assert_eq!(exp.rows[1][1], 16384);
    }

    #[test]
    fn bit_rule_beats_too_high_bits() {
        let exp = ablation_bits(&tiny());
        let auto = exp.rows[0][1].as_f64().unwrap();
        let too_high = exp.rows[3][1].as_f64().unwrap();
        assert!(auto >= too_high, "auto {auto} vs too-high {too_high}");
    }
}
