//! The `cluster` target: multi-GPU scaling, interconnect pricing, and
//! device-loss recovery KPIs, with a CI tolerance gate.
//!
//! The serving experiments measure one GPU; this target measures the
//! scale-out layer. A fixed saturating trace replays against sharded
//! clusters of 1→8 simulated GPUs under two priced fabrics —
//! [`InterconnectSpec::nvlink4_peer`] and
//! [`InterconnectSpec::pcie4_host_staged`] — reporting aggregate Q/s,
//! speedup over the single-GPU row, cross-shard request fractions, and
//! peer-link bytes. Two recovery rows then lose a specific GPU mid-trace
//! (via [`ChaosScenario::cluster_schedules`]): sharded placement must
//! re-shard the lost partitions onto a survivor and replicated placement
//! must fail over, both with availability 1.0 and finite MTTR.
//!
//! Everything is a pure function of the fixed seeds: sweep points are
//! independent simulations merged in fixed order, so the report and
//! `BENCH_cluster.json` are byte-identical across runs and for any
//! `--jobs` count.
//!
//! When a committed `BENCH_cluster.json` exists (override the path with
//! `WINDEX_CLUSTER`), the fresh KPIs are gated against it: discrete
//! outcomes (completed, shed, cross-shard counts and bytes, failovers,
//! re-shards, alive GPUs, availability) must match exactly; continuous
//! ones (Q/s, keys/s, speedup, MTTR, makespan) get a 2% relative band for
//! benign cost-model churn. A missing committed file is a warning — the
//! recording run.

use crate::config::ExpConfig;
use crate::output::{num, num6, Experiment};
use serde::Serialize;
use serde_json::{json, Value};
use windex_serve::prelude::*;
use windex_sim::ChaosScenario;

/// Format-version marker for `BENCH_cluster.json`.
pub(crate) const SCHEMA_VERSION: u32 = 1;

/// GPU counts swept by the scaling matrix.
const GPU_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Links swept by the scaling matrix, in fixed order.
const LINKS: [LinkKind; 2] = [LinkKind::Nvlink4Peer, LinkKind::Pcie4HostStaged];

/// Requests in the saturating scaling trace. At 50 000 req/s offered the
/// trace spans ~10 ms; a single V100 cannot drain it at that rate, so the
/// aggregate Q/s of larger clusters measures real scale-out.
const SCALE_REQUESTS: usize = 512;

/// Offered load of the scaling trace, requests per virtual second.
const SCALE_LOAD_RPS: f64 = 50_000.0;

/// Requests in the recovery trace. At 8 000 req/s it spans ~64 ms of
/// virtual time, comfortably covering the DeviceLoss window [20 ms, 35 ms).
const RECOVERY_REQUESTS: usize = 512;

/// Offered load of the recovery trace.
const RECOVERY_LOAD_RPS: f64 = 8_000.0;

/// Seed of each cluster chaos schedule family.
const CHAOS_SEED: u64 = 40;

/// The GPU lost mid-trace in the recovery rows.
const LOST_GPU: usize = 1;

/// GPUs in the recovery clusters.
const RECOVERY_GPUS: usize = 4;

/// Relative tolerance for continuous KPIs against the committed file.
const REL_TOL: f64 = 0.02;

/// Where the committed reference lives unless `WINDEX_CLUSTER` overrides.
const DEFAULT_CLUSTER_PATH: &str = "BENCH_cluster.json";

/// A priced inter-GPU fabric in the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkKind {
    Nvlink4Peer,
    Pcie4HostStaged,
}

impl LinkKind {
    fn spec(self) -> InterconnectSpec {
        match self {
            LinkKind::Nvlink4Peer => InterconnectSpec::nvlink4_peer(),
            LinkKind::Pcie4HostStaged => InterconnectSpec::pcie4_host_staged(),
        }
    }

    fn name(self) -> &'static str {
        match self {
            LinkKind::Nvlink4Peer => "nvlink4_peer",
            LinkKind::Pcie4HostStaged => "pcie4_host_staged",
        }
    }
}

/// One scaling-sweep point: a sharded cluster under a priced link.
#[derive(Debug, Clone, Serialize)]
struct ScalePoint {
    gpus: usize,
    link: &'static str,
    completed: usize,
    shed: usize,
    /// Aggregate completed requests per virtual second.
    completed_rps: f64,
    /// Aggregate probed keys per virtual second.
    keys_per_second: f64,
    /// `completed_rps / the same link's 1-GPU completed_rps`.
    speedup_vs_1gpu: f64,
    /// Fraction of routed requests that fanned out across ≥ 2 shards.
    cross_shard_fraction: f64,
    /// Peer-link bytes moved (fan-out keys plus merged matches).
    cross_shard_bytes: u64,
    virtual_makespan_s: f64,
}

/// One recovery point: a targeted mid-trace device loss.
#[derive(Debug, Clone, Serialize)]
struct RecoveryPoint {
    placement: &'static str,
    link: &'static str,
    lost_gpu: usize,
    alive_gpus: usize,
    availability: f64,
    completed: usize,
    shed: usize,
    failovers: usize,
    reshards: usize,
    /// Summed virtual MTTR across recovery events, seconds.
    mttr_total_s: f64,
}

/// The `BENCH_cluster.json` payload.
#[derive(Debug, Clone, Serialize)]
struct ClusterBench {
    schema: u32,
    chaos_seed: u64,
    scale_requests: usize,
    recovery_requests: usize,
    scaling: Vec<ScalePoint>,
    recovery: Vec<RecoveryPoint>,
}

/// Round to 6 decimals: canonical on-disk float form, keeps the gate from
/// chasing last-bit jitter from benign refactors.
fn r6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

/// The served relation: 1 paper-GiB of dense sorted keys at paper scale
/// (fixed, like the chaos target, so the JSON is mode-independent).
fn cluster_relation() -> Relation {
    Relation::unique_sorted(
        Scale::PAPER.sim_tuples_for_paper_gib(1.0),
        KeyDistribution::Dense,
        42,
    )
}

fn trace(r: &Relation, requests: usize, load_rps: f64, seed: u64) -> Vec<TimedRequest> {
    // Wide requests (up to 512 keys) so cross-shard fan-out and result
    // merges move enough bytes for the link pricing to register.
    generate_trace(
        &TraceConfig {
            seed,
            tenants: 4,
            requests,
            min_keys: 32,
            max_keys: 512,
            offered_load_rps: load_rps,
            deadline_s: None,
        },
        r,
    )
}

/// Run one scaling point: sharded placement, calm devices.
fn run_scale_point(r: &Relation, tr: &[TimedRequest], gpus: usize, link: LinkKind) -> ScalePoint {
    let cfg = ClusterConfig {
        serve: ServeConfig::default(),
        cluster: ClusterSpec::sharded(gpus, GpuSpec::v100_nvlink2(Scale::PAPER), link.spec()),
    };
    let mut cluster = ClusterServer::new(cfg, r.clone()).expect("cluster must construct");
    let rep = cluster
        .run(tr)
        .expect("scaling trace must complete without a server-level error")
        .report;
    ScalePoint {
        gpus,
        link: link.name(),
        completed: rep.completed,
        shed: rep.shed,
        completed_rps: r6(rep.completed_rps),
        keys_per_second: r6(rep.keys_per_second),
        speedup_vs_1gpu: 0.0, // filled once the link's 1-GPU row is known
        cross_shard_fraction: r6(rep.cross_shard_fraction),
        cross_shard_bytes: rep.cross_shard_bytes,
        virtual_makespan_s: r6(rep.virtual_makespan_s),
    }
}

/// Run one recovery point: lose [`LOST_GPU`] mid-trace, report how the
/// placement's rung of the degradation ladder absorbed it. The link matters
/// here more than anywhere: a sharded recovery re-materializes the lost
/// slice over the fabric, so its MTTR is bandwidth-bound.
fn run_recovery_point(
    r: &Relation,
    tr: &[TimedRequest],
    sharded: bool,
    link: LinkKind,
) -> RecoveryPoint {
    let gpu = GpuSpec::v100_nvlink2(Scale::PAPER);
    let cluster_spec = if sharded {
        ClusterSpec::sharded(RECOVERY_GPUS, gpu, link.spec())
    } else {
        ClusterSpec::replicated(RECOVERY_GPUS, gpu, link.spec())
    };
    let mut cluster = ClusterServer::new(
        ClusterConfig {
            serve: ServeConfig::default(),
            cluster: cluster_spec,
        },
        r.clone(),
    )
    .expect("recovery cluster must construct");
    cluster
        .set_chaos_schedules(ChaosScenario::DeviceLoss.cluster_schedules(
            CHAOS_SEED,
            RECOVERY_GPUS,
            LOST_GPU,
        ))
        .expect("cluster chaos schedules are valid");
    let rep = cluster
        .run(tr)
        .expect("recovery trace must complete without a server-level error")
        .report;
    RecoveryPoint {
        placement: if sharded { "sharded" } else { "replicated" },
        link: link.name(),
        lost_gpu: LOST_GPU,
        alive_gpus: rep.alive_gpus,
        availability: r6(rep.slo.availability),
        completed: rep.completed,
        shed: rep.shed,
        failovers: rep.failovers,
        reshards: rep.reshards,
        mttr_total_s: r6(rep.mttr_total_s),
    }
}

/// One unit of sweep work (scaling points first, then recovery points).
enum TaskResult {
    Scale(ScalePoint),
    Recovery(RecoveryPoint),
}

/// Compute all points with `jobs` workers, merged in fixed sweep order
/// (links × GPU counts, then sharded/replicated recovery). Workers only
/// decide *when* a point runs, never *what* it computes, so any job count
/// merges identically.
fn compute(jobs: usize) -> ClusterBench {
    let r = cluster_relation();
    let scale_trace = trace(&r, SCALE_REQUESTS, SCALE_LOAD_RPS, 37);
    let recovery_trace = trace(&r, RECOVERY_REQUESTS, RECOVERY_LOAD_RPS, 23);
    let scale_axes: Vec<(LinkKind, usize)> = LINKS
        .iter()
        .flat_map(|&l| GPU_SWEEP.iter().map(move |&g| (l, g)))
        .collect();
    // Recovery axes: placement × link, sharded first.
    let recovery_axes: Vec<(bool, LinkKind)> = [true, false]
        .iter()
        .flat_map(|&s| LINKS.iter().map(move |&l| (s, l)))
        .collect();
    let total = scale_axes.len() + recovery_axes.len();
    let run_task = |i: usize| -> TaskResult {
        if i < scale_axes.len() {
            let (link, gpus) = scale_axes[i];
            TaskResult::Scale(run_scale_point(&r, &scale_trace, gpus, link))
        } else {
            let (sharded, link) = recovery_axes[i - scale_axes.len()];
            TaskResult::Recovery(run_recovery_point(&r, &recovery_trace, sharded, link))
        }
    };
    let slots: Vec<Option<TaskResult>> = if jobs <= 1 {
        (0..total).map(|i| Some(run_task(i))).collect()
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<TaskResult>> = (0..total).map(|_| None).collect();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= total {
                                break;
                            }
                            mine.push((i, run_task(i)));
                        }
                        mine
                    })
                })
                .collect();
            for w in workers {
                for (i, p) in w.join().expect("cluster worker panicked") {
                    slots[i] = Some(p);
                }
            }
        });
        slots
    };
    let mut scaling = Vec::new();
    let mut recovery = Vec::new();
    for slot in slots {
        match slot.expect("sweep point ran") {
            TaskResult::Scale(p) => scaling.push(p),
            TaskResult::Recovery(p) => recovery.push(p),
        }
    }
    // Anchor each link's speedup column on its own 1-GPU row.
    for link in LINKS {
        let base = scaling
            .iter()
            .find(|p| p.link == link.name() && p.gpus == 1)
            .map(|p| p.completed_rps)
            .expect("1-GPU row present for every link");
        for p in scaling.iter_mut().filter(|p| p.link == link.name()) {
            p.speedup_vs_1gpu = if base > 0.0 {
                r6(p.completed_rps / base)
            } else {
                0.0
            };
        }
    }
    ClusterBench {
        schema: SCHEMA_VERSION,
        chaos_seed: CHAOS_SEED,
        scale_requests: SCALE_REQUESTS,
        recovery_requests: RECOVERY_REQUESTS,
        scaling,
        recovery,
    }
}

/// Invariants that hold regardless of any committed reference: Q/s must
/// scale monotonically 1→8 GPUs, the peer fabric must measurably beat the
/// host-staged one once requests fan out, and both recovery rows must
/// absorb the loss with availability 1.0.
fn check_invariants(bench: &ClusterBench) -> Result<(), String> {
    for link in LINKS {
        let rps: Vec<f64> = bench
            .scaling
            .iter()
            .filter(|p| p.link == link.name())
            .map(|p| p.completed_rps)
            .collect();
        if rps.len() != GPU_SWEEP.len() {
            return Err(format!(
                "link '{}' has {} scaling points, expected {}",
                link.name(),
                rps.len(),
                GPU_SWEEP.len()
            ));
        }
        for w in rps.windows(2) {
            if w[1] < w[0] {
                return Err(format!(
                    "aggregate Q/s must increase monotonically 1→8 GPUs on '{}': {rps:?}",
                    link.name()
                ));
            }
        }
        if rps[GPU_SWEEP.len() - 1] <= rps[0] * 1.5 {
            return Err(format!(
                "8 GPUs must clearly out-serve 1 on '{}': {rps:?}",
                link.name()
            ));
        }
    }
    // The interconnect gap: at the widest fan-out the NVLink-peer fabric
    // must beat the host-staged bounce.
    let rps_at = |link: LinkKind, gpus: usize| {
        bench
            .scaling
            .iter()
            .find(|p| p.link == link.name() && p.gpus == gpus)
            .map(|p| p.completed_rps)
            .unwrap_or(0.0)
    };
    let nv8 = rps_at(LinkKind::Nvlink4Peer, 8);
    let pcie8 = rps_at(LinkKind::Pcie4HostStaged, 8);
    if nv8 <= pcie8 {
        return Err(format!(
            "NVLink peer must out-serve the host-staged link at 8 GPUs: \
             nvlink {nv8} Q/s vs host-staged {pcie8} Q/s"
        ));
    }
    // The fabric gap is starkest in recovery: re-sharding re-materializes
    // the lost slice over the link, so host-staged MTTR must be clearly
    // worse than NVLink peer for the same placement.
    for placement in ["sharded", "replicated"] {
        let mttr_at = |link: LinkKind| {
            bench
                .recovery
                .iter()
                .find(|p| p.placement == placement && p.link == link.name())
                .map(|p| p.mttr_total_s)
                .unwrap_or(0.0)
        };
        let nv = mttr_at(LinkKind::Nvlink4Peer);
        let staged = mttr_at(LinkKind::Pcie4HostStaged);
        if staged <= nv {
            return Err(format!(
                "{placement} recovery over the host-staged link must pay a higher MTTR \
                 than over NVLink peer: staged {staged}s vs nvlink {nv}s"
            ));
        }
    }
    for p in &bench.recovery {
        if p.availability != 1.0 || p.shed != 0 {
            return Err(format!(
                "{} recovery must answer every request: availability {} with {} shed",
                p.placement, p.availability, p.shed
            ));
        }
        if !p.mttr_total_s.is_finite() || p.mttr_total_s <= 0.0 {
            return Err(format!(
                "{} recovery must record a finite positive MTTR: {p:?}",
                p.placement
            ));
        }
        if p.alive_gpus != RECOVERY_GPUS - 1 {
            return Err(format!(
                "{} recovery must lose exactly one GPU: {} alive of {}",
                p.placement, p.alive_gpus, RECOVERY_GPUS
            ));
        }
        match p.placement {
            "sharded" if p.reshards < 1 || p.failovers != 0 => {
                return Err(format!(
                    "sharded recovery must re-shard (got {} re-shards, {} failovers)",
                    p.reshards, p.failovers
                ));
            }
            "replicated" if p.failovers < 1 || p.reshards != 0 => {
                return Err(format!(
                    "replicated recovery must fail over (got {} failovers, {} re-shards)",
                    p.failovers, p.reshards
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

fn field<'v>(entry: &'v Value, key: &str) -> Result<&'v Value, String> {
    entry
        .get(key)
        .ok_or_else(|| format!("cluster entry missing field '{key}'"))
}

fn f64_field(entry: &Value, key: &str) -> Result<f64, String> {
    field(entry, key)?
        .as_f64()
        .ok_or_else(|| format!("cluster field '{key}' is not a number"))
}

fn u64_field(entry: &Value, key: &str) -> Result<u64, String> {
    field(entry, key)?
        .as_u64()
        .ok_or_else(|| format!("cluster field '{key}' is not an unsigned integer"))
}

/// Whether `fresh` is within `tol` of `committed`, relatively.
fn rel_close(fresh: f64, committed: f64, tol: f64) -> bool {
    if committed == 0.0 {
        fresh == 0.0
    } else {
        ((fresh - committed) / committed).abs() <= tol
    }
}

/// Diff one fresh scaling point against its committed counterpart.
fn diff_scale(fresh: &ScalePoint, committed: &Value) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for (key, have) in [
        ("gpus", fresh.gpus as u64),
        ("completed", fresh.completed as u64),
        ("shed", fresh.shed as u64),
        ("cross_shard_bytes", fresh.cross_shard_bytes),
    ] {
        let want = u64_field(committed, key)?;
        if have != want {
            out.push(format!("{key}: committed {want}, fresh {have}"));
        }
    }
    let frac = f64_field(committed, "cross_shard_fraction")?;
    if fresh.cross_shard_fraction != frac {
        out.push(format!(
            "cross_shard_fraction: committed {frac}, fresh {}",
            fresh.cross_shard_fraction
        ));
    }
    for (key, have) in [
        ("completed_rps", fresh.completed_rps),
        ("keys_per_second", fresh.keys_per_second),
        ("speedup_vs_1gpu", fresh.speedup_vs_1gpu),
        ("virtual_makespan_s", fresh.virtual_makespan_s),
    ] {
        let want = f64_field(committed, key)?;
        if !rel_close(have, want, REL_TOL) {
            out.push(format!(
                "{key}: committed {want}, fresh {have} (>{:.0}% off)",
                REL_TOL * 100.0
            ));
        }
    }
    Ok(out)
}

/// Diff one fresh recovery point against its committed counterpart.
fn diff_recovery(fresh: &RecoveryPoint, committed: &Value) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for (key, have) in [
        ("alive_gpus", fresh.alive_gpus as u64),
        ("completed", fresh.completed as u64),
        ("shed", fresh.shed as u64),
        ("failovers", fresh.failovers as u64),
        ("reshards", fresh.reshards as u64),
    ] {
        let want = u64_field(committed, key)?;
        if have != want {
            out.push(format!("{key}: committed {want}, fresh {have}"));
        }
    }
    let availability = f64_field(committed, "availability")?;
    if fresh.availability != availability {
        out.push(format!(
            "availability: committed {availability}, fresh {}",
            fresh.availability
        ));
    }
    let mttr = f64_field(committed, "mttr_total_s")?;
    if !rel_close(fresh.mttr_total_s, mttr, REL_TOL) {
        out.push(format!(
            "mttr_total_s: committed {mttr}, fresh {} (>{:.0}% off)",
            fresh.mttr_total_s,
            REL_TOL * 100.0
        ));
    }
    Ok(out)
}

/// Gate the fresh bench against a committed file, if one exists.
fn gate(fresh: &ClusterBench, path: &str) -> Result<String, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            return Ok(format!(
                "no committed reference at '{path}'; gate skipped (recording run)"
            ))
        }
    };
    let root: Value =
        serde_json::from_str(&text).map_err(|e| format!("'{path}' is not JSON: {e}"))?;
    let schema = u64_field(&root, "schema")?;
    if schema != u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "cluster schema v{schema} != expected v{SCHEMA_VERSION}; \
             regenerate with `experiments cluster`"
        ));
    }
    let scaling = field(&root, "scaling")?
        .as_array()
        .ok_or("cluster 'scaling' is not an array")?;
    let recovery = field(&root, "recovery")?
        .as_array()
        .ok_or("cluster 'recovery' is not an array")?;
    if scaling.len() != fresh.scaling.len() || recovery.len() != fresh.recovery.len() {
        return Err(format!(
            "committed file has {}+{} points, fresh run has {}+{}",
            scaling.len(),
            recovery.len(),
            fresh.scaling.len(),
            fresh.recovery.len()
        ));
    }
    let mut violations = Vec::new();
    for (f, c) in fresh.scaling.iter().zip(scaling) {
        let link = field(c, "link")?
            .as_str()
            .ok_or("cluster field 'link' is not a string")?;
        if link != f.link {
            return Err(format!(
                "scaling order mismatch: committed '{link}', fresh '{}'",
                f.link
            ));
        }
        for v in diff_scale(f, c)? {
            violations.push(format!("[{} x{}] {v}", f.link, f.gpus));
        }
    }
    for (f, c) in fresh.recovery.iter().zip(recovery) {
        let placement = field(c, "placement")?
            .as_str()
            .ok_or("cluster field 'placement' is not a string")?;
        let link = field(c, "link")?
            .as_str()
            .ok_or("cluster field 'link' is not a string")?;
        if placement != f.placement || link != f.link {
            return Err(format!(
                "recovery order mismatch: committed '{placement}'/'{link}', \
                 fresh '{}'/'{}'",
                f.placement, f.link
            ));
        }
        for v in diff_recovery(f, c)? {
            violations.push(format!("[recovery {} {}] {v}", f.placement, f.link));
        }
    }
    if violations.is_empty() {
        Ok(format!(
            "gate: {} scaling + {} recovery points within tolerance of '{path}' — ok",
            fresh.scaling.len(),
            fresh.recovery.len()
        ))
    } else {
        Err(format!(
            "cluster KPI drift vs '{path}':\n  {}",
            violations.join("\n  ")
        ))
    }
}

/// The `cluster` target. `Err` (→ nonzero exit) on invariant or gate
/// violations.
pub fn cluster(cfg: &ExpConfig) -> Result<Experiment, String> {
    let bench = compute(cfg.jobs);
    check_invariants(&bench)?;

    let path = std::env::var("WINDEX_CLUSTER").unwrap_or_else(|_| DEFAULT_CLUSTER_PATH.to_string());
    let gate_note = gate(&bench, &path)?;

    let out_path = cfg.out_dir.join("BENCH_cluster.json");
    let mut text = serde_json::to_string_pretty(&bench).expect("cluster bench serializes");
    text.push('\n');
    let write =
        std::fs::create_dir_all(&cfg.out_dir).and_then(|()| std::fs::write(&out_path, text));
    if let Err(e) = write {
        eprintln!("warning: could not write {}: {e}", out_path.display());
    }

    let mut rows: Vec<Vec<Value>> = bench
        .scaling
        .iter()
        .map(|p| {
            vec![
                json!(format!("sharded x{}", p.gpus)),
                json!(p.link),
                num(p.completed_rps),
                num6(p.speedup_vs_1gpu),
                num6(p.cross_shard_fraction),
                json!(p.cross_shard_bytes),
                json!(p.completed),
                json!(p.shed),
                json!("-"),
                json!("-"),
            ]
        })
        .collect();
    for p in &bench.recovery {
        rows.push(vec![
            json!(format!(
                "{} x{} -gpu{}",
                p.placement, RECOVERY_GPUS, p.lost_gpu
            )),
            json!(p.link),
            json!("-"),
            json!("-"),
            json!("-"),
            json!("-"),
            json!(p.completed),
            json!(p.shed),
            num6(p.availability),
            num6(p.mttr_total_s * 1e3),
        ]);
    }
    Ok(Experiment {
        id: "cluster".into(),
        title: "Cluster: multi-GPU sharded serving, interconnects, and recovery".into(),
        columns: vec![
            "cluster".into(),
            "link".into(),
            "agg_qps".into(),
            "speedup".into(),
            "cross_frac".into(),
            "cross_bytes".into(),
            "completed".into(),
            "shed".into(),
            "availability".into(),
            "mttr_ms".into(),
        ],
        rows,
        notes: vec![
            format!(
                "{SCALE_REQUESTS}-request saturating trace ({SCALE_LOAD_RPS:.0} req/s offered) \
                 against sharded clusters of 1→8 V100s; cross-shard fan-out and merges priced \
                 over each named link; byte-identical across runs and --jobs counts"
            ),
            format!(
                "recovery rows lose GPU {LOST_GPU} of {RECOVERY_GPUS} mid-trace \
                 (chaos seed {CHAOS_SEED}): sharded re-shards onto an adjacent survivor, \
                 replicated fails over — both at availability 1.0 with finite MTTR"
            ),
            gate_note,
            "also written as BENCH_cluster.json (gated against the committed copy)".into(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> ClusterBench {
        compute(1)
    }

    #[test]
    fn sweep_holds_scaling_and_recovery_invariants() {
        let b = bench();
        assert_eq!(b.scaling.len(), GPU_SWEEP.len() * LINKS.len());
        assert_eq!(b.recovery.len(), 2 * LINKS.len());
        check_invariants(&b).expect("invariants hold");
        // Speedup anchors at 1.0 on each link's single-GPU row.
        for link in LINKS {
            let base = b
                .scaling
                .iter()
                .find(|p| p.link == link.name() && p.gpus == 1)
                .unwrap();
            assert_eq!(base.speedup_vs_1gpu, 1.0);
            // A single GPU never fans out.
            assert_eq!(base.cross_shard_fraction, 0.0);
            assert_eq!(base.cross_shard_bytes, 0);
        }
        // Multi-GPU sharding produces measurable cross-shard traffic.
        let wide = b
            .scaling
            .iter()
            .find(|p| p.link == "nvlink4_peer" && p.gpus == 8)
            .unwrap();
        assert!(wide.cross_shard_fraction > 0.0);
        assert!(wide.cross_shard_bytes > 0);
    }

    #[test]
    fn jobs_counts_merge_byte_identically() {
        let a = serde_json::to_string(&compute(1)).unwrap();
        let b = serde_json::to_string(&compute(4)).unwrap();
        assert_eq!(a, b, "--jobs must not change BENCH_cluster.json");
    }

    #[test]
    fn gate_flags_drift_and_accepts_self() {
        let b = bench();
        let dir = std::env::temp_dir().join("windex-cluster-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cluster.json");
        std::fs::write(&path, serde_json::to_string_pretty(&b).unwrap()).unwrap();
        gate(&b, path.to_str().unwrap()).expect("self gate passes");
        let mut drifted = b.clone();
        drifted.scaling[0].completed += 1;
        std::fs::write(&path, serde_json::to_string_pretty(&drifted).unwrap()).unwrap();
        let err = gate(&b, path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("completed"), "{err}");
        let note = gate(&b, "/nonexistent/cluster.json").unwrap();
        assert!(note.contains("recording run"));
    }
}
