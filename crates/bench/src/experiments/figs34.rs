//! Figs. 3 and 4: the unpartitioned INLJ sweep.
//!
//! Fig. 3 plots query throughput of the four INLJs and the hash join while
//! the indexed relation scales from 0.5 to 120 GiB. Fig. 4 plots the GPU's
//! address-translation requests per lookup over the same sweep — the
//! evidence that TLB misses cause the throughput drop past the 32 GiB TLB
//! range.

use super::{inlj_strategies, make_r, make_s, run_point, v100};
use crate::config::ExpConfig;
use crate::output::{num, num6, Experiment};
use serde_json::{json, Value};
use windex_core::prelude::*;

/// One full unpartitioned sweep: per R size, the hash join plus the four
/// INLJs, reported as (gib, reports).
pub fn unpartitioned_sweep(cfg: &ExpConfig) -> Vec<(f64, Vec<QueryReport>)> {
    let spec = v100(cfg);
    let mut strategies = vec![JoinStrategy::HashJoin];
    strategies.extend(inlj_strategies(|index| JoinStrategy::Inlj { index }));
    cfg.sweep_gib
        .iter()
        .map(|&gib| {
            let r = make_r(cfg, gib);
            let s = make_s(cfg, &r);
            let reports = strategies
                .iter()
                .map(|&st| run_point(&spec, &r, &s, st))
                .collect();
            (gib, reports)
        })
        .collect()
}

/// Column headers shared by the unpartitioned figures: x, hash, 4 indexes.
fn columns(prefix: &str) -> Vec<String> {
    let mut cols = vec!["R (GiB)".to_string(), format!("{prefix} hash-join")];
    for k in IndexKind::all() {
        cols.push(format!("{prefix} inlj({k})"));
    }
    cols
}

/// Build Fig. 3 from a sweep.
pub fn fig3_from(sweep: &[(f64, Vec<QueryReport>)]) -> Experiment {
    let rows = sweep
        .iter()
        .map(|(gib, reports)| {
            let mut row = vec![json!(gib)];
            row.extend(reports.iter().map(|r| num(r.queries_per_second())));
            row
        })
        .collect();
    Experiment {
        id: "fig3".into(),
        title: "Query throughput (Q/s), unpartitioned INLJ vs hash join".into(),
        columns: columns("Q/s"),
        rows,
        notes: vec![
            "Expected shape: hash join decays smoothly with the scan volume; \
             every INLJ drops suddenly once R exceeds the 32 GiB TLB range; \
             in the paper's \"most interesting case — a highly selective \
             query on large data (over 100 GiB)\" — no unpartitioned INLJ \
             meaningfully outperforms the hash join (abstract, §3.3.1)."
                .into(),
        ],
    }
}

/// Build Fig. 4 from the same sweep.
pub fn fig4_from(sweep: &[(f64, Vec<QueryReport>)]) -> Experiment {
    let rows = sweep
        .iter()
        .map(|(gib, reports)| {
            let mut row = vec![json!(gib)];
            row.extend(reports.iter().map(|r| {
                if r.counters.lookups == 0 {
                    Value::Null // the hash join performs no index lookups
                } else {
                    num6(r.translations_per_lookup())
                }
            }));
            row
        })
        .collect();
    Experiment {
        id: "fig4".into(),
        title: "Address-translation requests per index lookup".into(),
        columns: columns("tx/lookup"),
        rows,
        notes: vec![
            "Expected shape: near zero below the 32 GiB TLB range, spiking \
             upward past it; binary search worst, Harmonia least (§3.3.2)."
                .into(),
        ],
    }
}

/// Run the sweep and emit both figures.
pub fn figs34(cfg: &ExpConfig) -> Vec<Experiment> {
    let sweep = unpartitioned_sweep(cfg);
    vec![fig3_from(&sweep), fig4_from(&sweep)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        let mut cfg = ExpConfig::quick();
        cfg.s_tuples = 1 << 10;
        cfg.sweep_gib = vec![1.0, 64.0];
        cfg
    }

    #[test]
    fn tlb_cliff_emerges_past_the_range() {
        let cfg = tiny_cfg();
        let figs = figs34(&cfg);
        let fig4 = &figs[1];
        // Column 2 is binary search (after x and hash join).
        let bs_small = fig4.rows[0][3].as_f64().unwrap();
        let bs_large = fig4.rows[1][3].as_f64().unwrap();
        assert!(
            bs_large > 10.0 * bs_small.max(1e-6),
            "no cliff: {bs_small} -> {bs_large}"
        );
        // Harmonia (column 4) thrashes less than binary search.
        let h_large = fig4.rows[1][4].as_f64().unwrap();
        assert!(
            h_large < bs_large,
            "harmonia {h_large} vs binsearch {bs_large}"
        );
    }

    #[test]
    fn hash_join_has_no_lookups() {
        let cfg = tiny_cfg();
        let figs = figs34(&cfg);
        assert_eq!(figs[1].rows[0][1], Value::Null);
    }
}
