//! Serving experiment (beyond the paper): the latency–throughput curve of
//! cross-query window batching.
//!
//! The paper's windowed operator (§5) introduces fixed per-window costs
//! (partition pass, probe kernel, launches). A serving workload of small
//! multi-tenant lookups pays those costs *per request* when each request
//! runs alone — the windows stay nearly empty. This experiment sweeps
//! offered load × dispatch policy over the same seeded trace and reports
//! virtual-time tail latency and key throughput, showing where shared
//! windows (micro-batching with a max-delay bound) overtake per-request
//! execution.

use crate::config::ExpConfig;
use crate::experiments::v100;
use crate::output::{num, num6, Experiment};
use serde_json::json;
use windex_serve::prelude::*;

/// Offered loads swept, in requests per virtual second.
fn offered_loads(cfg: &ExpConfig) -> Vec<f64> {
    if cfg.quick {
        vec![1_000.0, 10_000.0, 50_000.0]
    } else {
        vec![
            500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0,
        ]
    }
}

/// Dispatch policies compared: per-request execution plus shared windows at
/// several max-delay bounds.
fn policies(cfg: &ExpConfig) -> Vec<BatchPolicy> {
    let mut out = vec![BatchPolicy::PerRequest];
    let delays_us: &[f64] = if cfg.quick {
        &[200.0]
    } else {
        &[50.0, 200.0, 1000.0]
    };
    out.extend(delays_us.iter().map(|d| BatchPolicy::Shared {
        max_delay_s: d * 1e-6,
    }));
    out
}

/// Requests per trace point.
fn trace_requests(cfg: &ExpConfig) -> usize {
    if cfg.quick {
        128
    } else {
        512
    }
}

/// Run one (policy, offered load) point on a fresh device.
fn serve_point(cfg: &ExpConfig, r: &Relation, policy: BatchPolicy, load: f64) -> ServerReport {
    let trace = generate_trace(
        &TraceConfig {
            seed: 7,
            tenants: 4,
            requests: trace_requests(cfg),
            min_keys: 4,
            max_keys: 64,
            offered_load_rps: load,
            deadline_s: None,
        },
        r,
    );
    let mut gpu = Gpu::new(v100(cfg));
    let mut server = Server::new(
        &mut gpu,
        ServeConfig {
            policy,
            window_tuples: 1024,
            ..ServeConfig::default()
        },
        r.clone(),
    )
    .expect("serve experiment server must construct");
    server
        .run(&mut gpu, &trace)
        .expect("serve experiment trace must complete")
        .report
}

/// The serving relation: 1 paper-GiB of unique sorted keys (index lookups,
/// not scans, dominate serving; the R-size sensitivity is Figs. 3–5's
/// story, not this one).
fn serve_relation(cfg: &ExpConfig) -> Relation {
    Relation::unique_sorted(
        cfg.scale.sim_tuples_for_paper_gib(1.0),
        KeyDistribution::Dense,
        42,
    )
}

/// The `serve` target: latency–throughput sweep, batched vs per-request.
pub fn serve(cfg: &ExpConfig) -> Experiment {
    let r = serve_relation(cfg);
    let mut rows = Vec::new();
    let mut best_speedup: f64 = 0.0;
    for load in offered_loads(cfg) {
        let mut per_request_p95 = None;
        for policy in policies(cfg) {
            let rep = serve_point(cfg, &r, policy, load);
            if policy == BatchPolicy::PerRequest {
                per_request_p95 = Some(rep.latency.p95_s);
            } else if let Some(base) = per_request_p95 {
                if rep.latency.p95_s > 0.0 {
                    best_speedup = best_speedup.max(base / rep.latency.p95_s);
                }
            }
            rows.push(vec![
                json!(load),
                json!(rep.policy.clone()),
                num6(rep.latency.p50_s * 1e3),
                num6(rep.latency.p95_s * 1e3),
                num6(rep.latency.p99_s * 1e3),
                num(rep.keys_per_second),
                num(rep.mean_batch_keys),
                json!(rep.window.windows),
                json!(rep.shed),
            ]);
        }
    }
    Experiment {
        id: "serve".into(),
        title: "Serving: cross-query window batching vs per-request execution".into(),
        columns: vec![
            "offered_rps".into(),
            "policy".into(),
            "p50_ms".into(),
            "p95_ms".into(),
            "p99_ms".into(),
            "keys_per_s".into(),
            "mean_batch_keys".into(),
            "windows".into(),
            "shed".into(),
        ],
        rows,
        notes: vec![
            "virtual-time latencies from the cost model's clock; same seed => identical output"
                .into(),
            format!(
                "shared windows amortize per-window costs over many tenants: \
                 best p95 speedup over per-request execution {best_speedup:.1}x"
            ),
            "at low load shared batching trades its max-delay bound for throughput; \
             the win appears once arrivals outpace per-request fixed costs"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_experiment_shows_the_batching_win() {
        let cfg = ExpConfig::quick();
        let exp = serve(&cfg);
        let points = offered_loads(&cfg).len() * policies(&cfg).len();
        assert_eq!(exp.rows.len(), points);

        // At the top offered load, shared batching must beat per-request
        // execution on tail latency and key throughput.
        let r = serve_relation(&cfg);
        let top = *offered_loads(&cfg).last().unwrap();
        let solo = serve_point(&cfg, &r, BatchPolicy::PerRequest, top);
        let shared = serve_point(
            &cfg,
            &r,
            BatchPolicy::Shared {
                max_delay_s: 200e-6,
            },
            top,
        );
        assert!(
            shared.latency.p95_s < solo.latency.p95_s,
            "shared p95 {} vs per-request p95 {}",
            shared.latency.p95_s,
            solo.latency.p95_s
        );
        assert!(shared.keys_per_second > solo.keys_per_second);
        assert!(shared.mean_batch_keys > solo.mean_batch_keys);
    }

    #[test]
    fn serve_points_are_deterministic() {
        let cfg = ExpConfig::quick();
        let r = serve_relation(&cfg);
        let policy = BatchPolicy::Shared {
            max_delay_s: 200e-6,
        };
        let a = serve_point(&cfg, &r, policy, 10_000.0);
        let b = serve_point(&cfg, &r, policy, 10_000.0);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
