//! Table 1: overview of interconnect receive bandwidths.

use crate::output::Experiment;
use serde_json::json;
use windex_sim::InterconnectSpec;

/// Regenerate Table 1 from the device presets.
pub fn table1() -> Experiment {
    let rows = InterconnectSpec::table1()
        .into_iter()
        .map(|(gpu, ic)| {
            vec![
                json!(gpu),
                json!(ic.name),
                json!(format!("{:.0} GB/s", ic.peak_bandwidth_gbps)),
            ]
        })
        .collect();
    Experiment {
        id: "table1".into(),
        title: "Overview of interconnect receive bandwidth".into(),
        columns: vec!["GPU".into(), "Interconnect".into(), "Bandwidth".into()],
        rows,
        notes: vec!["Values are the receive bandwidths listed in Table 1 of the paper.".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_rows() {
        let t = table1();
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.rows[3][1], "NVLink 2.0");
        assert_eq!(t.rows[3][2], "75 GB/s");
        assert_eq!(t.rows[4][2], "450 GB/s");
    }
}
